(* A TSIMMIS-flavored federation: semistructured sources behind
   relational wrappers (the paper's Section 2.1 — "internally, each
   source can use a different model, but the wrapper maps it to the
   common view").

   Three DMV sources: two export OEM documents with different internal
   shapes, one is a plain relational source. Wrappers map all three to
   the common (L, V, D) view; the mediator runs the paper's dui-and-sp
   query over the federation without knowing any of this. *)

open Fusion_data
open Fusion_core
module Oem = Fusion_oem.Oem
module Extract = Fusion_oem.Extract

let common =
  Schema.create_exn ~merge:"L"
    [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]

(* Source 1: violations as flat labeled records. *)
let california =
  "{ violation { lic \"J55\" type \"dui\" year 1993 }\n\
  \  violation { lic \"T21\" type \"sp\"  year 1994 }\n\
  \  violation { lic \"T80\" type \"dui\" year 1993 } }"

(* Source 2: a different internal shape — driver objects with nested ids. *)
let nevada =
  "{ record { driver { id \"T21\" } offense \"dui\" when 1996 }\n\
  \  record { driver { id \"J55\" } offense \"sp\"  when 1996 }\n\
  \  record { driver { id \"T11\" } offense \"sp\"  when 1993 } }"

let () =
  let parse text = Result.get_ok (Oem.parse text) in
  let oem1 =
    Result.get_ok
      (Extract.relation ~name:"CA" ~common
         {
           Extract.entities = [ "violation" ];
           columns = [ ("L", [ "lic" ]); ("V", [ "type" ]); ("D", [ "year" ]) ];
         }
         (parse california))
  in
  let oem2 =
    Result.get_ok
      (Extract.relation ~name:"NV" ~common
         {
           Extract.entities = [ "record" ];
           columns =
             [ ("L", [ "driver"; "id" ]); ("V", [ "offense" ]); ("D", [ "when" ]) ];
         }
         (parse nevada))
  in
  let relational =
    Result.get_ok
      (Csv_io.read_string ~name:"OR"
         "*L:string,V:string,D:int\nT21,sp,1993\nS07,sp,1996\nS07,sp,1993\n")
  in
  Format.printf "wrapped sources:@.";
  List.iter
    (fun r ->
      Format.printf "  %s: %d tuples under the common view %a@." (Relation.name r)
        (Relation.cardinality r) Schema.pp (Relation.schema r))
    [ oem1; oem2; relational ];
  let mediator =
    Fusion_mediator.Mediator.create_exn
      (List.map Fusion_source.Source.create [ oem1; oem2; relational ])
  in
  let sql =
    "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
  in
  Format.printf "@.query: %s@." sql;
  match Fusion_mediator.Mediator.run_sql
      ~config:
        {
          Fusion_mediator.Mediator.Config.default with
          Fusion_mediator.Mediator.Config.algo = Optimizer.Sja;
        }
      mediator sql with
  | Ok report ->
    Format.printf "answer: %a (paper's Figure 1 answer: {J55, T21})@."
      Item_set.pp report.Fusion_mediator.Mediator.answer
  | Error msg -> Format.printf "failed: %s@." msg
