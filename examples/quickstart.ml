(* Quickstart: the paper's Figure 1 DMV example, end to end.

   Three state DMV databases hold overlapping driving records. We ask,
   in SQL, for drivers with both a "dui" and an "sp" violation, let the
   mediator detect the fusion pattern, optimize with each algorithm and
   execute. Expected answer: {J55, T21}. *)

open Fusion_core

let () =
  let instance = Fusion_workload.Workload.fig1 () in
  let mediator =
    Fusion_mediator.Mediator.create_exn (Array.to_list instance.Fusion_workload.Workload.sources)
  in
  let sql =
    "SELECT u1.L FROM U u1, U u2 \
     WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
  in
  Format.printf "query: %s@.@." sql;
  List.iter
    (fun algo ->
      match Fusion_mediator.Mediator.run_sql
          ~config:
            {
              Fusion_mediator.Mediator.Config.default with
              Fusion_mediator.Mediator.Config.algo;
            }
          mediator sql with
      | Ok report ->
        Format.printf "=== %s ===@.%a@.@." (Optimizer.name algo)
          Fusion_mediator.Mediator.pp_report report
      | Error msg -> Format.printf "=== %s === failed: %s@.@." (Optimizer.name algo) msg)
    Optimizer.all
