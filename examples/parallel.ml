(* Parallel execution timelines (the paper's Section 6 future work).

   One slow mirror among six sources. We run the FILTER, SJA and SJA-RT
   plans live on the concurrent executor (each source answers one query
   at a time, queries dispatch the moment their inputs are ready) and
   draw the Gantt chart of every plan — making the work/response
   tradeoff visible: FILTER fires everything at once and queues at the
   sources; semijoin plans serialize rounds but ship far less. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Sim = Fusion_net.Sim

let instance_with_slow_mirror () =
  let base =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        universe = 4000;
        tuples_per_source = (400, 700);
        selectivities = [| 0.02; 0.3; 0.4 |];
        seed = 202;
      }
  in
  let sources =
    Array.mapi
      (fun j s ->
        if j = 0 then
          Source.create
            ~capability:(Source.capability s)
            ~profile:(Fusion_net.Profile.scale 5.0 (Source.profile s))
            (Source.relation s)
        else s)
      base.Workload.sources
  in
  { base with Workload.sources = sources }

let () =
  let instance = instance_with_slow_mirror () in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let show name optimized =
    Array.iter Source.reset_meter instance.Workload.sources;
    let result =
      Exec_async.run ~sources:instance.Workload.sources ~conds:env.Opt_env.conds
        optimized.Optimized.plan
    in
    Format.printf "=== %s: total work %.1f, makespan %.1f ===@.%a@.@." name
      result.Exec_async.total_cost result.Exec_async.makespan
      (Sim.pp_gantt ~width:64
         ~server_name:(fun j -> Source.name instance.Workload.sources.(j)))
      result.Exec_async.timeline
  in
  show "filter" (Algorithms.filter env);
  show "sja" (Algorithms.sja env);
  show "sja-rt" (Response_opt.sja_rt env);
  (* The adaptive runtime for comparison: it minimizes work but chains
     its pruned semijoins, so its critical path is the longest. *)
  let adaptive = Adaptive.run env in
  Format.printf "=== adaptive: total work %.1f, response %.1f (rounds serialize) ===@."
    adaptive.Adaptive.total_cost adaptive.Adaptive.response_time
