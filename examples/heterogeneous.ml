(* Why per-source adaptivity matters (Section 2.5.3).

   Six sources with wildly different wrappers: fast native-semijoin
   sources, a slow mirror, and legacy sources that can only answer
   selections or per-item lookups. SJ must treat all sources of a round
   the same, so one bad source poisons the whole round; SJA picks the
   right strategy per source. *)

open Fusion_data
open Fusion_source
open Fusion_core
module Prng = Fusion_stats.Prng
module Profile = Fusion_net.Profile
module Workload = Fusion_workload.Workload

let schema =
  Schema.create_exn ~merge:"M" [ ("M", Value.Tstring); ("A1", Value.Tint); ("A2", Value.Tint) ]

let make_source prng ~name ~capability ~profile ~cardinality =
  let relation = Relation.create ~name schema in
  for _ = 1 to cardinality do
    let item = Printf.sprintf "I%05d" (Prng.int prng 3000) in
    Relation.insert relation
      (Tuple.create_exn schema
         [ String item; Int (Prng.int prng 1000); Int (Prng.int prng 1000) ])
  done;
  Source.create ~capability ~profile relation

let () =
  let prng = Prng.create 4711 in
  let sources =
    [|
      make_source prng ~name:"fast1" ~capability:Capability.full
        ~profile:Profile.default ~cardinality:900;
      make_source prng ~name:"fast2" ~capability:Capability.full
        ~profile:Profile.default ~cardinality:800;
      make_source prng ~name:"mirror-slow" ~capability:Capability.full
        ~profile:(Profile.scale 8.0 Profile.default) ~cardinality:1000;
      make_source prng ~name:"legacy-nosj1" ~capability:Capability.no_semijoin
        ~profile:Profile.default ~cardinality:700;
      make_source prng ~name:"legacy-nosj2" ~capability:Capability.no_semijoin
        ~profile:Profile.default ~cardinality:900;
      make_source prng ~name:"dump-only" ~capability:Capability.minimal
        ~profile:Profile.default ~cardinality:600;
    |]
  in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list sources) in
  let sql =
    "SELECT u1.M FROM U u1, U u2 WHERE u1.M = u2.M AND u1.A1 < 30 AND u2.A2 < 500"
  in
  Format.printf "sources:@.";
  Array.iter (fun s -> Format.printf "  %a@." Source.pp s) sources;
  Format.printf "@.query: %s@.@." sql;
  Format.printf "%-12s %12s %12s@." "algorithm" "est. cost" "actual cost";
  let results =
    List.filter_map
      (fun algo ->
        match Fusion_mediator.Mediator.run_sql
            ~config:
              {
                Fusion_mediator.Mediator.Config.default with
                Fusion_mediator.Mediator.Config.algo;
              }
            mediator sql with
        | Ok report ->
          Format.printf "%-12s %12.1f %12.1f@." (Optimizer.name algo)
            report.Fusion_mediator.Mediator.optimized.Optimized.est_cost
            report.Fusion_mediator.Mediator.actual_cost;
          Some (algo, report)
        | Error msg ->
          Format.printf "%-12s failed: %s@." (Optimizer.name algo) msg;
          None)
      Optimizer.all
  in
  (* Show how SJA split the second round across wrappers. *)
  match List.assoc_opt Optimizer.Sja results with
  | None -> ()
  | Some report -> (
    let plan = report.Fusion_mediator.Mediator.optimized.Optimized.plan in
    match Fusion_plan.Plan.rounds ~n:(Array.length sources) plan with
    | Error _ -> ()
    | Ok rounds ->
      Format.printf "@.SJA per-source decisions:@.";
      List.iteri
        (fun i round ->
          Format.printf "  round %d (c%d): " (i + 1) (round.Fusion_plan.Plan.cond + 1);
          Array.iteri
            (fun j action ->
              Format.printf "%s=%s "
                (Source.name sources.(j))
                (match action with
                | Fusion_plan.Plan.By_select -> "sq"
                | Fusion_plan.Plan.By_semijoin -> "sjq"))
            round.Fusion_plan.Plan.actions;
          Format.printf "@.")
        rounds)
