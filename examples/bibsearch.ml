(* The bibliographic-search scenario of Section 1: the two-phase
   approach. Several autonomous literature indexes each cover a slice of
   the corpus with partially overlapping keyword annotations. Phase 1
   finds the ids of documents tagged 'databases' somewhere AND
   'internet' somewhere AND published before 2000; phase 2 fetches the
   full records of just those documents.

   We compare the two-phase cost against the naive single-phase
   strategy that ships full records for every intermediate match — the
   cost argument the paper makes for splitting searches. *)

open Fusion_data
open Fusion_source
open Fusion_core
module Prng = Fusion_stats.Prng
module Mediator = Fusion_mediator.Mediator

let schema =
  Schema.create_exn ~merge:"ID"
    [ ("ID", Value.Tstring); ("KW", Value.Tstring); ("Y", Value.Tint) ]

let keywords = [| "databases"; "internet"; "systems"; "theory"; "ai"; "networks" |]

(* Indexes store one row per (document, keyword) annotation. Full
   records are wide (abstracts!), which the tuple-transfer charge of the
   profile reflects. *)
let make_index prng index =
  let name = Printf.sprintf "INDEX%d" (index + 1) in
  let relation = Relation.create ~name schema in
  let annotations = 800 + Prng.int prng 400 in
  for _ = 1 to annotations do
    let doc = Printf.sprintf "doc%05d" (Prng.int prng 3000) in
    let kw = Prng.pick prng keywords in
    let year = 1980 + Prng.int prng 25 in
    Relation.insert relation
      (Tuple.create_exn schema [ String doc; String kw; Int year ])
  done;
  let profile = Fusion_net.Profile.make ~recv_per_tuple:40.0 () in
  Source.create ~profile relation

let () =
  let prng = Prng.create 99 in
  let sources = Array.init 4 (make_index prng) in
  let mediator = Mediator.create_exn (Array.to_list sources) in
  let sql =
    "SELECT u1.ID FROM U u1, U u2, U u3 \
     WHERE u1.ID = u2.ID AND u2.ID = u3.ID \
     AND u1.KW = 'databases' AND u2.KW = 'internet' AND u3.Y < 2000"
  in
  Format.printf "4 literature indexes, %d annotations total@."
    (Array.fold_left (fun acc s -> acc + Relation.cardinality (Source.relation s)) 0 sources);
  Format.printf "query: %s@.@." sql;
  let query =
    match
      Fusion_query.Sql.parse_fusion ~schema:(Mediator.schema mediator) ~union:"U" sql
    with
    | Ok q -> q
    | Error msg -> failwith msg
  in
  match Mediator.two_phase
          ~config:
            { Mediator.Config.default with Mediator.Config.algo = Optimizer.Sja_plus }
          mediator query with
  | Error msg -> Format.printf "failed: %s@." msg
  | Ok (report, records) ->
    let phase1 = report.Mediator.actual_cost in
    let phase2 = records.Mediator.fetch_cost in
    let single = Mediator.single_phase_cost mediator query in
    Format.printf "phase 1 (find ids):      cost %10.1f, %d documents@." phase1
      (Item_set.cardinal report.Mediator.answer);
    Format.printf "phase 2 (fetch records): cost %10.1f, %d records@." phase2
      (List.length records.Mediator.tuples);
    Format.printf "two-phase total:         cost %10.1f@." (phase1 +. phase2);
    Format.printf "single-phase baseline:   cost %10.1f@." single;
    Format.printf "@.two-phase saves %.1f%% — full records move only for final answers@."
      (100.0 *. (1.0 -. ((phase1 +. phase2) /. single)));
    (* A taste of the result set. *)
    let take n list =
      List.filteri (fun i _ -> i < n) list
    in
    Format.printf "@.first records:@.";
    List.iter
      (fun t -> Format.printf "  %a@." Tuple.pp t)
      (take 5 records.Mediator.tuples)
