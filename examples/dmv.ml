(* The paper's motivating scenario at scale: 20 state DMV databases with
   overlapping driver records. Each state keeps violations that happened
   on its territory, so a driver's history is scattered (Section 1).

   Query: drivers with a 'dui' violation somewhere, an 'sp' (speeding)
   violation somewhere, and a violation after 1995 somewhere. We compare
   all optimizers on estimated and actual cost. *)

open Fusion_data
open Fusion_source
open Fusion_core
module Prng = Fusion_stats.Prng

let schema =
  Schema.create_exn ~merge:"L"
    [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]

let violations = [| "dui"; "sp"; "park"; "red"; "belt" |]

(* Each state sees a random slice of the national driver population;
   drivers accumulate violations wherever they travel. *)
let make_state prng index =
  let name = Printf.sprintf "DMV%02d" (index + 1) in
  let relation = Relation.create ~name schema in
  let records = 300 + Prng.int prng 200 in
  for _ = 1 to records do
    let driver = Printf.sprintf "D%05d" (Prng.int prng 4000) in
    let violation = Prng.pick prng violations in
    let year = 1985 + Prng.int prng 20 in
    Relation.insert relation
      (Tuple.create_exn schema [ String driver; String violation; Int year ])
  done;
  (* A third of the states run legacy systems without semijoin support;
     their wrappers emulate semijoins with per-driver lookups. *)
  let capability = if index mod 3 = 0 then Capability.no_semijoin else Capability.full in
  Source.create ~capability relation

let () =
  let prng = Prng.create 2024 in
  let sources = Array.init 20 (make_state prng) in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list sources) in
  let sql =
    "SELECT u1.L FROM U u1, U u2, U u3 \
     WHERE u1.L = u2.L AND u2.L = u3.L \
     AND u1.V = 'dui' AND u2.V = 'sp' AND u3.D > 1995"
  in
  Format.printf "20 DMV sources, %d total records@."
    (Array.fold_left (fun acc s -> acc + Relation.cardinality (Source.relation s)) 0 sources);
  Format.printf "query: %s@.@." sql;
  Format.printf "%-12s %12s %12s %9s@." "algorithm" "est. cost" "actual cost" "drivers";
  List.iter
    (fun algo ->
      match Fusion_mediator.Mediator.run_sql
          ~config:
            {
              Fusion_mediator.Mediator.Config.default with
              Fusion_mediator.Mediator.Config.algo;
            }
          mediator sql with
      | Ok report ->
        Format.printf "%-12s %12.1f %12.1f %9d@." (Optimizer.name algo)
          report.Fusion_mediator.Mediator.optimized.Optimized.est_cost
          report.Fusion_mediator.Mediator.actual_cost
          (Item_set.cardinal report.Fusion_mediator.Mediator.answer)
      | Error msg -> Format.printf "%-12s failed: %s@." (Optimizer.name algo) msg)
    Optimizer.all;
  (* Show the winning plan. *)
  match Fusion_mediator.Mediator.run_sql
        ~config:
          {
            Fusion_mediator.Mediator.Config.default with
            Fusion_mediator.Mediator.Config.algo = Optimizer.Sja_plus;
          }
        mediator sql with
  | Ok report ->
    Format.printf "@.SJA+ plan:@.%a@."
      (Fusion_plan.Plan.pp ~source_name:(fun j -> Source.name sources.(j)))
      report.Fusion_mediator.Mediator.optimized.Optimized.plan
  | Error msg -> Format.printf "failed: %s@." msg
