(* A mediator session: repeated analyst queries over one federation,
   exercising the session-level features — the selection cache (shared
   conditions answered locally after the first query), EXPLAIN-style
   estimated-vs-actual reporting, and the runtime-adaptive executor. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator
module Cache = Exec.Query_cache

let () =
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        universe = 3000;
        tuples_per_source = (400, 600);
        selectivities = [| 0.05; 0.2; 0.3 |];
        seed = 7;
      }
  in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let queries =
    [
      "SELECT u1.M FROM U u1, U u2 WHERE u1.M = u2.M AND u1.A1 < 50 AND u2.A2 < 200";
      "SELECT u1.M FROM U u1, U u2 WHERE u1.M = u2.M AND u1.A1 < 50 AND u2.A3 < 300";
      "SELECT u1.M FROM U u1, U u2, U u3 \
       WHERE u1.M = u2.M AND u2.M = u3.M \
       AND u1.A1 < 50 AND u2.A2 < 200 AND u3.A3 < 300";
    ]
  in
  (* 1. The session cache across three related queries. *)
  let cache = Cache.create () in
  Format.printf "=== session with a shared cache ===@.";
  List.iteri
    (fun i sql ->
      match Mediator.run_sql
          ~config:
            {
              Mediator.Config.default with
              Mediator.Config.algo = Optimizer.Sja;
              cache = Some cache;
            }
          mediator sql with
      | Ok report ->
        Format.printf "query %d: cost %8.1f, %3d answers@." (i + 1)
          report.Mediator.actual_cost
          (Item_set.cardinal report.Mediator.answer)
      | Error msg -> Format.printf "query %d failed: %s@." (i + 1) msg)
    queries;
  let stats = Cache.stats cache in
  Format.printf "cache: %d hits, %d misses, %.1f cost saved@.@." stats.Cache.hits
    stats.Cache.misses stats.Cache.saved_cost;
  (* 2. EXPLAIN ANALYZE for the last query. *)
  let query =
    match
      Fusion_query.Sql.parse_fusion ~schema:(Mediator.schema mediator) ~union:"U"
        (List.nth queries 2)
    with
    | Ok q -> q
    | Error msg -> failwith msg
  in
  let env = Opt_env.create (Mediator.sources mediator) query in
  let optimized = Optimizer.optimize Optimizer.Sja env in
  Array.iter Fusion_source.Source.reset_meter (Mediator.sources mediator);
  let result =
    Exec.run ~sources:(Mediator.sources mediator) ~conds:env.Opt_env.conds
      optimized.Optimized.plan
  in
  let explain =
    Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
      ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds optimized.Optimized.plan
      result
  in
  Format.printf "=== explain analyze (SJA, estimated / actual) ===@.%a@.@."
    (Explain.pp ?source_name:None)
    explain;
  (* 3. The adaptive runtime on the same query. *)
  let adaptive = Adaptive.run env in
  Format.printf "=== adaptive runtime ===@.";
  List.iteri
    (fun i round ->
      Format.printf "round %d: c%d, cost %8.1f, %4d candidates left@." (i + 1)
        (round.Adaptive.cond + 1) round.Adaptive.cost round.Adaptive.candidates)
    adaptive.Adaptive.rounds;
  Format.printf "adaptive total %.1f vs static SJA %.1f (same answer: %b)@."
    adaptive.Adaptive.total_cost result.Exec.total_cost
    (Item_set.equal adaptive.Adaptive.answer result.Exec.answer)
