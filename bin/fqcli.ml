(* fqcli — command-line driver for the fusion-query mediator.

   Subcommands:
     gen      generate a synthetic workload as CSV source files
     run      run a fusion query (SQL) over CSV sources
     explain  optimize only; print the plan and its estimated cost
     compare  run all algorithms over the same sources and query

   Source files are CSVs with a typed header (see Csv_io); all files in
   a directory form the union view U. *)

open Cmdliner
open Fusion_core
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator

let ( let* ) r f = match r with Ok v -> f v | Error msg -> Error msg

(* --- shared loading ----------------------------------------------------- *)

let load_sources ~intern dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | entries ->
    let csvs =
      Array.to_list entries
      |> List.filter (fun f -> Filename.check_suffix f ".csv")
      |> List.sort compare
    in
    if csvs = [] then Error (Printf.sprintf "no .csv files in %s" dir)
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | file :: rest ->
          let name = Filename.remove_extension file in
          let* relation =
            Fusion_data.Csv_io.read_file ~name ~intern (Filename.concat dir file)
          in
          go (Fusion_source.Source.create relation :: acc) rest
      in
      go [] csvs

let with_mediator location f =
  (* One dictionary scope per invocation: every loaded relation encodes
     its merge values in the same intern table. *)
  let intern = Fusion_data.Intern.create ~name:"catalog" () in
  let* sources =
    match location with
    | `Dir dir -> load_sources ~intern dir
    | `Catalog path -> Fusion_source.Catalog.load ~intern path
  in
  Logs.debug (fun m ->
      m "dictionary: %d distinct merge values across %d sources"
        (Fusion_data.Intern.size intern) (List.length sources));
  let* mediator = Mediator.create sources in
  f mediator

let report_result = function
  | Ok () -> 0
  | Error msg ->
    Format.eprintf "error: %s@." msg;
    1

let verbose_arg =
  let doc = "Log the mediator's optimization and execution steps to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

(* Run [f] with a fresh trace collector and metrics registry installed,
   then dump both to [path] as JSON lines (parseable back with
   [Fusion_obs.Jsonl.parse]). *)
let with_tracing trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let collector = Fusion_obs.Trace.create () in
    let registry = Fusion_obs.Metrics.create () in
    let result =
      Fusion_obs.Trace.with_collector collector (fun () ->
          Fusion_obs.Metrics.with_registry registry f)
    in
    let spans = Fusion_obs.Trace.spans collector in
    (* The run itself already succeeded; losing the trace file is worth
       a warning, not a crash. *)
    (try
       Fusion_obs.Jsonl.write_file path
         ~metrics:(Fusion_obs.Metrics.snapshot registry)
         spans;
       Format.eprintf "trace: %d spans written to %s@." (List.length spans) path
     with Sys_error msg -> Format.eprintf "trace: cannot write %s: %s@." path msg);
    result

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

(* --- common arguments --------------------------------------------------- *)

let dir_arg =
  let doc = "Directory holding one .csv file per source." in
  Arg.(value & opt (some dir) None & info [ "d"; "sources" ] ~docv:"DIR" ~doc)

let catalog_arg =
  let doc =
    "Federation catalog file declaring sources, capabilities and network profiles      (alternative to --sources)."
  in
  Arg.(value & opt (some file) None & info [ "c"; "catalog" ] ~docv:"FILE" ~doc)

let location_term =
  let combine dir catalog =
    match dir, catalog with
    | Some d, None -> Ok (`Dir d)
    | None, Some c -> Ok (`Catalog c)
    | None, None -> Error "one of --sources or --catalog is required"
    | Some _, Some _ -> Error "--sources and --catalog are mutually exclusive"
  in
  Term.(const combine $ dir_arg $ catalog_arg)

let sql_arg =
  let doc = "The fusion query, in SQL over the union view U." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)

let algo_conv =
  let parse s = Optimizer.of_name s |> Result.map_error (fun m -> `Msg m) in
  let print ppf a = Format.pp_print_string ppf (Optimizer.name a) in
  Arg.conv (parse, print)

let algo_arg =
  let doc = "Optimization algorithm: filter, sj, sja, sja+, greedy-sj, greedy-sja." in
  Arg.(value & opt algo_conv Optimizer.Sja_plus & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let sample_arg =
  let doc =
    "Estimate statistics from a sample of this many tuples per source instead of exact \
     scans."
  in
  Arg.(value & opt (some int) None & info [ "sample" ] ~docv:"N" ~doc)

let hist_arg =
  let doc = "Estimate statistics from per-attribute histograms with this many buckets." in
  Arg.(value & opt (some int) None & info [ "hist" ] ~docv:"B" ~doc)

let stats_of_sample sample hist =
  match sample, hist with
  | Some size, _ -> Opt_env.Sampled (size, Fusion_stats.Prng.create 1)
  | None, Some buckets -> Opt_env.Histogram buckets
  | None, None -> Opt_env.Exact

let concurrency_conv =
  let parse = function
    | "seq" -> Ok `Seq
    | "par" -> Ok `Par
    | s -> Error (`Msg (Printf.sprintf "unknown concurrency %S (expected seq or par)" s))
  in
  let print ppf c = Format.pp_print_string ppf (match c with `Seq -> "seq" | `Par -> "par") in
  Arg.conv (parse, print)

let concurrency_arg =
  let doc =
    "Execution mode: $(b,seq) runs plan steps one after another, $(b,par) dispatches \
     source queries concurrently on the simulated network and reports the makespan."
  in
  Arg.(value & opt concurrency_conv `Seq & info [ "concurrency" ] ~docv:"MODE" ~doc)

let runtime_conv =
  let parse s =
    Fusion_rt.Runtime.spec_of_string s |> Result.map_error (fun m -> `Msg m)
  in
  let print ppf spec = Format.pp_print_string ppf (Fusion_rt.Runtime.spec_name spec) in
  Arg.conv (parse, print)

let runtime_arg =
  let doc =
    "Execution runtime: $(b,sim) charges model cost units on the discrete-event \
     simulator; $(b,domains) (or $(b,domains:N)) dispatches source queries on N \
     OCaml worker domains and measures wall-clock seconds. The domains backend \
     executes concurrently, so it requires $(b,--concurrency par)."
  in
  Arg.(value & opt runtime_conv `Sim & info [ "runtime" ] ~docv:"RT" ~doc)

let compiled_arg =
  let doc =
    "Execute through the compiled plan engine: the optimized plan is specialized \
     once (integer slots, pre-rendered cache keys, persistent columnar scans) and \
     run as a fused closure chain. Answers and costs are identical to the \
     interpreter; only per-step interpretation overhead disappears. Sequential \
     simulator runs only."
  in
  Arg.(value & flag & info [ "compiled" ] ~doc)

(* Least-squares fit of a wall-clock cost profile from the runtime's
   per-request observations: the measured seconds play the role of
   cost, so the fitted parameters are in seconds. *)
let print_calibration observations =
  let obs =
    List.map
      (fun ((_ : int), (t : Fusion_net.Meter.totals), wall) ->
        {
          Fusion_cost.Calibration.requests = t.Fusion_net.Meter.requests;
          items_sent = t.Fusion_net.Meter.items_sent;
          items_received = t.Fusion_net.Meter.items_received;
          tuples_received = t.Fusion_net.Meter.tuples_received;
          cost = wall;
        })
      observations
  in
  match Fusion_cost.Calibration.fit obs with
  | Ok profile ->
    Format.printf "wall-clock profile (seconds, %d observations): %a@."
      (List.length obs) Fusion_net.Profile.pp profile
  | Error msg ->
    Format.printf "wall-clock calibration: %s (%d observations)@." msg (List.length obs)

(* --- run ----------------------------------------------------------------- *)

let shards_arg =
  let doc = "Shard the mediator: partition the catalog by merge-id hash across this many coordinator shards and union their answers." in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let replicas_arg =
  let doc =
    "Replicate every shard-local source this many times (a catalog's per-source \
     $(b,replicas) keys raise individual groups further)."
  in
  Arg.(value & opt int 1 & info [ "replicas" ] ~docv:"K" ~doc)

let routing_conv =
  let parse s =
    match Fusion_dist.Replica.routing_of_string s with
    | Some r -> Ok r
    | None -> Error (`Msg (Printf.sprintf "unknown routing %S (expected primary, round-robin or least-cost)" s))
  in
  let print ppf r = Format.pp_print_string ppf (Fusion_dist.Replica.routing_name r) in
  Arg.conv (parse, print)

let routing_arg =
  let doc = "Replica selection policy: $(b,primary), $(b,round-robin) or $(b,least-cost)." in
  Arg.(value & opt routing_conv Fusion_dist.Replica.Primary & info [ "routing" ] ~docv:"POLICY" ~doc)

let hedge_arg =
  let doc =
    "Hedge straggling requests: duplicate a request onto the best alternative replica \
     when the routed replica's predicted finish exceeds FACTOR times the alternative's."
  in
  Arg.(value & opt (some float) None & info [ "hedge" ] ~docv:"FACTOR" ~doc)

(* The distributed run path: build the sharded, replicated cluster the
   flags describe and route the query through the coordinator. *)
let run_sharded ~location ~sql ~algo ~sample ~hist ~trace ~runtime ~shards ~replicas
    ~routing ~hedge =
  let intern = Fusion_data.Intern.create ~name:"catalog" () in
  let* groups =
    match location with
    | `Dir dir ->
      Result.map (List.map (fun s -> (s, replicas))) (load_sources ~intern dir)
    | `Catalog path ->
      Result.map
        (List.map (fun (s, k) -> (s, max k replicas)))
        (Fusion_source.Catalog.load_groups ~intern path)
  in
  let* cluster = Fusion_dist.Cluster.of_groups ~shards groups in
  let config =
    {
      Fusion_dist.Coordinator.Config.default with
      Fusion_dist.Coordinator.Config.algo;
      stats = stats_of_sample sample hist;
      routing;
      hedge;
      runtime;
    }
  in
  with_tracing trace (fun () ->
      let* report = Fusion_dist.Coordinator.run_sql ~config cluster sql in
      Format.printf "%a@." Fusion_dist.Coordinator.pp_report report;
      Ok ())

let run_cmd =
  let plan_arg =
    let doc = "Execute this saved plan (see 'explain --save-plan') instead of optimizing." in
    Arg.(value & opt (some file) None & info [ "plan" ] ~docv:"FILE" ~doc)
  in
  let trace_arg =
    let doc =
      "Record a structured trace of the run (spans for optimizer phases, plan steps \
       and source requests, plus metrics) and write it to this file as JSON lines."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let action location sql algo sample hist concurrency runtime compiled plan_file trace
      shards replicas routing hedge verbose =
    setup_logs verbose;
    if shards > 1 || replicas > 1 || hedge <> None then
      report_result
        (let* location = location in
         if shards < 1 then Error "--shards must be at least 1"
         else if replicas < 1 then Error "--replicas must be at least 1"
         else if plan_file <> None then Error "--plan is not supported with --shards/--replicas"
         else
           run_sharded ~location ~sql ~algo ~sample ~hist ~trace ~runtime ~shards
             ~replicas ~routing ~hedge)
    else
    report_result
      (let* location = location in
       let* () =
         match runtime, concurrency, trace, plan_file with
         | `Domains _, `Seq, _, _ ->
           Error
             "the domains runtime executes concurrently: combine --runtime domains \
              with --concurrency par"
         | `Domains _, _, Some _, _ ->
           Error
             "--trace spans a single simulated clock and is not available on the \
              domains runtime; drop --trace or use --runtime sim"
         | `Domains _, _, _, Some _ ->
           Error "--plan executes sequentially and is not available with --runtime domains"
         | _ -> Ok ()
       in
       let* () =
         if compiled && concurrency = `Par then
           Error "--compiled is a sequential engine; drop it or use --concurrency seq"
         else if compiled && plan_file <> None then
           Error "--plan pins an external plan text; --compiled compiles the optimizer's"
         else Ok ()
       in
       with_mediator location (fun mediator ->
           with_tracing trace (fun () ->
           match plan_file with
           | None ->
             let config =
               {
                 Mediator.Config.default with
                 Mediator.Config.algo;
                 stats = stats_of_sample sample hist;
                 concurrency;
                 runtime;
                 exec = (if compiled then `Compiled else `Interp);
                 (* Under --concurrency par the report's queue-wait
                    breakdown needs span data; collect it privately
                    unless --trace already installs a collector. The
                    collector's span stack assumes one clock and one
                    fibre, so skip it on the domains runtime. *)
                 trace =
                   (if concurrency = `Par && trace = None && runtime = `Sim then
                      Some (Fusion_obs.Trace.create ())
                    else None);
               }
             in
             let* result = Mediator.select_sql ~config mediator sql in
             Format.printf "%a@." Mediator.pp_report result.Mediator.report;
             if concurrency = `Par then begin
               Format.printf "makespan: %.1f (total cost %.1f)@."
                 result.Mediator.report.Mediator.response_time
                 result.Mediator.report.Mediator.actual_cost;
               match
                 Fusion_obs.Analyze.tasks_of_spans
                   result.Mediator.report.Mediator.trace
               with
               | Ok tasks ->
                 let sources = Mediator.sources mediator in
                 let source_name j =
                   if j >= 0 && j < Array.length sources then
                     Fusion_source.Source.name sources.(j)
                   else Printf.sprintf "R%d" (j + 1)
                 in
                 List.iter
                   (fun (l : Fusion_obs.Analyze.source_load) ->
                     Format.printf
                       "  %-8s queue-wait %6.1f  (%d requests, busy %.1f)@."
                       (source_name l.Fusion_obs.Analyze.server)
                       l.Fusion_obs.Analyze.queue_wait
                       l.Fusion_obs.Analyze.requests l.Fusion_obs.Analyze.busy)
                   (Fusion_obs.Analyze.source_loads tasks)
               | Error _ -> ()
             end;
             if List.length result.Mediator.columns > 1 then begin
               Format.printf "@.%s@." (String.concat " | " result.Mediator.columns);
               List.iter
                 (fun row ->
                   Format.printf "%s@."
                     (String.concat " | "
                        (List.map Fusion_data.Value.to_string row)))
                 result.Mediator.rows;
               Format.printf "(%d rows; phase-2 fetch cost %.1f)@."
                 (List.length result.Mediator.rows)
                 result.Mediator.fetch_cost
             end;
             Ok ()
           | Some path ->
             let schema = Mediator.schema mediator in
             let* query = Fusion_query.Sql.parse_fusion ~schema ~union:"U" sql in
             let text = In_channel.with_open_text path In_channel.input_all in
             let* plan = Fusion_plan.Plan_text.of_string text in
             let sources = Mediator.sources mediator in
             let conds = Fusion_query.Query.conditions query in
             let* () =
               Fusion_plan.Plan.validate ~m:(Array.length conds)
                 ~n:(Array.length sources) plan
             in
             Array.iter Fusion_source.Source.reset_meter sources;
             (match Fusion_plan.Exec.run ~sources ~conds plan with
             | result ->
               Format.printf "pinned plan executed: cost %.1f, answer (%d items): %a@."
                 result.Fusion_plan.Exec.total_cost
                 (Fusion_data.Item_set.cardinal result.Fusion_plan.Exec.answer)
                 Fusion_data.Item_set.pp result.Fusion_plan.Exec.answer;
               Ok ()
             | exception Fusion_source.Source.Unsupported msg ->
               Error ("execution failed: " ^ msg)))))
  in
  let doc = "run a fusion query over CSV sources" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const action $ location_term $ sql_arg $ algo_arg $ sample_arg $ hist_arg
          $ concurrency_arg $ runtime_arg $ compiled_arg $ plan_arg $ trace_arg
          $ shards_arg $ replicas_arg $ routing_arg $ hedge_arg $ verbose_arg)

(* --- explain ------------------------------------------------------------- *)

let explain_cmd =
  let analyze_arg =
    let doc = "Also execute the plan and print estimated vs actual cost and cardinality per step." in
    Arg.(value & flag & info [ "analyze" ] ~doc)
  in
  let save_arg =
    let doc = "Also save the chosen plan to this file (re-runnable via 'run --plan')." in
    Arg.(value & opt (some string) None & info [ "save-plan" ] ~docv:"FILE" ~doc)
  in
  let dot_arg =
    let doc = "Write the plan's dataflow as Graphviz DOT to this file." in
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)
  in
  let orderings_arg =
    let doc = "Also list the K cheapest condition orderings of the SJA search." in
    Arg.(value & opt (some int) None & info [ "orderings" ] ~docv:"K" ~doc)
  in
  let action location sql algo sample hist analyze save dot orderings =
    report_result
      (let* location = location in
       with_mediator location (fun mediator ->
           let schema = Mediator.schema mediator in
           let* query = Fusion_query.Sql.parse_fusion ~schema ~union:"U" sql in
           let env =
             Opt_env.create ~stats:(stats_of_sample sample hist)
               (Mediator.sources mediator) query
           in
           let optimized = Optimizer.optimize algo env in
           Option.iter
             (fun path ->
               Out_channel.with_open_text path (fun oc ->
                   Out_channel.output_string oc
                     (Fusion_plan.Plan_text.to_string optimized.Optimized.plan)))
             save;
           Option.iter
             (fun path ->
               let source_name j =
                 Fusion_source.Source.name (Mediator.sources mediator).(j)
               in
               Out_channel.with_open_text path (fun oc ->
                   Out_channel.output_string oc
                     (Fusion_plan.Plan_dot.to_string ~source_name optimized.Optimized.plan)))
             dot;
           let source_name j =
             Fusion_source.Source.name (Mediator.sources mediator).(j)
           in
           Option.iter
             (fun k ->
               Format.printf "cheapest condition orderings:@.";
               List.iteri
                 (fun rank (ordering, cost) ->
                   if rank < k then
                     Format.printf "  %2d. [%s]  est. cost %.1f@." (rank + 1)
                       (String.concat "; "
                          (List.map
                             (fun c -> Printf.sprintf "c%d" (c + 1))
                             (Array.to_list ordering)))
                       cost)
                 (Algorithms.sja_trace env);
               Format.printf "@.")
             orderings;
           if not analyze then begin
             Format.printf "%a@." (Optimized.pp ~source_name) optimized;
             Ok ()
           end
           else begin
             Array.iter Fusion_source.Source.reset_meter (Mediator.sources mediator);
             match
               Fusion_plan.Exec.run
                 ~sources:(Mediator.sources mediator)
                 ~conds:env.Opt_env.conds optimized.Optimized.plan
             with
             | result ->
               let explain =
                 Fusion_plan.Explain.analyze ~model:env.Opt_env.model ~est:env.Opt_env.est
                   ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds
                   optimized.Optimized.plan result
               in
               Format.printf "%a@." (Fusion_plan.Explain.pp ~source_name) explain;
               Ok ()
             | exception Fusion_source.Source.Unsupported msg ->
               Error ("execution failed: " ^ msg)
           end))
  in
  let doc = "optimize only; print the chosen plan and its estimated cost" in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const action $ location_term $ sql_arg $ algo_arg $ sample_arg $ hist_arg
          $ analyze_arg $ save_arg $ dot_arg $ orderings_arg)

(* --- compare ------------------------------------------------------------- *)

let compare_cmd =
  let action location sql sample hist =
    report_result
      (let* location = location in
       with_mediator location (fun mediator ->
           Format.printf "%-12s %12s %12s %9s@." "algorithm" "est. cost" "actual cost"
             "answers";
           let rec go = function
             | [] -> Ok ()
             | algo :: rest ->
               let* report =
                 Mediator.run_sql
                   ~config:
                     {
                       Mediator.Config.default with
                       Mediator.Config.algo;
                       stats = stats_of_sample sample hist;
                     }
                   mediator sql
               in
               Format.printf "%-12s %12.1f %12.1f %9d@." (Optimizer.name algo)
                 report.Mediator.optimized.Optimized.est_cost report.Mediator.actual_cost
                 (Fusion_data.Item_set.cardinal report.Mediator.answer);
               go rest
           in
           go Optimizer.all))
  in
  let doc = "run every algorithm over the same query and tabulate costs" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const action $ location_term $ sql_arg $ sample_arg $ hist_arg)

(* --- profile ------------------------------------------------------------- *)

module Analyze = Fusion_obs.Analyze
module Summary = Fusion_obs.Summary

let profile_cmd =
  let runs_arg =
    let doc =
      "Execute the query this many times and also report p50/p90/p99 latency and cost \
       percentiles over the runs."
    in
    Arg.(value & opt int 1 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc = "Also write the recorded trace to this file as JSON lines." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let chrome_arg =
    let doc =
      "Also write the trace in Chrome trace-event format (open in Perfetto or \
       chrome://tracing) to this file."
    in
    Arg.(value & opt (some string) None & info [ "chrome" ] ~docv:"FILE" ~doc)
  in
  let gantt_arg =
    let doc = "Also print the per-source Gantt chart of the schedule." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let action location sql algo sample hist runs trace chrome gantt verbose =
    setup_logs verbose;
    report_result
      (let* location = location in
       with_mediator location (fun mediator ->
           if runs < 1 then Error "profile: --runs must be at least 1"
           else begin
             let source_name j =
               Fusion_source.Source.name (Mediator.sources mediator).(j)
             in
             let config collector =
               {
                 Mediator.Config.default with
                 Mediator.Config.algo;
                 stats = stats_of_sample sample hist;
                 concurrency = `Par;
                 trace = Some collector;
               }
             in
             (* First run: the one we profile in detail. *)
             let collector = Fusion_obs.Trace.create () in
             let registry = Fusion_obs.Metrics.create () in
             let* report =
               Fusion_obs.Metrics.with_registry registry (fun () ->
                   Mediator.run_sql ~config:(config collector) mediator sql)
             in
             let est = report.Mediator.optimized.Optimized.est_cost in
             Format.printf "algorithm: %s@." (Optimizer.name report.Mediator.algo);
             Format.printf
               "est. cost %.1f, actual cost %.1f (drift x%.2f), makespan %.1f@." est
               report.Mediator.actual_cost report.Mediator.cost_drift
               report.Mediator.response_time;
             if report.Mediator.partial then
               Format.printf "warning: answer is partial (a source was unreachable)@.";
             (match report.Mediator.critical_path with
             | Some path -> Format.printf "%a@." (Analyze.pp_path ~source_name) path
             | None -> ());
             let* tasks = Analyze.tasks_of_spans report.Mediator.trace in
             if tasks <> [] then begin
               Format.printf "@.%-6s %8s %8s %6s %10s %9s@." "source" "requests" "busy"
                 "util" "queue-wait" "on-path";
               List.iter
                 (fun (l : Analyze.source_load) ->
                   Format.printf "%-6s %8d %8.1f %5.0f%% %10.1f %9.1f@."
                     (source_name l.Analyze.server) l.Analyze.requests l.Analyze.busy
                     (100.0 *. l.Analyze.utilization)
                     l.Analyze.queue_wait l.Analyze.on_path)
                 (Analyze.source_loads tasks);
               let path = Analyze.critical_path tasks in
               let blame title entries =
                 if entries <> [] then begin
                   Format.printf "@.%s@." title;
                   List.iter
                     (fun (b : Analyze.blame) ->
                       Format.printf "  %-8s %8.1f  %5.1f%%  (%d hops)@." b.Analyze.key
                         b.Analyze.busy
                         (100.0 *. b.Analyze.share)
                         b.Analyze.hops)
                     entries
                 end
               in
               blame "critical path by source:" (Analyze.blame_sources ~name:source_name path);
               blame "critical path by condition:" (Analyze.blame_conds path)
             end;
             if gantt && tasks <> [] then
               Format.printf "@.%a@."
                 (fun ppf -> Fusion_net.Sim.pp_gantt ~server_name:source_name ppf)
                 (Analyze.to_timeline tasks);
             Option.iter
               (fun path ->
                 Fusion_obs.Jsonl.write_file path
                   ~metrics:(Fusion_obs.Metrics.snapshot registry)
                   report.Mediator.trace;
                 Format.printf "@.trace: %d spans written to %s@."
                   (List.length report.Mediator.trace)
                   path)
               trace;
             Option.iter
               (fun path ->
                 Fusion_obs.Chrome.write_file path ~source_name report.Mediator.trace;
                 Format.printf "@.chrome trace written to %s@." path)
               chrome;
             (* Remaining runs: aggregate percentiles and drift. *)
             if runs <= 1 then Ok ()
             else begin
               let summary = Summary.create () in
               let record (r : Mediator.report) =
                 Summary.add summary
                   ~plan:(Optimizer.name r.Mediator.algo)
                   ~est_cost:r.Mediator.optimized.Optimized.est_cost
                   ~cost:r.Mediator.actual_cost ~response_time:r.Mediator.response_time
                   ()
               in
               record report;
               let rec go i =
                 if i >= runs then Ok ()
                 else
                   let c = Fusion_obs.Trace.create () in
                   let* r = Mediator.run_sql ~config:(config c) mediator sql in
                   record r;
                   go (i + 1)
               in
               let* () = go 1 in
               Format.printf "@.%d runs:@.%a@." runs Summary.pp summary;
               Ok ()
             end
           end))
  in
  let doc =
    "profile a fusion query: run it concurrently and print the critical path, \
     per-source utilization and blame breakdown"
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const action $ location_term $ sql_arg $ algo_arg $ sample_arg $ hist_arg
          $ runs_arg $ trace_arg $ chrome_arg $ gantt_arg $ verbose_arg)

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let file_arg =
    let doc = "Trace file in JSON-lines format (written by 'run --trace' or 'profile --trace')." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Write the converted output to this file instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let emit out text =
    match out with
    | None -> print_string text
    | Some path -> Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)
  in
  let cat_cmd =
    let action file =
      report_result
        (let* spans, samples = Fusion_obs.Jsonl.read_file file in
         Format.printf "%a@." Analyze.pp_tree (Analyze.tree spans);
         if samples <> [] then begin
           Format.printf "@.metrics:@.";
           List.iter
             (fun s -> Format.printf "  %a@." Fusion_obs.Metrics.pp_sample s)
             samples
         end;
         Ok ())
    in
    let doc = "print a trace file as an indented span tree (plus its metrics)" in
    Cmd.v (Cmd.info "cat" ~doc) Term.(const action $ file_arg)
  in
  let critpath_cmd =
    let action file =
      report_result
        (let* spans, _ = Fusion_obs.Jsonl.read_file file in
         let* tasks = Analyze.tasks_of_spans spans in
         if tasks = [] then Error "no dispatched source queries in this trace (was it a `Par run?)"
         else begin
           Format.printf "%a@."
             (fun ppf -> Analyze.pp_path ppf)
             (Analyze.critical_path tasks);
           Ok ()
         end)
    in
    let doc = "recompute and print the critical path of a recorded concurrent run" in
    Cmd.v (Cmd.info "critpath" ~doc) Term.(const action $ file_arg)
  in
  let chrome_cmd =
    let action file out =
      report_result
        (let* spans, _ = Fusion_obs.Jsonl.read_file file in
         emit out (Fusion_obs.Chrome.to_string spans);
         Ok ())
    in
    let doc = "convert a trace file to Chrome trace-event JSON (Perfetto, chrome://tracing)" in
    Cmd.v (Cmd.info "chrome" ~doc) Term.(const action $ file_arg $ out_arg)
  in
  let prom_cmd =
    let action file out =
      report_result
        (let* _, samples = Fusion_obs.Jsonl.read_file file in
         emit out (Fusion_obs.Prom.of_samples samples);
         Ok ())
    in
    let doc = "export a trace file's metrics in Prometheus text-exposition format" in
    Cmd.v (Cmd.info "prom" ~doc) Term.(const action $ file_arg $ out_arg)
  in
  let doc = "inspect and convert recorded trace files" in
  Cmd.group (Cmd.info "trace" ~doc) [ cat_cmd; critpath_cmd; chrome_cmd; prom_cmd ]

(* --- gen ----------------------------------------------------------------- *)

let gen_cmd =
  let out_arg =
    let doc = "Output directory for the generated .csv files." in
    Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let n_arg =
    let doc = "Number of sources." in
    Arg.(value & opt int 8 & info [ "n"; "sources-count" ] ~docv:"N" ~doc)
  in
  let sels_arg =
    let doc = "Per-condition selectivities (one condition per value)." in
    Arg.(value & opt (list float) [ 0.1; 0.2; 0.3 ] & info [ "selectivities" ] ~docv:"S" ~doc)
  in
  let universe_arg =
    let doc = "Number of distinct items in the world." in
    Arg.(value & opt int 2000 & info [ "universe" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let no_semijoin_arg =
    let doc = "Fraction of sources without native semijoin support." in
    Arg.(value & opt float 0.0 & info [ "no-semijoin" ] ~docv:"F" ~doc)
  in
  let slow_arg =
    let doc = "Fraction of sources with a 10x slower network profile." in
    Arg.(value & opt float 0.0 & info [ "slow" ] ~docv:"F" ~doc)
  in
  let tiny_arg =
    let doc = "Fraction of sources holding ~2% of the normal data volume." in
    Arg.(value & opt float 0.0 & info [ "tiny" ] ~docv:"F" ~doc)
  in
  let action out n sels universe seed no_semijoin slow tiny =
    report_result
      (let spec =
         {
           Workload.default_spec with
           Workload.n_sources = n;
           selectivities = Array.of_list sels;
           universe;
           seed;
           heterogeneity =
             { Workload.homogeneous with Workload.no_semijoin; slow; tiny };
         }
       in
       let instance = Workload.generate spec in
       Workload.save ~dir:out instance;
       let sql =
         Fusion_query.Query.to_sql ~union:"U"
           ~merge:(Fusion_data.Schema.merge instance.Workload.schema)
           instance.Workload.query
       in
       Format.printf
         "wrote %d sources, catalog.ini and query.sql to %s@.example query:@.  %s@."
         (Array.length instance.Workload.sources)
         out sql;
       Ok ())
  in
  let doc = "generate a synthetic workload as CSV source files + catalog" in
  Cmd.v (Cmd.info "gen" ~doc)
    Term.(const action $ out_arg $ n_arg $ sels_arg $ universe_arg $ seed_arg
          $ no_semijoin_arg $ slow_arg $ tiny_arg)

(* --- shell ----------------------------------------------------------------- *)

let shell_cmd =
  let action location =
    report_result
      (let* location = location in
       with_mediator location (fun mediator ->
           let cache = Fusion_plan.Exec.Query_cache.create () in
           let algo = ref Optimizer.Sja_plus in
           let help () =
             print_string
               "commands:\n\
               \  SELECT ...        run a fusion query (cached session)\n\
               \  .algo NAME        switch optimizer (filter, sj, sja, sja+, ...)\n\
               \  .explain SELECT.. show the plan without running it\n\
               \  .analyze SELECT.. run and show estimated vs actual per step\n\
               \  .sources          list the federation's sources\n\
               \  .stats            session cache statistics\n\
               \  .help             this text\n\
               \  .quit             leave\n"
           in
           let sources () =
             Array.iter
               (fun s -> Format.printf "  %a@." Fusion_source.Source.pp s)
               (Mediator.sources mediator)
           in
           let stats () =
             let s = Fusion_plan.Exec.Query_cache.stats cache in
             Format.printf "cache: %d hits, %d misses, %.1f cost saved@."
               s.Fusion_plan.Exec.Query_cache.hits s.Fusion_plan.Exec.Query_cache.misses
               s.Fusion_plan.Exec.Query_cache.saved_cost
           in
           let explain ~analyze sql =
             let schema = Mediator.schema mediator in
             match Fusion_query.Sql.parse_fusion ~schema ~union:"U" sql with
             | Error msg -> Format.printf "error: %s@." msg
             | Ok query -> (
               let env = Opt_env.create (Mediator.sources mediator) query in
               let optimized = Optimizer.optimize !algo env in
               let source_name j =
                 Fusion_source.Source.name (Mediator.sources mediator).(j)
               in
               if not analyze then Format.printf "%a@." (Optimized.pp ~source_name) optimized
               else begin
                 Array.iter Fusion_source.Source.reset_meter (Mediator.sources mediator);
                 match
                   Fusion_plan.Exec.run ~cache
                     ~sources:(Mediator.sources mediator)
                     ~conds:env.Opt_env.conds optimized.Optimized.plan
                 with
                 | result ->
                   let e =
                     Fusion_plan.Explain.analyze ~model:env.Opt_env.model
                       ~est:env.Opt_env.est ~sources:env.Opt_env.sources
                       ~conds:env.Opt_env.conds optimized.Optimized.plan result
                   in
                   Format.printf "%a@." (Fusion_plan.Explain.pp ~source_name) e
                 | exception Fusion_source.Source.Unsupported msg ->
                   Format.printf "error: %s@." msg
               end)
           in
           let run sql =
             match
               Mediator.select_sql
                 ~config:
                   {
                     Mediator.Config.default with
                     Mediator.Config.algo = !algo;
                     cache = Some cache;
                   }
                 mediator sql
             with
             | Error msg -> Format.printf "error: %s@." msg
             | Ok result ->
               let report = result.Mediator.report in
               if List.length result.Mediator.columns = 1 then
                 Format.printf "cost %.1f, %d answers: %a@." report.Mediator.actual_cost
                   (Fusion_data.Item_set.cardinal report.Mediator.answer)
                   Fusion_data.Item_set.pp report.Mediator.answer
               else begin
                 Format.printf "%s@." (String.concat " | " result.Mediator.columns);
                 List.iter
                   (fun row ->
                     Format.printf "%s@."
                       (String.concat " | " (List.map Fusion_data.Value.to_string row)))
                   result.Mediator.rows;
                 Format.printf
                   "(%d rows; phase 1 cost %.1f, phase 2 cost %.1f)@."
                   (List.length result.Mediator.rows)
                   report.Mediator.actual_cost result.Mediator.fetch_cost
               end
           in
           let prefix p line =
             if String.length line >= String.length p && String.sub line 0 (String.length p) = p
             then Some (String.trim (String.sub line (String.length p) (String.length line - String.length p)))
             else None
           in
           Format.printf "fusion shell — %d sources; .help for commands@."
             (Array.length (Mediator.sources mediator));
           let quit = ref false in
           (try
              while not !quit do
                print_string "fq> ";
                let line = String.trim (read_line ()) in
                if line = "" then ()
                else if line = ".quit" || line = ".exit" then quit := true
                else if line = ".help" then help ()
                else if line = ".sources" then sources ()
                else if line = ".stats" then stats ()
                else
                  match prefix ".algo" line with
                  | Some name -> (
                    match Optimizer.of_name name with
                    | Ok a ->
                      algo := a;
                      Format.printf "algorithm: %s@." (Optimizer.name a)
                    | Error msg -> Format.printf "error: %s@." msg)
                  | None -> (
                    match prefix ".explain" line with
                    | Some sql -> explain ~analyze:false sql
                    | None -> (
                      match prefix ".analyze" line with
                      | Some sql -> explain ~analyze:true sql
                      | None ->
                        if String.length line > 0 && line.[0] = '.' then
                          Format.printf "unknown command %s (.help)@." line
                        else run line))
              done
            with End_of_file -> ());
           Ok ()))
  in
  let doc = "interactive fusion-query session (with the selection cache)" in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const action $ location_term)

(* --- serve --------------------------------------------------------------- *)

(* A seeded open-loop serving run: N random conjunctive queries arrive
   as a Poisson stream over the shared simulated network, scheduled by
   the chosen policy; prints per-tenant goodput/latency percentiles,
   shed and cache statistics, and the conservation line the smoke test
   greps for. *)
let serve_cmd =
  let module Serve = Fusion_serve.Server in
  let queries_arg =
    let doc = "Number of queries to submit." in
    Arg.(value & opt int 200 & info [ "n"; "queries" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Poisson arrival rate (queries per simulated time unit)." in
    Arg.(value & opt float 0.01 & info [ "rate" ] ~docv:"R" ~doc)
  in
  let seed_arg =
    let doc = "PRNG seed for query generation and arrivals." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let policy_arg =
    let doc = "Scheduling policy: fifo, priority, fair, sjf." in
    Arg.(value & opt string "fifo" & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let tenants_arg =
    let doc = "Number of tenants queries are spread across (round-robin)." in
    Arg.(value & opt int 3 & info [ "tenants" ] ~docv:"K" ~doc)
  in
  let cache_ttl_arg =
    let doc =
      "Replay completed answers for this long (simulated time); omitted: in-flight \
       request coalescing only."
    in
    Arg.(value & opt (some float) None & info [ "cache-ttl" ] ~docv:"T" ~doc)
  in
  let max_inflight_arg =
    let doc = "Admission cap on concurrently executing queries." in
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"M" ~doc)
  in
  let versioned_cache_arg =
    let doc =
      "Track answer-cache staleness by source version instead of the clock: \
       entries are patched or invalidated when $(b,mut) statements change a \
       source, and version-matching replays report exact staleness 0."
    in
    Arg.(value & flag & info [ "versioned-cache" ] ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-query response-time budget; arrivals that cannot meet it are shed."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"D" ~doc)
  in
  let prom_arg =
    let doc = "Write the run's metrics in Prometheus exposition format to this file." in
    Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)
  in
  let gantt_arg =
    let doc = "Print the shared network's Gantt chart after the run." in
    Arg.(value & flag & info [ "gantt" ] ~doc)
  in
  let listen_arg =
    let doc =
      "Serve real clients over TCP on this address (e.g. 127.0.0.1:7477): one SQL \
       statement per line in, one response line per statement out. Requires \
       $(b,--runtime domains); the run ends after $(b,--queries) statements."
    in
    Arg.(value & opt (some string) None & info [ "listen" ] ~docv:"HOST:PORT" ~doc)
  in
  let admin_arg =
    let doc =
      "With $(b,--listen): also serve the admin HTTP endpoints ($(b,/metrics), \
       $(b,/healthz), $(b,/statusz)) on this address. Port 0 picks a free port \
       (printed on startup)."
    in
    Arg.(value & opt (some string) None & info [ "admin" ] ~docv:"HOST:PORT" ~doc)
  in
  let window_arg =
    let doc =
      "Sliding-window span (seconds of server clock) behind the live per-tenant \
       latency percentiles."
    in
    Arg.(value & opt (some float) None & info [ "window" ] ~docv:"SECS" ~doc)
  in
  let slow_threshold_arg =
    let doc =
      "Record every query slower than this many seconds of response time in the \
       structured slow-query log (surfaced on $(b,/statusz) and after the run)."
    in
    Arg.(value & opt (some float) None & info [ "slow-threshold" ] ~docv:"SECS" ~doc)
  in
  let action location queries rate seed policy tenants cache_ttl versioned_cache
      max_inflight deadline prom gantt runtime listen admin window slow_threshold
      algo verbose =
    setup_logs verbose;
    report_result
      (let* location = location in
       let* policy =
         match Serve.policy_of_name policy with
         | Some p -> Ok p
         | None ->
           Error (Printf.sprintf "unknown policy %S (expected fifo|priority|fair|sjf)" policy)
       in
       if queries < 0 then Error "--queries must be non-negative"
       else if rate <= 0.0 then Error "--rate must be positive"
       else if tenants < 1 then Error "--tenants must be >= 1"
       else
       match listen with
       | Some addr ->
         (* The TCP front end: statements arrive from sockets instead of
            the seeded generator; --rate/--tenants/--seed are unused. *)
         let module Tcp = Fusion_mediator.Tcp_front in
         let* addr = Tcp.sockaddr_of_string addr in
         let* admin =
           match admin with
           | None -> Ok None
           | Some a -> Result.map Option.some (Tcp.sockaddr_of_string a)
         in
         let* () =
           match runtime with
           | `Domains _ -> Ok ()
           | `Sim ->
             Error
               "serve --listen waits on real sockets: combine it with --runtime \
                domains (the simulated clock cannot pace a TCP connection)"
         in
         with_mediator location (fun mediator ->
             (* The front end publishes runtime/serving gauges into the
                installed registry; install one for the whole run so the
                admin scrape (and --prom) see every counter. *)
             let registry = Fusion_obs.Metrics.create () in
             Fusion_obs.Metrics.with_registry registry (fun () ->
                 let config =
                   { Mediator.Config.default with Mediator.Config.algo; runtime }
                 in
                 Format.printf "listening on %s (%s runtime, policy %s), stopping \
                                after %d queries@."
                   (Tcp.sockaddr_to_string addr)
                   (Fusion_rt.Runtime.spec_name runtime)
                   (Serve.policy_name policy) queries;
                 let admin_on_listen a =
                   Format.printf "admin endpoints on http://%s/ (metrics, healthz, \
                                  statusz)@."
                     (Tcp.sockaddr_to_string a)
                 in
                 let* report =
                   Tcp.serve ~config ~policy ~max_inflight ?cache_ttl
                     ~versioned_cache ~max_queries:queries ?window
                     ?slow_threshold ?admin ~admin_on_listen ~listen:addr
                     mediator
                 in
                 Format.printf
                   "served %d statements over %d connections (%d rejected before \
                    admission)@."
                   report.Tcp.received report.Tcp.connections report.Tcp.rejected;
                 Format.printf "%a@." Serve.pp_stats report.Tcp.stats;
                 print_calibration report.Tcp.observations;
                 (match prom with
                 | Some path ->
                   Fusion_obs.Prom.write_file path
                     (Fusion_obs.Metrics.snapshot registry);
                   Format.eprintf "metrics written to %s@." path
                 | None -> ());
                 Ok ()))
       | None ->
         with_mediator location (fun mediator ->
             let registry = Fusion_obs.Metrics.create () in
             Fusion_obs.Metrics.with_registry registry (fun () ->
                 let config =
                   { Mediator.Config.default with Mediator.Config.algo; runtime }
                 in
                 let slow_log =
                   Option.map
                     (fun t -> Fusion_serve.Slow_log.create ~threshold:t ())
                     slow_threshold
                 in
                 let srv =
                   Mediator.Server.create ~config ~policy ~max_inflight ?cache_ttl
                     ~versioned_cache ?window ?slow_log mediator
                 in
                 let prng = Fusion_stats.Prng.create seed in
                 let schema = Mediator.schema mediator in
                 let attrs =
                   List.filter_map
                     (fun (a, ty) ->
                       if a <> Fusion_data.Schema.merge schema && ty = Fusion_data.Value.Tint
                       then Some a
                       else None)
                     (Fusion_data.Schema.attrs schema)
                   |> Array.of_list
                 in
                 if Array.length attrs = 0 then Error "schema has no integer attributes"
                 else begin
                   (* Random conjunctive queries: 1-3 range conditions on
                      integer attributes, thresholds over the generator's
                      default domain. *)
                   let random_query () =
                     let m = 1 + Fusion_stats.Prng.int prng 3 in
                     let conds =
                       List.init m (fun _ ->
                           let attr = Fusion_stats.Prng.pick prng attrs in
                           let threshold = Fusion_stats.Prng.int prng 1000 in
                           Fusion_cond.Cond.Cmp
                             (attr, Fusion_cond.Cond.Lt, Fusion_data.Value.Int threshold))
                     in
                     Fusion_query.Query.create_exn conds
                   in
                   let real = Fusion_rt.Runtime.is_real (Mediator.Server.runtime srv) in
                   if real then
                     Format.printf
                       "(domains runtime: Poisson pacing is simulator-only, all \
                        arrivals are immediate)@.";
                   let at = ref 0.0 in
                   let submit_errors = ref 0 in
                   for i = 0 to queries - 1 do
                     at := !at +. Fusion_stats.Prng.exponential prng rate;
                     let tenant = Printf.sprintf "t%d" ((i mod tenants) + 1) in
                     let priority = i mod tenants in
                     match
                       Mediator.Server.submit srv
                         ~at:(if real then 0.0 else !at)
                         ~tenant ~priority ?deadline (random_query ())
                     with
                     | Ok _ -> ()
                     | Error _ -> incr submit_errors
                   done;
                   Mediator.Server.drain srv;
                   let s = Mediator.Server.stats srv in
                   let server = Mediator.Server.serve srv in
                   let makespan = Serve.now server in
                   Format.printf "policy %s: %d queries over %d tenants, makespan %.1f@."
                     (Serve.policy_name policy) queries tenants makespan;
                   if !submit_errors > 0 then
                     Format.printf "(%d submissions rejected before admission)@."
                       !submit_errors;
                   Format.printf "%-8s %9s %9s %5s %9s %8s %8s@." "tenant" "submitted"
                     "completed" "shed" "goodput" "p50" "p99";
                   List.iter
                     (fun (name, ts) ->
                       let p =
                         Fusion_obs.Summary.latency_percentiles ts.Serve.ts_summary
                       in
                       Format.printf "%-8s %9d %9d %5d %9.4f %8.1f %8.1f@." name
                         ts.Serve.ts_submitted ts.Serve.ts_completed ts.Serve.ts_shed
                         (if makespan > 0.0 then
                            float_of_int ts.Serve.ts_completed /. makespan
                          else 0.0)
                         p.Fusion_obs.Summary.p50 p.Fusion_obs.Summary.p99)
                     (Serve.tenants server);
                   let shed_rate =
                     if s.Serve.submitted > 0 then
                       float_of_int s.Serve.shed /. float_of_int s.Serve.submitted
                     else 0.0
                   in
                   Format.printf "shed rate: %.1f%%@." (100.0 *. shed_rate);
                   Format.printf "answer cache: %a@." Fusion_plan.Answer_cache.pp_stats
                     (Serve.cache_stats server);
                   (match slow_log with
                   | None -> ()
                   | Some l ->
                     let module Sl = Fusion_serve.Slow_log in
                     Format.printf "slow queries (> %gs response): %d recorded@."
                       (Sl.threshold l) (Sl.recorded l);
                     List.iter
                       (fun e -> Format.printf "  %a@." Sl.pp_entry e)
                       (Sl.entries l));
                   Format.printf "%a@." Serve.pp_stats s;
                   if gantt then begin
                     let sources = Mediator.sources mediator in
                     let server_name j =
                       if j >= 0 && j < Array.length sources then
                         Fusion_source.Source.name sources.(j)
                       else Printf.sprintf "R%d" (j + 1)
                     in
                     Format.printf "%a@."
                       (Fusion_net.Sim.pp_gantt ?width:None ~server_name)
                       (Serve.timeline server)
                   end;
                   (match prom with
                   | Some path ->
                     Fusion_obs.Prom.write_file path
                       (Fusion_obs.Metrics.snapshot registry);
                     Format.eprintf "metrics written to %s@." path
                   | None -> ());
                   if real then
                     print_calibration
                       (Fusion_rt.Runtime.observations (Mediator.Server.runtime srv));
                   Mediator.Server.shutdown srv;
                   Ok ()
                 end)))
  in
  let doc = "serve a stream of fusion queries on one shared network" in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const action $ location_term $ queries_arg $ rate_arg $ seed_arg $ policy_arg
          $ tenants_arg $ cache_ttl_arg $ versioned_cache_arg $ max_inflight_arg
          $ deadline_arg $ prom_arg $ gantt_arg $ runtime_arg $ listen_arg
          $ admin_arg $ window_arg $ slow_threshold_arg $ algo_arg $ verbose_arg)

(* --- client -------------------------------------------------------------- *)

(* The counterpart of serve --listen: send SQL statements (positional
   arguments, or stdin lines when none are given) to a running TCP
   front end and print its response lines. *)
let client_cmd =
  let module Tcp = Fusion_mediator.Tcp_front in
  let connect_arg =
    let doc = "Address of a running 'fqcli serve --listen' front end." in
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let sqls_arg =
    let doc = "SQL statements to send, one response line each (stdin when omitted)." in
    Arg.(value & pos_all string [] & info [] ~docv:"SQL" ~doc)
  in
  let retries_arg =
    let doc = "Connection attempts (100 ms apart) before giving up." in
    Arg.(value & opt int 50 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let action connect sqls retries verbose =
    setup_logs verbose;
    report_result
      (let* addr = Tcp.sockaddr_of_string connect in
       let statements =
         if sqls <> [] then sqls
         else In_channel.input_lines In_channel.stdin
              |> List.map String.trim
              |> List.filter (fun l -> l <> "")
       in
       if statements = [] then Error "nothing to send: pass SQL statements or pipe them in"
       else
         let* responses = Tcp.client ~retries ~connect:addr statements in
         List.iter print_endline responses;
         Ok ())
  in
  let doc = "send fusion queries to a TCP serving front end" in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const action $ connect_arg $ sqls_arg $ retries_arg $ verbose_arg)

(* --- watch ---------------------------------------------------------------- *)

(* The streaming counterpart of client: subscribe one fusion SQL
   statement as a standing query and print the server's lines as they
   arrive — the initial answer, then one push line per answer diff. *)
let watch_cmd =
  let module Tcp = Fusion_mediator.Tcp_front in
  let connect_arg =
    let doc = "Address of a running 'fqcli serve --listen' front end." in
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let sql_arg =
    let doc = "The fusion SQL statement to subscribe." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL" ~doc)
  in
  let pushes_arg =
    let doc =
      "Exit successfully after this many push lines (0: stream until the \
       connection closes)."
    in
    Arg.(value & opt int 0 & info [ "pushes" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc = "Connection attempts (100 ms apart) before giving up." in
    Arg.(value & opt int 50 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let action connect sql pushes retries verbose =
    setup_logs verbose;
    report_result
      (let* addr = Tcp.sockaddr_of_string connect in
       if pushes < 0 then Error "--pushes must be non-negative"
       else
         Tcp.watch ~retries ~pushes ~connect:addr
           ~on_line:(fun line ->
             print_endline line;
             flush stdout)
           sql)
  in
  let doc = "subscribe a standing fusion query and stream its answer diffs" in
  Cmd.v (Cmd.info "watch" ~doc)
    Term.(const action $ connect_arg $ sql_arg $ pushes_arg $ retries_arg
          $ verbose_arg)

(* --- top ------------------------------------------------------------------ *)

(* A polling terminal view over a running front end's /statusz: the
   serving counters, scheduler/pool introspection and per-tenant
   sliding-window percentiles, refreshed every --interval seconds. *)
let top_cmd =
  let module Tcp = Fusion_mediator.Tcp_front in
  let module Admin = Fusion_mediator.Admin_front in
  let module Json = Fusion_obs.Json in
  let connect_arg =
    let doc = "Admin address of a running 'fqcli serve --listen --admin' front end." in
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"HOST:PORT" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between refreshes." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SECS" ~doc)
  in
  let iterations_arg =
    let doc = "Stop after this many refreshes (0: until interrupted or the \
               server goes away)." in
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N" ~doc)
  in
  let raw_arg =
    let doc = "Print the raw /statusz JSON instead of the rendered view (for \
               scripts and CI)." in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  (* Total accessors: a missing or mistyped field renders as 0/"?"
     rather than failing the whole view — the server may be older or
     newer than this client. *)
  let fld j name = Option.value ~default:Json.Null (Json.member name j) in
  let inum j name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int) in
  let fnum j name = Option.value ~default:0.0 (Option.bind (Json.member name j) Json.to_float) in
  let snum j name = Option.value ~default:"?" (Option.bind (Json.member name j) Json.to_str) in
  let render j =
    Format.printf "uptime %.0fs  runtime %s  policy %s  window %gs@."
      (fnum j "uptime_seconds") (snum j "runtime") (snum j "policy")
      (fnum j "window_span_seconds");
    Format.printf "front end: %d connections, %d received, %d rejected@."
      (inum j "connections") (inum j "received") (inum j "rejected");
    let st = fld j "stats" and sbr = fld j "shed_by_reason" in
    Format.printf
      "queries: %d submitted  %d queued  %d in-flight  %d completed  %d shed \
       (queue-full %d, deadline %d)@."
      (inum st "submitted") (inum st "queued") (inum st "in_flight")
      (inum st "completed") (inum st "shed") (inum sbr "queue_full")
      (inum sbr "deadline_unmeetable");
    (match fld j "pool" with
    | Json.Obj _ as p ->
      Format.printf
        "pool: %d domains, %d/%d lanes busy, %d queued (high water %d), %d executed@."
        (inum p "domains") (inum p "busy_lanes") (inum p "lanes")
        (inum p "queued_jobs") (inum p "queue_high_water") (inum p "executed")
    | _ -> ());
    (match fld j "scheduler" with
    | Json.Obj _ as sc ->
      Format.printf
        "scheduler: %d fibres (run queue %d, sleeping %d, io %d, external %d), \
         %d polls, %.3fs poll wait@."
        (inum sc "fibres_live") (inum sc "run_queue") (inum sc "sleepers")
        (inum sc "io_waiting") (inum sc "ext_pending") (inum sc "polls")
        (fnum sc "poll_wait_seconds")
    | _ -> ());
    let c = fld j "cache" in
    Format.printf "cache: %d lookups, %d coalesced, %d replayed, %d expired@."
      (inum c "lookups") (inum c "inflight_hits") (inum c "cached_hits")
      (inum c "expirations");
    (match fld j "tenants" with
    | Json.List (_ :: _ as ts) ->
      Format.printf "%-10s %9s %5s %8s %8s %8s %8s@." "tenant" "completed" "shed"
        "win_n" "p50" "p90" "p99";
      List.iter
        (fun t ->
          let w = fld t "window" in
          Format.printf "%-10s %9d %5d %8d %8.3f %8.3f %8.3f@." (snum t "tenant")
            (inum t "completed") (inum t "shed") (inum w "n") (fnum w "p50")
            (fnum w "p90") (fnum w "p99"))
        ts
    | _ -> ());
    (match fld j "slow_queries" with
    | Json.Obj _ as sq ->
      Format.printf "slow queries (> %gs): %d recorded@." (fnum sq "threshold")
        (inum sq "recorded");
      (match fld sq "entries" with
      | Json.List entries ->
        List.iteri
          (fun i e ->
            if i < 5 then
              let label = snum e "label" in
              let label =
                if String.length label > 48 then String.sub label 0 45 ^ "..."
                else label
              in
              Format.printf "  id=%d %s %.3fs [%s] %s@." (inum e "id")
                (snum e "tenant") (fnum e "response") (snum e "plan_shape") label)
          entries
      | _ -> ())
    | _ -> ());
    Format.printf "@."
  in
  let action connect interval iterations raw verbose =
    setup_logs verbose;
    report_result
      (let* addr = Tcp.sockaddr_of_string connect in
       if interval <= 0.0 then Error "--interval must be positive"
       else if iterations < 0 then Error "--iterations must be non-negative"
       else
         let clear = (not raw) && Unix.isatty Unix.stdout in
         let rec loop k =
           if iterations > 0 && k > iterations then Ok ()
           else
             (* Retry only the first dial: once we have seen the server,
                a refused connection means it is gone. *)
             let* status, body =
               Admin.http_get ~retries:(if k = 1 then 50 else 0) ~connect:addr
                 "/statusz"
             in
             if status <> 200 then
               Error (Printf.sprintf "/statusz returned HTTP %d" status)
             else
               let* () =
                 if raw then begin
                   print_string body;
                   if not (String.length body > 0 && body.[String.length body - 1] = '\n')
                   then print_newline ();
                   Ok ()
                 end
                 else
                   let* j = Json.of_string (String.trim body) in
                   if clear then print_string "\027[H\027[2J";
                   render j;
                   Ok ()
               in
               if iterations > 0 && k = iterations then Ok ()
               else begin
                 Unix.sleepf interval;
                 loop (k + 1)
               end
         in
         loop 1)
  in
  let doc = "live view of a serving front end's /statusz" in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(const action $ connect_arg $ interval_arg $ iterations_arg $ raw_arg
          $ verbose_arg)

let main_cmd =
  let doc = "fusion queries over (simulated) Internet databases" in
  let info = Cmd.info "fqcli" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ gen_cmd; run_cmd; explain_cmd; compare_cmd; profile_cmd; trace_cmd; shell_cmd;
      serve_cmd; client_cmd; watch_cmd; top_cmd ]

let () = exit (Cmd.eval' main_cmd)
