examples/session.mli:
