examples/bibsearch.mli:
