examples/session.ml: Adaptive Array Exec Explain Format Fusion_core Fusion_data Fusion_mediator Fusion_plan Fusion_query Fusion_source Fusion_workload Item_set List Opt_env Optimized Optimizer
