examples/parallel.ml: Adaptive Algorithms Array Exec Format Fusion_core Fusion_net Fusion_plan Fusion_source Fusion_workload Opt_env Optimized Parallel_exec Response_opt
