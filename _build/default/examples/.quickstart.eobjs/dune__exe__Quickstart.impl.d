examples/quickstart.ml: Array Format Fusion_core Fusion_mediator Fusion_workload List Optimizer
