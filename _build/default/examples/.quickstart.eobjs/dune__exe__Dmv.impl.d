examples/dmv.ml: Array Capability Format Fusion_core Fusion_data Fusion_mediator Fusion_plan Fusion_source Fusion_stats Item_set List Optimized Optimizer Printf Relation Schema Source Tuple Value
