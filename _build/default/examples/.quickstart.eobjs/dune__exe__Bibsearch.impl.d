examples/bibsearch.ml: Array Format Fusion_core Fusion_data Fusion_mediator Fusion_net Fusion_query Fusion_source Fusion_stats Item_set List Optimizer Printf Relation Schema Source Tuple Value
