examples/dmv.mli:
