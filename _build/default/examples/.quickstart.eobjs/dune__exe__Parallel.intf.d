examples/parallel.mli:
