examples/tsimmis.ml: Csv_io Format Fusion_core Fusion_data Fusion_mediator Fusion_oem Fusion_source Item_set List Optimizer Relation Result Schema Value
