examples/quickstart.mli:
