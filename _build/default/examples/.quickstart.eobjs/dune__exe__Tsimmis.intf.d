examples/tsimmis.mli:
