examples/heterogeneous.mli:
