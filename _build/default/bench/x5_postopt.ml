(* X5 — Section 4 / Figure 5: what the SJA+ postoptimizations buy.

   Ablation over three scenarios engineered to favor each rewrite:
     - "emulated sjq": semijoins must be emulated per item, so every
       candidate pruned by the difference operation saves a whole
       point query;
     - "native sjq": pruning only saves per-item transfer;
     - "tiny sources": loading a source outright beats querying it
       m times.
   Columns: plain SJA, SJA + difference pruning, SJA + loading, full
   SJA+ (both). *)

open Fusion_core
module Workload = Fusion_workload.Workload

let base =
  {
    Workload.default_spec with
    Workload.n_sources = 8;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    seed = 0;
  }

let scenarios =
  [
    ( "native sjq",
      base );
    ( "emulated sjq",
      { base with Workload.heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 1.0 } } );
    ( "half emulated",
      { base with Workload.heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.5 } } );
    ( "tiny sources",
      { base with Workload.universe = 300; tuples_per_source = (4, 10); selectivities = [| 0.3; 0.4; 0.5 |] } );
  ]

let mean spec variant =
  let total =
    List.fold_left
      (fun acc seed ->
        let instance = Workload.generate { spec with Workload.seed = seed } in
        let env = Runner.env_of instance in
        let sja = Algorithms.sja env in
        let optimized =
          match variant with
          | `Sja -> sja
          | `Diff -> Postopt.prune_with_difference env sja
          | `Diff_ranked ->
            Postopt.prune_with_difference ~order:Postopt.By_confirmation env sja
          | `Load -> Postopt.load_sources env sja
          | `Both -> Postopt.load_sources env (Postopt.prune_with_difference env sja)
        in
        acc +. Runner.actual_cost instance optimized.Optimized.plan)
      0.0 Runner.seeds
  in
  total /. float_of_int (List.length Runner.seeds)

let run () =
  let rows =
    List.map
      (fun (name, spec) ->
        let sja = mean spec `Sja in
        let diff = mean spec `Diff in
        let ranked = mean spec `Diff_ranked in
        let load = mean spec `Load in
        let both = mean spec `Both in
        [
          name;
          Tables.f1 sja;
          Tables.f1 diff;
          Tables.f1 ranked;
          Tables.f1 load;
          Tables.f1 both;
          Tables.ratio sja both;
        ])
      scenarios
  in
  Tables.print
    ~title:"X5: postoptimization ablation — actual cost (mean of 3 seeds)"
    ~header:
      [ "scenario"; "sja"; "+diff"; "+diff ranked"; "+loading"; "sja+ (both)"; "sja/sja+" ]
    rows
