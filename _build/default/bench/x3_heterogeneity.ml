(* X3 — ablation D1: per-source adaptivity under heterogeneous
   capabilities.

   Sweep the fraction of sources without native semijoin support. SJ
   must choose one strategy per round for all sources, so emulated
   semijoins at a few sources poison the whole round (or force it back
   to selections); SJA mixes strategies and should pull ahead as the
   mix becomes more uneven. At 0% and 100% the two coincide more often. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec fraction =
  {
    Workload.default_spec with
    Workload.n_sources = 10;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    heterogeneity = { Workload.homogeneous with Workload.no_semijoin = fraction };
    seed = 0;
  }

let run () =
  let rows =
    List.map
      (fun fraction ->
        let sj = Runner.mean_over_seeds (spec fraction) Runner.seeds Optimizer.Sj in
        let sja = Runner.mean_over_seeds (spec fraction) Runner.seeds Optimizer.Sja in
        [
          Printf.sprintf "%.0f%%" (100.0 *. fraction);
          Tables.f1 sj;
          Tables.f1 sja;
          Tables.ratio sj sja;
        ])
      [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
  in
  Tables.print
    ~title:"X3: SJ vs SJA as sources lose native semijoin support (n=10, mean of 3 seeds)"
    ~header:[ "no-sjq sources"; "sj"; "sja"; "sj/sja" ]
    rows
