(* X7 — Section 3's optimality conditions, verified empirically.

   The paper (via [24]) proves the best semijoin-adaptive plan is the
   best simple plan when m = 2 or when conditions are independent. We
   (a) confirm SJA's estimated cost equals the brute-force optimum of
   its plan space on tiny instances, and (b) measure how far SJA's
   plan is from the best *actual* execution cost in that space as
   condition correlation grows — the regime where the independence
   assumption inside the estimator goes wrong and SJA degrades into
   (the paper's words) "as good a guess as we can make". *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec ~m ~correlation seed =
  {
    Workload.default_spec with
    Workload.n_sources = 3;
    universe = 300;
    tuples_per_source = (60, 100);
    selectivities = Array.init m (fun i -> 0.1 +. (0.15 *. float_of_int i));
    correlation;
    seed;
  }

let seeds = [ 11; 22; 33; 44; 55 ]

let run () =
  (* (a) estimated-cost optimality within the space *)
  let est_rows =
    List.map
      (fun m ->
        let matches =
          List.length
            (List.filter
               (fun seed ->
                 let instance = Workload.generate (spec ~m ~correlation:0.0 seed) in
                 let env = Runner.env_of instance in
                 let sja = Algorithms.sja env in
                 let _, best = Brute.best_estimated env in
                 Float.abs (sja.Optimized.est_cost -. best) <= 1e-6)
               seeds)
        in
        [ Tables.i m; Printf.sprintf "%d/%d" matches (List.length seeds) ])
      [ 1; 2; 3 ]
  in
  Tables.print
    ~title:"X7a: SJA matches the brute-force estimated optimum of its space (n=3)"
    ~header:[ "m"; "exact matches" ] est_rows;
  (* (b) actual-cost regret vs correlation *)
  let actual_rows =
    List.map
      (fun correlation ->
        let regrets =
          List.map
            (fun seed ->
              let instance = Workload.generate (spec ~m:3 ~correlation seed) in
              let env = Runner.env_of instance in
              let sja = Algorithms.sja env in
              let sja_actual = Runner.actual_cost instance sja.Optimized.plan in
              let _, best_actual = Brute.best_actual env in
              if best_actual = 0.0 then 1.0 else sja_actual /. best_actual)
            seeds
        in
        let mean = List.fold_left ( +. ) 0.0 regrets /. float_of_int (List.length regrets) in
        let worst = List.fold_left Float.max 0.0 regrets in
        [ Tables.f2 correlation; Tables.f3 mean; Tables.f3 worst ])
      [ 0.0; 0.5; 1.0 ]
  in
  Tables.print
    ~title:
      "X7b: SJA actual cost / best-in-space actual cost vs condition correlation (m=3, n=3)"
    ~header:[ "correlation"; "mean regret"; "worst regret" ]
    actual_rows
