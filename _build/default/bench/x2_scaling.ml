(* X2 — cost vs number of sources: the paper's central dominance claim.

   For n ∈ {2..64} sources (m = 3, mixed selectivities, mild
   heterogeneity), measure the actual execution cost of each
   algorithm's plan, averaged over seeds. Expected shape: SJA+ ⩽ SJA ⩽
   SJ ⩽ FILTER.

   Two overlap regimes:
   - "disjointish": a large universe, so sources contribute mostly
     different entities and the candidate set |X_1| grows with n —
     semijoins eventually stop paying and the algorithms converge
     (a saturation the cost model predicts);
   - "overlapping": a bounded universe with Zipf-popular entities (the
     paper's motivating world, where the same drivers show up in many
     states), keeping |X_1| small so the semijoin advantage persists at
     large n. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec ~overlapping n =
  {
    Workload.default_spec with
    Workload.n_sources = n;
    universe = (if overlapping then 1200 else 4000);
    item_skew = (if overlapping then 1.1 else 0.0);
    entity_correlation = (if overlapping then 0.9 else 0.0);
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.3 };
    seed = 0;
  }

let algos = [ Optimizer.Filter; Optimizer.Sj; Optimizer.Sja; Optimizer.Sja_plus ]

let table ~overlapping title =
  let rows =
    List.map
      (fun n ->
        let costs =
          List.map (Runner.mean_over_seeds (spec ~overlapping n) Runner.seeds) algos
        in
        let filter_cost = List.nth costs 0 in
        let sja_plus = List.nth costs 3 in
        (Tables.i n :: List.map Tables.f1 costs) @ [ Tables.ratio filter_cost sja_plus ])
      [ 2; 4; 8; 16; 32; 64 ]
  in
  Tables.print ~title ~header:[ "n"; "filter"; "sj"; "sja"; "sja+"; "filter/sja+" ] rows

let run () =
  table ~overlapping:false
    "X2a: actual cost vs n — disjointish sources (universe 4000, mean of 3 seeds)";
  table ~overlapping:true
    "X2b: actual cost vs n — overlapping Zipf sources (universe 1200, mean of 3 seeds)"
