(* X8 — the two-phase approach of Section 1, quantified.

   Phase 1 computes the matching items over bare merge-attribute values;
   phase 2 fetches the full records of the answers only. The naive
   single-phase strategy ships full records for every intermediate
   match. The wider the records (per-tuple transfer cost), the more the
   split saves — this is the paper's bibliographic-search argument. *)

open Fusion_source
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator

let instance_with_tuple_width width seed =
  let base =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        universe = 4000;
        tuples_per_source = (400, 700);
        selectivities = [| 0.05; 0.3 |];
        seed;
      }
  in
  let widened =
    Array.map
      (fun s ->
        Source.create
          ~capability:(Source.capability s)
          ~profile:(Fusion_net.Profile.make ~recv_per_tuple:width ())
          (Source.relation s))
      base.Workload.sources
  in
  { base with Workload.sources = widened }

let run () =
  let rows =
    List.map
      (fun width ->
        let totals =
          List.map
            (fun seed ->
              let instance = instance_with_tuple_width width seed in
              let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
              match Mediator.two_phase mediator instance.Workload.query with
              | Error msg -> failwith msg
              | Ok (report, records) ->
                let two = report.Mediator.actual_cost +. records.Mediator.fetch_cost in
                let single = Mediator.single_phase_cost mediator instance.Workload.query in
                (two, single))
            Runner.seeds
        in
        let k = float_of_int (List.length totals) in
        let two = List.fold_left (fun acc (t, _) -> acc +. t) 0.0 totals /. k in
        let single = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 totals /. k in
        [ Tables.f1 width; Tables.f1 two; Tables.f1 single; Tables.ratio single two ])
      [ 2.0; 8.0; 32.0; 128.0 ]
  in
  Tables.print
    ~title:"X8: two-phase vs single-phase total cost vs record width (mean of 3 seeds)"
    ~header:[ "tuple width"; "two-phase"; "single-phase"; "single/two" ]
    rows
