(* Shared machinery for the experiments: build instances, optimize,
   execute, and collect actual costs. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let env_of ?stats (instance : Workload.instance) =
  Opt_env.create ?stats ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let execute (instance : Workload.instance) plan =
  Array.iter Fusion_source.Source.reset_meter instance.Workload.sources;
  Fusion_plan.Exec.run ~sources:instance.Workload.sources
    ~conds:(Fusion_query.Query.conditions instance.Workload.query)
    plan

let actual_cost instance plan = (execute instance plan).Fusion_plan.Exec.total_cost

let run_algo ?stats instance algo =
  let env = env_of ?stats instance in
  let optimized = Optimizer.optimize algo env in
  (optimized, actual_cost instance optimized.Optimized.plan)

(* Mean actual cost over several seeds of the same spec. *)
let mean_over_seeds ?stats spec seeds algo =
  let total =
    List.fold_left
      (fun acc seed ->
        let instance = Workload.generate { spec with Workload.seed } in
        acc +. snd (run_algo ?stats instance algo))
      0.0 seeds
  in
  total /. float_of_int (List.length seeds)

let seeds = [ 101; 202; 303 ]

(* Wall-clock timing (median of [runs]) for the optimizer-complexity
   experiment; Bechamel handles the fine-grained version. *)
let time_median ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)
