(* X10 — extension: total work vs response time (the paper's Section 6
   future work).

   Under the parallel execution model every selection starts at time
   zero while semijoins wait for their input round. Filter plans finish
   in one network round trip; semijoin plans serialize rounds to save
   transfer. We measure both metrics for the work-optimal plans
   (FILTER/SJ/SJA) and the response-time optimizer (SJA-RT), in a world
   with one slow mirror that stretches the critical path. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source

let instance_with_slow_mirror seed =
  let base =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        universe = 4000;
        tuples_per_source = (400, 700);
        selectivities = [| 0.02; 0.3; 0.4 |];
        seed;
      }
  in
  let sources =
    Array.mapi
      (fun j s ->
        if j = 0 then
          Source.create
            ~capability:(Source.capability s)
            ~profile:(Fusion_net.Profile.scale 5.0 (Source.profile s))
            (Source.relation s)
        else s)
      base.Workload.sources
  in
  { base with Workload.sources = sources }

let measure instance optimized =
  let result = Runner.execute instance optimized.Optimized.plan in
  let n = Array.length instance.Workload.sources in
  let response =
    match Response_time.of_result ~n optimized.Optimized.plan result with
    | Some r -> r
    | None -> Response_time.sequential result
  in
  (* The discrete-event simulator adds per-source serialization: an
     autonomous source answers one query at a time. *)
  let serialized =
    Parallel_exec.makespan ~serialize_sources:true ~n optimized.Optimized.plan result
  in
  (result.Exec.total_cost, response, serialized)

let run () =
  let strategies =
    [
      ("filter", fun env -> Algorithms.filter env);
      ("sj", fun env -> Algorithms.sj env);
      ("sja", fun env -> Algorithms.sja env);
      ("sja-rt", fun env -> Response_opt.sja_rt env);
    ]
  in
  let rows =
    List.map
      (fun (name, optimize) ->
        let work = ref 0.0 and response = ref 0.0 and serialized = ref 0.0 in
        List.iter
          (fun seed ->
            let instance = instance_with_slow_mirror seed in
            let env = Runner.env_of instance in
            let w, r, s = measure instance (optimize env) in
            work := !work +. w;
            response := !response +. r;
            serialized := !serialized +. s)
          Runner.seeds;
        let k = float_of_int (List.length Runner.seeds) in
        [
          name;
          Tables.f1 (!work /. k);
          Tables.f1 (!response /. k);
          Tables.f1 (!serialized /. k);
        ])
      strategies
  in
  (* The adaptive runtime (X9) as a comparison point: least work, but
     feedback and pruning serialize its execution. *)
  let adaptive_row =
    let work = ref 0.0 and response = ref 0.0 in
    List.iter
      (fun seed ->
        let instance = instance_with_slow_mirror seed in
        let env = Runner.env_of instance in
        let result = Adaptive.run env in
        work := !work +. result.Adaptive.total_cost;
        response := !response +. result.Adaptive.response_time)
      Runner.seeds;
    let k = float_of_int (List.length Runner.seeds) in
    [ "adaptive"; Tables.f1 (!work /. k); Tables.f1 (!response /. k);
      Tables.f1 (!response /. k) ]
  in
  Tables.print
    ~title:
      "X10: total work vs parallel response time, slow-mirror world (mean of 3 seeds)"
    ~header:[ "plan"; "total work"; "resp (inf conc)"; "resp (1-at-a-time)" ]
    (rows @ [ adaptive_row ])
