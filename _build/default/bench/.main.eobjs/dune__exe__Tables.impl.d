bench/tables.ml: Char Filename List Out_channel Printf String Sys
