bench/runner.ml: Array Fusion_core Fusion_plan Fusion_query Fusion_source Fusion_workload List Opt_env Optimized Optimizer Unix
