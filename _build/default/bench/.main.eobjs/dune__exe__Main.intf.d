bench/main.mli:
