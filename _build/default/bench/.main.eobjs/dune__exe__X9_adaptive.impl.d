bench/x9_adaptive.ml: Adaptive Fusion_core Fusion_workload List Optimizer Runner Tables
