bench/x7b_stats.ml: Float Fusion_core Fusion_stats Fusion_workload List Opt_env Optimizer Runner Tables
