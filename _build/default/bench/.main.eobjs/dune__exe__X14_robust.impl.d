bench/x14_robust.ml: Algorithms Array Fusion_core Fusion_data Fusion_plan Fusion_source Fusion_stats Fusion_workload List Opt_env Optimized Printf Relation Robust Runner Tables Tuple Value
