bench/x2_scaling.ml: Fusion_core Fusion_workload List Optimizer Runner Tables
