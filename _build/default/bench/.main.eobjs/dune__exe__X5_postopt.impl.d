bench/x5_postopt.ml: Algorithms Fusion_core Fusion_workload List Optimized Postopt Runner Tables
