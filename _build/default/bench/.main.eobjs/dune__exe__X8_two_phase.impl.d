bench/x8_two_phase.ml: Array Fusion_mediator Fusion_net Fusion_source Fusion_workload List Runner Source Tables
