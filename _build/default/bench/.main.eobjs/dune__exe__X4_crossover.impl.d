bench/x4_crossover.ml: Fusion_core Fusion_plan Fusion_workload List Op Optimized Optimizer Plan Runner Tables
