bench/x3_heterogeneity.ml: Fusion_core Fusion_workload List Optimizer Printf Runner Tables
