bench/x13_faults.ml: Array Exec Fusion_core Fusion_data Fusion_plan Fusion_query Fusion_source Fusion_stats Fusion_workload List Optimized Optimizer Printf Reference Runner Tables
