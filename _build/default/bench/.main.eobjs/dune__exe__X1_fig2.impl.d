bench/x1_fig2.ml: Array Builder Exec Format Fusion_core Fusion_data Fusion_mediator Fusion_plan Fusion_query Fusion_workload List Opt_env Optimizer Plan Plan_cost Printf Runner Tables
