bench/x7_optimality.ml: Algorithms Array Brute Float Fusion_core Fusion_workload List Optimized Printf Runner Tables
