bench/x12_calibration.ml: Array Float Fusion_core Fusion_cost Fusion_net Fusion_query Fusion_source Fusion_stats Fusion_workload List Opt_env Optimized Optimizer Runner Source Tables
