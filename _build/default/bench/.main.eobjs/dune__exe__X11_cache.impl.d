bench/x11_cache.ml: Array Cond Fusion_cond Fusion_core Fusion_data Fusion_mediator Fusion_plan Fusion_query Fusion_stats Fusion_workload List Optimizer Runner Tables Value
