bench/x10_response.ml: Adaptive Algorithms Array Exec Fusion_core Fusion_net Fusion_plan Fusion_source Fusion_workload List Optimized Parallel_exec Response_opt Response_time Runner Tables
