(* X7c — ablation D5: oracle vs sampled statistics.

   The optimizers only see the world through sq_cost/sjq_cost, which in
   turn depend on per-source selectivity estimates (the paper points to
   sampling techniques [25]). We compare the actual execution cost of
   SJA plans optimized with exact statistics against plans optimized
   from per-source samples of decreasing size. Regret = sampled-plan
   cost / exact-plan cost. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec seed =
  {
    Workload.default_spec with
    Workload.n_sources = 8;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    seed;
  }

let seeds = [ 7; 17; 27; 37; 47 ]

let regret stats seed =
  let instance = Workload.generate (spec seed) in
  let _, exact_cost = Runner.run_algo instance Optimizer.Sja in
  let _, approx_cost = Runner.run_algo ~stats instance Optimizer.Sja in
  if exact_cost = 0.0 then 1.0 else approx_cost /. exact_cost

let providers seed =
  [
    ("sample 10", Opt_env.Sampled (10, Fusion_stats.Prng.create (seed * 31)));
    ("sample 25", Opt_env.Sampled (25, Fusion_stats.Prng.create (seed * 31)));
    ("sample 100", Opt_env.Sampled (100, Fusion_stats.Prng.create (seed * 31)));
    ("histogram 5", Opt_env.Histogram 5);
    ("histogram 20", Opt_env.Histogram 20);
  ]

let run () =
  let names = List.map fst (providers 0) in
  let rows =
    List.map
      (fun name ->
        let regrets =
          List.map
            (fun seed -> regret (List.assoc name (providers seed)) seed)
            seeds
        in
        let mean = List.fold_left ( +. ) 0.0 regrets /. float_of_int (List.length regrets) in
        let worst = List.fold_left Float.max 0.0 regrets in
        [ name; Tables.f3 mean; Tables.f3 worst ])
      names
  in
  Tables.print
    ~title:"X7c: plan regret with approximate statistics vs the exact oracle (SJA, 5 seeds)"
    ~header:[ "statistics"; "mean regret"; "worst regret" ]
    rows
