(* X4 — the selection/semijoin crossover (Section 2.5 discussion).

   Semijoins pay off only when the candidate set is small relative to
   what a selection would return. Sweeping the first condition's
   selectivity moves |X_1| across that tradeoff: at some point SJA
   stops issuing semijoins for the later conditions and the FILTER and
   SJA costs converge. The table reports the costs and how many
   semijoin queries SJA's plan contains. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let spec sel1 =
  {
    Workload.default_spec with
    Workload.n_sources = 8;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| sel1; 0.3; 0.4 |];
    seed = 0;
  }

let semijoin_count plan =
  List.length
    (List.filter (fun op -> match op with Op.Semijoin _ -> true | _ -> false) (Plan.ops plan))

let run () =
  let rows =
    List.map
      (fun sel1 ->
        let instance = Workload.generate { (spec sel1) with Workload.seed = 101 } in
        let sja, sja_cost = Runner.run_algo instance Optimizer.Sja in
        let _, filter_cost = Runner.run_algo instance Optimizer.Filter in
        [
          Tables.f3 sel1;
          Tables.f1 filter_cost;
          Tables.f1 sja_cost;
          Tables.i (semijoin_count sja.Optimized.plan);
          Tables.ratio filter_cost sja_cost;
        ])
      [ 0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.2; 0.4 ]
  in
  Tables.print
    ~title:"X4: filter/semijoin crossover as the first condition loses selectivity (n=8)"
    ~header:[ "sel(c1)"; "filter"; "sja"; "sjq ops"; "filter/sja" ]
    rows
