(* X9 — extension: runtime feedback vs static plans.

   Static SJA commits to strategies using estimated candidate-set
   sizes; under entity-level overlap (the same entities observed by
   many sources) the independence estimate overshoots |X_i| badly and
   static plans fall back to selections. The adaptive runtime re-prices
   after every round with the actual |X_i|.

   Also shown: the early-exit case — when no entity satisfies the first
   condition anywhere, the adaptive runtime answers ∅ after one round
   and skips the rest, which no static plan can do. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec ~entity_correlation n =
  {
    Workload.default_spec with
    Workload.n_sources = n;
    universe = 1200;
    item_skew = 1.1;
    entity_correlation;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.3 };
    seed = 0;
  }

let adaptive_cost spec seed =
  let instance = Workload.generate { spec with Workload.seed = seed } in
  let env = Runner.env_of instance in
  (Adaptive.run env).Adaptive.total_cost

let mean f = List.fold_left (fun acc s -> acc +. f s) 0.0 Runner.seeds
             /. float_of_int (List.length Runner.seeds)

let run () =
  let rows =
    List.concat_map
      (fun entity_correlation ->
        List.map
          (fun n ->
            let spec = spec ~entity_correlation n in
            let sja = Runner.mean_over_seeds spec Runner.seeds Optimizer.Sja in
            let sja_plus = Runner.mean_over_seeds spec Runner.seeds Optimizer.Sja_plus in
            let adaptive = mean (adaptive_cost spec) in
            [
              Tables.f1 entity_correlation;
              Tables.i n;
              Tables.f1 sja;
              Tables.f1 sja_plus;
              Tables.f1 adaptive;
              Tables.ratio sja adaptive;
            ])
          [ 8; 32; 64 ])
      [ 0.0; 0.9 ]
  in
  Tables.print
    ~title:"X9: static plans vs the adaptive runtime (actual cost, mean of 3 seeds)"
    ~header:[ "entity corr"; "n"; "sja"; "sja+"; "adaptive"; "sja/adaptive" ]
    rows;
  (* Early exit: an impossible first condition. *)
  let impossible =
    {
      (spec ~entity_correlation:0.0 8) with
      Workload.selectivities = [| 0.0; 0.3; 0.4 |];
    }
  in
  let instance = Workload.generate { impossible with Workload.seed = 101 } in
  let env = Runner.env_of instance in
  let adaptive = Adaptive.run env in
  let _, static_cost = Runner.run_algo instance Optimizer.Sja in
  Tables.print ~title:"X9b: early exit on an empty candidate set (n=8)"
    ~header:[ "strategy"; "cost"; "rounds executed" ]
    [
      [ "static sja"; Tables.f1 static_cost; Tables.i 3 ];
      [
        "adaptive";
        Tables.f1 adaptive.Adaptive.total_cost;
        Tables.i (List.length adaptive.Adaptive.rounds);
      ];
    ]
