(* X12 — extension: cost-model calibration (Du et al. [5], which the
   paper cites for cost estimation in heterogeneous federations).

   The mediator usually does not know a source's request overhead or
   transfer rates. We compare three optimizers on a world with wildly
   heterogeneous (hidden) profiles:
     - "oracle": knows every true profile;
     - "calibrated": fits each profile from ~20 probe queries per
       source (Calibration.fit_source), then optimizes against the fit;
     - "default-blind": assumes every source has the default profile.
   All three plans execute against the TRUE sources; the probe cost of
   calibration is reported separately (it amortizes over a session). *)

open Fusion_core
open Fusion_source
module Workload = Fusion_workload.Workload
module Calibration = Fusion_cost.Calibration
module Profile = Fusion_net.Profile

(* Hide structurally heterogeneous profiles behind the sources: uniform
   scaling would leave the per-source sq-vs-sjq tradeoff unchanged, so
   each parameter varies independently — chatty links (big overhead,
   cheap items), bulk links (cheap requests, dear items), and
   everything between. *)
let hidden_world seed =
  let base =
    Workload.generate
      {
        Workload.default_spec with
        Workload.n_sources = 6;
        universe = 4000;
        tuples_per_source = (400, 700);
        selectivities = [| 0.02; 0.3; 0.4 |];
        seed;
      }
  in
  let prng = Fusion_stats.Prng.create (seed + 7) in
  let sources =
    Array.map
      (fun s ->
        let pick lo hi = lo *. Float.pow (hi /. lo) (Fusion_stats.Prng.float prng 1.0) in
        let profile =
          Profile.make ~request_overhead:(pick 10.0 500.0) ~send_per_item:(pick 0.05 5.0)
            ~recv_per_item:(pick 0.2 4.0) ~recv_per_tuple:(pick 2.0 32.0) ()
        in
        Source.create ~capability:(Source.capability s) ~profile (Source.relation s))
      base.Workload.sources
  in
  { base with Workload.sources = sources }

let with_profiles sources profiles =
  Array.map2
    (fun s p -> Source.create ~capability:(Source.capability s) ~profile:p (Source.relation s))
    sources profiles

let run () =
  let rows =
    List.map
      (fun seed ->
        let instance = hidden_world seed in
        let sources = instance.Workload.sources in
        let conds =
          Array.to_list (Fusion_query.Query.conditions instance.Workload.query)
        in
        let optimize srcs =
          let env = Opt_env.create ~universe:instance.Workload.spec.Workload.universe srcs
              instance.Workload.query in
          (Optimizer.optimize Optimizer.Sja env).Optimized.plan
        in
        let execute plan = Runner.actual_cost instance plan in
        (* Oracle. *)
        let oracle = execute (optimize sources) in
        (* Calibrated: fit each source, rebuild a "belief" copy; the
           probe traffic stays on the meters for accounting. *)
        let probe_cost = ref 0.0 in
        let fitted =
          Array.map
            (fun s ->
              let profile =
                match Calibration.fit_source s conds with
                | Ok p -> p
                | Error _ -> Profile.default
              in
              probe_cost :=
                !probe_cost +. (Source.totals s).Fusion_net.Meter.cost;
              Fusion_source.Source.reset_meter s;
              profile)
            sources
        in
        let calibrated = execute (optimize (with_profiles sources fitted)) in
        (* Blind: default profile everywhere. *)
        let blind_profiles = Array.map (fun _ -> Profile.default) sources in
        let blind = execute (optimize (with_profiles sources blind_profiles)) in
        [
          Tables.i seed;
          Tables.f1 oracle;
          Tables.f1 calibrated;
          Tables.f1 blind;
          Tables.ratio blind oracle;
          Tables.ratio calibrated oracle;
          Tables.f1 !probe_cost;
        ])
      Runner.seeds
  in
  Tables.print
    ~title:
      "X12: plan cost with oracle / calibrated / default-assumed profiles (SJA, true execution)"
    ~header:
      [ "seed"; "oracle"; "calibrated"; "blind"; "blind/oracle"; "calib/oracle"; "probe cost" ]
    rows
