(* X14 — extension: planning under estimate uncertainty.

   The optimizer's statistics are a snapshot; autonomous sources drift.
   We optimize on the snapshot, then let every source grow by a factor
   before executing — so all matching counts the optimizer believed are
   low by that factor. Compared: the nominal SJA plan, the
   worst-case-minimizing robust plan (interval uncertainty matching the
   drift), and what an oracle that saw the drifted data would have
   picked. Also shown: the predicted cost interval vs the realized
   cost of the nominal plan. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Prng = Fusion_stats.Prng

let base_spec seed =
  {
    Workload.default_spec with
    Workload.n_sources = 6;
    universe = 4000;
    tuples_per_source = (300, 500);
    selectivities = [| 0.02; 0.3; 0.4 |];
    seed;
  }

(* Append [factor]x more tuples drawn like the generator's. *)
let grow instance factor seed =
  let prng = Prng.create seed in
  Array.iter
    (fun source ->
      let relation = Fusion_source.Source.relation source in
      let schema = Relation.schema relation in
      let extra = int_of_float (float_of_int (Relation.cardinality relation) *. factor) in
      for _ = 1 to extra do
        let item = Value.String (Printf.sprintf "I%06d" (Prng.int prng 4000)) in
        let attrs = List.init 3 (fun _ -> Value.Int (Prng.int prng 1000)) in
        Relation.insert relation (Tuple.create_exn schema (item :: attrs))
      done)
    instance.Workload.sources

let run () =
  let rows =
    List.concat_map
      (fun drift ->
        List.map
          (fun seed ->
            let instance = Workload.generate (base_spec seed) in
            let env = Runner.env_of instance in
            (* Plans decided on the snapshot. *)
            let nominal = Algorithms.sja env in
            let robust = Robust.sja_robust env ~uncertainty:drift in
            let ordering, decisions =
              match
                Fusion_plan.Plan.rounds ~n:(Opt_env.n env) nominal.Optimized.plan
              with
              | Ok rs ->
                ( Array.of_list (List.map (fun r -> r.Fusion_plan.Plan.cond) rs),
                  Array.of_list (List.map (fun r -> r.Fusion_plan.Plan.actions) rs) )
              | Error msg -> failwith msg
            in
            let predicted =
              Robust.plan_cost_interval env ~uncertainty:drift ordering decisions
            in
            (* The world drifts, then both plans execute. *)
            grow instance drift (seed * 17);
            let nominal_cost = Runner.actual_cost instance nominal.Optimized.plan in
            let robust_cost = Runner.actual_cost instance robust.Optimized.plan in
            (* Hindsight: replan with fresh statistics. *)
            let oracle_env = Runner.env_of instance in
            let oracle = Algorithms.sja oracle_env in
            let oracle_cost = Runner.actual_cost instance oracle.Optimized.plan in
            [
              Printf.sprintf "%.0f%%" (100.0 *. drift);
              Tables.i seed;
              Tables.f1 nominal_cost;
              Tables.f1 robust_cost;
              Tables.f1 oracle_cost;
              Printf.sprintf "[%.0f, %.0f]" predicted.Robust.lo predicted.Robust.hi;
              (if nominal_cost <= predicted.Robust.hi +. 1e-6 then "yes" else "NO");
            ])
          Runner.seeds)
      [ 0.5; 1.0 ]
  in
  Tables.print
    ~title:
      "X14: plans under data drift — nominal vs robust vs hindsight (actual cost after growth)"
    ~header:
      [ "drift"; "seed"; "nominal"; "robust"; "hindsight"; "predicted interval"; "hi bound held" ]
    rows
