(* X6 — Section 3's complexity claims, measured.

   (a) Optimization time vs n at fixed m = 3: SJ/SJA should scale
       linearly in the number of sources (the property the paper calls
       "very important when we deal with a large number of sources").
   (b) Optimization time vs m at fixed n = 8: SJ/SJA are O(m!·m·n) —
       factorial in the (small) number of conditions — while the greedy
       variants stay essentially flat.

   Bechamel microbenchmarks for the headline points follow the tables
   (run with FUSION_BENCH_BECHAMEL=1; they take a minute). *)

open Fusion_core
module Workload = Fusion_workload.Workload

let spec ~n ~m =
  {
    Workload.default_spec with
    Workload.n_sources = n;
    universe = 2000;
    tuples_per_source = (50, 80);
    selectivities = Array.init m (fun i -> 0.05 +. (0.1 *. float_of_int i));
    seed = 7;
  }

(* Pre-warm the statistics memo so we time the search, not the scans. *)
let warmed_env instance =
  let env = Runner.env_of instance in
  Array.iter
    (fun c ->
      Array.iter
        (fun s -> ignore (env.Opt_env.model.Fusion_cost.Model.sq_cost s c))
        env.Opt_env.sources)
    env.Opt_env.conds;
  env

let time_algo env algo = Runner.time_median (fun () -> Optimizer.optimize algo env)

let run () =
  let rows_n =
    List.map
      (fun n ->
        let env = warmed_env (Workload.generate (spec ~n ~m:3)) in
        let sja = time_algo env Optimizer.Sja in
        [
          Tables.i n;
          Printf.sprintf "%.3f" (1000.0 *. time_algo env Optimizer.Sj);
          Printf.sprintf "%.3f" (1000.0 *. sja);
          Printf.sprintf "%.4f" (1_000_000.0 *. sja /. float_of_int n);
        ])
      [ 4; 16; 64; 256 ]
  in
  Tables.print ~title:"X6a: optimization time vs n (m=3; ms, median of 5)"
    ~header:[ "n"; "sj (ms)"; "sja (ms)"; "sja µs/source" ]
    rows_n;
  let rows_m =
    List.map
      (fun m ->
        let env = warmed_env (Workload.generate (spec ~n:8 ~m)) in
        [
          Tables.i m;
          Printf.sprintf "%.3f" (1000.0 *. time_algo env Optimizer.Sj);
          Printf.sprintf "%.3f" (1000.0 *. time_algo env Optimizer.Sja);
          Printf.sprintf "%.3f" (1000.0 *. time_algo env Optimizer.Greedy_sja);
        ])
      [ 2; 3; 4; 5; 6; 7 ]
  in
  Tables.print ~title:"X6b: optimization time vs m (n=8; ms, median of 5)"
    ~header:[ "m"; "sj (ms)"; "sja (ms)"; "greedy-sja (ms)" ]
    rows_m;
  (* Branch and bound: same optimum, pruned ordering tree. *)
  let rows_bb =
    List.map
      (fun m ->
        let env = warmed_env (Workload.generate (spec ~n:8 ~m)) in
        let sja_ms = 1000.0 *. time_algo env Optimizer.Sja in
        let bb_ms = 1000.0 *. Runner.time_median (fun () -> Branch_bound.sja_bb env) in
        let visited, orderings = Branch_bound.visited_orderings env in
        [
          Tables.i m;
          Printf.sprintf "%.3f" sja_ms;
          Printf.sprintf "%.3f" bb_ms;
          Printf.sprintf "%d/%d" visited orderings;
          Tables.ratio sja_ms bb_ms;
        ])
      [ 4; 5; 6; 7 ]
  in
  Tables.print
    ~title:"X6d: exhaustive SJA vs branch-and-bound (same optimum; n=8)"
    ~header:[ "m"; "sja (ms)"; "b&b (ms)"; "nodes/m!"; "speedup" ]
    rows_bb;
  (* Large m: exhaustive search is out; how close do the heuristics get?
     Reference optimum from branch-and-bound up to m = 8. *)
  let heterogeneous_spec ~m =
    {
      (spec ~n:8 ~m) with
      Workload.heterogeneity =
        { Workload.homogeneous with Workload.no_semijoin = 0.4; slow = 0.4 };
      selectivity_jitter = 0.5;
    }
  in
  let rows_heuristics =
    List.map
      (fun m ->
        let env = warmed_env (Workload.generate (heterogeneous_spec ~m)) in
        let greedy = (Optimizer.optimize Optimizer.Greedy_sja env).Fusion_core.Optimized.est_cost in
        let hill = (Iterative.sja_hill_climb env).Fusion_core.Optimized.est_cost in
        let exact, exact_label =
          if m <= 8 then ((Branch_bound.sja_bb env).Fusion_core.Optimized.est_cost, "b&b")
          else (hill, "(hill)")
        in
        let hill_ms = 1000.0 *. Runner.time_median (fun () -> Iterative.sja_hill_climb env) in
        [
          Tables.i m;
          Tables.f1 greedy;
          Tables.f1 hill;
          Printf.sprintf "%s %s" (Tables.f1 exact) exact_label;
          Tables.ratio greedy exact;
          Tables.ratio hill exact;
          Printf.sprintf "%.2f" hill_ms;
        ])
      [ 6; 8; 10; 12 ]
  in
  Tables.print
    ~title:"X6e: heuristics at large m (n=8; est. cost; exact = b&b up to m=8)"
    ~header:[ "m"; "greedy"; "hill-climb"; "exact"; "greedy/exact"; "hill/exact"; "hill ms" ]
    rows_heuristics

(* Bechamel microbenchmarks: the same measurements with statistically
   sound sampling. Kept behind an env var because they dominate the
   harness's runtime. *)
let bechamel_tests () =
  let open Bechamel in
  let test_point ~name ~n ~m algo =
    let env = warmed_env (Workload.generate (spec ~n ~m)) in
    Test.make ~name (Staged.stage (fun () -> ignore (Optimizer.optimize algo env)))
  in
  let exec_test =
    (* End-to-end plan execution (optimize once, execute repeatedly). *)
    let instance = Workload.generate (spec ~n:8 ~m:3) in
    let env = warmed_env instance in
    let plan = (Optimizer.optimize Optimizer.Sja env).Fusion_core.Optimized.plan in
    Bechamel.Test.make ~name:"exec sja n=8 m=3"
      (Bechamel.Staged.stage (fun () ->
           Array.iter Fusion_source.Source.reset_meter env.Opt_env.sources;
           ignore
             (Fusion_plan.Exec.run ~sources:env.Opt_env.sources
                ~conds:env.Opt_env.conds plan)))
  in
  let semijoin_test =
    let relation =
      let schema =
        Fusion_data.Schema.create_exn ~merge:"M"
          [ ("M", Fusion_data.Value.Tstring); ("A", Fusion_data.Value.Tint) ]
      in
      let r = Fusion_data.Relation.create ~name:"R" schema in
      for i = 0 to 9_999 do
        Fusion_data.Relation.insert r
          [| Fusion_data.Value.String (Printf.sprintf "k%05d" (i mod 4000));
             Fusion_data.Value.Int (i mod 100) |]
      done;
      r
    in
    let probe =
      Fusion_data.Item_set.of_list
        (List.init 500 (fun i -> Fusion_data.Value.String (Printf.sprintf "k%05d" (i * 7))))
    in
    let pred t = Fusion_data.Value.compare t.(1) (Fusion_data.Value.Int 50) < 0 in
    Bechamel.Test.make ~name:"semijoin 500 probes vs 10k tuples"
      (Bechamel.Staged.stage (fun () ->
           ignore (Fusion_data.Relation.semijoin_items relation pred probe)))
  in
  [
    test_point ~name:"sja n=16 m=3" ~n:16 ~m:3 Optimizer.Sja;
    test_point ~name:"sja n=64 m=3" ~n:64 ~m:3 Optimizer.Sja;
    test_point ~name:"sja n=256 m=3" ~n:256 ~m:3 Optimizer.Sja;
    test_point ~name:"sja n=8 m=5" ~n:8 ~m:5 Optimizer.Sja;
    test_point ~name:"sj n=8 m=5" ~n:8 ~m:5 Optimizer.Sj;
    test_point ~name:"greedy-sja n=8 m=5" ~n:8 ~m:5 Optimizer.Greedy_sja;
    test_point ~name:"filter n=64 m=3" ~n:64 ~m:3 Optimizer.Filter;
    exec_test;
    semijoin_test;
  ]

let run_bechamel () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let tests = bechamel_tests () in
  Printf.printf "\n== X6c: Bechamel optimizer microbenchmarks ==\n%!";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"opt" [ test ])
      in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-24s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-24s (no estimate)\n%!" name)
        analyzed)
    tests
