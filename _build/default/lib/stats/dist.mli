(** Discrete distributions for workload generation. *)

type t

val uniform : int -> t
(** [uniform n] draws uniformly from [0, n). *)

val zipf : ?skew:float -> int -> t
(** [zipf ~skew n] draws from [0, n) with Zipfian frequencies
    (rank r has weight 1/(r+1)^skew). Default skew 1.0. Models the
    skewed popularity of entities across Internet sources. *)

val weighted : float array -> t
(** Draws index [i] with probability proportional to the [i]-th weight. *)

val sample : t -> Prng.t -> int

val support : t -> int
