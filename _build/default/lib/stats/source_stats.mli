(** Per-source statistics used by cost estimation.

    The paper assumes cost functions "can use whatever information is
    available at query optimization time" and points to query-sampling
    techniques [25] for gathering it. We provide two providers with the
    same interface: an exact oracle (full scan — the best possible
    statistics) and a sampling estimator (a fixed-size uniform sample of
    the source's tuples, as an autonomous Internet source would realistically
    allow). Estimates are memoized per condition. *)

open Fusion_data
open Fusion_cond

type t

val exact : Relation.t -> t

val sampled : sample_size:int -> Prng.t -> Relation.t -> t
(** Reservoir-samples [sample_size] tuples. Cardinality and distinct-item
    counts are taken as published by the source (exact); only condition
    selectivities are estimated from the sample. *)

val histogram : ?buckets:int -> Relation.t -> t
(** Estimates from per-attribute equi-width histograms (default 20
    buckets) built once over the integer attributes, as a source might
    publish them. Comparisons and ranges interpolate within buckets;
    conjunctions assume independence; conditions over non-integer
    attributes fall back to textbook default selectivities (1/10 for
    equality, 1/4 for prefix). Histogram weights are tuple counts, so
    items with several matching tuples are overcounted — estimates are
    capped at the published distinct-item count. *)

val cardinality : t -> int
(** Number of tuples in the source relation. *)

val distinct_items : t -> int
(** Number of distinct merge-attribute values. *)

val matching_items : t -> Cond.t -> float
(** Estimated number of distinct items with at least one tuple
    satisfying the condition. *)

val item_selectivity : t -> Cond.t -> float
(** [matching_items / distinct_items] (0 if the source is empty). *)

val is_exact : t -> bool
(** True only for the {!exact} provider. *)
