lib/stats/dist.ml: Array Float Prng
