lib/stats/source_stats.mli: Cond Fusion_cond Fusion_data Prng Relation
