lib/stats/dist.mli: Prng
