lib/stats/source_stats.ml: Array Cond Float Fusion_cond Fusion_data Hashtbl Histogram List Prng Relation Schema Tuple Value
