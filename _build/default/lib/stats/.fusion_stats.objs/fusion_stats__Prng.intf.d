lib/stats/prng.mli:
