type t = { cdf : float array } (* cumulative, last entry = 1.0 *)

let of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Dist: empty support";
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Dist: weights must sum to a positive value";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    if weights.(i) < 0.0 then invalid_arg "Dist: negative weight";
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let uniform n = of_weights (Array.make n 1.0)

let zipf ?(skew = 1.0) n =
  of_weights (Array.init n (fun r -> 1.0 /. Float.pow (float_of_int (r + 1)) skew))

let weighted = of_weights

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Binary search for the first cdf entry >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let support t = Array.length t.cdf
