(** Mutable token-stream state shared by the condition parser and the SQL
    front-end. *)

open Fusion_data

exception Parse_error of string

type t = { mutable tokens : Lexer.located list }

val of_string : string -> (t, string) result
(** Tokenizes the input. *)

val peek : t -> Lexer.token
val advance : t -> unit

val fail_at : t -> string -> 'a
(** @raise Parse_error with the message, the current token and its
    offset appended. *)

val expect_sym : t -> string -> unit
val keyword : t -> string -> bool
(** Consumes the keyword if present (case-insensitive); returns whether
    it was. *)

val expect_keyword : t -> string -> unit
val literal : t -> Value.t
val ident : t -> string
(** Consumes and returns a bare identifier. *)

val at_eof : t -> bool
