type token =
  | Ident of string
  | Str of string
  | Int of int
  | Float of float
  | Sym of string
  | Eof

type located = { token : token; offset : int }

let is_keyword kw ident = String.uppercase_ascii ident = String.uppercase_ascii kw

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %s" s
  | Str s -> Format.fprintf ppf "string '%s'" s
  | Int i -> Format.fprintf ppf "integer %d" i
  | Float f -> Format.fprintf ppf "float %g" f
  | Sym s -> Format.fprintf ppf "symbol %s" s
  | Eof -> Format.pp_print_string ppf "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let start = ref 0 in
  let emit t = tokens := { token = t; offset = !start } :: !tokens in
  let error = ref None in
  let fail msg =
    if !error = None then error := Some (Printf.sprintf "%s (at offset %d)" msg !start)
  in
  let i = ref 0 in
  while !i < n && !error = None do
    start := !i;
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      emit (Ident (String.sub input start (!i - start)))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit input.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float = !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1] in
      if is_float then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done
      end;
      let text = String.sub input start (!i - start) in
      if is_float then
        match float_of_string_opt text with
        | Some f -> emit (Float f)
        | None -> fail (Printf.sprintf "bad number %S" text)
      else begin
        match int_of_string_opt text with
        | Some k -> emit (Int k)
        | None -> fail (Printf.sprintf "bad number %S" text)
      end
    end
    else if c = '\'' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && input.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail "unterminated string literal"
      else begin
        emit (Str (String.sub input start (!j - start)));
        i := !j + 1
      end
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<>" | "<=" | ">=" | "!=" ->
        emit (Sym (if two = "!=" then "<>" else two));
        i := !i + 2
      | _ -> (
        match c with
        | '=' | '<' | '>' | '(' | ')' | ',' | '.' | '*' ->
          emit (Sym (String.make 1 c));
          incr i
        | _ -> fail (Printf.sprintf "unexpected character %C" c))
    end
  done;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (List.rev ({ token = Eof; offset = n } :: !tokens))
