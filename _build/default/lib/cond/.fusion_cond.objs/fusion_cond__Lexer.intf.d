lib/cond/lexer.mli: Format
