lib/cond/cond.mli: Format Fusion_data Parser_state Schema Tuple Value
