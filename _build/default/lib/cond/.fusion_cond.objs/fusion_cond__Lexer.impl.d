lib/cond/lexer.ml: Format List Printf String
