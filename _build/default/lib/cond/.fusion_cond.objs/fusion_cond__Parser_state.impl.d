lib/cond/parser_state.ml: Format Fusion_data Lexer Printf Value
