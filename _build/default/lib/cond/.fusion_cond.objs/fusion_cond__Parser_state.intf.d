lib/cond/parser_state.mli: Fusion_data Lexer Value
