lib/cond/cond.ml: Format Fusion_data Hashtbl Lexer List Parser_state Printf Schema String Tuple Value
