(** Tokenizer shared by the condition parser and the SQL front-end. *)

type token =
  | Ident of string  (** bare identifier or keyword; case preserved *)
  | Str of string  (** single-quoted string literal, unquoted *)
  | Int of int
  | Float of float
  | Sym of string  (** one of [= <> != < <= > >= ( ) , . *] *)
  | Eof

type located = { token : token; offset : int }
(** [offset] is the 0-based character position where the token starts
    (end of input for [Eof]); parsers use it for error messages. *)

val tokenize : string -> (located list, string) result
(** The result always ends with [Eof]. Comments are not supported.
    Lexical errors mention the offending offset. *)

val is_keyword : string -> string -> bool
(** [is_keyword kw ident] — case-insensitive keyword test. *)

val pp_token : Format.formatter -> token -> unit
