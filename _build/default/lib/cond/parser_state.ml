open Fusion_data

exception Parse_error of string

type t = { mutable tokens : Lexer.located list }

let of_string input =
  match Lexer.tokenize input with
  | Error msg -> Error msg
  | Ok tokens -> Ok { tokens }

let peek st =
  match st.tokens with [] -> Lexer.Eof | t :: _ -> t.Lexer.token

let offset st = match st.tokens with [] -> 0 | t :: _ -> t.Lexer.offset

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let fail_at st msg =
  raise
    (Parse_error
       (Format.asprintf "%s (at %a, offset %d)" msg Lexer.pp_token (peek st) (offset st)))

let expect_sym st sym =
  match peek st with
  | Lexer.Sym s when s = sym -> advance st
  | _ -> fail_at st (Printf.sprintf "expected %s" sym)

let keyword st kw =
  match peek st with
  | Lexer.Ident id when Lexer.is_keyword kw id ->
    advance st;
    true
  | _ -> false

let expect_keyword st kw =
  if not (keyword st kw) then fail_at st (Printf.sprintf "expected %s" kw)

let literal st =
  match peek st with
  | Lexer.Str s ->
    advance st;
    Value.String s
  | Lexer.Int i ->
    advance st;
    Value.Int i
  | Lexer.Float f ->
    advance st;
    Value.Float f
  | Lexer.Ident id when Lexer.is_keyword "TRUE" id ->
    advance st;
    Value.Bool true
  | Lexer.Ident id when Lexer.is_keyword "FALSE" id ->
    advance st;
    Value.Bool false
  | Lexer.Ident id when Lexer.is_keyword "NULL" id ->
    advance st;
    Value.Null
  | _ -> fail_at st "expected a literal"

let ident st =
  match peek st with
  | Lexer.Ident id ->
    advance st;
    id
  | _ -> fail_at st "expected an identifier"

let at_eof st = peek st = Lexer.Eof
