(** Numeric checks of the cost-model axioms (Section 2.4).

    The optimality arguments behind SJ/SJA assume (1) non-negative
    source-query costs and (2) subadditivity of semijoin cost in the
    semijoin set — "there is no benefit in splitting a semijoin set".
    Any user-supplied {!Model.t} can be spot-checked here before being
    handed to the optimizers; the built-in Internet model satisfies both
    by construction (and by the property tests). *)

open Fusion_cond
open Fusion_source

type violation = {
  source : string;
  cond : Cond.t;
  description : string;
}

val check :
  ?set_sizes:float list ->
  Model.t ->
  sources:Source.t array ->
  conds:Cond.t array ->
  violation list
(** Evaluates non-negativity of [sq]/[lq] and, for every pair drawn from
    [set_sizes] (default [0; 1; 10; 100; 1000]), subadditivity
    [sjq(x+y) ≤ sjq(x) + sjq(y)] and monotonicity [x ≤ y ⇒ sjq(x) ≤
    sjq(y)] at every (source, condition). Infinite costs (unsupported
    operations) are exempt from the comparisons. Returns all violations
    found (empty = model passes). *)
