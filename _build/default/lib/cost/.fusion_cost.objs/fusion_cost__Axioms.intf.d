lib/cost/axioms.mli: Cond Fusion_cond Fusion_source Model Source
