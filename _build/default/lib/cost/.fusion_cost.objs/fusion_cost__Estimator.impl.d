lib/cost/estimator.ml: Float Fusion_source Fusion_stats Hashtbl List Source
