lib/cost/model.mli: Cond Estimator Fusion_cond Fusion_source Source
