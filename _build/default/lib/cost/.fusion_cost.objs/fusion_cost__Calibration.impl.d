lib/cost/calibration.ml: Array Capability Float Fusion_data Fusion_net Fusion_source List Source
