lib/cost/estimator.mli: Cond Fusion_cond Fusion_source Fusion_stats Source
