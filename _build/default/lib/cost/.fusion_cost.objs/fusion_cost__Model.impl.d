lib/cost/model.ml: Capability Cond Estimator Float Fusion_cond Fusion_data Fusion_net Fusion_source Source
