lib/cost/calibration.mli: Fusion_cond Fusion_net Fusion_source
