lib/cost/axioms.ml: Array Cond Float Fusion_cond Fusion_source List Model Printf Source
