open Fusion_cond
open Fusion_source

type violation = { source : string; cond : Cond.t; description : string }

let default_sizes = [ 0.0; 1.0; 10.0; 100.0; 1000.0 ]

let check ?(set_sizes = default_sizes) (model : Model.t) ~sources ~conds =
  let violations = ref [] in
  let record source cond description =
    violations := { source = Source.name source; cond; description } :: !violations
  in
  let finite v = Float.is_finite v in
  Array.iter
    (fun source ->
      let lq = model.Model.lq_cost source in
      if finite lq && lq < 0.0 then
        record source Cond.True (Printf.sprintf "lq cost is negative (%g)" lq);
      Array.iter
        (fun cond ->
          let sq = model.Model.sq_cost source cond in
          if finite sq && sq < 0.0 then
            record source cond (Printf.sprintf "sq cost is negative (%g)" sq);
          let sjq x = model.Model.sjq_cost source cond x in
          List.iter
            (fun x ->
              let cx = sjq x in
              if finite cx && cx < 0.0 then
                record source cond (Printf.sprintf "sjq cost is negative at |X|=%g" x);
              List.iter
                (fun y ->
                  let cy = sjq y and cxy = sjq (x +. y) in
                  if finite cx && finite cy && finite cxy && cxy > cx +. cy +. 1e-9 then
                    record source cond
                      (Printf.sprintf
                         "subadditivity violated: sjq(%g)=%g > sjq(%g)+sjq(%g)=%g" (x +. y)
                         cxy x y (cx +. cy));
                  if x <= y && finite cx && finite cy && cx > cy +. 1e-9 then
                    record source cond
                      (Printf.sprintf "monotonicity violated: sjq(%g)=%g > sjq(%g)=%g" x cx
                         y cy))
                set_sizes)
            set_sizes)
        conds)
    sources;
  List.rev !violations
