open Fusion_source
module Meter = Fusion_net.Meter
module Profile = Fusion_net.Profile

type observation = {
  requests : int;
  items_sent : int;
  items_received : int;
  tuples_received : int;
  cost : float;
}

let observe_totals ~before ~after =
  let d f = f after - f before in
  let requests = d (fun (t : Meter.totals) -> t.Meter.requests) in
  if requests < 1 then
    invalid_arg "Calibration.observe_totals: snapshots not at least one request apart";
  {
    requests;
    items_sent = d (fun t -> t.Meter.items_sent);
    items_received = d (fun t -> t.Meter.items_received);
    tuples_received = d (fun t -> t.Meter.tuples_received);
    cost = after.Meter.cost -. before.Meter.cost;
  }

(* Solve the k×k system [a] x = [b] by Gaussian elimination with partial
   pivoting; None if (near-)singular. *)
let solve a b =
  let k = Array.length b in
  let a = Array.map Array.copy a and b = Array.copy b in
  let ok = ref true in
  for col = 0 to k - 1 do
    (* pivot *)
    let pivot = ref col in
    for row = col + 1 to k - 1 do
      if Float.abs a.(row).(col) > Float.abs a.(!pivot).(col) then pivot := row
    done;
    if Float.abs a.(!pivot).(col) < 1e-9 then ok := false
    else begin
      if !pivot <> col then begin
        let tmp = a.(col) in
        a.(col) <- a.(!pivot);
        a.(!pivot) <- tmp;
        let tmp = b.(col) in
        b.(col) <- b.(!pivot);
        b.(!pivot) <- tmp
      end;
      for row = col + 1 to k - 1 do
        let factor = a.(row).(col) /. a.(col).(col) in
        for c = col to k - 1 do
          a.(row).(c) <- a.(row).(c) -. (factor *. a.(col).(c))
        done;
        b.(row) <- b.(row) -. (factor *. b.(col))
      done
    end
  done;
  if not !ok then None
  else begin
    let x = Array.make k 0.0 in
    for row = k - 1 downto 0 do
      let acc = ref b.(row) in
      for c = row + 1 to k - 1 do
        acc := !acc -. (a.(row).(c) *. x.(c))
      done;
      x.(row) <- !acc /. a.(row).(row)
    done;
    Some x
  end

let feature obs i =
  match i with
  | 0 -> float_of_int obs.requests
  | 1 -> float_of_int obs.items_sent
  | 2 -> float_of_int obs.items_received
  | _ -> float_of_int obs.tuples_received

(* Least squares over the active columns (normal equations), dropping
   the most negative coefficient until all remaining are non-negative. *)
let fit observations =
  if List.length observations < 4 then
    Error "calibration needs at least 4 observations"
  else begin
    let rec attempt active =
      if active = [] then Error "calibration degenerated to no parameters"
      else begin
        let k = List.length active in
        let xtx = Array.make_matrix k k 0.0 and xty = Array.make k 0.0 in
        List.iter
          (fun obs ->
            List.iteri
              (fun i ci ->
                xty.(i) <- xty.(i) +. (feature obs ci *. obs.cost);
                List.iteri
                  (fun j cj -> xtx.(i).(j) <- xtx.(i).(j) +. (feature obs ci *. feature obs cj))
                  active)
              active)
          observations;
        (* A whiff of ridge regularization keeps collinear probe columns
           (e.g. requests ≈ items_sent under emulated semijoins) from
           making the system singular; the bias is negligible against
           real measurements. *)
        let trace = ref 0.0 in
        for i = 0 to k - 1 do
          trace := !trace +. xtx.(i).(i)
        done;
        let ridge = 1e-8 *. Float.max 1.0 (!trace /. float_of_int k) in
        for i = 0 to k - 1 do
          xtx.(i).(i) <- xtx.(i).(i) +. ridge
        done;
        match solve xtx xty with
        | None ->
          (* Columns without variation make the system singular: drop
             any all-zero column and retry; otherwise give up. *)
          let has_signal ci =
            List.exists (fun obs -> feature obs ci <> 0.0) observations
          in
          let trimmed = List.filter has_signal active in
          if List.length trimmed < List.length active then attempt trimmed
          else Error "calibration system is singular (probes lack variation)"
        | Some coefficients ->
          let worst = ref None in
          List.iteri
            (fun i ci ->
              if coefficients.(i) < -1e-6 then
                match !worst with
                | Some (v, _) when v <= coefficients.(i) -> ()
                | _ -> worst := Some (coefficients.(i), ci))
            active;
          (match !worst with
          | Some (_, drop) -> attempt (List.filter (fun ci -> ci <> drop) active)
          | None ->
            let value ci =
              let rec find i = function
                | [] -> 0.0
                | c :: _ when c = ci -> Float.max 0.0 coefficients.(i)
                | _ :: rest -> find (i + 1) rest
              in
              find 0 active
            in
            Ok
              (Profile.make ~request_overhead:(value 0) ~send_per_item:(value 1)
                 ~recv_per_item:(value 2) ~recv_per_tuple:(value 3) ()))
      end
    in
    attempt [ 0; 1; 2; 3 ]
  end

let fit_source ?(rounds = 2) source conds =
  Source.reset_meter source;
  let observations = ref [] in
  let snapshot = ref (Source.totals source) in
  let record () =
    let now = Source.totals source in
    observations := observe_totals ~before:!snapshot ~after:now :: !observations;
    snapshot := now
  in
  let caps = Source.capability source in
  for _ = 1 to rounds do
    (* Selections first; pool their answers so the semijoin probes mix
       matching and non-matching items — otherwise items-sent and
       items-received stay proportional and the parameters cannot be
       told apart. *)
    let pool =
      List.fold_left
        (fun acc cond ->
          let answer, _ = Source.select_query source cond in
          record ();
          Fusion_data.Item_set.union acc answer)
        Fusion_data.Item_set.empty conds
    in
    if caps.Capability.native_semijoin || caps.Capability.point_select then begin
      let items = Fusion_data.Item_set.to_list pool in
      let probe k = Fusion_data.Item_set.of_list (List.filteri (fun i _ -> i < k) items) in
      List.iter
        (fun cond ->
          List.iter
            (fun k ->
              if k > 0 then begin
                ignore (Source.semijoin_query source cond (probe k));
                record ()
              end)
            [ 1; List.length items / 3; (2 * List.length items / 3); List.length items ])
        conds
    end;
    if caps.Capability.load then begin
      ignore (Source.load_query source);
      record ()
    end
  done;
  fit !observations
