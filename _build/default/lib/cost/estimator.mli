(** Optimization-time cardinality estimation.

    The SJ/SJA recurrences need, for every condition-ordering prefix, the
    expected size of the running candidate set [X_i] and the expected
    answer sizes of selection and semijoin queries. Following the paper's
    independence discussion (Section 1, step 3), the estimator assumes
    conditions are independent and items are spread independently across
    sources; how wrong that is on correlated data is exactly what
    experiment X7 measures. *)

open Fusion_cond
open Fusion_source

type t

val create : ?universe:int -> (Source.t * Fusion_stats.Source_stats.t) list -> t
(** [universe] is the number of distinct items across all sources. When
    absent it is estimated as the sum of per-source distinct counts
    (i.e. assuming no overlap — an upper bound). *)

val universe : t -> float

val stats_of : t -> Source.t -> Fusion_stats.Source_stats.t
(** @raise Not_found for a source not registered at creation. *)

val matching : t -> Source.t -> Cond.t -> float
(** Estimated distinct items of the source satisfying the condition. *)

val sq_answer : t -> Source.t -> Cond.t -> float
(** Expected answer size of [sq(c, R)] — same as {!matching}. *)

val sjq_answer : t -> Source.t -> Cond.t -> float -> float
(** [sjq_answer t s c x]: expected answer size of a semijoin with a
    candidate set of estimated size [x]: [x · matching/universe]. *)

val sel_somewhere : t -> Cond.t -> float
(** Probability that a universe item satisfies the condition at {e some}
    source: [1 - Π_j (1 - matching_j/universe)]. *)

val first_round_size : t -> Cond.t -> float
(** Expected [|X_1|] when a condition is evaluated by selections
    everywhere: [universe · sel_somewhere]. *)

val shrink : t -> Cond.t -> float -> float
(** [shrink t c x]: expected size of [X ∩ {items satisfying c
    somewhere}] = [x · sel_somewhere c]. *)
