(** The cost model (Section 2.4).

    A model prices the three wrapper operations; the cost of a plan is
    the sum of its source-query costs, mediator-local set operations
    being free. Unsupported operations price at [infinity], which is how
    capability restrictions steer the optimizer (Section 2.3). *)

open Fusion_cond
open Fusion_source

type t = {
  sq_cost : Source.t -> Cond.t -> float;
  sjq_cost : Source.t -> Cond.t -> float -> float;
      (** last argument: estimated size of the semijoin set *)
  lq_cost : Source.t -> float;
}

val internet : Estimator.t -> t
(** The Internet model built from a source's {!Fusion_net.Profile}:
    - [sq = overhead + recv·E(answer)]
    - native [sjq = overhead + send·|X| + recv·E(answer)]
    - emulated [sjq = |X| · (overhead + send + recv·hit-rate)] — one
      point-selection request per binding;
    - no semijoin path at all: [infinity];
    - [lq = overhead + tuple·cardinality], or [infinity] if the wrapper
      cannot ship relations.

    This model satisfies the paper's subadditivity axiom: splitting a
    semijoin set into two queries can only add overhead (checked by
    property tests). *)

val uniform : ?sq:float -> ?sjq_per_item:float -> ?lq:float -> unit -> t
(** A toy model with source-independent charges; useful in unit tests
    where hand-computable costs are wanted. *)
