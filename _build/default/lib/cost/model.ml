open Fusion_cond
open Fusion_source

type t = {
  sq_cost : Source.t -> Cond.t -> float;
  sjq_cost : Source.t -> Cond.t -> float -> float;
  lq_cost : Source.t -> float;
}

let internet est =
  let sq_cost source cond =
    let p = Source.profile source in
    p.Fusion_net.Profile.request_overhead
    +. (p.Fusion_net.Profile.recv_per_item *. Estimator.sq_answer est source cond)
  in
  let sjq_cost source cond x =
    let p = Source.profile source in
    let caps = Source.capability source in
    if caps.Capability.native_semijoin then
      p.Fusion_net.Profile.request_overhead
      +. (p.Fusion_net.Profile.send_per_item *. x)
      +. (p.Fusion_net.Profile.recv_per_item *. Estimator.sjq_answer est source cond x)
    else if caps.Capability.point_select then begin
      let hit_rate = Float.min 1.0 (Estimator.matching est source cond /. Estimator.universe est) in
      x
      *. (p.Fusion_net.Profile.request_overhead +. p.Fusion_net.Profile.send_per_item
         +. (p.Fusion_net.Profile.recv_per_item *. hit_rate))
    end
    else infinity
  in
  let lq_cost source =
    let p = Source.profile source in
    let caps = Source.capability source in
    if caps.Capability.load then
      p.Fusion_net.Profile.request_overhead
      +. (p.Fusion_net.Profile.recv_per_tuple
         *. float_of_int (Fusion_data.Relation.cardinality (Source.relation source)))
    else infinity
  in
  { sq_cost; sjq_cost; lq_cost }

let uniform ?(sq = 100.0) ?(sjq_per_item = 1.0) ?(lq = 1000.0) () =
  {
    sq_cost = (fun _ _ -> sq);
    sjq_cost = (fun _ _ x -> sjq_per_item *. x);
    lq_cost = (fun _ -> lq);
  }
