(** Cost-model calibration from observed query costs.

    The paper assumes "whatever information is available" feeds the cost
    functions and cites calibration work for heterogeneous DBMSs [5] and
    query sampling [25]. In an autonomous federation the mediator does
    not {e know} a source's request overhead or transfer rates — but it
    observes traffic and cost for every interaction. This module fits a
    {!Fusion_net.Profile} to such observations by linear least squares:

    {v cost ≈ overhead·requests + send·items_sent
              + recv·items_received + tuple·tuples_received v}

    Fitted profiles can then power the Internet cost model for sources
    whose true profile is unknown (experiment X12 measures how good the
    fit is and what plan quality it buys). *)

type observation = {
  requests : int;  (** network requests covered by this observation *)
  items_sent : int;
  items_received : int;
  tuples_received : int;
  cost : float;
}

val observe_totals :
  before:Fusion_net.Meter.totals -> after:Fusion_net.Meter.totals -> observation
(** The delta between two meter snapshots (at least one request apart;
    raises [Invalid_argument] otherwise). *)

val fit : observation list -> (Fusion_net.Profile.t, string) result
(** Least-squares fit of the four parameters, constrained to be
    non-negative (negative components are dropped to 0 and the rest
    refitted). Needs observations with enough variation; degenerate
    systems yield an explanatory error. *)

val fit_source :
  ?rounds:int -> Fusion_source.Source.t -> Fusion_cond.Cond.t list ->
  (Fusion_net.Profile.t, string) result
(** Active calibration: probe the source with the given conditions —
    selection queries, semijoins over prefixes of their own answers of
    varying size, and a full load when supported — collecting one
    observation per operation, then {!fit}. [rounds] (default 2)
    repeats the probe set. The source's meter is reset first and left
    holding the probe traffic, so the caller can account calibration
    cost before resetting it. *)
