open Fusion_source
module Source_stats = Fusion_stats.Source_stats

type t = {
  entries : (Source.t * Source_stats.t) list;
  by_name : (string, Source_stats.t) Hashtbl.t;
  universe : float;
}

let create ?universe entries =
  let by_name = Hashtbl.create 16 in
  List.iter (fun (s, st) -> Hashtbl.replace by_name (Source.name s) st) entries;
  let universe =
    match universe with
    | Some u -> float_of_int u
    | None ->
      float_of_int
        (List.fold_left (fun acc (_, st) -> acc + Source_stats.distinct_items st) 0 entries)
  in
  { entries; by_name; universe = Float.max universe 1.0 }

let universe t = t.universe

let stats_of t source =
  match Hashtbl.find_opt t.by_name (Source.name source) with
  | Some st -> st
  | None -> raise Not_found

let matching t source cond = Source_stats.matching_items (stats_of t source) cond

let sq_answer = matching

let sjq_answer t source cond x = x *. Float.min 1.0 (matching t source cond /. t.universe)

let sel_somewhere t cond =
  let miss =
    List.fold_left
      (fun acc (_, st) ->
        let p = Float.min 1.0 (Source_stats.matching_items st cond /. t.universe) in
        acc *. (1.0 -. p))
      1.0 t.entries
  in
  1.0 -. miss

let first_round_size t cond = t.universe *. sel_somewhere t cond

let shrink t cond x = x *. sel_somewhere t cond
