let sequential (result : Exec.result) = result.Exec.total_cost

let of_result ~n plan (result : Exec.result) =
  match Plan.rounds ~n plan with
  | Error _ -> None
  | Ok rounds_list ->
    (* Recover each source query's actual cost, in operation order. The
       round analyzer accepted the plan, so queries appear grouped by
       round with n queries each. *)
    let query_costs =
      List.filter_map
        (fun step ->
          match step.Exec.op with
          | Op.Select _ -> Some (`Select, step.Exec.cost)
          | Op.Semijoin _ -> Some (`Semijoin, step.Exec.cost)
          | _ -> None)
        result.Exec.steps
    in
    let rec take k list acc =
      if k = 0 then (List.rev acc, list)
      else
        match list with
        | [] -> invalid_arg "Response_time: fewer queries than rounds require"
        | x :: rest -> take (k - 1) rest (x :: acc)
    in
    let completion =
      List.fold_left
        (fun (comp_prev, remaining) (round : Plan.round) ->
          let round_queries, rest = take n remaining [] in
          let max_by kind =
            List.fold_left
              (fun acc (k, cost) -> if k = kind then Float.max acc cost else acc)
              0.0 round_queries
          in
          let select_span = max_by `Select in
          let semijoin_span = max_by `Semijoin in
          let has_semijoin =
            Array.exists (fun a -> a = Plan.By_semijoin) round.Plan.actions
          in
          let comp =
            Float.max comp_prev
              (Float.max select_span
                 (if has_semijoin then comp_prev +. semijoin_span else 0.0))
          in
          (comp, rest))
        (0.0, query_costs) rounds_list
      |> fst
    in
    Some completion
