let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?source_name plan =
  let rname j =
    match source_name with Some f -> f j | None -> Printf.sprintf "R%d" (j + 1)
  in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "digraph plan {\n  rankdir=TB;\n  node [fontsize=11];\n";
  (* var -> node id of its current binding *)
  let current : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let edge from_id to_id =
    Buffer.add_string buffer (Printf.sprintf "  n%d -> n%d;\n" from_id to_id)
  in
  List.iteri
    (fun id (op : Op.t) ->
      let label, shape =
        match op with
        | Op.Select { dst; cond; source } ->
          (Printf.sprintf "%s := sq(c%d, %s)" dst (cond + 1) (rname source), "box")
        | Op.Semijoin { dst; cond; source; _ } ->
          (Printf.sprintf "%s := sjq(c%d, %s, ...)" dst (cond + 1) (rname source), "box")
        | Op.Load { dst; source } -> (Printf.sprintf "%s := lq(%s)" dst (rname source), "box3d")
        | Op.Local_select { dst; cond; _ } ->
          (Printf.sprintf "%s := sq(c%d, local)" dst (cond + 1), "ellipse")
        | Op.Union { dst; _ } -> (dst ^ " := \xe2\x88\xaa", "ellipse")
        | Op.Inter { dst; _ } -> (dst ^ " := \xe2\x88\xa9", "ellipse")
        | Op.Diff { dst; _ } -> (dst ^ " := \xe2\x88\x92", "ellipse")
      in
      Buffer.add_string buffer
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" id (escape label) shape);
      List.iter
        (fun used ->
          match Hashtbl.find_opt current used with
          | Some def_id -> edge def_id id
          | None -> ())
        (Op.uses op);
      Hashtbl.replace current (Op.dst op) id)
    (Plan.ops plan);
  (match Hashtbl.find_opt current (Plan.output plan) with
  | Some def_id ->
    Buffer.add_string buffer "  answer [shape=doublecircle, label=\"answer\"];\n";
    Buffer.add_string buffer (Printf.sprintf "  n%d -> answer;\n" def_id)
  | None -> ());
  Buffer.add_string buffer "}\n";
  Buffer.contents buffer
