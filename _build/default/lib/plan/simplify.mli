(** Peephole simplification of plans.

    Plans produced mechanically (by the builders, the postoptimizer, or
    user code) can contain trivial local operations: single-argument
    unions/intersections, duplicated arguments, and bindings that are
    never read. Removing them does not change answers or source-query
    costs (local operations are free under the cost model), but makes
    plans shorter to print, store and audit. *)

val simplify : Plan.t -> Plan.t
(** Applies, to a fixpoint:
    - [X := ∪{Y}] and [X := ∩{Y}] become aliases, with uses of [X]
      rewritten to [Y] (aliasing respects later rebindings of either
      name);
    - duplicate arguments of [∪]/[∩] are dropped;
    - bindings never read and not the output are removed.

    Source queries are never touched: they have a cost, so even an
    unused one is preserved if present — removing it would change the
    plan's cost profile; dead {e local} operations are free and safe. *)

val dead_local_ops : Plan.t -> Op.t list
(** The local operations {!simplify} would delete (for diagnostics). *)
