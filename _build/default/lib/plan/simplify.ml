module String_set = Set.Make (String)

let dedupe_args (op : Op.t) =
  let dedupe args = List.sort_uniq compare args in
  match op with
  | Op.Union { dst; args } -> Op.Union { dst; args = dedupe args }
  | Op.Inter { dst; args } -> Op.Inter { dst; args = dedupe args }
  | other -> other

let binding_counts ops =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun op ->
      let dst = Op.dst op in
      Hashtbl.replace counts dst (1 + Option.value ~default:0 (Hashtbl.find_opt counts dst)))
    ops;
  counts

let substitute_uses subst (op : Op.t) =
  let s var = Option.value ~default:var (Hashtbl.find_opt subst var) in
  match op with
  | Op.Select _ | Op.Load _ -> op
  | Op.Semijoin r -> Op.Semijoin { r with input = s r.input }
  | Op.Local_select r -> Op.Local_select { r with input = s r.input }
  | Op.Union { dst; args } -> Op.Union { dst; args = List.map s args }
  | Op.Inter { dst; args } -> Op.Inter { dst; args = List.map s args }
  | Op.Diff { dst; left; right } -> Op.Diff { dst; left = s left; right = s right }

(* Replace single-argument unions/intersections by aliases when both
   names are bound exactly once (no rebinding anywhere), then rewrite
   later uses. *)
let eliminate_aliases plan =
  let ops = Plan.ops plan in
  let counts = binding_counts ops in
  let bound_once var = Hashtbl.find_opt counts var = Some 1 in
  let subst : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let resolve var = Option.value ~default:var (Hashtbl.find_opt subst var) in
  let keep =
    List.filter_map
      (fun op ->
        let op = substitute_uses subst op in
        match op with
        | Op.Union { dst; args = [ arg ] } | Op.Inter { dst; args = [ arg ] }
          when bound_once dst && bound_once arg && dst <> Plan.output plan ->
          Hashtbl.replace subst dst (resolve arg);
          None
        | other -> Some other)
      ops
  in
  Plan.create ~ops:keep ~output:(resolve (Plan.output plan))

(* Backward liveness: drop local operations whose destination is dead at
   that point. Source queries always stay (they carry cost). *)
let remove_dead plan =
  let rec walk needed acc = function
    | [] -> acc
    | op :: earlier ->
      let dst = Op.dst op in
      let live = String_set.mem dst needed in
      if (not live) && not (Op.is_source_query op) then walk needed acc earlier
      else
        let needed = String_set.remove dst needed in
        let needed = List.fold_left (fun s v -> String_set.add v s) needed (Op.uses op) in
        walk needed (op :: acc) earlier
  in
  let reversed = List.rev (Plan.ops plan) in
  Plan.create
    ~ops:(walk (String_set.singleton (Plan.output plan)) [] reversed)
    ~output:(Plan.output plan)

let pass plan =
  let plan = Plan.create ~ops:(List.map dedupe_args (Plan.ops plan)) ~output:(Plan.output plan) in
  remove_dead (eliminate_aliases plan)

let rec simplify plan =
  let next = pass plan in
  if Plan.ops next = Plan.ops plan && Plan.output next = Plan.output plan then plan
  else simplify next

let dead_local_ops plan =
  let kept = Plan.ops (simplify plan) in
  List.filter
    (fun op -> (not (Op.is_source_query op)) && not (List.mem op kept))
    (Plan.ops plan)
