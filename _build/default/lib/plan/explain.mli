(** EXPLAIN-style reporting: the optimizer's view of a plan next to what
    actually happened when it ran — estimated vs actual cost and
    cardinality per step, plus totals. The fusion-query analogue of a
    database's [EXPLAIN ANALYZE]. *)

open Fusion_cond
open Fusion_source

type line = {
  op : Op.t;
  est_cost : float;
  actual_cost : float;
  est_size : float;
  actual_size : int;
}

type t = {
  lines : line list;  (** one per plan operation, in execution order *)
  est_total : float;
  actual_total : float;
}

val analyze :
  model:Fusion_cost.Model.t ->
  est:Fusion_cost.Estimator.t ->
  sources:Source.t array ->
  conds:Cond.t array ->
  Plan.t ->
  Exec.result ->
  t
(** Pairs {!Plan_cost} estimates with an execution's steps. The
    execution must be of the same plan (checked by length). *)

val pp : ?source_name:(int -> string) -> Format.formatter -> t -> unit
(** Renders an aligned table:
    {v  1) X1_1 := sq(c1, R1)     cost  62.0/ 62.0   rows  12.0/12 v} *)
