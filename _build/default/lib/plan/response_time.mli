(** Response time of round-shaped plans under a parallel execution
    model — the future-work direction of the paper's Section 6.

    The mediator can issue independent source queries concurrently:
    every selection query of a plan can start immediately, while a
    semijoin query needs its input set, i.e. the completion of the
    previous round. Response time is therefore the critical path
    through the rounds:

    {v comp_0 = 0
       comp_i = max(comp_{i-1},
                    max over selections of round i,
                    comp_{i-1} + max over semijoins of round i) v}

    Local set operations remain free. Note the tension this surfaces:
    filter plans — all selections — have response time equal to the
    single slowest query, while semijoin plans serialize rounds. The
    work-optimal plan is rarely the response-time-optimal plan
    (experiment X10). *)

val of_result : n:int -> Plan.t -> Exec.result -> float option
(** Critical-path response time from the {e actual} per-step costs of
    an execution; [None] when the plan is not round-shaped. *)

val sequential : Exec.result -> float
(** Response time with no parallelism at all — the sum of all step
    costs (equals [Exec.total_cost]). *)
