(** Graphviz (DOT) rendering of plan dataflow.

    Nodes are plan operations (source queries drawn as boxes labeled
    with the source, local set operations as ellipses); edges follow
    variable definitions to their uses, so the picture is exactly the
    dependency structure that [Parallel_exec] schedules. Rebindings get
    unique node ids, mirroring the executor's env semantics. *)

val to_string : ?source_name:(int -> string) -> Plan.t -> string
(** A complete [digraph] document, e.g. for [dot -Tsvg]. *)
