(** Optimization-time cost and cardinality estimation for whole plans.

    The SJ/SJA optimizers price plans incrementally with the paper's
    recurrences; this module prices {e arbitrary} plans, including
    postoptimized and hand-written ones, from the same statistics. Set
    sizes are propagated through local operations with an
    independent-random-subsets approximation, refined by tracking which
    variables are subsets of which (semijoin and intersection results
    remember their ancestors, which keeps the pure-semijoin and
    round-intersection estimates exact w.r.t. the optimizer's own
    recurrence). *)

open Fusion_cond
open Fusion_source

type t = {
  total : float;
  sizes : (string * float) list;
  op_costs : float array;  (** aligned with [Plan.ops]; 0 for local ops *)
}
(** Estimated plan cost, per-operation costs, and final size estimate
    for every variable (last binding wins). *)

val estimate :
  model:Fusion_cost.Model.t ->
  est:Fusion_cost.Estimator.t ->
  sources:Source.t array ->
  conds:Cond.t array ->
  Plan.t ->
  t
