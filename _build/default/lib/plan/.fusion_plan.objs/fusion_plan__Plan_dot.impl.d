lib/plan/plan_dot.ml: Buffer Hashtbl List Op Plan Printf String
