lib/plan/simplify.mli: Op Plan
