lib/plan/response_time.ml: Array Exec Float List Op Plan
