lib/plan/plan.ml: Array Format Hashtbl List Op Option Printf
