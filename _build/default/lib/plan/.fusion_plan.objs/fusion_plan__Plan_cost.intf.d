lib/plan/plan_cost.mli: Cond Fusion_cond Fusion_cost Fusion_source Plan Source
