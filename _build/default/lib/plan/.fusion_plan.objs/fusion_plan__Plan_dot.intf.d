lib/plan/plan_dot.mli: Plan
