lib/plan/str_split.ml: String
