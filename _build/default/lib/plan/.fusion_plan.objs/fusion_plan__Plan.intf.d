lib/plan/plan.mli: Format Op
