lib/plan/plan_text.ml: Buffer List Op Plan Printf Str_split String
