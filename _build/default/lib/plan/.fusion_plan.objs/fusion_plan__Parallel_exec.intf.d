lib/plan/parallel_exec.mli: Exec Fusion_net Plan
