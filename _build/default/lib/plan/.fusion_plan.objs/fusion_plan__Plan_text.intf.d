lib/plan/plan_text.mli: Plan
