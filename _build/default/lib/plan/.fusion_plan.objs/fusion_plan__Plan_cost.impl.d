lib/plan/plan_cost.ml: Array Float Fusion_cost Fusion_data Fusion_source Hashtbl Int List Op Plan Set Source
