lib/plan/simplify.ml: Hashtbl List Op Option Plan Set String
