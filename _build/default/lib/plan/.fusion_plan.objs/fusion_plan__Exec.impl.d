lib/plan/exec.ml: Array Capability Cond Fusion_cond Fusion_data Fusion_net Fusion_source Hashtbl Item_set List Op Option Plan Printf Relation Source
