lib/plan/parallel_exec.ml: Exec Fusion_net Hashtbl Int List Op Option Plan Set
