lib/plan/response_time.mli: Exec Plan
