lib/plan/explain.ml: Array Exec Format List Op Option Plan Plan_cost
