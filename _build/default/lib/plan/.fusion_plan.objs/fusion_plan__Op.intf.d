lib/plan/op.mli: Format
