lib/plan/op.ml: Format Printf
