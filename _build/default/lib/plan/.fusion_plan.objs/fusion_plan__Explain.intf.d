lib/plan/explain.mli: Cond Exec Format Fusion_cond Fusion_cost Fusion_source Op Plan Source
