lib/plan/exec.mli: Cond Fusion_cond Fusion_data Fusion_source Item_set Op Plan Source
