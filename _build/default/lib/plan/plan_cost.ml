open Fusion_source
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

type t = { total : float; sizes : (string * float) list; op_costs : float array }

(* Each binding gets a fresh id so that rebindings (X2 := X2 ∩ X1) keep
   ancestor references to the *old* value meaningful. [anc] lists the
   ids of bindings this set is known to be a subset of. *)
type shape = { size : float; anc : int list }

type binding = Bitems of shape | Bloaded of int (* source index *)

exception Estimate_error of string

module Int_set = Set.Make (Int)

let estimate ~model ~est ~sources ~conds plan =
  let universe = Estimator.universe est in
  let next_id = ref 0 in
  let shapes : (int, shape) Hashtbl.t = Hashtbl.create 32 in
  let env : (string, binding) Hashtbl.t = Hashtbl.create 16 in
  let final_sizes : (string, float) Hashtbl.t = Hashtbl.create 16 in
  (* Map var -> current binding id, maintained alongside [env]. *)
  let ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let bind_items var shape =
    let id = !next_id in
    incr next_id;
    Hashtbl.replace shapes id shape;
    Hashtbl.replace env var (Bitems shape);
    Hashtbl.replace final_sizes var shape.size;
    Hashtbl.replace ids var id;
    id
  in
  let items var =
    match Hashtbl.find_opt env var with
    | Some (Bitems s) -> s
    | Some (Bloaded _) -> raise (Estimate_error (var ^ " is a loaded relation"))
    | None -> raise (Estimate_error ("undefined variable " ^ var))
  in
  let loaded var =
    match Hashtbl.find_opt env var with
    | Some (Bloaded j) -> j
    | Some (Bitems _) -> raise (Estimate_error (var ^ " is an item set"))
    | None -> raise (Estimate_error ("undefined variable " ^ var))
  in
  let current_id var =
    match Hashtbl.find_opt ids var with
    | Some id -> id
    | None -> raise (Estimate_error ("undefined variable " ^ var))
  in
  let size_of_id id = (Hashtbl.find shapes id).size in
  (* Nearest (smallest) ancestor shared by every argument. For
     intersections an argument counts as its own ancestor (the result is
     a subset of each argument); for unions only proper ancestors
     qualify (the result contains its arguments). *)
  let common_scope ~include_self arg_ids =
    let ancestors id =
      let anc = Int_set.of_list (Hashtbl.find shapes id).anc in
      if include_self then Int_set.add id anc else anc
    in
    match arg_ids with
    | [] -> None
    | first :: rest ->
      let common =
        List.fold_left (fun acc id -> Int_set.inter acc (ancestors id)) (ancestors first) rest
      in
      Int_set.fold
        (fun id best ->
          match best with
          | None -> Some id
          | Some b -> if size_of_id id < size_of_id b then Some id else best)
        common None
  in
  let clamp scope x = Float.max 0.0 (Float.min scope x) in
  let total = ref 0.0 in
  let exec_op (op : Op.t) =
    match op with
    | Select { dst; cond = c; source = j } ->
      total := !total +. model.Model.sq_cost sources.(j) conds.(c);
      ignore (bind_items dst { size = Estimator.sq_answer est sources.(j) conds.(c); anc = [] })
    | Semijoin { dst; cond = c; source = j; input } ->
      let x = items input in
      total := !total +. model.Model.sjq_cost sources.(j) conds.(c) x.size;
      let size = Estimator.sjq_answer est sources.(j) conds.(c) x.size in
      ignore (bind_items dst { size; anc = current_id input :: x.anc })
    | Load { dst; source = j } ->
      total := !total +. model.Model.lq_cost sources.(j);
      Hashtbl.replace env dst (Bloaded j);
      Hashtbl.replace final_sizes dst
        (float_of_int (Fusion_data.Relation.cardinality (Source.relation sources.(j))))
    | Local_select { dst; cond = c; input } ->
      let j = loaded input in
      ignore (bind_items dst { size = Estimator.matching est sources.(j) conds.(c); anc = [] })
    | Union { dst; args } ->
      let arg_ids = List.map current_id args in
      (* Scope: the nearest ancestor common to every argument that has
         one. Arguments without ancestors (selection answers) are
         independent random subsets of the universe, so conditioning
         them on the scope keeps their coverage s/u. This makes the
         mixed-round union of SJA plans agree exactly with the
         optimizer's recurrence. *)
      let with_anc = List.filter (fun id -> (Hashtbl.find shapes id).anc <> []) arg_ids in
      let scope_id =
        if with_anc = [] then None else common_scope ~include_self:false with_anc
      in
      let scope, anc =
        match scope_id with
        | Some id when size_of_id id > 0.0 -> (size_of_id id, id :: (Hashtbl.find shapes id).anc)
        | _ -> (universe, [])
      in
      let coverage id =
        let s = Hashtbl.find shapes id in
        let in_scope =
          match scope_id with Some sid -> List.mem sid s.anc | None -> false
        in
        if in_scope then Float.min 1.0 (s.size /. scope)
        else Float.min 1.0 (s.size /. universe)
      in
      let miss = List.fold_left (fun acc id -> acc *. (1.0 -. coverage id)) 1.0 arg_ids in
      ignore (bind_items dst { size = clamp scope (scope *. (1.0 -. miss)); anc })
    | Inter { dst; args } ->
      let arg_ids = List.map current_id args in
      (* Drop arguments that are (known) supersets of another argument:
         intersecting with a superset is a no-op. *)
      let is_super id other =
        id <> other && List.mem id (Hashtbl.find shapes other).anc
      in
      let kept = List.filter (fun id -> not (List.exists (is_super id) arg_ids)) arg_ids in
      let kept = if kept = [] then arg_ids else kept in
      let scope =
        match common_scope ~include_self:true kept with
        | Some id when size_of_id id > 0.0 -> size_of_id id
        | _ -> universe
      in
      let size =
        scope
        *. List.fold_left (fun acc id -> acc *. Float.min 1.0 (size_of_id id /. scope)) 1.0 kept
      in
      let anc =
        List.sort_uniq compare
          (List.concat_map (fun id -> id :: (Hashtbl.find shapes id).anc) arg_ids)
      in
      ignore (bind_items dst { size = clamp scope size; anc })
    | Diff { dst; left; right } ->
      let l = items left and r = items right in
      let l_id = current_id left in
      let size =
        if List.mem l_id r.anc then Float.max 0.0 (l.size -. r.size)
        else l.size *. Float.max 0.0 (1.0 -. (r.size /. universe))
      in
      ignore (bind_items dst { size; anc = l_id :: l.anc })
  in
  let op_costs =
    Array.of_list
      (List.map
         (fun op ->
           let before = !total in
           exec_op op;
           !total -. before)
         (Plan.ops plan))
  in
  {
    total = !total;
    sizes = Hashtbl.fold (fun var size acc -> (var, size) :: acc) final_sizes [];
    op_costs;
  }
