type t = { ops : Op.t list; output : string }

let create ~ops ~output = { ops; output }
let ops t = t.ops
let output t = t.output

type kind = Kitems | Krel

let validate ~m ~n t =
  let kinds : (string, kind) Hashtbl.t = Hashtbl.create 16 in
  let check_defined kind var =
    match Hashtbl.find_opt kinds var with
    | Some k when k = kind -> Ok ()
    | Some _ ->
      Error
        (Printf.sprintf "variable %s is a %s" var
           (if kind = Kitems then "loaded relation, not an item set"
            else "an item set, not a loaded relation"))
    | None -> Error (Printf.sprintf "variable %s used before definition" var)
  in
  let bind kind var =
    match Hashtbl.find_opt kinds var with
    | Some k when k <> kind -> Error (Printf.sprintf "variable %s rebound to a different kind" var)
    | _ ->
      Hashtbl.replace kinds var kind;
      Ok ()
  in
  let check_cond c =
    if c >= 0 && c < m then Ok () else Error (Printf.sprintf "condition index %d out of range" c)
  in
  let check_source j =
    if j >= 0 && j < n then Ok () else Error (Printf.sprintf "source index %d out of range" j)
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let rec all f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      all f rest
  in
  let check_op (op : Op.t) =
    match op with
    | Select { dst; cond; source } ->
      let* () = check_cond cond in
      let* () = check_source source in
      bind Kitems dst
    | Semijoin { dst; cond; source; input } ->
      let* () = check_cond cond in
      let* () = check_source source in
      let* () = check_defined Kitems input in
      bind Kitems dst
    | Load { dst; source } ->
      let* () = check_source source in
      bind Krel dst
    | Local_select { dst; cond; input } ->
      let* () = check_cond cond in
      let* () = check_defined Krel input in
      bind Kitems dst
    | Union { dst; args } | Inter { dst; args } ->
      if args = [] then Error "empty argument list"
      else
        let* () = all (check_defined Kitems) args in
        bind Kitems dst
    | Diff { dst; left; right } ->
      let* () = check_defined Kitems left in
      let* () = check_defined Kitems right in
      bind Kitems dst
  in
  let* () = all check_op t.ops in
  check_defined Kitems t.output

let source_query_count t = List.length (List.filter Op.is_source_query t.ops)

let is_filter t =
  List.for_all
    (fun (op : Op.t) ->
      match op with Select _ | Union _ | Inter _ -> true | _ -> false)
    t.ops

let is_simple t =
  List.for_all
    (fun (op : Op.t) ->
      match op with Select _ | Semijoin _ | Union _ | Inter _ -> true | _ -> false)
    t.ops

type action = By_select | By_semijoin

type round = { cond : int; actions : action array }

(* Reconstruct the round structure of a (candidate) semijoin-adaptive
   plan. We scan the operation list with a small state machine: collect
   the n per-source queries of a round, then the union of their results,
   then (optionally, for pure-semijoin rounds) the intersection with the
   previous round's variable. *)
let rounds ~n t =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let arr = Array.of_list t.ops in
  let len = Array.length arr in
  let pos = ref 0 in
  let peek () = if !pos < len then Some arr.(!pos) else None in
  let take () =
    let op = arr.(!pos) in
    incr pos;
    op
  in
  let parse_round ~first ~prev_var =
    (* 1. n per-source queries, all on the same condition. *)
    let cond = ref (-1) in
    let actions = Array.make n None in
    let dsts = ref [] in
    let rec queries collected =
      if collected = n then Ok ()
      else
        match peek () with
        | Some (Op.Select { dst; cond = c; source }) when source < n ->
          if !cond = -1 then cond := c;
          if c <> !cond then Error "round mixes conditions"
          else if actions.(source) <> None then
            Error (Printf.sprintf "source %d queried twice in a round" source)
          else begin
            ignore (take ());
            actions.(source) <- Some By_select;
            dsts := dst :: !dsts;
            queries (collected + 1)
          end
        | Some (Op.Semijoin { dst; cond = c; source; input }) when source < n ->
          if first then Error "semijoin in the first round"
          else if input <> Option.get prev_var then
            Error "semijoin input is not the previous round's result"
          else begin
            if !cond = -1 then cond := c;
            if c <> !cond then Error "round mixes conditions"
            else if actions.(source) <> None then
              Error (Printf.sprintf "source %d queried twice in a round" source)
            else begin
              ignore (take ());
              actions.(source) <- Some By_semijoin;
              dsts := dst :: !dsts;
              queries (collected + 1)
            end
          end
        | _ -> Error "expected a per-source query"
    in
    let* () = queries 0 in
    let actions = Array.map Option.get actions in
    (* 2. the union of the round's results. *)
    let* union_dst =
      match peek () with
      | Some (Op.Union { dst; args })
        when List.sort compare args = List.sort compare !dsts ->
        ignore (take ());
        Ok dst
      | _ -> Error "expected the union of the round's results"
    in
    (* 3. intersection with the previous round (optional iff the round
       was pure semijoin, whose results are already subsets). *)
    let pure_semijoin = Array.for_all (fun a -> a = By_semijoin) actions in
    let* final =
      if first then Ok union_dst
      else
        match peek () with
        | Some (Op.Inter { dst; args = [ a; b ] })
          when (a = Option.get prev_var && b = union_dst)
               || (b = Option.get prev_var && a = union_dst) ->
          ignore (take ());
          Ok dst
        | _ when pure_semijoin -> Ok union_dst
        | _ -> Error "expected an intersection with the previous round's result"
    in
    Ok ({ cond = !cond; actions }, final)
  in
  let rec loop acc prev_var first =
    if !pos = len then
      if Option.get prev_var = t.output then Ok (List.rev acc)
      else Error "plan continues after the last round"
    else
      let* round, final = parse_round ~first ~prev_var in
      loop (round :: acc) (Some final) false
  in
  if n = 0 then Error "no sources"
  else if len = 0 then Error "empty plan"
  else loop [] None true

let distinct_conds rounds_list =
  let conds = List.map (fun r -> r.cond) rounds_list in
  List.length (List.sort_uniq compare conds) = List.length conds

let is_semijoin_adaptive ~n t =
  match rounds ~n t with Ok rs -> distinct_conds rs | Error _ -> false

let is_semijoin ~n t =
  match rounds ~n t with
  | Error _ -> false
  | Ok rs ->
    distinct_conds rs
    && List.for_all
         (fun r ->
           Array.for_all (fun a -> a = By_select) r.actions
           || Array.for_all (fun a -> a = By_semijoin) r.actions)
         rs

let pp ?source_name ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i op -> Format.fprintf ppf "%2d) %a@," (i + 1) (Op.pp ?source_name) op)
    t.ops;
  Format.fprintf ppf "answer: %s@]" t.output
