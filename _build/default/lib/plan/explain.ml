
type line = {
  op : Op.t;
  est_cost : float;
  actual_cost : float;
  est_size : float;
  actual_size : int;
}

type t = { lines : line list; est_total : float; actual_total : float }

let analyze ~model ~est ~sources ~conds plan (result : Exec.result) =
  if List.length (Plan.ops plan) <> List.length result.Exec.steps then
    invalid_arg "Explain.analyze: execution does not match the plan";
  let estimate = Plan_cost.estimate ~model ~est ~sources ~conds plan in
  (* Plan_cost.sizes only keeps final bindings; recover per-step size
     estimates by replaying the ops with a fresh estimate of each
     prefix. Cheaper: re-run estimate and read op-aligned sizes — we
     instead recompute sizes per step from the steps' own order, using
     the fact that [Plan_cost.estimate]'s op_costs align and sizes for
     non-rebound variables are exact. For rebound variables the final
     estimate is reported on each of their bindings. *)
  let size_of var = Option.value ~default:0.0 (List.assoc_opt var estimate.Plan_cost.sizes) in
  let lines =
    List.mapi
      (fun i step ->
        {
          op = step.Exec.op;
          est_cost = estimate.Plan_cost.op_costs.(i);
          actual_cost = step.Exec.cost;
          est_size = size_of (Op.dst step.Exec.op);
          actual_size = step.Exec.result_size;
        })
      result.Exec.steps
  in
  {
    lines;
    est_total = estimate.Plan_cost.total;
    actual_total = result.Exec.total_cost;
  }

let pp ?source_name ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i line ->
      Format.fprintf ppf "%2d) %-38s cost %8.1f /%8.1f   rows %8.1f /%6d@," (i + 1)
        (Format.asprintf "%a" (Op.pp ?source_name) line.op)
        line.est_cost line.actual_cost line.est_size line.actual_size)
    t.lines;
  Format.fprintf ppf "total%43.1f /%8.1f@]" t.est_total t.actual_total
