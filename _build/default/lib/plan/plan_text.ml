let op_to_string (op : Op.t) =
  let args = String.concat ", " in
  match op with
  | Op.Select { dst; cond; source } ->
    Printf.sprintf "%s := sq(c%d, R%d)" dst (cond + 1) (source + 1)
  | Op.Semijoin { dst; cond; source; input } ->
    Printf.sprintf "%s := sjq(c%d, R%d, %s)" dst (cond + 1) (source + 1) input
  | Op.Load { dst; source } -> Printf.sprintf "%s := lq(R%d)" dst (source + 1)
  | Op.Local_select { dst; cond; input } ->
    Printf.sprintf "%s := lsq(c%d, %s)" dst (cond + 1) input
  | Op.Union { dst; args = a } -> Printf.sprintf "%s := union(%s)" dst (args a)
  | Op.Inter { dst; args = a } -> Printf.sprintf "%s := inter(%s)" dst (args a)
  | Op.Diff { dst; left; right } -> Printf.sprintf "%s := diff(%s, %s)" dst left right

let to_string plan =
  let buffer = Buffer.create 256 in
  List.iter
    (fun op ->
      Buffer.add_string buffer (op_to_string op);
      Buffer.add_char buffer '\n')
    (Plan.ops plan);
  Buffer.add_string buffer ("answer " ^ Plan.output plan ^ "\n");
  Buffer.contents buffer

(* --- parsing ------------------------------------------------------------ *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let indexed prefix text =
  let n = String.length prefix in
  if String.length text > n && String.sub text 0 n = prefix then
    match int_of_string_opt (String.sub text n (String.length text - n)) with
    | Some i when i >= 1 -> Some (i - 1)
    | _ -> None
  else None

let is_var text =
  text <> ""
  && (match text.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       text

let parse_call lineno text =
  (* name(arg, arg, ...) *)
  match String.index_opt text '(' with
  | None -> Error (Printf.sprintf "line %d: expected op(...)" lineno)
  | Some i ->
    let name = String.trim (String.sub text 0 i) in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    if String.length rest = 0 || rest.[String.length rest - 1] <> ')' then
      Error (Printf.sprintf "line %d: missing closing parenthesis" lineno)
    else
      let inner = String.sub rest 0 (String.length rest - 1) in
      let args = String.split_on_char ',' inner |> List.map String.trim in
      let args = List.filter (fun a -> a <> "") args in
      Ok (name, args)

let parse_op lineno dst call =
  let* name, args = parse_call lineno call in
  let fail expected =
    Error (Printf.sprintf "line %d: %s expects %s" lineno name expected)
  in
  let cond_arg a k =
    match indexed "c" a with
    | Some c -> k c
    | None -> Error (Printf.sprintf "line %d: expected a condition (c1, c2, ...)" lineno)
  in
  let source_arg a k =
    match indexed "R" a with
    | Some j -> k j
    | None -> Error (Printf.sprintf "line %d: expected a source (R1, R2, ...)" lineno)
  in
  let var_arg a k =
    if is_var a then k a else Error (Printf.sprintf "line %d: bad variable %S" lineno a)
  in
  let var_args k =
    if args = [] then fail "at least one variable"
    else if List.for_all is_var args then k args
    else Error (Printf.sprintf "line %d: bad variable list" lineno)
  in
  match name, args with
  | "sq", [ c; r ] ->
    cond_arg c (fun cond -> source_arg r (fun source -> Ok (Op.Select { dst; cond; source })))
  | "sjq", [ c; r; x ] ->
    cond_arg c (fun cond ->
        source_arg r (fun source ->
            var_arg x (fun input -> Ok (Op.Semijoin { dst; cond; source; input }))))
  | "lq", [ r ] -> source_arg r (fun source -> Ok (Op.Load { dst; source }))
  | "lsq", [ c; l ] ->
    cond_arg c (fun cond -> var_arg l (fun input -> Ok (Op.Local_select { dst; cond; input })))
  | "union", _ -> var_args (fun args -> Ok (Op.Union { dst; args }))
  | "inter", _ -> var_args (fun args -> Ok (Op.Inter { dst; args }))
  | "diff", [ a; b ] ->
    var_arg a (fun left -> var_arg b (fun right -> Ok (Op.Diff { dst; left; right })))
  | "sq", _ -> fail "(c<i>, R<j>)"
  | "sjq", _ -> fail "(c<i>, R<j>, VAR)"
  | "lq", _ -> fail "(R<j>)"
  | "lsq", _ -> fail "(c<i>, VAR)"
  | "diff", _ -> fail "(VAR, VAR)"
  | other, _ -> Error (Printf.sprintf "line %d: unknown operation %S" lineno other)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno ops output = function
    | [] -> (
      match output with
      | None -> Error "missing final 'answer VAR' line"
      | Some output -> Ok (Plan.create ~ops:(List.rev ops) ~output))
    | line :: rest -> (
      let line = String.trim (strip_comment line) in
      if line = "" then go (lineno + 1) ops output rest
      else if output <> None then
        Error (Printf.sprintf "line %d: content after the answer line" lineno)
      else if String.length line > 7 && String.sub line 0 7 = "answer " then
        let var = String.trim (String.sub line 7 (String.length line - 7)) in
        if is_var var then go (lineno + 1) ops (Some var) rest
        else Error (Printf.sprintf "line %d: bad answer variable %S" lineno var)
      else
        match Str_split.assign line with
        | None -> Error (Printf.sprintf "line %d: expected 'VAR := op(...)'" lineno)
        | Some (dst, call) ->
          if not (is_var dst) then
            Error (Printf.sprintf "line %d: bad variable %S" lineno dst)
          else
            let* op = parse_op lineno dst call in
            go (lineno + 1) (op :: ops) output rest)
  in
  go 1 [] None lines
