(* Tiny string helpers for the plan serializer (kept out of Plan_text so
   they can be unit-tested and reused). *)

(* Split "VAR := rest" into (VAR, rest). *)
let assign line =
  let marker = " := " in
  let rec find i =
    if i + String.length marker > String.length line then None
    else if String.sub line i (String.length marker) = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
    let dst = String.trim (String.sub line 0 i) in
    let rest =
      String.trim
        (String.sub line
           (i + String.length marker)
           (String.length line - i - String.length marker))
    in
    Some (dst, rest)
