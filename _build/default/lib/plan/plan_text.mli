(** Textual plan serialization.

    An ASCII rendition of the paper's plan notation, one operation per
    line, round-trippable — useful for saving a chosen plan, auditing
    it, and re-running it later without re-optimizing (plan pinning):

    {v X1_1 := sq(c1, R1)
       X2_1 := sjq(c2, R1, X1)
       L2 := lq(R2)
       X2_2 := lsq(c2, L2)
       X1 := union(X1_1)
       X2 := inter(X1, U2)
       D1 := diff(X1, X2_1)
       answer X2 v}

    Conditions are [c<i>] (1-based indexes into the query), sources
    [R<j>] (1-based indexes into the mediator's source list); variables
    are any other identifiers. [#] starts a comment. *)

val to_string : Plan.t -> string

val of_string : string -> (Plan.t, string) result
(** Inverse of {!to_string}; validates shape only (use
    {!Plan.validate} for semantic checks against a query). *)
