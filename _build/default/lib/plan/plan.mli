(** Plans: straight-line operation sequences plus a result variable.

    Includes the structural analysis behind the paper's plan-class
    taxonomy (Section 2.5): filter plans ⊂ semijoin plans ⊂
    semijoin-adaptive plans ⊂ simple plans, and postoptimized plans
    (with difference and loading) outside the simple class. *)

type t

val create : ops:Op.t list -> output:string -> t
val ops : t -> Op.t list
val output : t -> string

val validate : m:int -> n:int -> t -> (unit, string) result
(** Checks, for a query with [m] conditions and [n] sources: variable
    definitions precede uses; set operations apply to item sets and
    local selections to loaded relations; condition and source indexes
    are in range; rebinding a variable keeps its kind; the output is a
    defined item set. *)

val source_query_count : t -> int
(** Number of operations that query a source. *)

val is_filter : t -> bool
(** Only selection queries and local set operations (Section 2.5.1). *)

val is_simple : t -> bool
(** Only [sq], [sjq], [∪], [∩] (Section 2.3): no loading, no
    difference. *)

(** How a round (one condition) treats one source. *)
type action = By_select | By_semijoin

(** The per-condition structure of a round-shaped plan: conditions are
    processed in [cond] order, each source independently by selection or
    semijoin (the inputs of the semijoins being the previous round's
    result). *)
type round = { cond : int; actions : action array }

val rounds : n:int -> t -> (round list, string) result
(** Reconstructs the round structure, or explains why the plan is not
    round-shaped. Accepted shape per round: the [n] per-source queries
    (in any order), their union, and an intersection with the previous
    round's result — the intersection may be omitted when every source
    was handled by semijoin (Figure 3's pure-semijoin rounds). Round 1
    must be all selections. *)

val is_semijoin_adaptive : n:int -> t -> bool
(** Round-shaped (Section 2.5.3). *)

val is_semijoin : n:int -> t -> bool
(** Round-shaped with a uniform per-round action (Section 2.5.2). *)

val pp : ?source_name:(int -> string) -> Format.formatter -> t -> unit
(** Numbered steps in the paper's notation, as in Figure 2. *)
