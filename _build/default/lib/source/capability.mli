(** What a source's wrapper can answer (Section 2.3).

    All sources support selection queries. Semijoin queries may be
    answered natively, emulated through per-binding point selections
    ([c AND M = m]), or be impossible altogether — in which case the
    cost model assigns them infinite cost and no plan uses them. *)

type t = {
  native_semijoin : bool;  (** wrapper accepts a set of bindings at once *)
  point_select : bool;
      (** wrapper accepts [c AND M = m]; enables semijoin emulation *)
  load : bool;  (** wrapper can ship its entire relation ([lq]) *)
}

val full : t
(** Everything supported. *)

val no_semijoin : t
(** Selection and point-selects only: semijoins must be emulated. *)

val minimal : t
(** Selection queries only: semijoins are unsupported (infinite cost). *)

val pp : Format.formatter -> t -> unit
