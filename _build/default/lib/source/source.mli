(** A wrapped source: relation + capabilities + network profile + meter.

    This is the execution-side view of a source. Every operation charges
    its actual cost (a function of the real answer sizes, not estimates)
    to the source's meter and also returns it, so plan executions can be
    accounted per step and per source. *)

open Fusion_data
open Fusion_cond

type t

exception Unsupported of string
(** Raised when a plan asks a source for an operation its wrapper cannot
    answer (e.g. a semijoin at a {!Capability.minimal} source). A correct
    optimizer never produces such plans, because the cost model prices
    them at infinity. *)

exception Timeout of string
(** An injected transient failure: the request was sent (and its
    overhead charged) but no answer came back. Autonomous Internet
    sources fail; the executor's retry policy decides what happens
    next. *)

type fault = { probability : float; prng : Fusion_stats.Prng.t }
(** Each network request independently times out with [probability]. *)

val create :
  ?capability:Capability.t -> ?profile:Fusion_net.Profile.t -> ?fault:fault ->
  Relation.t -> t
(** Defaults: {!Capability.full}, {!Fusion_net.Profile.default}, no
    faults. *)

val set_fault : t -> fault option -> unit
(** Replace the fault injector (e.g. to break a source mid-session in
    tests). *)

val name : t -> string
val relation : t -> Relation.t
val schema : t -> Schema.t
val capability : t -> Capability.t
val profile : t -> Fusion_net.Profile.t

val select_query : t -> Cond.t -> Item_set.t * float
(** [sq(c, R)]: items of [R] with a tuple satisfying [c], and the actual
    cost charged. *)

val semijoin_query : t -> Cond.t -> Item_set.t -> Item_set.t * float
(** [sjq(c, R, X)]: the subset of [X] with a matching tuple. Uses the
    native wrapper operation when available, otherwise emulates it with
    one point selection per binding (each paying the request overhead).
    @raise Unsupported when the wrapper supports neither. *)

val load_query : t -> Relation.t * float
(** [lq(R)]: ships the whole relation (charged per tuple).
    @raise Unsupported when the wrapper cannot ship relations. *)

val fetch_records : t -> Item_set.t -> Tuple.t list * float
(** Phase-2 operation: full records of the given items (charged one
    request plus per-tuple transfer; the item set is shipped like a
    semijoin set). *)

val totals : t -> Fusion_net.Meter.totals
(** Traffic and cost accumulated so far. *)

val reset_meter : t -> unit

val pp : Format.formatter -> t -> unit
