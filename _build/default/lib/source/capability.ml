type t = { native_semijoin : bool; point_select : bool; load : bool }

let full = { native_semijoin = true; point_select = true; load = true }
let no_semijoin = { native_semijoin = false; point_select = true; load = true }
let minimal = { native_semijoin = false; point_select = false; load = false }

let pp ppf t =
  let flag name b = if b then [ name ] else [] in
  let flags = flag "sjq" t.native_semijoin @ flag "point" t.point_select @ flag "lq" t.load in
  Format.fprintf ppf "[sq%s]"
    (match flags with [] -> "" | fs -> ";" ^ String.concat ";" fs)
