lib/source/capability.mli: Format
