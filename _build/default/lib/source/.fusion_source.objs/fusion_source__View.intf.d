lib/source/view.mli: Fusion_data Relation Schema
