lib/source/source.ml: Capability Cond Format Fusion_cond Fusion_data Fusion_net Fusion_stats Item_set List Printf Relation
