lib/source/source.mli: Capability Cond Format Fusion_cond Fusion_data Fusion_net Fusion_stats Item_set Relation Schema Tuple
