lib/source/capability.ml: Format String
