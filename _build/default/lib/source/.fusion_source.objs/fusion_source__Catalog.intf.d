lib/source/catalog.mli: Source
