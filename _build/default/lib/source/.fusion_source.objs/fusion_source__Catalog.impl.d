lib/source/catalog.ml: Buffer Capability Csv_io Filename Fusion_data Fusion_net Fusion_oem In_channel List Printf Relation Source String View
