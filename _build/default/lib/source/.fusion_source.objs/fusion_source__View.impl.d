lib/source/view.ml: Array Fusion_data List Option Printf Relation Schema Tuple Value
