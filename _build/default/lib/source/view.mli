(** Schema mapping: exporting an internal relation under the common view.

    Section 2.1: "Internally, each source can use a different model, but
    the wrapper maps it to the common view we are using." This module is
    that mapping for relational sources — attribute renaming and
    reordering from the source's internal schema to the federation's
    shared schema. *)

open Fusion_data

val export :
  common:Schema.t -> mapping:(string * string) list -> Relation.t ->
  (Relation.t, string) result
(** [export ~common ~mapping internal] materializes [internal] under
    [common]. [mapping] pairs are [(common attribute, internal
    attribute)]; every attribute of [common] must be mapped exactly
    once, mapped attributes must exist in the internal schema with the
    same type, and the merge attributes must correspond. The result
    carries the internal relation's name and data. *)

val identity_mapping : Schema.t -> (string * string) list
(** [(a, a)] for every attribute — for sources already speaking the
    common schema. *)
