lib/oem/oem.ml: Buffer Format Fusion_data List Printf String Value
