lib/oem/extract.mli: Fusion_data Oem Relation Schema
