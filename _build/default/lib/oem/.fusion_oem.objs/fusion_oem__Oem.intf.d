lib/oem/oem.mli: Format Fusion_data Value
