lib/oem/extract.ml: Fusion_data In_channel List Oem Option Printf Relation Result Schema Value
