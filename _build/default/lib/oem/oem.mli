(** A small OEM-style semistructured object model.

    The paper notes that its interest in fusion queries "emerged from
    the TSIMMIS project which uses a semistructured object model" and
    that the algorithms "can be extended in a straightforward way to
    other data models" (Section 2.1). This module provides that other
    data model: labeled, possibly irregular object trees, plus path
    selection — enough for a wrapper to export a relational view of a
    semistructured source (see {!Extract}).

    Textual syntax (whitespace-separated, [#] comments):

    {v { violation { lic "J55" type "dui" year 1993 }
         violation { lic "T21" type "sp"  year 1994 extra { note "x" } } } v}

    Atoms are quoted strings, integers, floats, [true]/[false] or
    [null]; objects are brace-delimited label/value lists; labels may
    repeat. *)

open Fusion_data

type t =
  | Atom of Value.t
  | Object of (string * t) list  (** label/subobject pairs, order kept *)

val select : t -> string list -> t list
(** [select obj path] — all subobjects reachable by following the
    labels of [path] from [obj], in document order. [select obj []] is
    [[obj]]. Repeated labels fan out. *)

val first_atom : t -> string list -> Value.t option
(** The first {!Atom} reached by the path, if any. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** The textual syntax above; re-parseable by {!parse}. *)

val to_string : t -> string

val parse : string -> (t, string) result
