open Fusion_data

type t = Atom of Value.t | Object of (string * t) list

let rec select obj path =
  match path with
  | [] -> [ obj ]
  | label :: rest -> (
    match obj with
    | Atom _ -> []
    | Object children ->
      List.concat_map
        (fun (l, child) -> if l = label then select child rest else [])
        children)

let first_atom obj path =
  let rec first = function
    | [] -> None
    | Atom v :: _ -> Some v
    | Object _ :: rest -> first rest
  in
  first (select obj path)

let rec equal a b =
  match a, b with
  | Atom x, Atom y -> Value.equal x y
  | Object xs, Object ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (l1, c1) (l2, c2) -> l1 = l2 && equal c1 c2) xs ys
  | _ -> false

let rec pp ppf = function
  | Atom (Value.String s) -> Format.fprintf ppf "%S" s
  | Atom Value.Null -> Format.pp_print_string ppf "null"
  | Atom (Value.Float f) ->
    (* Keep the decimal point so the round trip stays a float. *)
    Format.fprintf ppf "%F" f
  | Atom v -> Value.pp ppf v
  | Object children ->
    Format.fprintf ppf "@[<hv 2>{";
    List.iter (fun (label, child) -> Format.fprintf ppf "@ %s %a" label pp child) children;
    Format.fprintf ppf "@;<1 -2>}@]"

let to_string t = Format.asprintf "%a" pp t

(* --- parser ------------------------------------------------------------- *)

type token = Lbrace | Rbrace | Word of string | Quoted of string

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let error = ref None in
  let i = ref 0 in
  while !i < n && !error = None do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' then begin
      tokens := Lbrace :: !tokens;
      incr i
    end
    else if c = '}' then begin
      tokens := Rbrace :: !tokens;
      incr i
    end
    else if c = '"' then begin
      let buffer = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while !i < n && not !closed do
        if input.[!i] = '"' then closed := true
        else if input.[!i] = '\\' && !i + 1 < n then begin
          Buffer.add_char buffer input.[!i + 1];
          incr i
        end
        else Buffer.add_char buffer input.[!i];
        incr i
      done;
      if not !closed then error := Some "unterminated string"
      else tokens := Quoted (Buffer.contents buffer) :: !tokens
    end
    else begin
      let start = !i in
      while
        !i < n
        &&
        match input.[!i] with
        | ' ' | '\t' | '\n' | '\r' | '{' | '}' | '"' | '#' -> false
        | _ -> true
      do
        incr i
      done;
      if !i = start then begin
        error := Some (Printf.sprintf "unexpected character %C at offset %d" c start);
        incr i
      end
      else tokens := Word (String.sub input start (!i - start)) :: !tokens
    end
  done;
  match !error with Some msg -> Error msg | None -> Ok (List.rev !tokens)

let atom_of_word word =
  match word with
  | "null" -> Ok (Atom Value.Null)
  | "true" -> Ok (Atom (Value.Bool true))
  | "false" -> Ok (Atom (Value.Bool false))
  | _ -> (
    match int_of_string_opt word with
    | Some i -> Ok (Atom (Value.Int i))
    | None -> (
      match float_of_string_opt word with
      | Some f -> Ok (Atom (Value.Float f))
      | None -> Error (Printf.sprintf "expected a value, found %S" word)))

let parse input =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* tokens = tokenize input in
  (* value := '{' (label value)* '}' | atom *)
  let rec parse_value tokens =
    match tokens with
    | Lbrace :: rest -> parse_children [] rest
    | Quoted s :: rest -> Ok (Atom (Value.String s), rest)
    | Word w :: rest ->
      let* atom = atom_of_word w in
      Ok (atom, rest)
    | Rbrace :: _ -> Error "unexpected '}'"
    | [] -> Error "unexpected end of input"
  and parse_children acc tokens =
    match tokens with
    | Rbrace :: rest -> Ok (Object (List.rev acc), rest)
    | Word label :: rest ->
      let* child, rest = parse_value rest in
      parse_children ((label, child) :: acc) rest
    | Quoted _ :: _ -> Error "expected a label, found a string"
    | Lbrace :: _ -> Error "expected a label, found '{'"
    | [] -> Error "missing '}'"
  in
  let* value, rest = parse_value tokens in
  match rest with [] -> Ok value | _ -> Error "trailing input after the object"
