(** Relation schemas.

    All sources participating in a fusion query export the same schema
    (Section 2.1 of the paper), which designates one attribute as the
    {e merge attribute} [M] identifying the real-world entity a tuple
    refers to. *)

type t

val create : merge:string -> (string * Value.ty) list -> (t, string) result
(** [create ~merge attrs] builds a schema from an ordered attribute list.
    Fails if [merge] is not among the attribute names or if a name is
    duplicated. *)

val create_exn : merge:string -> (string * Value.ty) list -> t

val merge : t -> string
(** Name of the merge attribute. *)

val merge_pos : t -> int
(** Position of the merge attribute. *)

val arity : t -> int

val attrs : t -> (string * Value.ty) list
(** Attributes in declaration order. *)

val pos : t -> string -> int option
(** Position of a named attribute. *)

val pos_exn : t -> string -> int
(** @raise Not_found if the attribute does not exist. *)

val ty : t -> string -> Value.ty option

val mem : t -> string -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
