type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Tuple.t array;
  mutable used : int;
  mutable version : int;
  index : (Value.t, int list) Hashtbl.t; (* item -> row positions *)
}

let create ~name schema =
  { name; schema; rows = [||]; used = 0; version = 0; index = Hashtbl.create 64 }

let version t = t.version

let name t = t.name
let schema t = t.schema
let cardinality t = t.used

let ensure_capacity t =
  if t.used = Array.length t.rows then begin
    let capacity = max 16 (2 * Array.length t.rows) in
    let rows = Array.make capacity [||] in
    Array.blit t.rows 0 rows 0 t.used;
    t.rows <- rows
  end

let insert t tuple =
  ensure_capacity t;
  t.rows.(t.used) <- tuple;
  let item = Tuple.item t.schema tuple in
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.index item) in
  Hashtbl.replace t.index item (t.used :: existing);
  t.used <- t.used + 1;
  t.version <- t.version + 1

let of_tuples ~name schema tuples =
  let t = create ~name schema in
  List.iter (insert t) tuples;
  t

let of_rows ~name schema rows =
  let t = create ~name schema in
  let rec go = function
    | [] -> Ok t
    | row :: rest -> (
      match Tuple.create schema row with
      | Ok tuple ->
        insert t tuple;
        go rest
      | Error msg -> Error (Printf.sprintf "%s (row %d)" msg (cardinality t + 1)))
  in
  go rows

let iter f t =
  for i = 0 to t.used - 1 do
    f t.rows.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun tuple -> acc := f !acc tuple) t;
  !acc

let tuples t = List.rev (fold (fun acc tu -> tu :: acc) [] t)

let items t = Hashtbl.fold (fun item _ acc -> Item_set.add item acc) t.index Item_set.empty

let distinct_item_count t = Hashtbl.length t.index

let tuples_of_item t item =
  match Hashtbl.find_opt t.index item with
  | None -> []
  | Some positions -> List.map (fun i -> t.rows.(i)) positions

let select_items t p =
  fold
    (fun acc tuple -> if p tuple then Item_set.add (Tuple.item t.schema tuple) acc else acc)
    Item_set.empty t

let semijoin_items t p xs =
  Item_set.filter (fun item -> List.exists p (tuples_of_item t item)) xs

let select_tuples t p = List.filter p (tuples t)

let count_matching t p = Item_set.cardinal (select_items t p)

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s%a [%d tuples]" t.name Schema.pp t.schema t.used;
  iter (fun tuple -> Format.fprintf ppf "@,%a" Tuple.pp tuple) t;
  Format.fprintf ppf "@]"
