lib/data/item_set.mli: Format Value
