lib/data/relation.mli: Format Item_set Schema Tuple Value
