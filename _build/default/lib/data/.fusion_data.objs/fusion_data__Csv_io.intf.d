lib/data/csv_io.mli: Relation Schema
