lib/data/item_set.ml: Format List Set Value
