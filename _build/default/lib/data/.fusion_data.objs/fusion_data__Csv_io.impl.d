lib/data/csv_io.ml: Array Buffer In_channel List Out_channel Printf Relation Schema String Value
