lib/data/tuple.ml: Array Format Int List Printf Schema Value
