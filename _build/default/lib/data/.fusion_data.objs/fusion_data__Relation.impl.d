lib/data/relation.ml: Array Format Hashtbl Item_set List Option Printf Schema Tuple Value
