(** Sets of items (merge-attribute values).

    These are the sets the mediator manipulates in simple plans: results
    of selection and semijoin queries, combined with union, intersection
    and (in postoptimized plans) difference. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Value.t -> t
val mem : Value.t -> t -> bool
val add : Value.t -> t -> t
val cardinal : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val union_list : t list -> t
val inter_list : t list -> t
(** [inter_list []] is {!empty}. *)

val of_list : Value.t list -> t
val to_list : t -> Value.t list
(** Elements in increasing {!Value.compare} order. *)

val iter : (Value.t -> unit) -> t -> unit
val fold : (Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val filter : (Value.t -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
(** Renders as [{v1, v2, ...}]. *)
