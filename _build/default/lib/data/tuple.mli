(** Tuples: flat arrays of values laid out per a {!Schema}. *)

type t = Value.t array

val create : Schema.t -> Value.t list -> (t, string) result
(** Checks arity and (non-[Null]) attribute types against the schema. *)

val create_exn : Schema.t -> Value.t list -> t

val get : t -> int -> Value.t

val get_attr : Schema.t -> t -> string -> Value.t
(** @raise Not_found on an unknown attribute. *)

val item : Schema.t -> t -> Value.t
(** The merge-attribute value of the tuple. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
