(** Scalar values stored in source relations.

    Values are the atoms of the relational substrate: every attribute of
    every tuple holds one. Merge-attribute values ("items" in the paper's
    terminology) are also of this type; see {!Item_set}. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

(** Value types, used by {!Schema} to type attributes. *)
type ty = Tbool | Tint | Tfloat | Tstring

val ty_of : t -> ty option
(** [ty_of v] is the type of [v], or [None] for [Null]. *)

val ty_to_string : ty -> string

val ty_of_string : string -> (ty, string) result
(** Parses ["bool"], ["int"], ["float"], ["string"]. *)

val compare : t -> t -> int
(** Total order. Values of the same type compare naturally; [Int] and
    [Float] compare numerically with each other; otherwise the order is
    [Null < Bool < numeric < String]. *)

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** SQL-ish rendering: strings are single-quoted, [Null] prints as
    [NULL]. *)

val to_string : t -> string

val parse : ty -> string -> (t, string) result
(** [parse ty s] reads the external (CSV) representation of a value of
    type [ty]. The empty string and ["NULL"] denote [Null]. *)

val parse_literal : string -> t
(** Best-effort literal reader used by the condition and SQL parsers:
    quoted text is a [String], [true]/[false] are [Bool], otherwise
    numeric forms are tried before falling back to [String]. *)
