type t = Value.t array

let create schema values =
  let expected = Schema.arity schema in
  let got = List.length values in
  if got <> expected then
    Error (Printf.sprintf "arity mismatch: schema has %d attributes, tuple has %d" expected got)
  else begin
    let arr = Array.of_list values in
    let attrs = Array.of_list (Schema.attrs schema) in
    let bad = ref None in
    Array.iteri
      (fun i v ->
        match Value.ty_of v with
        | None -> () (* Null is allowed anywhere *)
        | Some ty ->
          let name, want = attrs.(i) in
          if ty <> want && !bad = None then
            bad :=
              Some
                (Printf.sprintf "attribute %s: expected %s, got %s" name
                   (Value.ty_to_string want) (Value.ty_to_string ty)))
      arr;
    match !bad with None -> Ok arr | Some msg -> Error msg
  end

let create_exn schema values =
  match create schema values with
  | Ok t -> t
  | Error msg -> invalid_arg ("Tuple.create_exn: " ^ msg)

let get t i = t.(i)

let get_attr schema t name = t.(Schema.pos_exn schema name)

let item schema t = t.(Schema.merge_pos schema)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (Array.to_list t)
