let split_fields line = String.split_on_char ',' line |> List.map String.trim

let parse_header line =
  let fields = split_fields line in
  let merge = ref None in
  let rec go acc = function
    | [] -> (
      match !merge with
      | None -> Error "no merge attribute (mark one field with a leading '*')"
      | Some m -> Ok (m, List.rev acc))
    | field :: rest -> (
      let starred = String.length field > 0 && field.[0] = '*' in
      let field = if starred then String.sub field 1 (String.length field - 1) else field in
      match String.index_opt field ':' with
      | None -> Error (Printf.sprintf "header field %S lacks a ':type' suffix" field)
      | Some i -> (
        let name = String.sub field 0 i in
        let ty_str = String.sub field (i + 1) (String.length field - i - 1) in
        match Value.ty_of_string ty_str with
        | Error msg -> Error msg
        | Ok ty ->
          if starred then merge := Some name;
          go ((name, ty) :: acc) rest))
  in
  go [] fields

let schema_of_header line =
  match parse_header line with
  | Error msg -> Error msg
  | Ok (merge, attrs) -> Schema.create ~merge attrs

let read_string ~name text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty input"
  | header :: rows -> (
    match parse_header header with
    | Error msg -> Error ("header: " ^ msg)
    | Ok (merge, attrs) -> (
      match Schema.create ~merge attrs with
      | Error msg -> Error msg
      | Ok schema ->
        let tys = List.map snd attrs in
        let parse_row line =
          let fields = split_fields line in
          if List.length fields <> List.length tys then
            Error (Printf.sprintf "row %S: wrong field count" line)
          else
            let rec go acc fs ts =
              match fs, ts with
              | [], [] -> Ok (List.rev acc)
              | f :: fs, ty :: ts -> (
                match Value.parse ty f with
                | Ok v -> go (v :: acc) fs ts
                | Error msg -> Error msg)
              | _ -> assert false
            in
            go [] fields tys
        in
        let rec rows_of acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            match parse_row line with
            | Ok row -> rows_of (row :: acc) rest
            | Error _ as e -> e)
        in
        match rows_of [] rows with
        | Error msg -> Error msg
        | Ok rows -> Relation.of_rows ~name schema rows))

let read_file ~name path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> read_string ~name text
  | exception Sys_error msg -> Error msg

let value_to_field = function
  | Value.Null -> ""
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%g" f
  | Value.String s -> s

let write_string relation =
  let schema = Relation.schema relation in
  let merge = Schema.merge schema in
  let buffer = Buffer.create 1024 in
  let header =
    Schema.attrs schema
    |> List.map (fun (name, ty) ->
           Printf.sprintf "%s%s:%s"
             (if name = merge then "*" else "")
             name (Value.ty_to_string ty))
    |> String.concat ","
  in
  Buffer.add_string buffer header;
  Buffer.add_char buffer '\n';
  Relation.iter
    (fun tuple ->
      let fields = Array.to_list tuple |> List.map value_to_field in
      Buffer.add_string buffer (String.concat "," fields);
      Buffer.add_char buffer '\n')
    relation;
  Buffer.contents buffer

let write_file relation path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (write_string relation))
