type t = {
  attrs : (string * Value.ty) array;
  positions : (string, int) Hashtbl.t;
  merge_pos : int;
}

let create ~merge attrs =
  let positions = Hashtbl.create 8 in
  let rec fill i = function
    | [] -> Ok ()
    | (name, _) :: rest ->
      if Hashtbl.mem positions name then
        Error (Printf.sprintf "duplicate attribute %S" name)
      else begin
        Hashtbl.add positions name i;
        fill (i + 1) rest
      end
  in
  match fill 0 attrs with
  | Error _ as e -> e
  | Ok () -> (
    match Hashtbl.find_opt positions merge with
    | None -> Error (Printf.sprintf "merge attribute %S not in schema" merge)
    | Some merge_pos -> Ok { attrs = Array.of_list attrs; positions; merge_pos })

let create_exn ~merge attrs =
  match create ~merge attrs with
  | Ok t -> t
  | Error msg -> invalid_arg ("Schema.create_exn: " ^ msg)

let merge t = fst t.attrs.(t.merge_pos)
let merge_pos t = t.merge_pos
let arity t = Array.length t.attrs
let attrs t = Array.to_list t.attrs
let pos t name = Hashtbl.find_opt t.positions name

let pos_exn t name =
  match Hashtbl.find_opt t.positions name with
  | Some i -> i
  | None -> raise Not_found

let ty t name =
  match pos t name with
  | Some i -> Some (snd t.attrs.(i))
  | None -> None

let mem t name = Hashtbl.mem t.positions name

let equal a b =
  a.merge_pos = b.merge_pos
  && Array.length a.attrs = Array.length b.attrs
  && Array.for_all2 (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && t1 = t2) a.attrs b.attrs

let pp ppf t =
  let pp_attr ppf (i, (name, ty)) =
    Format.fprintf ppf "%s%s:%s"
      (if i = t.merge_pos then "*" else "")
      name (Value.ty_to_string ty)
  in
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
    (List.mapi (fun i a -> (i, a)) (Array.to_list t.attrs))
