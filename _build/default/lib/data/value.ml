type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type ty = Tbool | Tint | Tfloat | Tstring

let ty_of = function
  | Null -> None
  | Bool _ -> Some Tbool
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring

let ty_to_string = function
  | Tbool -> "bool"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"

let ty_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "bool" -> Ok Tbool
  | "int" -> Ok Tint
  | "float" -> Ok Tfloat
  | "string" -> Ok Tstring
  | other -> Error (Printf.sprintf "unknown type %S" other)

(* Rank for cross-type comparisons; Int and Float share a rank so that
   they can be compared numerically. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 2
  | String _ -> 3

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 33
  | Int i -> Hashtbl.hash i
  | Float f ->
    (* Keep Int/Float hashing consistent with [equal] on integral floats. *)
    if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (int_of_float f)
    else Hashtbl.hash f
  | String s -> Hashtbl.hash s

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "'%s'" s

let to_string v = Format.asprintf "%a" pp v

let parse ty s =
  let s = String.trim s in
  if s = "" || s = "NULL" then Ok Null
  else
    match ty with
    | Tbool -> (
      match String.lowercase_ascii s with
      | "true" | "t" | "1" -> Ok (Bool true)
      | "false" | "f" | "0" -> Ok (Bool false)
      | _ -> Error (Printf.sprintf "bad bool %S" s))
    | Tint -> (
      match int_of_string_opt s with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "bad int %S" s))
    | Tfloat -> (
      match float_of_string_opt s with
      | Some f -> Ok (Float f)
      | None -> Error (Printf.sprintf "bad float %S" s))
    | Tstring -> Ok (String s)

let parse_literal s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String (String.sub s 1 (n - 2))
  else if s = "NULL" then Null
  else
    match String.lowercase_ascii s with
    | "true" -> Bool true
    | "false" -> Bool false
    | _ -> (
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> String s))
