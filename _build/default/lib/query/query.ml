open Fusion_cond

type t = { conds : Cond.t array }

let create = function
  | [] -> Error "a fusion query needs at least one condition"
  | conds -> Ok { conds = Array.of_list conds }

let create_exn conds =
  match create conds with
  | Ok t -> t
  | Error msg -> invalid_arg ("Query.create_exn: " ^ msg)

let conditions t = Array.copy t.conds
let condition t i = t.conds.(i)
let m t = Array.length t.conds

let validate schema t =
  let rec go i =
    if i = Array.length t.conds then Ok ()
    else
      match Cond.validate schema t.conds.(i) with
      | Ok () -> go (i + 1)
      | Error msg -> Error (Printf.sprintf "condition c%d: %s" (i + 1) msg)
  in
  go 0

let equal a b =
  Array.length a.conds = Array.length b.conds
  && Array.for_all2 Cond.equal a.conds b.conds

let normalize t =
  let simplified = List.map Cond.simplify (Array.to_list t.conds) in
  let deduped =
    List.fold_left
      (fun acc c -> if List.exists (Cond.equal c) acc then acc else c :: acc)
      [] simplified
    |> List.rev
  in
  let without_true = List.filter (fun c -> not (Cond.equal c Cond.True)) deduped in
  { conds = Array.of_list (if without_true = [] then [ Cond.True ] else without_true) }

let pp ppf t =
  Format.fprintf ppf "@[<v2>fusion query (m=%d):" (m t);
  Array.iteri (fun i c -> Format.fprintf ppf "@,c%d: %a" (i + 1) Cond.pp c) t.conds;
  Format.fprintf ppf "@]"

let qualify alias cond =
  let rec go = function
    | Cond.True -> Cond.True
    | Cond.Cmp (a, op, v) -> Cond.Cmp (alias ^ "." ^ a, op, v)
    | Cond.Between (a, lo, hi) -> Cond.Between (alias ^ "." ^ a, lo, hi)
    | Cond.In_list (a, vs) -> Cond.In_list (alias ^ "." ^ a, vs)
    | Cond.Prefix (a, p) -> Cond.Prefix (alias ^ "." ^ a, p)
    | Cond.Is_null a -> Cond.Is_null (alias ^ "." ^ a)
    | Cond.And (x, y) -> Cond.And (go x, go y)
    | Cond.Or (x, y) -> Cond.Or (go x, go y)
    | Cond.Not x -> Cond.Not (go x)
  in
  go cond

let to_sql ~union ~merge t =
  let n = m t in
  let alias i = Printf.sprintf "u%d" (i + 1) in
  let from =
    List.init n (fun i -> Printf.sprintf "%s %s" union (alias i)) |> String.concat ", "
  in
  let merge_eqs =
    List.init (max 0 (n - 1)) (fun i ->
        Printf.sprintf "%s.%s = %s.%s" (alias i) merge (alias (i + 1)) merge)
  in
  let conds =
    List.mapi
      (fun i c ->
        let text = Cond.to_string (qualify (alias i) c) in
        (* A top-level OR would escape its conjunct under SQL precedence. *)
        match c with Cond.Or _ -> "(" ^ text ^ ")" | _ -> text)
      (Array.to_list t.conds)
  in
  Printf.sprintf "SELECT %s.%s FROM %s WHERE %s" (alias 0) merge from
    (String.concat " AND " (merge_eqs @ conds))
