open Fusion_data
open Fusion_cond

type outcome = Fusion of Query.t * string list | Not_fusion of string

(* WHERE-clause expressions before fusion-pattern analysis: predicates
   tagged with the tuple variable they touch (or [None] when the
   reference was unqualified), plus merge-equality atoms. *)
type wexpr =
  | Pred of string option * Cond.t
  | Merge_eq of (string option * string) * (string option * string)
  | Wand of wexpr * wexpr
  | Wor of wexpr * wexpr
  | Wnot of wexpr

exception Reject of string
(* Internal: SQL parses but is not a fusion query. *)

module P = Parser_state

let parse_ref st =
  let first = P.ident st in
  match P.peek st with
  | Lexer.Sym "." ->
    P.advance st;
    (Some first, P.ident st)
  | _ -> (None, first)

(* Two-token lookahead to tell [u1.M = u2.M] from [u1.M = 'x']. *)
let next_is_ref st =
  match (P.peek st : Lexer.token) with
  | Lexer.Ident id when not (Cond.is_reserved id) -> true
  | _ -> false

let rec parse_wor st =
  let left = parse_wand st in
  if P.keyword st "OR" then Wor (left, parse_wor st) else left

and parse_wand st =
  let left = parse_wunary st in
  if P.keyword st "AND" then Wand (left, parse_wand st) else left

and parse_wunary st =
  if P.keyword st "NOT" then Wnot (parse_wunary st) else parse_watom st

and parse_watom st =
  match P.peek st with
  | Lexer.Sym "(" ->
    P.advance st;
    let inner = parse_wor st in
    P.expect_sym st ")";
    inner
  | Lexer.Ident id when Lexer.is_keyword "TRUE" id ->
    P.advance st;
    Pred (None, Cond.True)
  | Lexer.Ident id when not (Cond.is_reserved id) -> (
    let alias, attr = parse_ref st in
    match P.peek st with
    | Lexer.Sym "=" when next_is_ref { P.tokens = List.tl st.P.tokens } ->
      P.advance st;
      let rhs = parse_ref st in
      Merge_eq ((alias, attr), rhs)
    | _ -> Pred (alias, Cond.parse_predicate_in st ~attr))
  | _ -> P.fail_at st "expected a condition"

(* --- Fusion-pattern analysis ------------------------------------------- *)

let flatten_conjuncts wexpr =
  let rec go acc = function Wand (a, b) -> go (go acc a) b | w -> w :: acc in
  List.rev (go [] wexpr)

(* Resolve an optional alias; unqualified references are only allowed
   when there is a single tuple variable. *)
let resolve aliases = function
  | Some a ->
    if List.mem a aliases then a
    else raise (Reject (Printf.sprintf "unknown tuple variable %S" a))
  | None -> (
    match aliases with
    | [ only ] -> only
    | _ -> raise (Reject "unqualified attribute with several tuple variables"))

(* Convert a WHERE subtree into a single-variable condition; rejects
   subtrees that mix variables or bury merge equalities under OR/NOT. *)
let rec to_cond aliases = function
  | Pred (alias_opt, cond) ->
    let alias =
      match alias_opt with
      | None when Cond.equal cond Cond.True -> None
      | other -> Some (resolve aliases other)
    in
    (alias, cond)
  | Merge_eq _ -> raise (Reject "merge-attribute equality in a non-conjunctive position")
  | Wand (a, b) -> combine aliases (fun x y -> Cond.And (x, y)) a b
  | Wor (a, b) -> combine aliases (fun x y -> Cond.Or (x, y)) a b
  | Wnot a ->
    let alias, cond = to_cond aliases a in
    (alias, Cond.Not cond)

and combine aliases f a b =
  let alias_a, cond_a = to_cond aliases a in
  let alias_b, cond_b = to_cond aliases b in
  let alias =
    match alias_a, alias_b with
    | Some x, Some y when x <> y ->
      raise (Reject (Printf.sprintf "condition mixes tuple variables %S and %S" x y))
    | Some x, _ | _, Some x -> Some x
    | None, None -> None
  in
  (alias, f cond_a cond_b)

(* Union-find over tuple variables, to check the merge-equality chain
   connects them all. *)
let connected aliases merge_eqs =
  let parent = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace parent a a) aliases;
  let rec find a =
    let p = Hashtbl.find parent a in
    if p = a then a
    else begin
      let root = find p in
      Hashtbl.replace parent a root;
      root
    end
  in
  let union a b = Hashtbl.replace parent (find a) (find b) in
  List.iter (fun (a, b) -> union a b) merge_eqs;
  match aliases with
  | [] -> true
  | first :: rest -> List.for_all (fun a -> find a = find first) rest

let analyze ~schema ~aliases wexpr =
  let merge = Schema.merge schema in
  let conjuncts = flatten_conjuncts wexpr in
  let merge_eqs = ref [] in
  let conds = ref [] in
  List.iter
    (fun conjunct ->
      match conjunct with
      | Merge_eq ((a1, attr1), (a2, attr2)) ->
        if attr1 <> merge || attr2 <> merge then
          raise
            (Reject
               (Printf.sprintf "join on %s.%s = %s.%s is not on the merge attribute %S"
                  (Option.value ~default:"?" a1) attr1 (Option.value ~default:"?" a2)
                  attr2 merge));
        merge_eqs := (resolve aliases a1, resolve aliases a2) :: !merge_eqs
      | other -> conds := to_cond aliases other :: !conds)
    conjuncts;
  if not (connected aliases !merge_eqs) then
    raise (Reject "merge-attribute equalities do not connect all tuple variables");
  (* Group conditions per variable, in FROM order; unconditioned
     variables contribute TRUE. *)
  let cond_of alias =
    List.fold_left
      (fun acc (owner, cond) ->
        let belongs = match owner with None -> true | Some a -> a = alias in
        if belongs then (match acc with Cond.True -> cond | _ -> Cond.And (acc, cond))
        else acc)
      Cond.True (List.rev !conds)
  in
  List.map cond_of aliases

let parse_from st ~union =
  let rec go acc =
    let table = P.ident st in
    if not (Lexer.is_keyword union table) then
      raise (Reject (Printf.sprintf "FROM references %S, not the union view %S" table union));
    let alias = P.ident st in
    if List.mem alias acc then raise (Reject (Printf.sprintf "duplicate tuple variable %S" alias));
    let acc = acc @ [ alias ] in
    match P.peek st with
    | Lexer.Sym "," ->
      P.advance st;
      go acc
    | _ -> acc
  in
  go []

let parse_select_list st =
  let rec go acc =
    let item = parse_ref st in
    match P.peek st with
    | Lexer.Sym "," ->
      P.advance st;
      go (item :: acc)
    | _ -> List.rev (item :: acc)
  in
  go []

let parse_query ~schema ~union st =
  P.expect_keyword st "SELECT";
  let select_list = parse_select_list st in
  let sel_alias, sel_attr =
    match select_list with [] -> assert false | first :: _ -> first
  in
  P.expect_keyword st "FROM";
  let aliases = parse_from st ~union in
  P.expect_keyword st "WHERE";
  let wexpr = parse_wor st in
  if not (P.at_eof st) then
    P.fail_at st "trailing input";
  (* Selected column must be the merge attribute of a FROM variable. *)
  let merge = Schema.merge schema in
  if sel_attr <> merge then
    raise (Reject (Printf.sprintf "SELECT returns %S, not the merge attribute %S" sel_attr merge));
  ignore (resolve aliases sel_alias);
  (* Additional projected attributes: phase-2 targets. Aliases are
     irrelevant (the second phase fetches whole records); attributes
     must exist and repeats collapse. *)
  let projection =
    List.fold_left
      (fun acc (alias, attr) ->
        ignore (resolve aliases alias);
        if not (Schema.mem schema attr) then
          raise (P.Parse_error (Printf.sprintf "unknown attribute %S in SELECT" attr));
        if attr = merge || List.mem attr acc then acc else acc @ [ attr ])
      []
      (List.tl select_list)
  in
  let conds = analyze ~schema ~aliases wexpr in
  (* Unknown attributes or ill-typed literals are parse-level errors,
     not fusion rejections. *)
  let query = Query.create_exn conds in
  match Query.validate schema query with
  | Ok () -> (query, projection)
  | Error msg -> raise (P.Parse_error msg)

let parse ~schema ~union text =
  match P.of_string text with
  | Error msg -> Error msg
  | Ok st -> (
    match parse_query ~schema ~union st with
    | query, projection -> Ok (Fusion (query, projection))
    | exception Reject reason -> Ok (Not_fusion reason)
    | exception P.Parse_error msg -> Error msg)

let parse_fusion ~schema ~union text =
  match parse ~schema ~union text with
  | Ok (Fusion (q, [])) -> Ok q
  | Ok (Fusion (_, _ :: _)) ->
    Error "query projects additional attributes; use the two-phase API"
  | Ok (Not_fusion reason) -> Error ("not a fusion query: " ^ reason)
  | Error _ as e -> e
