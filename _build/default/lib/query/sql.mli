(** SQL front-end and fusion-pattern detection.

    Section 5 suggests that an existing optimizer can "implement a module
    that checks if a query is a fusion query (by looking for the
    distinctive pattern of fusion queries)" and route it to the
    specialized algorithms. This module is that checker: it parses the
    paper's SQL form

    {v SELECT u1.M FROM U u1, ..., U um
       WHERE u1.M = ... = um.M AND c1 AND ... AND cm v}

    and decides whether the text denotes a fusion query. *)

open Fusion_data

type outcome =
  | Fusion of Query.t * string list
      (** conditions ordered by the first-mention order of their tuple
          variables in the [FROM] clause; variables without a condition
          get [TRUE]. The string list holds {e additional} projected
          attributes beyond the merge attribute: the paper's two-phase
          processing ([SELECT u1.L, u1.V, ...]) — phase 1 computes the
          matching items, phase 2 fetches these attributes of their
          records. Empty for the classic merge-only form. *)
  | Not_fusion of string  (** syntactically valid SQL, but not a fusion query: why *)

val parse : schema:Schema.t -> union:string -> string -> (outcome, string) result
(** [Error] means the text is not even parseable SQL (or mentions
    unknown attributes / ill-typed literals). [union] is the name of the
    union view (the paper's [U]); every [FROM] entry must reference it.
    The select list starts with a merge-attribute reference, optionally
    followed by further attributes (see {!outcome}). Conditions may
    combine [AND]/[OR]/[NOT] as long as each conjunct touches a single
    tuple variable; with a single tuple variable, attribute references
    may be unqualified. *)

val parse_fusion : schema:Schema.t -> union:string -> string -> (Query.t, string) result
(** Like {!parse} but folds [Not_fusion] into [Error]; rejects queries
    that project additional attributes (use {!parse} and the mediator's
    two-phase API for those). *)
