(** Fusion queries (Section 2.2).

    A fusion query over the union view [U = R_1 ∪ ... ∪ R_n] is a list
    of conditions [c_1 ... c_m]; its answer is the set of items that
    satisfy {e every} condition at {e some} source (possibly a different
    source per condition). *)

open Fusion_cond

type t

val create : Cond.t list -> (t, string) result
(** Fails on an empty condition list. *)

val create_exn : Cond.t list -> t

val conditions : t -> Cond.t array
(** [c_1 ... c_m] in query order. The array is fresh; mutating it does
    not affect the query. *)

val condition : t -> int -> Cond.t
(** [condition q i] is [c_{i+1}] (0-based). *)

val m : t -> int
(** Number of conditions. *)

val validate : Fusion_data.Schema.t -> t -> (unit, string) result
(** Checks every condition against the shared source schema. *)

val equal : t -> t -> bool

val normalize : t -> t
(** Query-level simplification justified by fusion semantics:
    - each condition is simplified ({!Fusion_cond.Cond.simplify});
    - duplicate conditions collapse to one — a second tuple variable
      with the same condition is satisfied by the same evidence, so it
      never constrains the answer;
    - [TRUE] conditions are dropped when other conditions remain — an
      item satisfying any real condition already appears in the union.
    The result has between 1 and [m] conditions and the same answer on
    every source population. *)

val pp : Format.formatter -> t -> unit

val to_sql : union:string -> merge:string -> t -> string
(** Renders the query in the paper's SQL form, re-parseable by
    {!Sql.parse_fusion}. *)
