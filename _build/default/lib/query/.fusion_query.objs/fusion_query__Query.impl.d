lib/query/query.ml: Array Cond Format Fusion_cond List Printf String
