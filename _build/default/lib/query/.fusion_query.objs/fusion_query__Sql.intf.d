lib/query/sql.mli: Fusion_data Query Schema
