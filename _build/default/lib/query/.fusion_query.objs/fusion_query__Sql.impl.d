lib/query/sql.ml: Cond Fusion_cond Fusion_data Hashtbl Lexer List Option Parser_state Printf Query Schema
