lib/query/query.mli: Cond Format Fusion_cond Fusion_data
