(** Synthetic fusion-query workloads.

    Generates worlds of autonomous, overlapping sources with controlled
    cardinalities, per-condition selectivities, inter-condition
    correlation, and heterogeneous capabilities/network profiles — the
    knobs the paper's discussion turns on (autonomy and overlap in
    Section 1, heterogeneity in Section 2.5, dependence of conditions in
    Section 3). Everything is deterministic in the seed. *)

open Fusion_data
open Fusion_source

(** Fractions of sources with degraded capabilities or profiles; the
    remainder are full-capability, default-profile sources. Fractions
    apply independently (a source can be both slow and semijoin-less). *)
type heterogeneity = {
  no_semijoin : float;  (** no native semijoin: emulation via point selects *)
  minimal : float;  (** selection queries only (semijoin impossible) *)
  slow : float;  (** all network charges scaled by [slow_factor] *)
  tiny : float;  (** cardinality scaled down to [tiny_factor] *)
}

val homogeneous : heterogeneity
(** All sources full-capability and identical. *)

type spec = {
  n_sources : int;
  universe : int;  (** distinct items in the world *)
  tuples_per_source : int * int;  (** inclusive range *)
  selectivities : float array;
      (** one entry per condition: fraction of the attribute domain the
          condition accepts *)
  item_skew : float;  (** 0 = uniform item popularity; >0 = Zipf skew *)
  correlation : float;
      (** probability that a tuple's attribute [A_{i+1}] copies [A_i],
          correlating the conditions; 0 = independent *)
  entity_correlation : float;
      (** probability that an attribute value is determined by the
          entity itself (the same driver has the same record wherever
          she appears) rather than drawn per tuple; 1 makes the set of
          items matching a condition identical across the sources that
          hold them — the high-overlap regime of the paper's
          motivation *)
  heterogeneity : heterogeneity;
  slow_factor : float;
  tiny_factor : float;
  selectivity_jitter : float;
      (** per-source variation of condition selectivity: each source
          draws its attribute values from a domain stretched by a factor
          uniform in [1-j, 1+j], so the same threshold matches a
          different fraction at every source (content heterogeneity);
          0 = identical distributions everywhere *)
  seed : int;
}

val default_spec : spec
(** 8 sources, universe 2000, 300–600 tuples each, 3 conditions with
    selectivities 0.1/0.2/0.3, uniform items, independent conditions,
    homogeneous sources, seed 42. *)

type instance = {
  schema : Schema.t;
  sources : Source.t array;
  query : Fusion_query.Query.t;
  spec : spec;
}

val generate : spec -> instance
(** The schema is [*M:string, A1..Am:int]; condition [c_i] is
    [A_i < threshold_i] with thresholds chosen from the selectivities
    over the attribute domain [0, 1000). *)

val save : dir:string -> instance -> unit
(** Writes the instance as one CSV per source plus a [catalog.ini]
    declaring each source's capability and network profile, so that
    generated federations (including heterogeneous ones) survive a
    round trip through {!Fusion_source.Catalog.load}. Creates [dir] if
    needed. A [query.sql] file holds the instance's query. *)

val fig1 : unit -> instance
(** The paper's Figure 1 DMV instance: three state databases with
    license (merge), violation and date attributes, and the query
    "drivers with both a dui and a sp violation". Its answer is
    {e {J55, T21}}. *)
