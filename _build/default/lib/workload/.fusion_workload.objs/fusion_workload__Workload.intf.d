lib/workload/workload.mli: Fusion_data Fusion_query Fusion_source Schema Source
