open Fusion_data
open Fusion_cond
open Fusion_source
module Prng = Fusion_stats.Prng
module Dist = Fusion_stats.Dist

type heterogeneity = { no_semijoin : float; minimal : float; slow : float; tiny : float }

let homogeneous = { no_semijoin = 0.0; minimal = 0.0; slow = 0.0; tiny = 0.0 }

type spec = {
  n_sources : int;
  universe : int;
  tuples_per_source : int * int;
  selectivities : float array;
  item_skew : float;
  correlation : float;
  entity_correlation : float;
  heterogeneity : heterogeneity;
  slow_factor : float;
  tiny_factor : float;
  selectivity_jitter : float;
  seed : int;
}

let default_spec =
  {
    n_sources = 8;
    universe = 2000;
    tuples_per_source = (300, 600);
    selectivities = [| 0.1; 0.2; 0.3 |];
    item_skew = 0.0;
    correlation = 0.0;
    entity_correlation = 0.0;
    heterogeneity = homogeneous;
    slow_factor = 10.0;
    tiny_factor = 0.02;
    selectivity_jitter = 0.0;
    seed = 42;
  }

type instance = {
  schema : Schema.t;
  sources : Source.t array;
  query : Fusion_query.Query.t;
  spec : spec;
}

(* Attribute domain for the condition attributes A1..Am. *)
let domain = 1000

let schema_for m =
  let attrs =
    ("M", Value.Tstring) :: List.init m (fun i -> (Printf.sprintf "A%d" (i + 1), Value.Tint))
  in
  Schema.create_exn ~merge:"M" attrs

let item_name k = Value.String (Printf.sprintf "I%06d" k)

let conditions_of selectivities =
  Array.to_list
    (Array.mapi
       (fun i sel ->
         let threshold = int_of_float (Float.round (sel *. float_of_int domain)) in
         Cond.Cmp (Printf.sprintf "A%d" (i + 1), Cond.Lt, Value.Int threshold))
       selectivities)

let generate spec =
  let m = Array.length spec.selectivities in
  let schema = schema_for m in
  let prng = Prng.create spec.seed in
  let item_dist =
    if spec.item_skew > 0.0 then Dist.zipf ~skew:spec.item_skew spec.universe
    else Dist.uniform spec.universe
  in
  let lo, hi = spec.tuples_per_source in
  let make_source j =
    let source_prng = Prng.split prng in
    let h = spec.heterogeneity in
    let tiny = Prng.bernoulli source_prng h.tiny in
    let slow = Prng.bernoulli source_prng h.slow in
    let capability =
      if Prng.bernoulli source_prng h.minimal then Capability.minimal
      else if Prng.bernoulli source_prng h.no_semijoin then Capability.no_semijoin
      else Capability.full
    in
    let cardinality =
      let base = lo + Prng.int source_prng (hi - lo + 1) in
      if tiny then max 1 (int_of_float (float_of_int base *. spec.tiny_factor)) else base
    in
    let relation = Relation.create ~name:(Printf.sprintf "R%d" (j + 1)) schema in
    (* Content heterogeneity: this source's attribute values spread over
       a stretched/shrunk domain, shifting every condition's local
       selectivity. *)
    let stretch =
      if spec.selectivity_jitter > 0.0 then
        1.0 -. spec.selectivity_jitter
        +. Prng.float source_prng (2.0 *. spec.selectivity_jitter)
      else 1.0
    in
    let draw_attr prng = int_of_float (float_of_int (Prng.int prng domain) *. stretch) in
    for _ = 1 to cardinality do
      let item_index = Dist.sample item_dist source_prng in
      let item = item_name item_index in
      let attr_values = Array.make m 0 in
      for i = 0 to m - 1 do
        attr_values.(i) <-
          (if i > 0 && Prng.bernoulli source_prng spec.correlation then attr_values.(i - 1)
           else if Prng.bernoulli source_prng spec.entity_correlation then
             (* The entity's own value for this attribute: every source
                observing the entity reports the same thing. *)
             Prng.int (Prng.create ((item_index * 8191) + i)) domain
           else draw_attr source_prng)
      done;
      let values = item :: List.map (fun v -> Value.Int v) (Array.to_list attr_values) in
      Relation.insert relation (Tuple.create_exn schema values)
    done;
    let profile =
      if slow then Fusion_net.Profile.scale spec.slow_factor Fusion_net.Profile.default
      else Fusion_net.Profile.default
    in
    Source.create ~capability ~profile relation
  in
  {
    schema;
    sources = Array.init spec.n_sources make_source;
    query = Fusion_query.Query.create_exn (conditions_of spec.selectivities);
    spec;
  }

let save ~dir instance =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let entries =
    Array.to_list
      (Array.map
         (fun source ->
           let relation = Source.relation source in
           let file = Relation.name relation ^ ".csv" in
           Csv_io.write_file relation (Filename.concat dir file);
           (source, file))
         instance.sources)
  in
  Out_channel.with_open_text (Filename.concat dir "catalog.ini") (fun oc ->
      Out_channel.output_string oc (Fusion_source.Catalog.render entries));
  Out_channel.with_open_text (Filename.concat dir "query.sql") (fun oc ->
      Out_channel.output_string oc
        (Fusion_query.Query.to_sql ~union:"U" ~merge:(Schema.merge instance.schema)
           instance.query);
      Out_channel.output_char oc '\n')

let fig1 () =
  let schema =
    Schema.create_exn ~merge:"L"
      [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]
  in
  let row l v d = [ Value.String l; Value.String v; Value.Int d ] in
  let relation name rows =
    match Relation.of_rows ~name schema rows with
    | Ok r -> r
    | Error msg -> invalid_arg msg
  in
  let r1 =
    relation "R1" [ row "J55" "dui" 1993; row "T21" "sp" 1994; row "T80" "dui" 1993 ]
  in
  let r2 =
    relation "R2" [ row "T21" "dui" 1996; row "J55" "sp" 1996; row "T11" "sp" 1993 ]
  in
  let r3 =
    relation "R3" [ row "T21" "sp" 1993; row "S07" "sp" 1996; row "S07" "sp" 1993 ]
  in
  let query =
    Fusion_query.Query.create_exn
      [
        Cond.Cmp ("V", Cond.Eq, Value.String "dui");
        Cond.Cmp ("V", Cond.Eq, Value.String "sp");
      ]
  in
  {
    schema;
    sources = Array.map Source.create [| r1; r2; r3 |];
    query;
    spec = { default_spec with n_sources = 3; selectivities = [| 0.5; 0.5 |] };
  }
