(** Accumulates the traffic and cost actually incurred by executing
    queries against a source; the execution-side counterpart of the
    optimizer's cost {e estimates}. *)

type t

type totals = {
  requests : int;
  items_sent : int;
  items_received : int;
  tuples_received : int;
  cost : float;
}

val create : unit -> t

val record :
  t -> Profile.t -> items_sent:int -> items_received:int -> tuples_received:int -> float
(** Charges one request with the given traffic under the profile;
    returns the cost of this request. *)

val totals : t -> totals

val reset : t -> unit

val zero : totals

val add : totals -> totals -> totals

val pp_totals : Format.formatter -> totals -> unit
