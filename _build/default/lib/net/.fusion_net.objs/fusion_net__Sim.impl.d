lib/net/sim.ml: Array Bytes Float Format Hashtbl Int List Printf
