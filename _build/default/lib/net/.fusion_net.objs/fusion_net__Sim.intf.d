lib/net/sim.mli: Format
