lib/net/meter.ml: Format Profile
