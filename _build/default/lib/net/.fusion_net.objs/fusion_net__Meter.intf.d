lib/net/meter.mli: Format Profile
