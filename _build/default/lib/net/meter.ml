type totals = {
  requests : int;
  items_sent : int;
  items_received : int;
  tuples_received : int;
  cost : float;
}

type t = { mutable current : totals }

let zero = { requests = 0; items_sent = 0; items_received = 0; tuples_received = 0; cost = 0.0 }

let create () = { current = zero }

let add a b =
  {
    requests = a.requests + b.requests;
    items_sent = a.items_sent + b.items_sent;
    items_received = a.items_received + b.items_received;
    tuples_received = a.tuples_received + b.tuples_received;
    cost = a.cost +. b.cost;
  }

let record t (profile : Profile.t) ~items_sent ~items_received ~tuples_received =
  let cost =
    profile.request_overhead
    +. (profile.send_per_item *. float_of_int items_sent)
    +. (profile.recv_per_item *. float_of_int items_received)
    +. (profile.recv_per_tuple *. float_of_int tuples_received)
  in
  t.current <-
    add t.current { requests = 1; items_sent; items_received; tuples_received; cost };
  cost

let totals t = t.current

let reset t = t.current <- zero

let pp_totals ppf t =
  Format.fprintf ppf "%d requests, %d items sent, %d items recv, %d tuples recv, cost %.1f"
    t.requests t.items_sent t.items_received t.tuples_received t.cost
