lib/mediator/mediator.mli: Format Fusion_core Fusion_data Fusion_net Fusion_plan Fusion_query Fusion_source Item_set Opt_env Optimized Optimizer Schema Source Tuple Value
