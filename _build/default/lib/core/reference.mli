(** Ground-truth fusion-query semantics, computed directly on the source
    relations without going through wrappers or plans: the answer is
    [∩_i ∪_j { items satisfying c_i at R_j }]. Used to check that every
    optimizer's plan executes to the correct answer. *)

open Fusion_data
open Fusion_cond
open Fusion_source

val answer : sources:Source.t array -> conds:Cond.t array -> Item_set.t

val answer_query : sources:Source.t array -> Fusion_query.Query.t -> Item_set.t
