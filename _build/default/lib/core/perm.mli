(** Permutation enumeration for the optimizers' "loop A" over condition
    orderings. *)

val iter : int -> (int array -> unit) -> unit
(** [iter k f] calls [f] on every permutation of [0..k-1] (Heap's
    algorithm). The array is reused across calls — copy it if you keep
    it. *)

val count : int -> int
(** [k!]; raises [Invalid_argument] beyond 20 (overflow). *)
