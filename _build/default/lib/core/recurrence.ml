open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

type mode = Per_condition | Per_source

let evaluate (env : Opt_env.t) ~mode ordering =
  let n = Opt_env.n env and m = Array.length ordering in
  let model = env.model and est = env.est in
  let decisions = Array.init m (fun _ -> Array.make n Plan.By_select) in
  (* Round 1: selection queries everywhere. *)
  let c0 = env.conds.(ordering.(0)) in
  let cost = ref 0.0 in
  for j = 0 to n - 1 do
    cost := !cost +. model.Model.sq_cost env.sources.(j) c0
  done;
  let x = ref (Estimator.first_round_size est c0) in
  for r = 1 to m - 1 do
    let c = env.conds.(ordering.(r)) in
    (match mode with
    | Per_condition ->
      let sel = ref 0.0 and sjq = ref 0.0 in
      for j = 0 to n - 1 do
        sel := !sel +. model.Model.sq_cost env.sources.(j) c;
        sjq := !sjq +. model.Model.sjq_cost env.sources.(j) c !x
      done;
      if !sjq < !sel then begin
        Array.fill decisions.(r) 0 n Plan.By_semijoin;
        cost := !cost +. !sjq
      end
      else cost := !cost +. !sel
    | Per_source ->
      for j = 0 to n - 1 do
        let sel = model.Model.sq_cost env.sources.(j) c in
        let sjq = model.Model.sjq_cost env.sources.(j) c !x in
        if sjq < sel then begin
          decisions.(r).(j) <- Plan.By_semijoin;
          cost := !cost +. sjq
        end
        else cost := !cost +. sel
      done);
    x := Estimator.shrink est c !x
  done;
  (!cost, decisions)

let cost_of (env : Opt_env.t) ordering decisions =
  let n = Opt_env.n env and m = Array.length ordering in
  let model = env.model and est = env.est in
  let c0 = env.conds.(ordering.(0)) in
  let cost = ref 0.0 in
  for j = 0 to n - 1 do
    cost := !cost +. model.Model.sq_cost env.sources.(j) c0
  done;
  let x = ref (Estimator.first_round_size est c0) in
  for r = 1 to m - 1 do
    let c = env.conds.(ordering.(r)) in
    for j = 0 to n - 1 do
      cost :=
        !cost
        +.
        match decisions.(r).(j) with
        | Plan.By_select -> model.Model.sq_cost env.sources.(j) c
        | Plan.By_semijoin -> model.Model.sjq_cost env.sources.(j) c !x
    done;
    x := Estimator.shrink est c !x
  done;
  !cost
