(** Robustness analysis under selectivity uncertainty.

    The paper leans on the independence assumption because "when dealing
    with autonomous sources over the Internet, we often have no
    information about the dependence of conditions". This module
    quantifies the exposure: propagate a ± factor of uncertainty on
    every matching-count estimate through the SJA recurrence with
    interval arithmetic, yielding cost bounds for a plan, and compare
    candidate plans by their worst case.

    Interval recurrence: [|X_i|] bounds scale the shrink factor by the
    uncertainty; selection costs inherit the answer-size uncertainty;
    semijoin costs take the candidate-set bounds. All cost functions are
    monotone in the sizes (the model's axioms), so evaluating at the
    interval endpoints bounds the true range under the model. *)

type interval = { lo : float; hi : float }

val plan_cost_interval :
  Opt_env.t -> uncertainty:float -> int array -> Fusion_plan.Plan.action array array ->
  interval
(** Cost bounds of a round-shaped plan (ordering + decisions) when every
    matching-count estimate may be off by a factor in
    [[1/(1+u), 1+u]]. [uncertainty] = 0 collapses to the recurrence. *)

val sja_robust : Opt_env.t -> uncertainty:float -> Optimized.t
(** Minimizes the {e worst-case} cost over all orderings (per-source
    decisions are made against the worst case too). [Optimized.est_cost]
    is the chosen plan's upper bound. *)
