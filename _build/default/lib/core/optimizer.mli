(** Front door of the optimizer suite: pick an algorithm by name. *)

type algo =
  | Filter
  | Sj
  | Sja
  | Sja_plus
  | Greedy_sj
  | Greedy_sja
  | Sja_bb  (** branch-and-bound: SJA's optimum, pruned search *)
  | Hill_climb  (** randomized iterative improvement over orderings *)

val all : algo list
(** In increasing plan-space order: FILTER, SJ, SJA, SJA+, the two
    greedy variants, then the alternative searches (branch-and-bound,
    hill climbing). *)

val name : algo -> string

val of_name : string -> (algo, string) result
(** Accepts the {!name} forms, case-insensitively. *)

val optimize : algo -> Opt_env.t -> Optimized.t
