open Fusion_data
open Fusion_cond
open Fusion_source

let satisfying_somewhere sources cond =
  Array.fold_left
    (fun acc source ->
      let relation = Source.relation source in
      let pred tuple = Cond.eval (Relation.schema relation) cond tuple in
      Item_set.union acc (Relation.select_items relation pred))
    Item_set.empty sources

let answer ~sources ~conds =
  Item_set.inter_list
    (Array.to_list (Array.map (satisfying_somewhere sources) conds))

let answer_query ~sources query =
  answer ~sources ~conds:(Fusion_query.Query.conditions query)
