(** Randomized iterative improvement over condition orderings.

    Between the greedy heuristic (O(mn), may settle for a mediocre
    ordering) and the exhaustive/branch-and-bound search (exact, but
    factorial in m), classic query optimization offers hill climbing
    with random restarts. A state is a condition ordering; its cost is
    the SJA recurrence; neighbors swap two positions. Deterministic in
    the seed.

    For the paper's usual m ⩽ 5 this is pointless — SJA is fast and
    exact. It earns its keep when fusion queries grow many conditions
    (m ⩾ 8), where X6e measures how close it gets to the greedy and
    exact costs. *)

val sja_hill_climb : ?restarts:int -> ?seed:int -> Opt_env.t -> Optimized.t
(** Defaults: 4 restarts, seed 1. The first restart starts from the
    greedy ordering (so the result is never worse than greedy); later
    restarts start from random permutations. Each climb repeatedly
    applies the best improving pairwise swap until a local optimum. *)
