(** Emits round-shaped plans from an ordering and per-round decisions,
    with the variable naming of the paper's figures ([X11], [X1], ...). *)

open Fusion_plan

val var : int -> int -> string
(** [var r j] is the per-source variable of round [r] (1-based) and
    source [j] (0-based): ["X<r>_<j+1>"]. *)

val round_var : int -> string
(** ["X<r>"] — the running result after round [r]. *)

val round_shaped : ordering:int array -> decisions:Plan.action array array -> Plan.t
(** [decisions.(r).(j)] says how round [r+1] treats source [j];
    [decisions.(0)] must be all [By_select] (Section 2.5: the first
    condition is always evaluated by selection queries). Semijoin rounds
    read the previous round's variable. The plan ends with the last
    round's variable. *)
