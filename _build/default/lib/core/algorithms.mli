(** The paper's optimization algorithms (Section 3) and their greedy
    variants (from the extended version [24]).

    All run in time linear in the number of sources [n]; FILTER is
    O(mn), SJ and SJA are O(m!·m·n), the greedy variants O(mn + m log m). *)

val filter : Opt_env.t -> Optimized.t
(** The FILTER algorithm: push every condition to every source by
    selection queries, combine at the mediator. No search. *)

val sj : Opt_env.t -> Optimized.t
(** The SJ algorithm (Figure 3): best semijoin plan — all m! orderings,
    one selection-vs-semijoin decision per condition. *)

val sja : Opt_env.t -> Optimized.t
(** The SJA algorithm (Figure 4): best semijoin-adaptive plan — all m!
    orderings, one decision per (condition, source). *)

val greedy_sj : Opt_env.t -> Optimized.t
(** SJ restricted to one heuristic ordering: conditions sorted by
    increasing expected [|X_1|] (most selective first). *)

val greedy_sja : Opt_env.t -> Optimized.t
(** SJA restricted to the same heuristic ordering. *)

val sja_trace : Opt_env.t -> (int array * float) list
(** The full search surface: every condition ordering with its best
    semijoin-adaptive cost, sorted cheapest first — optimizer
    introspection for EXPLAIN-style tooling ("why this ordering?"). *)
