(** The shared inner loop ("loop B") of the SJ and SJA algorithms:
    walk an ordering of the conditions, decide selection-vs-semijoin,
    and accumulate the plan cost estimate. *)

open Fusion_plan

type mode =
  | Per_condition
      (** SJ: compare the {e sums} of the n selection costs and the n
          semijoin costs, pick one strategy for the whole round *)
  | Per_source
      (** SJA: pick the cheaper strategy independently at each source *)

val evaluate : Opt_env.t -> mode:mode -> int array -> float * Plan.action array array
(** [evaluate env ~mode ordering] is the cost of the best round-shaped
    plan for this ordering under [mode], plus its decisions (indexed by
    round, then source). The first round is always all-selection. *)

val cost_of : Opt_env.t -> int array -> Plan.action array array -> float
(** Cost of the round-shaped plan with the {e given} ordering and
    decisions, under the same recurrence. *)
