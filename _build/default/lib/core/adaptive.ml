open Fusion_data
open Fusion_source
open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

type round = {
  cond : int;
  decisions : Plan.action array;
  cost : float;
  candidates : int;
  response : float;
}

type result = {
  answer : Item_set.t;
  total_cost : float;
  response_time : float;
  rounds : round list;
}

(* Price a condition given the actual candidate-set size, choosing the
   best strategy per source. *)
let price (env : Opt_env.t) cond_index x =
  let c = env.conds.(cond_index) in
  let n = Opt_env.n env in
  let decisions = Array.make n Plan.By_select in
  let total = ref 0.0 in
  for j = 0 to n - 1 do
    let sel = env.model.Model.sq_cost env.sources.(j) c in
    let sjq = env.model.Model.sjq_cost env.sources.(j) c x in
    if sjq < sel then begin
      decisions.(j) <- Plan.By_semijoin;
      total := !total +. sjq
    end
    else total := !total +. sel
  done;
  (!total, decisions)

let with_retries retries f =
  let rec attempt budget =
    try f () with Source.Timeout _ when budget > 0 -> attempt (budget - 1)
  in
  attempt retries

(* Execute one round: selections first, then semijoins over the pruned
   running difference set (the SJA+ rewrite applied at runtime). *)
let execute_round ~retries (env : Opt_env.t) cond_index decisions x =
  let c = env.conds.(cond_index) in
  let n = Opt_env.n env in
  let cost = ref 0.0 in
  let select_span = ref 0.0 in
  let semijoin_chain = ref 0.0 in
  let confirmed = ref Item_set.empty in
  for j = 0 to n - 1 do
    if decisions.(j) = Plan.By_select then begin
      let answer, step_cost =
        with_retries retries (fun () -> Source.select_query env.sources.(j) c)
      in
      cost := !cost +. step_cost;
      select_span := Float.max !select_span step_cost;
      confirmed := Item_set.union !confirmed answer
    end
  done;
  (* [confirmed] may contain items outside X; only the intersection is
     settled, and only that is safe to prune from the semijoin sets. *)
  let remaining = ref (match x with None -> None | Some x -> Some (Item_set.diff x !confirmed)) in
  for j = 0 to n - 1 do
    if decisions.(j) = Plan.By_semijoin then begin
      let probe =
        match !remaining with
        | Some r -> r
        | None -> invalid_arg "Adaptive: semijoin decision in the first round"
      in
      let answer, step_cost =
        with_retries retries (fun () -> Source.semijoin_query env.sources.(j) c probe)
      in
      cost := !cost +. step_cost;
      semijoin_chain := !semijoin_chain +. step_cost;
      confirmed := Item_set.union !confirmed answer;
      remaining := Some (Item_set.diff probe answer)
    end
  done;
  let next =
    match x with None -> !confirmed | Some x -> Item_set.inter x !confirmed
  in
  (next, !cost, !select_span +. !semijoin_chain)

let run ?(retries = 0) (env : Opt_env.t) =
  Array.iter Source.reset_meter env.sources;
  let m = Opt_env.m env in
  let all_conds = List.init m (fun i -> i) in
  (* Round 1: selections only; pick the condition expected to produce
     the smallest candidate set. *)
  let first =
    List.fold_left
      (fun best c ->
        let size = Estimator.first_round_size env.est env.conds.(c) in
        match best with
        | Some (_, best_size) when best_size <= size -> best
        | _ -> Some (c, size))
      None all_conds
    |> Option.get |> fst
  in
  let n = Opt_env.n env in
  let first_decisions = Array.make n Plan.By_select in
  let x1, cost1, response1 = execute_round ~retries env first first_decisions None in
  let rounds =
    ref
      [
        {
          cond = first;
          decisions = first_decisions;
          cost = cost1;
          candidates = Item_set.cardinal x1;
          response = response1;
        };
      ]
  in
  let total = ref cost1 in
  let response_total = ref response1 in
  let x = ref x1 in
  let remaining = ref (List.filter (fun c -> c <> first) all_conds) in
  while !remaining <> [] && not (Item_set.is_empty !x) do
    (* Choose the cheapest next condition under the ACTUAL |X|. *)
    let size = float_of_int (Item_set.cardinal !x) in
    let cond, (_, decisions) =
      List.fold_left
        (fun best c ->
          let ((cost, _) as priced) = price env c size in
          match best with
          | Some (_, (best_cost, _)) when best_cost <= cost -> best
          | _ -> Some (c, priced))
        None !remaining
      |> Option.get
    in
    let x', cost, response = execute_round ~retries env cond decisions (Some !x) in
    rounds :=
      { cond; decisions; cost; candidates = Item_set.cardinal x'; response } :: !rounds;
    total := !total +. cost;
    response_total := !response_total +. response;
    x := x';
    remaining := List.filter (fun c -> c <> cond) !remaining
  done;
  (* If we stopped early on an empty candidate set, the answer is empty
     and the skipped conditions cost nothing — a saving no static plan
     can realize. *)
  let answer = if !remaining <> [] then Item_set.empty else !x in
  {
    answer;
    total_cost = !total;
    response_time = !response_total;
    rounds = List.rev !rounds;
  }
