(** Response-time-oriented optimization (the paper's Section 6 future
    work, built on the same machinery).

    Searches the semijoin-adaptive space like SJA, but scores each
    ordering by the critical-path response time of the parallel
    execution model (see {!Fusion_plan.Response_time}) instead of total
    work. Because the per-round decision interacts with serialization
    (a semijoin delays the round behind its input; a selection runs in
    parallel from time zero), each round considers three strategies —
    all-selection, all-semijoin, and the per-source work-greedy mix —
    and keeps the one minimizing the round's completion time. *)

val sja_rt : Opt_env.t -> Optimized.t
(** [Optimized.est_cost] is the {e estimated response time} of the
    returned plan, not its total work. *)

val estimate_response : Opt_env.t -> int array -> Fusion_plan.Plan.action array array -> float
(** Estimated critical-path response time of a round-shaped plan given
    its ordering and decisions (used by X10 to score work-optimal plans
    under the response metric). *)
