(** Branch-and-bound ordering search.

    SJA enumerates all m! condition orderings; but plan cost only grows
    as rounds are appended, so a partial ordering whose cost already
    exceeds the best complete plan cannot lead anywhere better. This
    depth-first search over ordering prefixes prunes such subtrees and
    returns {e exactly} the same optimum as SJA (asserted by property
    tests), typically visiting a small fraction of the tree — which
    extends the practical reach of exact search beyond the paper's
    "m is usually small" regime (experiment X6d).

    A further admissible bound would need a lower bound on the cost of
    the remaining conditions; we use the trivial zero bound, which
    already prunes well because early rounds dominate plan cost. *)

val sja_bb : Opt_env.t -> Optimized.t
(** Same result as {!Algorithms.sja}. *)

val visited_orderings : Opt_env.t -> int * int
(** Diagnostic: (prefix nodes expanded, m! full orderings) for the same
    search — how much of the tree the bound pruned. *)
