(** Exhaustive enumeration of the semijoin-adaptive plan space, for tiny
    instances only. Validates the paper's optimality claims: SJA's
    output must match the enumeration's best estimated cost, and on
    independent data its plan should be close to the best {e actual}
    execution cost in the space (experiment X7). *)

open Fusion_plan

val space_size : m:int -> n:int -> int
(** [m! · 2^(n·(m-1))] — raises [Invalid_argument] when it exceeds
    2^24 (the enumeration would be unreasonable). *)

val enumerate : Opt_env.t -> (Plan.t * float) list
(** Every round-shaped plan (all orderings × all per-(condition, source)
    decisions) with its estimated cost under the environment's
    recurrence. @raise Invalid_argument on oversized instances. *)

val best_estimated : Opt_env.t -> Plan.t * float

val best_actual : Opt_env.t -> Plan.t * float
(** Executes every plan in the space against the live sources and
    returns the one with the smallest {e actual} cost. Meters are left
    reset. Skips plans whose execution is unsupported (e.g. semijoins at
    incapable sources). *)
