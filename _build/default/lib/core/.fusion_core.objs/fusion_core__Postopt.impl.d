lib/core/postopt.ml: Algorithms Array Builder Fusion_cost Fusion_plan List Op Opt_env Optimized Plan Plan_cost Printf
