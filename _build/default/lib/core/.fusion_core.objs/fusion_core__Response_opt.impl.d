lib/core/response_opt.ml: Array Builder Float Fusion_cost Fusion_plan List Opt_env Optimized Option Perm Plan
