lib/core/recurrence.mli: Fusion_plan Opt_env Plan
