lib/core/recurrence.ml: Array Fusion_cost Fusion_plan Opt_env Plan
