lib/core/algorithms.mli: Opt_env Optimized
