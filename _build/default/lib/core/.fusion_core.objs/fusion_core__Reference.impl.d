lib/core/reference.ml: Array Cond Fusion_cond Fusion_data Fusion_query Fusion_source Item_set Relation Source
