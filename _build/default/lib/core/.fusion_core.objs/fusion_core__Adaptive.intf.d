lib/core/adaptive.mli: Fusion_data Fusion_plan Item_set Opt_env Plan
