lib/core/robust.ml: Array Builder Float Fusion_cost Fusion_plan Opt_env Optimized Option Perm Plan
