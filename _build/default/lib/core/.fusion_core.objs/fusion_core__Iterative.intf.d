lib/core/iterative.mli: Opt_env Optimized
