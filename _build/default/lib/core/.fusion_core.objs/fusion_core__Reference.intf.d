lib/core/reference.mli: Cond Fusion_cond Fusion_data Fusion_query Fusion_source Item_set Source
