lib/core/brute.ml: Array Builder Exec Fusion_plan Fusion_source List Opt_env Perm Plan Recurrence
