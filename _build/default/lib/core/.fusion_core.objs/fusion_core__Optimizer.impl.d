lib/core/optimizer.ml: Algorithms Branch_bound Iterative List Postopt Printf String
