lib/core/iterative.ml: Array Builder Fusion_cost Fusion_stats Opt_env Optimized Option Recurrence
