lib/core/response_opt.mli: Fusion_plan Opt_env Optimized
