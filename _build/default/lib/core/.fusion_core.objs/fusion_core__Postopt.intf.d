lib/core/postopt.mli: Opt_env Optimized
