lib/core/optimized.mli: Format Fusion_plan Plan
