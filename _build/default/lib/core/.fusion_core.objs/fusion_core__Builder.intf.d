lib/core/builder.mli: Fusion_plan Plan
