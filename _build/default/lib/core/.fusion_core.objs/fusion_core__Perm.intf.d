lib/core/perm.mli:
