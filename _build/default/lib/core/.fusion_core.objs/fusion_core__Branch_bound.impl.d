lib/core/branch_bound.ml: Array Builder Fusion_cost Fusion_plan Opt_env Optimized Option Perm Plan
