lib/core/algorithms.ml: Array Builder Float Fusion_cost Fusion_plan List Opt_env Optimized Option Perm Plan Recurrence
