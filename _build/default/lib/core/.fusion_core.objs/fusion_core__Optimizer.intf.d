lib/core/optimizer.mli: Opt_env Optimized
