lib/core/brute.mli: Fusion_plan Opt_env Plan
