lib/core/optimized.ml: Array Format Fusion_plan List Plan Printf String
