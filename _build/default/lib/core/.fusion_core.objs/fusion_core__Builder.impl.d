lib/core/builder.ml: Array Fusion_plan List Op Plan Printf
