lib/core/adaptive.ml: Array Float Fusion_cost Fusion_data Fusion_plan Fusion_source Item_set List Opt_env Option Plan Source
