lib/core/robust.mli: Fusion_plan Opt_env Optimized
