lib/core/perm.ml: Array
