lib/core/opt_env.ml: Array Cond Fusion_cond Fusion_cost Fusion_query Fusion_source Fusion_stats Source
