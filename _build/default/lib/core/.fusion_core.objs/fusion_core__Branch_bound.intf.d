lib/core/branch_bound.mli: Opt_env Optimized
