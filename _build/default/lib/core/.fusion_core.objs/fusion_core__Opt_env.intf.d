lib/core/opt_env.mli: Cond Fusion_cond Fusion_cost Fusion_query Fusion_source Fusion_stats Source
