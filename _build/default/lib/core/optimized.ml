open Fusion_plan

type t = { plan : Plan.t; est_cost : float; ordering : int array }

let pp ?source_name ppf t =
  Format.fprintf ppf "@[<v>estimated cost %.1f, condition order [%s]@,%a@]" t.est_cost
    (String.concat "; "
       (List.map (fun c -> Printf.sprintf "c%d" (c + 1)) (Array.to_list t.ordering)))
    (Plan.pp ?source_name) t.plan
