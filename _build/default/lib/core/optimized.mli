(** The outcome of an optimization: a plan plus the optimizer's own cost
    estimate (the paper's [Plan_Cost]) and the condition ordering it
    settled on. *)

open Fusion_plan

type t = {
  plan : Plan.t;
  est_cost : float;
  ordering : int array;  (** condition indexes, first-processed first *)
}

val pp : ?source_name:(int -> string) -> Format.formatter -> t -> unit
