open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

let filter (env : Opt_env.t) =
  let m = Opt_env.m env and n = Opt_env.n env in
  let ordering = Array.init m (fun i -> i) in
  let decisions = Array.init m (fun _ -> Array.make n Plan.By_select) in
  let cost = ref 0.0 in
  Array.iter
    (fun c ->
      Array.iter
        (fun s -> cost := !cost +. env.model.Model.sq_cost s c)
        env.sources)
    env.conds;
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = !cost; ordering }

let search_orderings env ~mode =
  let m = Opt_env.m env in
  let best = ref None in
  Perm.iter m (fun ordering ->
      let cost, decisions = Recurrence.evaluate env ~mode ordering in
      match !best with
      | Some (best_cost, _, _) when best_cost <= cost -> ()
      | _ -> best := Some (cost, Array.copy ordering, decisions));
  let cost, ordering, decisions = Option.get !best in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = cost; ordering }

let sj env = search_orderings env ~mode:Recurrence.Per_condition
let sja env = search_orderings env ~mode:Recurrence.Per_source

let sja_trace env =
  let m = Opt_env.m env in
  let surface = ref [] in
  Perm.iter m (fun ordering ->
      let cost, _ = Recurrence.evaluate env ~mode:Recurrence.Per_source ordering in
      surface := (Array.copy ordering, cost) :: !surface);
  List.sort (fun (_, a) (_, b) -> Float.compare a b) !surface

(* Greedy ordering: most selective condition first — smallest expected
   candidate set reduces every later semijoin's transfer. *)
let greedy_ordering (env : Opt_env.t) =
  let m = Opt_env.m env in
  let keyed =
    Array.init m (fun i -> (Estimator.first_round_size env.est env.conds.(i), i))
  in
  Array.sort compare keyed;
  Array.map snd keyed

let greedy env ~mode =
  let ordering = greedy_ordering env in
  let cost, decisions = Recurrence.evaluate env ~mode ordering in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = cost; ordering }

let greedy_sj env = greedy env ~mode:Recurrence.Per_condition
let greedy_sja env = greedy env ~mode:Recurrence.Per_source
