open Fusion_plan

let space_size ~m ~n =
  let orderings = Perm.count m in
  let bits = n * (m - 1) in
  if bits > 24 || orderings > 1 lsl 24 then
    invalid_arg "Brute.space_size: instance too large to enumerate";
  let total = orderings * (1 lsl bits) in
  if total > 1 lsl 24 then invalid_arg "Brute.space_size: instance too large to enumerate";
  total

let enumerate (env : Opt_env.t) =
  let m = Opt_env.m env and n = Opt_env.n env in
  ignore (space_size ~m ~n);
  let plans = ref [] in
  Perm.iter m (fun ordering ->
      let ordering = Array.copy ordering in
      let bits = n * (m - 1) in
      for mask = 0 to (1 lsl bits) - 1 do
        let decisions =
          Array.init m (fun r ->
              Array.init n (fun j ->
                  if r = 0 then Plan.By_select
                  else
                    let bit = ((r - 1) * n) + j in
                    if mask land (1 lsl bit) <> 0 then Plan.By_semijoin else Plan.By_select))
        in
        let cost = Recurrence.cost_of env ordering decisions in
        plans := (Builder.round_shaped ~ordering ~decisions, cost) :: !plans
      done);
  List.rev !plans

let best_by candidates =
  match candidates with
  | [] -> invalid_arg "Brute: empty plan space"
  | first :: rest ->
    List.fold_left
      (fun ((_, best_cost) as best) ((_, cost) as candidate) ->
        if cost < best_cost then candidate else best)
      first rest

let best_estimated env = best_by (enumerate env)

let best_actual (env : Opt_env.t) =
  let reset () = Array.iter Fusion_source.Source.reset_meter env.sources in
  let run_cost (plan, _) =
    reset ();
    match Exec.run ~sources:env.sources ~conds:env.conds plan with
    | { Exec.total_cost; _ } -> Some (plan, total_cost)
    | exception Fusion_source.Source.Unsupported _ -> None
  in
  let executed = List.filter_map run_cost (enumerate env) in
  reset ();
  best_by executed
