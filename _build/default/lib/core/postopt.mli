(** Postoptimization (Section 4): the two SJA+ rewrites.

    Both leave the space of simple plans: difference pruning shrinks the
    semijoin sets by items already confirmed for the current condition,
    and source loading replaces all of a source's queries by one [lq]
    plus free local computation. Costs here are whole-plan estimates
    from {!Fusion_plan.Plan_cost} (the recurrence of SJ/SJA cannot price
    non-simple plans). *)

type semijoin_order =
  | Source_order  (** the paper's O(n) pass: sources in index order *)
  | By_confirmation
      (** sources expected to confirm the most candidates first, so
          later semijoin sets shrink faster (an extended-version-style
          refinement; same complexity after an O(n log n) sort) *)

val prune_with_difference :
  ?order:semijoin_order -> Opt_env.t -> Optimized.t -> Optimized.t
(** Rewrites each round of a round-shaped plan so that selection queries
    run first and each semijoin query ships only the candidates not yet
    confirmed for this condition ([X_{i-1}] minus earlier results).
    [order] (default {!Source_order}) decides the sequence of the
    chained semijoins. Plans that are not round-shaped are returned
    unchanged. *)

val load_sources : Opt_env.t -> Optimized.t -> Optimized.t
(** For every source whose estimated total query cost exceeds the cost
    of shipping its whole relation, replaces its queries by a [lq] and
    local selections. *)

val sja_plus : ?order:semijoin_order -> Opt_env.t -> Optimized.t
(** The SJA+ algorithm: run SJA, prune with differences, then consider
    loading. Complexity O(m!·m·n + mn) as in Section 4.1. *)
