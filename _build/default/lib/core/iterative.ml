module Prng = Fusion_stats.Prng

let cost_of env ordering = fst (Recurrence.evaluate env ~mode:Recurrence.Per_source ordering)

(* Steepest-descent over pairwise swaps. *)
let climb env ordering =
  let m = Array.length ordering in
  let current = Array.copy ordering in
  let current_cost = ref (cost_of env current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_swap = ref None in
    for i = 0 to m - 2 do
      for j = i + 1 to m - 1 do
        let tmp = current.(i) in
        current.(i) <- current.(j);
        current.(j) <- tmp;
        let cost = cost_of env current in
        (match !best_swap with
        | Some (best_cost, _, _) when best_cost <= cost -> ()
        | _ -> if cost < !current_cost then best_swap := Some (cost, i, j));
        let tmp = current.(i) in
        current.(i) <- current.(j);
        current.(j) <- tmp
      done
    done;
    match !best_swap with
    | Some (cost, i, j) ->
      let tmp = current.(i) in
      current.(i) <- current.(j);
      current.(j) <- tmp;
      current_cost := cost;
      improved := true
    | None -> ()
  done;
  (current, !current_cost)

let greedy_ordering (env : Opt_env.t) =
  let m = Opt_env.m env in
  let keyed =
    Array.init m (fun i ->
        (Fusion_cost.Estimator.first_round_size env.est env.conds.(i), i))
  in
  Array.sort compare keyed;
  Array.map snd keyed

let sja_hill_climb ?(restarts = 4) ?(seed = 1) env =
  let m = Opt_env.m env in
  let prng = Prng.create seed in
  let best = ref None in
  for restart = 0 to max 0 (restarts - 1) do
    let start =
      if restart = 0 then greedy_ordering env
      else begin
        let ordering = Array.init m (fun i -> i) in
        Prng.shuffle prng ordering;
        ordering
      end
    in
    let ordering, cost = climb env start in
    match !best with
    | Some (best_cost, _) when best_cost <= cost -> ()
    | _ -> best := Some (cost, ordering)
  done;
  let cost, ordering = Option.get !best in
  let _, decisions = Recurrence.evaluate env ~mode:Recurrence.Per_source ordering in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = cost; ordering }
