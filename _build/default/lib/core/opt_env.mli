(** The optimizer's working context: the query's conditions, the
    participating sources, and the cost machinery built from statistics. *)

open Fusion_cond
open Fusion_source

type t = {
  sources : Source.t array;
  conds : Cond.t array;
  model : Fusion_cost.Model.t;
  est : Fusion_cost.Estimator.t;
}

type stats_mode =
  | Exact  (** oracle statistics (full scans) *)
  | Sampled of int * Fusion_stats.Prng.t  (** sample size and generator *)
  | Histogram of int  (** per-attribute equi-width histograms; buckets *)

val create :
  ?stats:stats_mode -> ?universe:int -> Source.t array -> Fusion_query.Query.t -> t
(** Builds per-source statistics (default [Exact]), the estimator and
    the Internet cost model. [universe] as in
    {!Fusion_cost.Estimator.create}. *)

val m : t -> int
(** Number of conditions. *)

val n : t -> int
(** Number of sources. *)
