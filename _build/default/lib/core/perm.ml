let iter k f =
  let arr = Array.init k (fun i -> i) in
  let swap i j =
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  in
  (* Heap's algorithm, iterative form. *)
  let c = Array.make k 0 in
  f arr;
  let i = ref 0 in
  while !i < k do
    if c.(!i) < !i then begin
      if !i mod 2 = 0 then swap 0 !i else swap c.(!i) !i;
      f arr;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let count k =
  if k < 0 || k > 20 then invalid_arg "Perm.count";
  let rec go acc i = if i <= 1 then acc else go (acc * i) (i - 1) in
  go 1 k
