(** Runtime-adaptive fusion query execution.

    Static plans commit to selection-vs-semijoin decisions based on
    {e estimated} candidate-set sizes; when conditions are correlated or
    sources overlap heavily, those estimates can be far off (the paper
    accepts the best semijoin-adaptive plan as "as good a guess as we
    can make" in that regime). This runtime interleaves optimization
    and execution instead: after each round it knows the {e actual}
    candidate set, so the next condition and the per-source strategies
    are chosen with exact knowledge of [|X_i|]. It also prunes semijoin
    sets with the difference rewrite as it goes, and stops early when
    the candidate set becomes empty.

    This goes beyond the paper's plan space (it is not a plan at all)
    but composes directly from its building blocks; experiment X9
    measures what the feedback buys. *)

open Fusion_data
open Fusion_plan

type round = {
  cond : int;
  decisions : Plan.action array;  (** per source *)
  cost : float;  (** actual cost of the round *)
  candidates : int;  (** |X_i| after the round *)
  response : float;
      (** the round's span under the parallel model: selections run
          concurrently, then the difference-pruned semijoins chain
          sequentially (each needs the previous one's confirmations) *)
}

type result = {
  answer : Item_set.t;
  total_cost : float;
  response_time : float;
      (** sum of the rounds' spans — rounds serialize because each
          round's choice of condition and strategy depends on the
          previous round's observed candidates. Runtime feedback buys
          total work at the price of a longer critical path; X10/X9
          quantify the tradeoff. *)
  rounds : round list;  (** in execution order; may stop early *)
}

val run : ?retries:int -> Opt_env.t -> result
(** Executes directly against the environment's sources (meters are
    reset first). Statistics are used only to rank conditions and to
    price candidate strategies; all set sizes fed into pricing are the
    actually observed ones. Source timeouts are retried up to [retries]
    times (default 0) before propagating. *)
