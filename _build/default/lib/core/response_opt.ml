open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

(* Completion-time bookkeeping for one round: selections span from time
   zero, semijoins from the previous round's completion. *)
let round_completion ~comp_prev ~select_span ~semijoin_span ~has_semijoin =
  Float.max comp_prev
    (Float.max select_span (if has_semijoin then comp_prev +. semijoin_span else 0.0))

let estimate_response (env : Opt_env.t) ordering decisions =
  let n = Opt_env.n env in
  let model = env.model and est = env.est in
  let comp = ref 0.0 in
  let x = ref 0.0 in
  Array.iteri
    (fun r cond_index ->
      let c = env.conds.(cond_index) in
      let select_span = ref 0.0 and semijoin_span = ref 0.0 and has_semijoin = ref false in
      for j = 0 to n - 1 do
        match decisions.(r).(j) with
        | Plan.By_select ->
          select_span := Float.max !select_span (model.Model.sq_cost env.sources.(j) c)
        | Plan.By_semijoin ->
          has_semijoin := true;
          semijoin_span :=
            Float.max !semijoin_span (model.Model.sjq_cost env.sources.(j) c !x)
      done;
      comp :=
        round_completion ~comp_prev:!comp ~select_span:!select_span
          ~semijoin_span:!semijoin_span ~has_semijoin:!has_semijoin;
      x := (if r = 0 then Estimator.first_round_size est c else Estimator.shrink est c !x))
    ordering;
  !comp

(* Candidate strategies for a round under the response metric. *)
let round_strategies (env : Opt_env.t) cond_index x =
  let n = Opt_env.n env in
  let c = env.conds.(cond_index) in
  let all_select = Array.make n Plan.By_select in
  let all_semijoin = Array.make n Plan.By_semijoin in
  let greedy = Array.make n Plan.By_select in
  for j = 0 to n - 1 do
    if
      env.model.Model.sjq_cost env.sources.(j) c x
      < env.model.Model.sq_cost env.sources.(j) c
    then greedy.(j) <- Plan.By_semijoin
  done;
  [ all_select; all_semijoin; greedy ]

let sja_rt (env : Opt_env.t) =
  let m = Opt_env.m env and n = Opt_env.n env in
  let model = env.model and est = env.est in
  let best = ref None in
  Perm.iter m (fun ordering ->
      let decisions = Array.init m (fun _ -> Array.make n Plan.By_select) in
      let comp = ref 0.0 in
      let x = ref 0.0 in
      Array.iteri
        (fun r cond_index ->
          let c = env.conds.(cond_index) in
          if r = 0 then begin
            let span =
              Array.fold_left
                (fun acc s -> Float.max acc (model.Model.sq_cost s c))
                0.0 env.sources
            in
            comp := round_completion ~comp_prev:!comp ~select_span:span ~semijoin_span:0.0
                      ~has_semijoin:false;
            x := Estimator.first_round_size est c
          end
          else begin
            (* Try the three strategies; keep the best completion. *)
            let best_round = ref None in
            List.iter
              (fun strategy ->
                let select_span = ref 0.0
                and semijoin_span = ref 0.0
                and has_semijoin = ref false in
                for j = 0 to n - 1 do
                  match strategy.(j) with
                  | Plan.By_select ->
                    select_span :=
                      Float.max !select_span (model.Model.sq_cost env.sources.(j) c)
                  | Plan.By_semijoin ->
                    has_semijoin := true;
                    semijoin_span :=
                      Float.max !semijoin_span (model.Model.sjq_cost env.sources.(j) c !x)
                done;
                let completion =
                  round_completion ~comp_prev:!comp ~select_span:!select_span
                    ~semijoin_span:!semijoin_span ~has_semijoin:!has_semijoin
                in
                match !best_round with
                | Some (best_completion, _) when best_completion <= completion -> ()
                | _ -> best_round := Some (completion, Array.copy strategy))
              (round_strategies env cond_index !x);
            let completion, strategy = Option.get !best_round in
            decisions.(r) <- strategy;
            comp := completion;
            x := Estimator.shrink est c !x
          end)
        ordering;
      match !best with
      | Some (best_comp, _, _) when best_comp <= !comp -> ()
      | _ -> best := Some (!comp, Array.copy ordering, Array.map Array.copy decisions));
  let comp, ordering, decisions = Option.get !best in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = comp; ordering }
