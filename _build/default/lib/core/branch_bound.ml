open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

(* One round of the SJA recurrence: cost and decisions of appending
   condition [c] given candidate-set estimate [x] ([x < 0] encodes
   "first round": selections only). *)
let extend (env : Opt_env.t) ~cond_index ~x =
  let n = Opt_env.n env in
  let c = env.conds.(cond_index) in
  let decisions = Array.make n Plan.By_select in
  let cost = ref 0.0 in
  if x < 0.0 then begin
    for j = 0 to n - 1 do
      cost := !cost +. env.model.Model.sq_cost env.sources.(j) c
    done;
    (!cost, decisions, Estimator.first_round_size env.est c)
  end
  else begin
    for j = 0 to n - 1 do
      let sel = env.model.Model.sq_cost env.sources.(j) c in
      let sjq = env.model.Model.sjq_cost env.sources.(j) c x in
      if sjq < sel then begin
        decisions.(j) <- Plan.By_semijoin;
        cost := !cost +. sjq
      end
      else cost := !cost +. sel
    done;
    (!cost, decisions, Estimator.shrink env.est c x)
  end

let search (env : Opt_env.t) =
  let m = Opt_env.m env in
  let best_cost = ref infinity in
  let best = ref None in
  let nodes = ref 0 in
  let ordering = Array.make m 0 in
  let decisions = Array.init m (fun _ -> Array.make (Opt_env.n env) Plan.By_select) in
  let used = Array.make m false in
  let rec dfs depth cost x =
    if cost >= !best_cost then () (* bound: costs only grow *)
    else if depth = m then begin
      best_cost := cost;
      best := Some (Array.copy ordering, Array.map Array.copy decisions)
    end
    else
      for c = 0 to m - 1 do
        if not used.(c) then begin
          incr nodes;
          let round_cost, round_decisions, x' = extend env ~cond_index:c ~x in
          ordering.(depth) <- c;
          decisions.(depth) <- round_decisions;
          used.(c) <- true;
          dfs (depth + 1) (cost +. round_cost) x';
          used.(c) <- false
        end
      done
  in
  dfs 0 0.0 (-1.0);
  (!best_cost, Option.get !best, !nodes)

let sja_bb env =
  let cost, (ordering, decisions), _ = search env in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = cost; ordering }

let visited_orderings env =
  let _, _, nodes = search env in
  (nodes, Perm.count (Opt_env.m env))
