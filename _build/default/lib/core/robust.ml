open Fusion_plan
module Model = Fusion_cost.Model
module Estimator = Fusion_cost.Estimator

type interval = { lo : float; hi : float }

let scale_down u v = v /. (1.0 +. u)
let scale_up u v = v *. (1.0 +. u)

(* Cost of one round under the interval semantics. The model's cost
   functions are monotone in the estimated set size (axiom-checked), so
   endpoint evaluation bounds the range. Matching-count uncertainty
   also perturbs sq answers, which we fold into the sq bound by scaling
   the receive-dependent part — conservatively approximated by scaling
   the whole sq cost. *)
let round_cost_interval (env : Opt_env.t) ~uncertainty ~first cond_index x decisions =
  let n = Opt_env.n env in
  let c = env.conds.(cond_index) in
  let lo = ref 0.0 and hi = ref 0.0 in
  for j = 0 to n - 1 do
    let by_select = first || decisions.(j) = Plan.By_select in
    if by_select then begin
      let sq = env.model.Model.sq_cost env.sources.(j) c in
      lo := !lo +. scale_down uncertainty sq;
      hi := !hi +. scale_up uncertainty sq
    end
    else begin
      lo := !lo +. env.model.Model.sjq_cost env.sources.(j) c x.lo;
      hi := !hi +. env.model.Model.sjq_cost env.sources.(j) c x.hi
    end
  done;
  { lo = !lo; hi = !hi }

let shrink_interval (env : Opt_env.t) ~uncertainty cond_index x =
  let c = env.conds.(cond_index) in
  let s = Estimator.sel_somewhere env.est c in
  {
    lo = x.lo *. Float.max 0.0 (scale_down uncertainty s);
    hi = x.hi *. Float.min 1.0 (scale_up uncertainty s);
  }

let first_interval (env : Opt_env.t) ~uncertainty cond_index =
  let size = Estimator.first_round_size env.est env.conds.(cond_index) in
  { lo = scale_down uncertainty size; hi = scale_up uncertainty size }

let plan_cost_interval env ~uncertainty ordering decisions =
  let total = ref { lo = 0.0; hi = 0.0 } in
  let x = ref { lo = 0.0; hi = 0.0 } in
  Array.iteri
    (fun r cond_index ->
      let first = r = 0 in
      let cost =
        round_cost_interval env ~uncertainty ~first cond_index !x
          (if first then [||] else decisions.(r))
      in
      total := { lo = !total.lo +. cost.lo; hi = !total.hi +. cost.hi };
      x :=
        (if first then first_interval env ~uncertainty cond_index
         else shrink_interval env ~uncertainty cond_index !x))
    ordering;
  !total

(* Worst-case-minimizing search: per (condition, source) pick the
   strategy with the smaller upper bound; per ordering accumulate upper
   bounds; keep the ordering with the least worst case. *)
let sja_robust (env : Opt_env.t) ~uncertainty =
  let m = Opt_env.m env and n = Opt_env.n env in
  let best = ref None in
  Perm.iter m (fun ordering ->
      let decisions = Array.init m (fun _ -> Array.make n Plan.By_select) in
      let hi_total = ref 0.0 in
      let x = ref { lo = 0.0; hi = 0.0 } in
      Array.iteri
        (fun r cond_index ->
          let c = env.conds.(cond_index) in
          if r = 0 then begin
            for j = 0 to n - 1 do
              hi_total :=
                !hi_total +. scale_up uncertainty (env.model.Model.sq_cost env.sources.(j) c)
            done;
            x := first_interval env ~uncertainty cond_index
          end
          else begin
            for j = 0 to n - 1 do
              let sq_hi = scale_up uncertainty (env.model.Model.sq_cost env.sources.(j) c) in
              let sjq_hi = env.model.Model.sjq_cost env.sources.(j) c !x.hi in
              if sjq_hi < sq_hi then begin
                decisions.(r).(j) <- Plan.By_semijoin;
                hi_total := !hi_total +. sjq_hi
              end
              else hi_total := !hi_total +. sq_hi
            done;
            x := shrink_interval env ~uncertainty cond_index !x
          end)
        ordering;
      match !best with
      | Some (best_hi, _, _) when best_hi <= !hi_total -> ()
      | _ -> best := Some (!hi_total, Array.copy ordering, Array.map Array.copy decisions));
  let hi, ordering, decisions = Option.get !best in
  { Optimized.plan = Builder.round_shaped ~ordering ~decisions; est_cost = hi; ordering }
