open Fusion_plan

let var r j = Printf.sprintf "X%d_%d" r (j + 1)
let round_var r = Printf.sprintf "X%d" r
let union_var r = Printf.sprintf "U%d" r

let round_shaped ~ordering ~decisions =
  let m = Array.length ordering in
  assert (Array.length decisions = m);
  assert (Array.for_all (fun a -> a = Plan.By_select) decisions.(0));
  let n = Array.length decisions.(0) in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  for r = 1 to m do
    let cond = ordering.(r - 1) in
    let dsts = ref [] in
    for j = 0 to n - 1 do
      let dst = var r j in
      dsts := dst :: !dsts;
      match decisions.(r - 1).(j) with
      | Plan.By_select -> emit (Op.Select { dst; cond; source = j })
      | Plan.By_semijoin ->
        emit (Op.Semijoin { dst; cond; source = j; input = round_var (r - 1) })
    done;
    if r = 1 then emit (Op.Union { dst = round_var 1; args = List.rev !dsts })
    else begin
      emit (Op.Union { dst = union_var r; args = List.rev !dsts });
      emit (Op.Inter { dst = round_var r; args = [ round_var (r - 1); union_var r ] })
    end
  done;
  Plan.create ~ops:(List.rev !ops) ~output:(round_var m)
