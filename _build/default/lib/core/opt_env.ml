open Fusion_cond
open Fusion_source

type t = {
  sources : Source.t array;
  conds : Cond.t array;
  model : Fusion_cost.Model.t;
  est : Fusion_cost.Estimator.t;
}

type stats_mode = Exact | Sampled of int * Fusion_stats.Prng.t | Histogram of int

let create ?(stats = Exact) ?universe sources query =
  let stats_of source =
    match stats with
    | Exact -> Fusion_stats.Source_stats.exact (Source.relation source)
    | Sampled (size, prng) ->
      Fusion_stats.Source_stats.sampled ~sample_size:size prng (Source.relation source)
    | Histogram buckets ->
      Fusion_stats.Source_stats.histogram ~buckets (Source.relation source)
  in
  let entries = Array.to_list (Array.map (fun s -> (s, stats_of s)) sources) in
  let est = Fusion_cost.Estimator.create ?universe entries in
  {
    sources;
    conds = Fusion_query.Query.conditions query;
    model = Fusion_cost.Model.internet est;
    est;
  }

let m t = Array.length t.conds
let n t = Array.length t.sources
