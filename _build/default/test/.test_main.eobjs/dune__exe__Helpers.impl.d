test/helpers.ml: Alcotest Array Cond Fusion_cond Fusion_data Fusion_plan Fusion_query Fusion_source Fusion_workload Item_set List Printf QCheck2 QCheck_alcotest Relation Schema Source String Value
