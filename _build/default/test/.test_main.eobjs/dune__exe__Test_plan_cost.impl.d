test/test_plan_cost.ml: Alcotest Algorithms Array Float Fusion_core Fusion_plan Fusion_workload Helpers List Op Opt_env Optimized Optimizer Plan Plan_cost QCheck2
