test/test_data.ml: Alcotest Csv_io Fusion_data Helpers Item_set List Printf QCheck2 Relation Schema Tuple Value
