test/test_exec.ml: Alcotest Array Exec Fusion_core Fusion_data Fusion_net Fusion_plan Fusion_query Fusion_source Fusion_workload Helpers Item_set List Op Plan Printf
