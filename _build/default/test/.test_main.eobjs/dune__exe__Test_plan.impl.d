test/test_plan.ml: Alcotest Array Format Fusion_core Fusion_plan Fusion_stats Helpers List Op Plan Printf QCheck2 String
