test/test_value.ml: Alcotest Fusion_data Helpers Printf QCheck2 Value
