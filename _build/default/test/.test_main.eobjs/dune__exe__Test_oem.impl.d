test/test_oem.ml: Alcotest Array Filename Fun Fusion_data Fusion_mediator Fusion_oem Fusion_source Helpers List Out_channel QCheck2 Relation Schema Sys Tuple Value
