test/test_query.ml: Alcotest Array Cond Fusion_cond Fusion_data Fusion_query Helpers List Option QCheck2 Schema String Value
