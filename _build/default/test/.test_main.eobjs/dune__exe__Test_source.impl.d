test/test_source.ml: Alcotest Capability Cond Format Fusion_cond Fusion_data Fusion_net Fusion_source Helpers Item_set List Option Relation Source Str_find String Value
