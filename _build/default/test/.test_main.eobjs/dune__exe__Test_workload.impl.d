test/test_workload.ml: Alcotest Array Capability Fusion_cond Fusion_core Fusion_data Fusion_net Fusion_query Fusion_source Fusion_workload Helpers Item_set Printf Relation Schema Source
