test/test_stats.ml: Alcotest Array Cond Fusion_cond Fusion_data Fusion_stats Helpers List Printf Relation Tuple Value
