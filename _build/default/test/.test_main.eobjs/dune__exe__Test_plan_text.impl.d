test/test_plan_text.ml: Alcotest Exec Float Fusion_core Fusion_data Fusion_plan Fusion_workload Helpers List Op Opt_env Optimized Optimizer Plan Plan_text QCheck2
