test/test_simplify.ml: Alcotest Array Exec Float Fusion_core Fusion_data Fusion_plan Fusion_query Fusion_workload Helpers Item_set List Op Opt_env Optimized Optimizer Plan QCheck2 Simplify
