test/test_cond.ml: Alcotest Char Cond Fusion_cond Fusion_data Helpers List QCheck2 String Tuple Value
