test/test_lexer.ml: Alcotest Format Fusion_cond Fusion_net Helpers List Option Str_find
