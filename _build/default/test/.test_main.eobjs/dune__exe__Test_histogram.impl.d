test/test_histogram.ml: Alcotest Cond Fusion_cond Fusion_core Fusion_data Fusion_plan Fusion_stats Fusion_workload Helpers List Printf Value
