test/test_sim.ml: Alcotest Array Exec Float Fusion_core Fusion_net Fusion_plan Fusion_workload Helpers List Op Opt_env Optimized Optimizer Parallel_exec Plan Printf Response_time
