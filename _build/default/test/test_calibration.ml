(* Cost-model calibration: least-squares recovery of source profiles. *)

open Fusion_cond
open Fusion_data
open Fusion_source
module Calibration = Fusion_cost.Calibration
module Profile = Fusion_net.Profile
module Meter = Fusion_net.Meter

let synthetic_observations profile specs =
  List.map
    (fun (requests, items_sent, items_received, tuples_received) ->
      {
        Calibration.requests;
        items_sent;
        items_received;
        tuples_received;
        cost =
          (profile.Profile.request_overhead *. float_of_int requests)
          +. (profile.Profile.send_per_item *. float_of_int items_sent)
          +. (profile.Profile.recv_per_item *. float_of_int items_received)
          +. (profile.Profile.recv_per_tuple *. float_of_int tuples_received);
      })
    specs

let check_profile ?(tolerance = 0.01) expected actual =
  let field name f =
    Alcotest.(check (float (tolerance *. (1.0 +. f expected))))
      name (f expected) (f actual)
  in
  field "overhead" (fun p -> p.Profile.request_overhead);
  field "send" (fun p -> p.Profile.send_per_item);
  field "recv" (fun p -> p.Profile.recv_per_item);
  field "tuple" (fun p -> p.Profile.recv_per_tuple)

let test_fit_recovers_exact_profile () =
  let profile =
    Profile.make ~request_overhead:35.0 ~send_per_item:0.7 ~recv_per_item:1.4
      ~recv_per_tuple:9.0 ()
  in
  let observations =
    synthetic_observations profile
      [
        (1, 0, 10, 0); (1, 20, 4, 0); (1, 0, 0, 50); (2, 5, 5, 5);
        (1, 40, 12, 0); (3, 0, 30, 10); (1, 7, 0, 0);
      ]
  in
  let fitted = Helpers.check_ok (Calibration.fit observations) in
  check_profile profile fitted

let test_fit_clamps_to_nonnegative () =
  (* Costs depend only on requests; other coefficients must come out 0,
     not negative noise. *)
  let observations =
    List.map
      (fun (r, s) ->
        { Calibration.requests = r; items_sent = s; items_received = s;
          tuples_received = 0; cost = 10.0 *. float_of_int r })
      [ (1, 3); (2, 1); (1, 7); (3, 2); (2, 9) ]
  in
  let fitted = Helpers.check_ok (Calibration.fit observations) in
  Alcotest.(check (float 0.01)) "overhead" 10.0 fitted.Profile.request_overhead;
  Alcotest.(check bool) "others non-negative" true
    (fitted.Profile.send_per_item >= 0.0
    && fitted.Profile.recv_per_item >= 0.0
    && fitted.Profile.recv_per_tuple >= 0.0)

let test_fit_errors () =
  ignore (Helpers.check_err "too few" (Calibration.fit []));
  (* No variation at all: singular. *)
  let same =
    List.init 6 (fun _ ->
        { Calibration.requests = 1; items_sent = 1; items_received = 1;
          tuples_received = 1; cost = 5.0 })
  in
  (* Identical rows still fit (rank 1 after trimming) or error — either
     way it must not produce a negative profile. *)
  match Calibration.fit same with
  | Error _ -> ()
  | Ok p ->
    Alcotest.(check bool) "non-negative" true
      (p.Profile.request_overhead >= 0.0 && p.Profile.send_per_item >= 0.0)

let test_observe_totals () =
  let before = Meter.zero in
  let after =
    { Meter.requests = 2; items_sent = 5; items_received = 3; tuples_received = 0;
      cost = 42.0 }
  in
  let obs = Calibration.observe_totals ~before ~after in
  Alcotest.(check int) "requests" 2 obs.Calibration.requests;
  Alcotest.(check (float 0.001)) "cost" 42.0 obs.Calibration.cost;
  Alcotest.check_raises "no request"
    (Invalid_argument "Calibration.observe_totals: snapshots not at least one request apart")
    (fun () -> ignore (Calibration.observe_totals ~before ~after:before))

let probe_conditions =
  [ Cond.Cmp ("A", Cond.Lt, Value.Int 5); Cond.Cmp ("A", Cond.Ge, Value.Int 5) ]

let big_relation () =
  Helpers.abc_relation
    (List.init 60 (fun i -> Helpers.abc_row (Printf.sprintf "k%02d" i) (i mod 10) "x"))

let test_fit_source_native () =
  let truth =
    Profile.make ~request_overhead:80.0 ~send_per_item:0.4 ~recv_per_item:2.0
      ~recv_per_tuple:12.0 ()
  in
  let source = Source.create ~profile:truth (big_relation ()) in
  let fitted = Helpers.check_ok (Calibration.fit_source source probe_conditions) in
  check_profile ~tolerance:0.05 truth fitted;
  (* The meter holds the probe traffic for cost accounting. *)
  Alcotest.(check bool) "probe traffic metered" true
    ((Source.totals source).Meter.requests > 0)

let test_fit_source_emulated () =
  (* Under emulation every semijoin binding is its own request, so
     overhead and send_per_item are indistinguishable (requests ≡ items
     sent); the fit cannot recover the parameters individually but must
     still PREDICT costs. *)
  let truth = Profile.make ~request_overhead:25.0 ~recv_per_item:1.5 () in
  let source =
    Source.create ~capability:Capability.no_semijoin ~profile:truth (big_relation ())
  in
  let fitted = Helpers.check_ok (Calibration.fit_source source probe_conditions) in
  let predict (p : Profile.t) ~requests ~sent ~received =
    (p.Profile.request_overhead *. float_of_int requests)
    +. (p.Profile.send_per_item *. float_of_int sent)
    +. (p.Profile.recv_per_item *. float_of_int received)
  in
  (* A selection (1 request, no bindings) and an emulated 20-binding
     semijoin with ~10 hits. *)
  List.iter
    (fun (requests, sent, received) ->
      let want = predict truth ~requests ~sent ~received in
      let got = predict fitted ~requests ~sent ~received in
      Alcotest.(check bool)
        (Printf.sprintf "predicts %.1f (got %.1f)" want got)
        true
        (Float.abs (got -. want) <= 0.05 *. want))
    [ (1, 0, 30); (20, 20, 10); (5, 5, 2) ]

let test_calibrated_model_drives_optimizer () =
  (* Replace every source's known profile by a freshly calibrated clone
     and check the optimizer picks an equally good plan. *)
  let instance =
    Fusion_workload.Workload.generate
      { Fusion_workload.Workload.default_spec with seed = 61 }
  in
  let sources = instance.Fusion_workload.Workload.sources in
  let conds =
    Array.to_list (Fusion_query.Query.conditions instance.Fusion_workload.Workload.query)
  in
  let recalibrated =
    Array.map
      (fun s ->
        let fitted = Helpers.check_ok (Calibration.fit_source s conds) in
        Source.create ~capability:(Source.capability s) ~profile:fitted
          (Source.relation s))
      sources
  in
  let run srcs =
    let env =
      Fusion_core.Opt_env.create ~universe:instance.Fusion_workload.Workload.spec.Fusion_workload.Workload.universe
        srcs instance.Fusion_workload.Workload.query
    in
    Fusion_core.Optimizer.optimize Fusion_core.Optimizer.Sja env
  in
  let true_plan = run sources and calibrated_plan = run recalibrated in
  (* Execute both plans against the TRUE sources; the calibrated plan
     must be competitive (within 5%). *)
  let cost plan = (Helpers.execute_plan instance plan).Fusion_plan.Exec.total_cost in
  let true_cost = cost true_plan.Fusion_core.Optimized.plan in
  let calibrated_cost = cost calibrated_plan.Fusion_core.Optimized.plan in
  Alcotest.(check bool)
    (Printf.sprintf "calibrated %.1f vs true %.1f" calibrated_cost true_cost)
    true
    (calibrated_cost <= true_cost *. 1.05 +. 1e-6)

let suite =
  [
    Alcotest.test_case "fit recovers an exact profile" `Quick test_fit_recovers_exact_profile;
    Alcotest.test_case "fit clamps to non-negative" `Quick test_fit_clamps_to_nonnegative;
    Alcotest.test_case "fit error handling" `Quick test_fit_errors;
    Alcotest.test_case "observe_totals" `Quick test_observe_totals;
    Alcotest.test_case "active calibration, native source" `Quick test_fit_source_native;
    Alcotest.test_case "active calibration, emulated source" `Quick test_fit_source_emulated;
    Alcotest.test_case "calibrated model drives the optimizer" `Quick
      test_calibrated_model_drives_optimizer;
  ]
