(* The parallel response-time model and its optimizer. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let measure (instance : Workload.instance) plan =
  let result = Helpers.execute_plan instance plan in
  (result, Response_time.of_result ~n:(Array.length instance.Workload.sources) plan result)

let test_filter_response_is_slowest_query () =
  (* A filter plan has no dependencies: response = the costliest single
     query. *)
  let instance = Workload.generate { Workload.default_spec with seed = 2 } in
  let env = env_of instance in
  let filter = Algorithms.filter env in
  let result, response = measure instance filter.Optimized.plan in
  let response = Option.get response in
  let slowest =
    List.fold_left
      (fun acc s ->
        if Op.is_source_query s.Exec.op then Float.max acc s.Exec.cost else acc)
      0.0 result.Exec.steps
  in
  Alcotest.(check (float 0.001)) "response = slowest query" slowest response

let test_semijoin_rounds_serialize () =
  (* A pure semijoin second round must wait for round one: response ≥
     round-1 span + round-2 span, and > the slowest single query if both
     rounds cost something. *)
  let instance = Workload.generate { Workload.default_spec with seed = 4 } in
  let n = Array.length instance.Workload.sources in
  let decisions =
    [|
      Array.make n Plan.By_select;
      Array.make n Plan.By_semijoin;
      Array.make n Plan.By_select;
    |]
  in
  let plan = Builder.round_shaped ~ordering:[| 0; 1; 2 |] ~decisions in
  let result, response = measure instance plan in
  let response = Option.get response in
  let round_span pred =
    List.fold_left
      (fun acc s -> if pred s.Exec.op then Float.max acc s.Exec.cost else acc)
      0.0 result.Exec.steps
  in
  let r1 = round_span (fun op -> match op with Op.Select { cond = 0; _ } -> true | _ -> false) in
  let r2 = round_span (fun op -> match op with Op.Semijoin _ -> true | _ -> false) in
  Alcotest.(check bool)
    (Printf.sprintf "response %.1f ≥ %.1f + %.1f" response r1 r2)
    true
    (response >= r1 +. r2 -. 1e-6)

let test_non_round_shaped_is_none () =
  let instance = Workload.fig1 () in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Select { dst = "B"; cond = 1; source = 1 };
          Op.Diff { dst = "C"; left = "A"; right = "B" };
        ]
      ~output:"C"
  in
  let result = Helpers.execute_plan instance plan in
  Alcotest.(check bool) "not round shaped" true
    (Response_time.of_result ~n:3 plan result = None);
  Alcotest.(check (float 0.001)) "sequential = total" result.Exec.total_cost
    (Response_time.sequential result)

let qcheck_response_bounded_by_work =
  Helpers.qtest ~count:60 "response time ≤ total work for SJA plans" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let result, response = measure instance sja.Optimized.plan in
      match response with
      | None -> QCheck2.Test.fail_report "SJA plan must be round-shaped"
      | Some r -> r <= result.Exec.total_cost +. 1e-6 && r >= 0.0)

let qcheck_sja_rt_sound =
  Helpers.qtest ~count:60 "SJA-RT plans compute the reference answer" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let rt = Response_opt.sja_rt env in
      let result = Helpers.execute_plan instance rt.Optimized.plan in
      Item_set.equal result.Exec.answer
        (Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query))

let qcheck_sja_rt_estimated_response_not_worse =
  Helpers.qtest ~count:60 "SJA-RT estimated response ≤ SJA's estimated response"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let rt = Response_opt.sja_rt env in
      (* Score SJA's plan under the response metric via its rounds. *)
      match Plan.rounds ~n:(Opt_env.n env) sja.Optimized.plan with
      | Error msg -> QCheck2.Test.fail_reportf "SJA not round-shaped: %s" msg
      | Ok rounds_list ->
        let ordering = Array.of_list (List.map (fun r -> r.Plan.cond) rounds_list) in
        let decisions = Array.of_list (List.map (fun r -> r.Plan.actions) rounds_list) in
        let sja_response = Response_opt.estimate_response env ordering decisions in
        rt.Optimized.est_cost <= sja_response +. 1e-6)

let suite =
  [
    Alcotest.test_case "filter response = slowest query" `Quick
      test_filter_response_is_slowest_query;
    Alcotest.test_case "semijoin rounds serialize" `Quick test_semijoin_rounds_serialize;
    Alcotest.test_case "non-round plans have no response model" `Quick
      test_non_round_shaped_is_none;
    qcheck_response_bounded_by_work;
    qcheck_sja_rt_sound;
    qcheck_sja_rt_estimated_response_not_worse;
  ]
