(* SJA+ postoptimizations (Section 4): difference pruning and source
   loading, on deterministic scenarios engineered to trigger them. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let reference (instance : Workload.instance) =
  Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query

let has_op pred plan = List.exists pred (Plan.ops plan)
let has_diff = has_op (fun op -> match op with Op.Diff _ -> true | _ -> false)
let has_load = has_op (fun op -> match op with Op.Load _ -> true | _ -> false)
let has_semijoin = has_op (fun op -> match op with Op.Semijoin _ -> true | _ -> false)

(* A world where semijoins clearly pay: a selective first condition on
   big sources far from the mediator. *)
let semijoin_world seed =
  Workload.generate
    {
      Workload.default_spec with
      n_sources = 5;
      universe = 8000;
      tuples_per_source = (1000, 1500);
      selectivities = [| 0.01; 0.4; 0.5 |];
      seed;
    }

let test_pruning_inserts_diffs () =
  let instance = semijoin_world 23 in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  Alcotest.(check bool) "baseline uses semijoins" true
    (has_semijoin sja.Optimized.plan);
  let pruned = Postopt.prune_with_difference env sja in
  Alcotest.(check bool) "pruned plan has diffs" true (has_diff pruned.Optimized.plan);
  Helpers.check_ok
    (Plan.validate
       ~m:(Fusion_query.Query.m instance.Workload.query)
       ~n:(Array.length instance.Workload.sources)
       pruned.Optimized.plan)

let test_pruning_preserves_answer_and_reduces_cost () =
  let instance = semijoin_world 29 in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let pruned = Postopt.prune_with_difference env sja in
  let base = Helpers.execute_plan instance sja.Optimized.plan in
  let less = Helpers.execute_plan instance pruned.Optimized.plan in
  Alcotest.check Helpers.item_set "same answer" base.Exec.answer less.Exec.answer;
  Alcotest.check Helpers.item_set "= reference" (reference instance) less.Exec.answer;
  Alcotest.(check bool)
    (Printf.sprintf "actual cost %.1f ≤ %.1f" less.Exec.total_cost base.Exec.total_cost)
    true
    (less.Exec.total_cost <= base.Exec.total_cost +. 1e-6)

let test_pruning_noop_on_filter_plans () =
  let instance = Workload.fig1 () in
  let env = env_of instance in
  let filter = Algorithms.filter env in
  let pruned = Postopt.prune_with_difference env filter in
  Alcotest.(check bool) "no diffs added" false (has_diff pruned.Optimized.plan)

(* A world with tiny sources: loading must kick in. *)
let tiny_world seed =
  Workload.generate
    {
      Workload.default_spec with
      n_sources = 4;
      universe = 200;
      tuples_per_source = (3, 6);
      selectivities = [| 0.3; 0.4; 0.5; 0.2 |];
      seed;
    }

let test_loading_triggers_on_tiny_sources () =
  let instance = tiny_world 31 in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let loaded = Postopt.load_sources env sja in
  Alcotest.(check bool) "some source loaded" true (has_load loaded.Optimized.plan);
  Alcotest.(check bool) "cheaper" true
    (loaded.Optimized.est_cost < sja.Optimized.est_cost);
  let result = Helpers.execute_plan instance loaded.Optimized.plan in
  Alcotest.check Helpers.item_set "answer preserved" (reference instance) result.Exec.answer

let test_loading_skipped_on_big_sources () =
  let instance = semijoin_world 37 in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let loaded = Postopt.load_sources env sja in
  Alcotest.(check bool) "no loading of 1000-tuple sources" false
    (has_load loaded.Optimized.plan)

let test_loaded_source_queried_once () =
  let instance = tiny_world 41 in
  let env = env_of instance in
  let result = Optimizer.optimize Optimizer.Sja_plus env in
  (* Count remote operations per loaded source: must be exactly the lq. *)
  let loaded_sources =
    List.filter_map
      (fun op -> match op with Op.Load { source; _ } -> Some source | _ -> None)
      (Plan.ops result.Optimized.plan)
  in
  Alcotest.(check bool) "at least one load" true (loaded_sources <> []);
  List.iter
    (fun j ->
      let remote_ops =
        List.filter
          (fun op ->
            match op with
            | Op.Select { source; _ } | Op.Semijoin { source; _ } -> source = j
            | _ -> false)
          (Plan.ops result.Optimized.plan)
      in
      Alcotest.(check int) "no other remote ops" 0 (List.length remote_ops))
    loaded_sources

let test_sja_plus_emulated_semijoin_world () =
  (* Difference pruning matters most when semijoins are emulated: every
     pruned item saves a whole point query. *)
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        n_sources = 5;
        universe = 8000;
        tuples_per_source = (1000, 1500);
        selectivities = [| 0.01; 0.4; 0.5 |];
        heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 1.0 };
        seed = 43;
      }
  in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let plus = Optimizer.optimize Optimizer.Sja_plus env in
  let base = Helpers.execute_plan instance sja.Optimized.plan in
  let better = Helpers.execute_plan instance plus.Optimized.plan in
  Alcotest.check Helpers.item_set "same answer" base.Exec.answer better.Exec.answer;
  Alcotest.(check bool)
    (Printf.sprintf "%.1f ≤ %.1f" better.Exec.total_cost base.Exec.total_cost)
    true
    (better.Exec.total_cost <= base.Exec.total_cost +. 1e-6)

let qcheck_sja_plus_sound_and_valid =
  Helpers.qtest ~count:60 "SJA+ plans validate and stay correct" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let plus = Optimizer.optimize Optimizer.Sja_plus env in
      let m = Fusion_query.Query.m instance.Workload.query in
      let n = Array.length instance.Workload.sources in
      (match Plan.validate ~m ~n plus.Optimized.plan with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_reportf "invalid plan: %s" msg);
      let result = Helpers.execute_plan instance plus.Optimized.plan in
      Item_set.equal result.Exec.answer (reference instance))

let qcheck_ranked_pruning_sound =
  Helpers.qtest ~count:40 "ranked difference pruning preserves answers" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let ranked = Postopt.prune_with_difference ~order:Postopt.By_confirmation env sja in
      let m = Fusion_query.Query.m instance.Workload.query in
      let n = Array.length instance.Workload.sources in
      (match Plan.validate ~m ~n ranked.Optimized.plan with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_reportf "invalid plan: %s" msg);
      let base = Helpers.execute_plan instance sja.Optimized.plan in
      let less = Helpers.execute_plan instance ranked.Optimized.plan in
      Item_set.equal base.Exec.answer less.Exec.answer
      && less.Exec.total_cost <= base.Exec.total_cost +. 1e-6)

let test_ranked_order_not_worse_than_source_order () =
  (* On the semijoin-heavy world, confirmation-ranked chaining should
     shrink the shipped sets at least as well as source order. *)
  let instance = semijoin_world 47 in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let plain = Postopt.prune_with_difference env sja in
  let ranked = Postopt.prune_with_difference ~order:Postopt.By_confirmation env sja in
  let plain_cost = (Helpers.execute_plan instance plain.Optimized.plan).Exec.total_cost in
  let ranked_cost = (Helpers.execute_plan instance ranked.Optimized.plan).Exec.total_cost in
  Alcotest.(check bool)
    (Printf.sprintf "ranked %.1f ≤ plain %.1f (within 2%%)" ranked_cost plain_cost)
    true
    (ranked_cost <= plain_cost *. 1.02)

let qcheck_pruning_never_hurts_actual_cost =
  Helpers.qtest ~count:60 "difference pruning never raises actual cost" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let pruned = Postopt.prune_with_difference env sja in
      let base = Helpers.execute_plan instance sja.Optimized.plan in
      let less = Helpers.execute_plan instance pruned.Optimized.plan in
      less.Exec.total_cost <= base.Exec.total_cost +. 1e-6)

let suite =
  [
    Alcotest.test_case "pruning inserts differences" `Quick test_pruning_inserts_diffs;
    Alcotest.test_case "pruning preserves answer, reduces cost" `Quick
      test_pruning_preserves_answer_and_reduces_cost;
    Alcotest.test_case "pruning no-op on filter plans" `Quick test_pruning_noop_on_filter_plans;
    Alcotest.test_case "loading triggers on tiny sources" `Quick
      test_loading_triggers_on_tiny_sources;
    Alcotest.test_case "loading skipped on big sources" `Quick
      test_loading_skipped_on_big_sources;
    Alcotest.test_case "loaded source queried exactly once" `Quick
      test_loaded_source_queried_once;
    Alcotest.test_case "SJA+ with emulated semijoins" `Quick
      test_sja_plus_emulated_semijoin_world;
    qcheck_sja_plus_sound_and_valid;
    qcheck_ranked_pruning_sound;
    Alcotest.test_case "ranked order competitive" `Quick
      test_ranked_order_not_worse_than_source_order;
    qcheck_pruning_never_hurts_actual_cost;
  ]
