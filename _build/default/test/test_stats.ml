(* PRNG, distributions, and source statistics. *)

open Fusion_data
open Fusion_cond
module Prng = Fusion_stats.Prng
module Dist = Fusion_stats.Dist
module Source_stats = Fusion_stats.Source_stats

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_int_bounds () =
  let t = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_float_bounds () =
  let t = Prng.create 4 in
  for _ = 1 to 1000 do
    let v = Prng.float t 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_prng_uniformity () =
  (* Coarse sanity: each of 10 buckets gets 10% ± 3% of 10k draws. *)
  let t = Prng.create 5 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = Prng.int t 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i count ->
      let share = float_of_int count /. float_of_int n in
      if share < 0.07 || share > 0.13 then
        Alcotest.failf "bucket %d has share %.3f" i share)
    buckets

let test_prng_shuffle_permutes () =
  let t = Prng.create 6 in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_split_independence () =
  let parent = Prng.create 9 in
  let child = Prng.split parent in
  (* The child must not replay the parent's stream. *)
  let equal_count = ref 0 in
  for _ = 1 to 20 do
    if Prng.next_int64 parent = Prng.next_int64 child then incr equal_count
  done;
  Alcotest.(check bool) "streams differ" true (!equal_count < 3)

let test_dist_uniform () =
  let d = Dist.uniform 5 in
  Alcotest.(check int) "support" 5 (Dist.support d);
  let t = Prng.create 11 in
  for _ = 1 to 500 do
    let v = Dist.sample d t in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 5)
  done

let test_dist_zipf_skew () =
  let d = Dist.zipf ~skew:1.2 100 in
  let t = Prng.create 12 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let v = Dist.sample d t in
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate rank 50 heavily. *)
  Alcotest.(check bool) "head dominates tail" true (counts.(0) > 8 * (counts.(50) + 1))

let test_dist_weighted () =
  let d = Dist.weighted [| 0.0; 1.0; 0.0 |] in
  let t = Prng.create 13 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always index 1" 1 (Dist.sample d t)
  done

let big_relation () =
  let rows =
    List.init 1000 (fun i ->
        Helpers.abc_row (Printf.sprintf "k%03d" (i mod 400)) (i mod 100) "x")
  in
  Helpers.abc_relation rows

let test_exact_stats () =
  let r = big_relation () in
  let st = Source_stats.exact r in
  Alcotest.(check bool) "exact" true (Source_stats.is_exact st);
  Alcotest.(check int) "cardinality" 1000 (Source_stats.cardinality st);
  Alcotest.(check int) "distinct" 400 (Source_stats.distinct_items st);
  (* A < 10 matches i mod 100 < 10: items k000..k009, k100.., etc. Count
     exactly via the relation itself. *)
  let cond = Cond.Cmp ("A", Cond.Lt, Value.Int 10) in
  let expected =
    float_of_int
      (Relation.count_matching r (fun t -> Cond.eval Helpers.abc_schema cond t))
  in
  Alcotest.(check (float 0.001)) "matching" expected (Source_stats.matching_items st cond);
  Alcotest.(check (float 0.001)) "selectivity" (expected /. 400.0)
    (Source_stats.item_selectivity st cond)

let test_sampled_stats_approximate () =
  let r = big_relation () in
  let st = Source_stats.sampled ~sample_size:200 (Prng.create 21) r in
  Alcotest.(check bool) "not exact" true (not (Source_stats.is_exact st));
  Alcotest.(check int) "cardinality still published" 1000 (Source_stats.cardinality st);
  let cond = Cond.Cmp ("A", Cond.Lt, Value.Int 50) in
  let estimate = Source_stats.matching_items st cond in
  (* True tuple fraction is 0.5 → estimate ≈ 200 items (of 400); accept
     a generous band. *)
  Alcotest.(check bool) "within band" true (estimate > 120.0 && estimate < 280.0)

let test_sampled_stats_memoized_and_deterministic () =
  let r = big_relation () in
  let st = Source_stats.sampled ~sample_size:50 (Prng.create 22) r in
  let cond = Cond.Cmp ("A", Cond.Lt, Value.Int 30) in
  let first = Source_stats.matching_items st cond in
  let second = Source_stats.matching_items st cond in
  Alcotest.(check (float 0.0)) "memoized value stable" first second

let test_stats_refresh_on_mutation () =
  let r = Helpers.abc_relation [ Helpers.abc_row "k1" 1 "x" ] in
  let st = Source_stats.exact r in
  let cond = Cond.Cmp ("A", Cond.Lt, Value.Int 10) in
  Alcotest.(check (float 0.001)) "one item" 1.0 (Source_stats.matching_items st cond);
  (* The source grows; memoized estimates must follow. *)
  Relation.insert r (Tuple.create_exn Helpers.abc_schema (Helpers.abc_row "k2" 2 "y"));
  Relation.insert r (Tuple.create_exn Helpers.abc_schema (Helpers.abc_row "k3" 3 "y"));
  Alcotest.(check (float 0.001)) "refreshed" 3.0 (Source_stats.matching_items st cond);
  (* Histogram providers rebuild too. *)
  let hist = Source_stats.histogram ~buckets:4 r in
  let before = Source_stats.matching_items hist cond in
  for i = 4 to 20 do
    Relation.insert r
      (Tuple.create_exn Helpers.abc_schema (Helpers.abc_row (Printf.sprintf "k%d" i) i "y"))
  done;
  Alcotest.(check bool) "histogram refreshed" true
    (Source_stats.matching_items hist cond > before)

let test_empty_relation_stats () =
  let r = Helpers.abc_relation [] in
  let st = Source_stats.exact r in
  Alcotest.(check (float 0.0)) "no matches" 0.0
    (Source_stats.matching_items st (Cond.Cmp ("A", Cond.Eq, Value.Int 1)));
  Alcotest.(check (float 0.0)) "selectivity 0" 0.0
    (Source_stats.item_selectivity st Cond.True)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seed separation" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "prng shuffle" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng split" `Quick test_split_independence;
    Alcotest.test_case "uniform distribution" `Quick test_dist_uniform;
    Alcotest.test_case "zipf skew" `Quick test_dist_zipf_skew;
    Alcotest.test_case "weighted distribution" `Quick test_dist_weighted;
    Alcotest.test_case "exact statistics" `Quick test_exact_stats;
    Alcotest.test_case "sampled statistics approximate" `Quick test_sampled_stats_approximate;
    Alcotest.test_case "sampled statistics memoized" `Quick
      test_sampled_stats_memoized_and_deterministic;
    Alcotest.test_case "statistics refresh on mutation" `Quick test_stats_refresh_on_mutation;
    Alcotest.test_case "empty relation statistics" `Quick test_empty_relation_stats;
  ]
