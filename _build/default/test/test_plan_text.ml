(* Plan serialization: round trips and error reporting. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let plan_equal a b = Plan.ops a = Plan.ops b && Plan.output a = Plan.output b

let test_round_trip_all_op_kinds () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Semijoin { dst = "B"; cond = 1; source = 1; input = "A" };
          Op.Load { dst = "L"; source = 2 };
          Op.Local_select { dst = "C"; cond = 2; input = "L" };
          Op.Union { dst = "U"; args = [ "A"; "B"; "C" ] };
          Op.Inter { dst = "I"; args = [ "U"; "A" ] };
          Op.Diff { dst = "D"; left = "I"; right = "B" };
        ]
      ~output:"D"
  in
  let text = Plan_text.to_string plan in
  let parsed = Helpers.check_ok (Plan_text.of_string text) in
  Alcotest.(check bool) "round trip" true (plan_equal plan parsed)

let test_comments_and_blank_lines () =
  let text =
    "# a comment\n\nA := sq(c1, R1)  # trailing comment\n\nanswer A\n"
  in
  let parsed = Helpers.check_ok (Plan_text.of_string text) in
  Alcotest.(check int) "one op" 1 (List.length (Plan.ops parsed));
  Alcotest.(check string) "output" "A" (Plan.output parsed)

let test_errors () =
  let err text = Helpers.check_err "plan text" (Plan_text.of_string text) in
  ignore (err "");
  ignore (err "A := sq(c1, R1)\n"); (* no answer *)
  ignore (err "A := sq(c0, R1)\nanswer A\n"); (* 1-based indexes *)
  ignore (err "A := sq(c1)\nanswer A\n");
  ignore (err "A := wat(c1, R1)\nanswer A\n");
  ignore (err "A = sq(c1, R1)\nanswer A\n");
  ignore (err "A := sq(c1, R1)\nanswer A\nB := sq(c1, R1)\n");
  ignore (err "A := diff(B)\nanswer A\n");
  ignore (err "1bad := sq(c1, R1)\nanswer 1bad\n")

let qcheck_optimizer_plans_round_trip =
  Helpers.qtest ~count:60 "optimizer plans survive to_string/of_string" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      List.for_all
        (fun algo ->
          let plan = (Optimizer.optimize algo env).Optimized.plan in
          match Plan_text.of_string (Plan_text.to_string plan) with
          | Ok parsed -> plan_equal plan parsed
          | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s" msg)
        Optimizer.all)

let qcheck_reexecution_after_round_trip =
  Helpers.qtest ~count:30 "deserialized plans execute identically" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let plan = (Optimizer.optimize Optimizer.Sja_plus env).Optimized.plan in
      let parsed = Helpers.check_ok (Plan_text.of_string (Plan_text.to_string plan)) in
      let a = Helpers.execute_plan instance plan in
      let b = Helpers.execute_plan instance parsed in
      Fusion_data.Item_set.equal a.Exec.answer b.Exec.answer
      && Float.abs (a.Exec.total_cost -. b.Exec.total_cost) < 1e-6)

let suite =
  [
    Alcotest.test_case "round trip of every op kind" `Quick test_round_trip_all_op_kinds;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
    Alcotest.test_case "errors" `Quick test_errors;
    qcheck_optimizer_plans_round_trip;
    qcheck_reexecution_after_round_trip;
  ]
