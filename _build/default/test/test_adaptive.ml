(* Adaptive runtime: soundness, early exit, feedback quality. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let reference (instance : Workload.instance) =
  Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query

let qcheck_adaptive_sound =
  Helpers.qtest ~count:60 "adaptive runtime computes the reference answer"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let result = Adaptive.run (env_of instance) in
      Item_set.equal result.Adaptive.answer (reference instance))

let qcheck_adaptive_cost_matches_meters =
  Helpers.qtest ~count:40 "adaptive cost equals metered cost" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let result = Adaptive.run (env_of instance) in
      let metered =
        Array.fold_left
          (fun acc s -> acc +. (Fusion_source.Source.totals s).Fusion_net.Meter.cost)
          0.0 instance.Workload.sources
      in
      Float.abs (result.Adaptive.total_cost -. metered) < 1e-6)

let test_rounds_cover_conditions () =
  let instance = Workload.generate { Workload.default_spec with seed = 3 } in
  let result = Adaptive.run (env_of instance) in
  let conds = List.map (fun r -> r.Adaptive.cond) result.Adaptive.rounds in
  Alcotest.(check (list int)) "all conditions, each once" [ 0; 1; 2 ]
    (List.sort compare conds)

let test_first_round_is_selections () =
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let result = Adaptive.run (env_of instance) in
  match result.Adaptive.rounds with
  | first :: _ ->
    Alcotest.(check bool) "all selects" true
      (Array.for_all (fun a -> a = Fusion_plan.Plan.By_select) first.Adaptive.decisions)
  | [] -> Alcotest.fail "no rounds"

let test_early_exit_on_empty () =
  let instance =
    Workload.generate
      { Workload.default_spec with selectivities = [| 0.0; 0.3; 0.4 |]; seed = 7 }
  in
  let result = Adaptive.run (env_of instance) in
  Alcotest.check Helpers.item_set "empty answer" Item_set.empty result.Adaptive.answer;
  Alcotest.(check int) "stopped after one round" 1 (List.length result.Adaptive.rounds)

let test_candidates_monotone () =
  let instance = Workload.generate { Workload.default_spec with seed = 9 } in
  let result = Adaptive.run (env_of instance) in
  let sizes = List.map (fun r -> r.Adaptive.candidates) result.Adaptive.rounds in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "candidate sets shrink" true (decreasing sizes)

let test_beats_static_on_entity_correlated_world () =
  let spec =
    {
      Workload.default_spec with
      Workload.n_sources = 16;
      universe = 1000;
      item_skew = 1.1;
      entity_correlation = 0.9;
      tuples_per_source = (300, 500);
      selectivities = [| 0.02; 0.3; 0.4 |];
      seed = 21;
    }
  in
  let instance = Workload.generate spec in
  let env = env_of instance in
  let adaptive = Adaptive.run env in
  let sja = Algorithms.sja env in
  Array.iter Fusion_source.Source.reset_meter instance.Workload.sources;
  let static =
    Fusion_plan.Exec.run ~sources:instance.Workload.sources
      ~conds:(Fusion_query.Query.conditions instance.Workload.query)
      sja.Optimized.plan
  in
  Alcotest.check Helpers.item_set "same answer" static.Fusion_plan.Exec.answer
    adaptive.Adaptive.answer;
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %.1f ≤ static %.1f" adaptive.Adaptive.total_cost
       static.Fusion_plan.Exec.total_cost)
    true
    (adaptive.Adaptive.total_cost <= static.Fusion_plan.Exec.total_cost +. 1e-6)

let suite =
  [
    qcheck_adaptive_sound;
    qcheck_adaptive_cost_matches_meters;
    Alcotest.test_case "rounds cover all conditions" `Quick test_rounds_cover_conditions;
    Alcotest.test_case "first round is selections" `Quick test_first_round_is_selections;
    Alcotest.test_case "early exit on empty candidates" `Quick test_early_exit_on_empty;
    Alcotest.test_case "candidate sets shrink" `Quick test_candidates_monotone;
    Alcotest.test_case "beats static SJA under entity correlation" `Quick
      test_beats_static_on_entity_correlated_world;
  ]
