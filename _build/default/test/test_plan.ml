(* Plan algebra: validation, the Figure 2 plan classification, printing. *)

open Fusion_plan

(* The three plans of Figure 2 (3 conditions, 2 sources), transcribed
   literally. *)
let fig2a_filter =
  Plan.create
    ~ops:
      [
        Op.Select { dst = "X11"; cond = 0; source = 0 };
        Op.Select { dst = "X12"; cond = 0; source = 1 };
        Op.Union { dst = "X1"; args = [ "X11"; "X12" ] };
        Op.Select { dst = "X21"; cond = 1; source = 0 };
        Op.Select { dst = "X22"; cond = 1; source = 1 };
        Op.Union { dst = "X2"; args = [ "X21"; "X22" ] };
        Op.Inter { dst = "X2"; args = [ "X2"; "X1" ] };
        Op.Select { dst = "X31"; cond = 2; source = 0 };
        Op.Select { dst = "X32"; cond = 2; source = 1 };
        Op.Union { dst = "X3"; args = [ "X31"; "X32" ] };
        Op.Inter { dst = "X3"; args = [ "X3"; "X2" ] };
      ]
    ~output:"X3"

let fig2b_semijoin =
  Plan.create
    ~ops:
      [
        Op.Select { dst = "X11"; cond = 0; source = 0 };
        Op.Select { dst = "X12"; cond = 0; source = 1 };
        Op.Union { dst = "X1"; args = [ "X11"; "X12" ] };
        Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" };
        Op.Semijoin { dst = "X22"; cond = 1; source = 1; input = "X1" };
        Op.Union { dst = "X2"; args = [ "X21"; "X22" ] };
        Op.Select { dst = "X31"; cond = 2; source = 0 };
        Op.Select { dst = "X32"; cond = 2; source = 1 };
        Op.Union { dst = "X3"; args = [ "X31"; "X32" ] };
        Op.Inter { dst = "X3"; args = [ "X2"; "X3" ] };
      ]
    ~output:"X3"

let fig2c_adaptive =
  Plan.create
    ~ops:
      [
        Op.Select { dst = "X11"; cond = 0; source = 0 };
        Op.Select { dst = "X12"; cond = 0; source = 1 };
        Op.Union { dst = "X1"; args = [ "X11"; "X12" ] };
        Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" };
        Op.Select { dst = "X22"; cond = 1; source = 1 };
        Op.Union { dst = "X2"; args = [ "X21"; "X22" ] };
        Op.Inter { dst = "X2"; args = [ "X2"; "X1" ] };
        Op.Select { dst = "X31"; cond = 2; source = 0 };
        Op.Select { dst = "X32"; cond = 2; source = 1 };
        Op.Union { dst = "X3"; args = [ "X31"; "X32" ] };
        Op.Inter { dst = "X3"; args = [ "X2"; "X3" ] };
      ]
    ~output:"X3"

let check_valid plan = Helpers.check_ok (Plan.validate ~m:3 ~n:2 plan)

let test_fig2_validate () =
  check_valid fig2a_filter;
  check_valid fig2b_semijoin;
  check_valid fig2c_adaptive

let test_fig2_classes () =
  (* (a) is a filter plan; all three are simple. *)
  Alcotest.(check bool) "a filter" true (Plan.is_filter fig2a_filter);
  Alcotest.(check bool) "b not filter" false (Plan.is_filter fig2b_semijoin);
  Alcotest.(check bool) "c not filter" false (Plan.is_filter fig2c_adaptive);
  Alcotest.(check bool) "all simple" true
    (Plan.is_simple fig2a_filter && Plan.is_simple fig2b_semijoin
   && Plan.is_simple fig2c_adaptive);
  (* Class nesting: filter ⊂ semijoin ⊂ semijoin-adaptive. *)
  Alcotest.(check bool) "a is semijoin-shaped" true (Plan.is_semijoin ~n:2 fig2a_filter);
  Alcotest.(check bool) "b is semijoin-shaped" true (Plan.is_semijoin ~n:2 fig2b_semijoin);
  Alcotest.(check bool) "c is NOT semijoin-shaped" false (Plan.is_semijoin ~n:2 fig2c_adaptive);
  Alcotest.(check bool) "a adaptive" true (Plan.is_semijoin_adaptive ~n:2 fig2a_filter);
  Alcotest.(check bool) "b adaptive" true (Plan.is_semijoin_adaptive ~n:2 fig2b_semijoin);
  Alcotest.(check bool) "c adaptive" true (Plan.is_semijoin_adaptive ~n:2 fig2c_adaptive)

let test_rounds_structure () =
  let rounds = Helpers.check_ok (Plan.rounds ~n:2 fig2c_adaptive) in
  Alcotest.(check int) "three rounds" 3 (List.length rounds);
  match rounds with
  | [ r1; r2; r3 ] ->
    Alcotest.(check int) "round 1 is c1" 0 r1.Plan.cond;
    Alcotest.(check bool) "round 1 selects" true
      (Array.for_all (fun a -> a = Plan.By_select) r1.Plan.actions);
    Alcotest.(check bool) "round 2 mixed" true
      (r2.Plan.actions.(0) = Plan.By_semijoin && r2.Plan.actions.(1) = Plan.By_select);
    Alcotest.(check int) "round 3 is c3" 2 r3.Plan.cond
  | _ -> Alcotest.fail "expected exactly three rounds"

let test_validate_catches_errors () =
  let undefined =
    Plan.create ~ops:[ Op.Union { dst = "X"; args = [ "Y" ] } ] ~output:"X"
  in
  ignore (Helpers.check_err "undefined var" (Plan.validate ~m:1 ~n:1 undefined));
  let bad_cond =
    Plan.create ~ops:[ Op.Select { dst = "X"; cond = 5; source = 0 } ] ~output:"X"
  in
  ignore (Helpers.check_err "cond range" (Plan.validate ~m:1 ~n:1 bad_cond));
  let bad_source =
    Plan.create ~ops:[ Op.Select { dst = "X"; cond = 0; source = 3 } ] ~output:"X"
  in
  ignore (Helpers.check_err "source range" (Plan.validate ~m:1 ~n:1 bad_source));
  let kind_clash =
    Plan.create
      ~ops:
        [
          Op.Load { dst = "L"; source = 0 };
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Union { dst = "Y"; args = [ "L"; "X" ] };
        ]
      ~output:"Y"
  in
  ignore (Helpers.check_err "kind clash" (Plan.validate ~m:1 ~n:1 kind_clash));
  let rel_output =
    Plan.create ~ops:[ Op.Load { dst = "L"; source = 0 } ] ~output:"L"
  in
  ignore (Helpers.check_err "relation output" (Plan.validate ~m:1 ~n:1 rel_output));
  let empty_union =
    Plan.create ~ops:[ Op.Union { dst = "X"; args = [] } ] ~output:"X"
  in
  ignore (Helpers.check_err "empty union" (Plan.validate ~m:1 ~n:1 empty_union))

let test_local_select_needs_loaded () =
  let ok =
    Plan.create
      ~ops:
        [
          Op.Load { dst = "L"; source = 0 };
          Op.Local_select { dst = "X"; cond = 0; input = "L" };
        ]
      ~output:"X"
  in
  Helpers.check_ok (Plan.validate ~m:1 ~n:1 ok);
  let bad =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "Y"; cond = 0; source = 0 };
          Op.Local_select { dst = "X"; cond = 0; input = "Y" };
        ]
      ~output:"X"
  in
  ignore (Helpers.check_err "items input" (Plan.validate ~m:1 ~n:1 bad))

let test_postopt_ops_break_simplicity () =
  let with_diff =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Select { dst = "Y"; cond = 0; source = 1 };
          Op.Diff { dst = "D"; left = "X"; right = "Y" };
        ]
      ~output:"D"
  in
  Helpers.check_ok (Plan.validate ~m:1 ~n:2 with_diff);
  Alcotest.(check bool) "diff not simple" false (Plan.is_simple with_diff);
  Alcotest.(check bool) "diff not adaptive" false (Plan.is_semijoin_adaptive ~n:2 with_diff)

let test_source_query_count () =
  Alcotest.(check int) "filter: 6 queries" 6 (Plan.source_query_count fig2a_filter);
  Alcotest.(check int) "semijoin: 6 queries" 6 (Plan.source_query_count fig2b_semijoin)

let test_rounds_rejects_semijoin_on_stale_input () =
  (* Semijoin reading X1 in round 3 is not the previous round's result. *)
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X11"; cond = 0; source = 0 };
          Op.Union { dst = "X1"; args = [ "X11" ] };
          Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" };
          Op.Union { dst = "X2"; args = [ "X21" ] };
          Op.Semijoin { dst = "X31"; cond = 2; source = 0; input = "X1" };
          Op.Union { dst = "X3"; args = [ "X31" ] };
        ]
      ~output:"X3"
  in
  Helpers.check_ok (Plan.validate ~m:3 ~n:1 plan);
  Alcotest.(check bool) "not round-shaped" false (Plan.is_semijoin_adaptive ~n:1 plan)

let test_rounds_rejects_repeated_condition () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X11"; cond = 0; source = 0 };
          Op.Union { dst = "X1"; args = [ "X11" ] };
          Op.Select { dst = "X21"; cond = 0; source = 0 };
          Op.Union { dst = "U2"; args = [ "X21" ] };
          Op.Inter { dst = "X2"; args = [ "X1"; "U2" ] };
        ]
      ~output:"X2"
  in
  Alcotest.(check bool) "repeated condition not adaptive" false
    (Plan.is_semijoin_adaptive ~n:1 plan)

(* The Builder and the rounds analyzer are inverse: any ordering ×
   decisions round-trips exactly. *)
let qcheck_builder_rounds_round_trip =
  let gen =
    QCheck2.Gen.(
      let* m = int_range 1 4 in
      let* n = int_range 1 5 in
      let* ordering =
        (* random permutation of 0..m-1 *)
        let* seed = int_range 0 10_000 in
        return
          (let arr = Array.init m (fun i -> i) in
           Fusion_stats.Prng.shuffle (Fusion_stats.Prng.create seed) arr;
           arr)
      in
      let* decision_bits = list_size (return (m * n)) bool in
      let decisions =
        Array.init m (fun r ->
            Array.init n (fun j ->
                if r = 0 then Fusion_plan.Plan.By_select
                else if List.nth decision_bits ((r * n) + j) then
                  Fusion_plan.Plan.By_semijoin
                else Fusion_plan.Plan.By_select))
      in
      return (n, ordering, decisions))
  in
  Helpers.qtest ~count:100 "Builder.round_shaped round-trips through Plan.rounds" gen
    (fun (n, ordering, _) ->
      Printf.sprintf "n=%d ordering=[%s]" n
        (String.concat ";" (List.map string_of_int (Array.to_list ordering))))
    (fun (n, ordering, decisions) ->
      let plan = Fusion_core.Builder.round_shaped ~ordering ~decisions in
      let m = Array.length ordering in
      (match Plan.validate ~m ~n plan with
      | Ok () -> ()
      | Error msg -> QCheck2.Test.fail_reportf "invalid: %s" msg);
      match Plan.rounds ~n plan with
      | Error msg -> QCheck2.Test.fail_reportf "not round-shaped: %s" msg
      | Ok rounds_list ->
        let got_ordering = List.map (fun r -> r.Plan.cond) rounds_list in
        let got_decisions = List.map (fun r -> r.Plan.actions) rounds_list in
        got_ordering = Array.to_list ordering
        && got_decisions = Array.to_list decisions)

let test_op_pp () =
  let to_string op = Format.asprintf "%a" (Op.pp ?source_name:None) op in
  Alcotest.(check string) "sq" "X11 := sq(c1, R1)"
    (to_string (Op.Select { dst = "X11"; cond = 0; source = 0 }));
  Alcotest.(check string) "sjq" "X21 := sjq(c2, R1, X1)"
    (to_string (Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" }));
  Alcotest.(check string) "lq" "L1 := lq(R1)"
    (to_string (Op.Load { dst = "L1"; source = 0 }));
  Alcotest.(check string) "diff" "D := X1 - X21"
    (to_string (Op.Diff { dst = "D"; left = "X1"; right = "X21" }));
  Alcotest.(check string) "union" "X1 := X11 ∪ X12"
    (to_string (Op.Union { dst = "X1"; args = [ "X11"; "X12" ] }))

let suite =
  [
    Alcotest.test_case "figure 2 plans validate" `Quick test_fig2_validate;
    Alcotest.test_case "figure 2 classification" `Quick test_fig2_classes;
    Alcotest.test_case "round structure reconstruction" `Quick test_rounds_structure;
    Alcotest.test_case "validation errors" `Quick test_validate_catches_errors;
    Alcotest.test_case "local select needs loaded relation" `Quick
      test_local_select_needs_loaded;
    Alcotest.test_case "difference breaks simplicity" `Quick
      test_postopt_ops_break_simplicity;
    Alcotest.test_case "source query count" `Quick test_source_query_count;
    Alcotest.test_case "stale semijoin input rejected" `Quick
      test_rounds_rejects_semijoin_on_stale_input;
    Alcotest.test_case "repeated condition rejected" `Quick
      test_rounds_rejects_repeated_condition;
    Alcotest.test_case "operation printing" `Quick test_op_pp;
    qcheck_builder_rounds_round_trip;
  ]
