(* Condition language: evaluation, validation, parsing, printing. *)

open Fusion_data
open Fusion_cond

let schema = Helpers.abc_schema
let tuple m a b = Tuple.create_exn schema (Helpers.abc_row m a b)
let ev c t = Cond.eval schema c t

let test_eval_comparisons () =
  let t = tuple "k" 5 "hello" in
  Alcotest.(check bool) "eq true" true (ev (Cmp ("A", Eq, Int 5)) t);
  Alcotest.(check bool) "eq false" false (ev (Cmp ("A", Eq, Int 6)) t);
  Alcotest.(check bool) "ne" true (ev (Cmp ("A", Ne, Int 6)) t);
  Alcotest.(check bool) "lt" true (ev (Cmp ("A", Lt, Int 6)) t);
  Alcotest.(check bool) "le edge" true (ev (Cmp ("A", Le, Int 5)) t);
  Alcotest.(check bool) "gt" false (ev (Cmp ("A", Gt, Int 5)) t);
  Alcotest.(check bool) "ge edge" true (ev (Cmp ("A", Ge, Int 5)) t);
  Alcotest.(check bool) "string eq" true (ev (Cmp ("B", Eq, String "hello")) t)

let test_eval_range_and_membership () =
  let t = tuple "k" 5 "hello" in
  Alcotest.(check bool) "between inside" true (ev (Between ("A", Int 1, Int 9)) t);
  Alcotest.(check bool) "between lower edge" true (ev (Between ("A", Int 5, Int 9)) t);
  Alcotest.(check bool) "between outside" false (ev (Between ("A", Int 6, Int 9)) t);
  Alcotest.(check bool) "in hit" true (ev (In_list ("A", [ Int 1; Int 5 ])) t);
  Alcotest.(check bool) "in miss" false (ev (In_list ("A", [ Int 1; Int 2 ])) t);
  Alcotest.(check bool) "prefix hit" true (ev (Prefix ("B", "hel")) t);
  Alcotest.(check bool) "prefix empty" true (ev (Prefix ("B", "")) t);
  Alcotest.(check bool) "prefix miss" false (ev (Prefix ("B", "world")) t);
  Alcotest.(check bool) "prefix on int is false" false (ev (Prefix ("A", "5")) t)

let test_eval_boolean () =
  let t = tuple "k" 5 "hello" in
  let a_is_5 = Cond.Cmp ("A", Eq, Int 5) in
  let b_is_x = Cond.Cmp ("B", Eq, String "x") in
  Alcotest.(check bool) "and" false (ev (And (a_is_5, b_is_x)) t);
  Alcotest.(check bool) "or" true (ev (Or (a_is_5, b_is_x)) t);
  Alcotest.(check bool) "not" true (ev (Not b_is_x) t);
  Alcotest.(check bool) "true" true (ev True t)

let test_eval_null_semantics () =
  let t = Tuple.create_exn schema [ String "k"; Null; String "b" ] in
  Alcotest.(check bool) "cmp null false" false (ev (Cmp ("A", Eq, Int 5)) t);
  Alcotest.(check bool) "ne null false too" false (ev (Cmp ("A", Ne, Int 5)) t);
  Alcotest.(check bool) "between null false" false (ev (Between ("A", Int 0, Int 9)) t);
  Alcotest.(check bool) "not lifts" true (ev (Not (Cmp ("A", Eq, Int 5))) t)

let test_is_null () =
  let with_null = Tuple.create_exn schema [ String "k"; Null; String "b" ] in
  let without = tuple "k" 5 "b" in
  Alcotest.(check bool) "null matches" true (ev (Is_null "A") with_null);
  Alcotest.(check bool) "non-null doesn't" false (ev (Is_null "A") without);
  Alcotest.(check bool) "not null" true (ev (Not (Is_null "A")) without);
  let parse_is s = Helpers.check_ok (Cond.parse s) in
  Alcotest.check Helpers.cond "parse IS NULL" (Is_null "A") (parse_is "A IS NULL");
  Alcotest.check Helpers.cond "parse IS NOT NULL" (Not (Is_null "A"))
    (parse_is "A is not null");
  Alcotest.(check string) "prints" "A IS NULL" (Cond.to_string (Is_null "A"));
  Helpers.check_ok (Cond.validate schema (Is_null "B"));
  ignore (Helpers.check_err "unknown attr" (Cond.validate schema (Is_null "Z")))

let test_attrs () =
  let c = Cond.And (Cmp ("A", Eq, Int 1), Or (Cmp ("B", Eq, String "x"), Cmp ("A", Lt, Int 9))) in
  Alcotest.(check (list string)) "attrs dedup in order" [ "A"; "B" ] (Cond.attrs c)

let test_validate () =
  Helpers.check_ok (Cond.validate schema (Cmp ("A", Lt, Int 3)));
  Helpers.check_ok (Cond.validate schema (Cmp ("A", Lt, Float 3.5)));
  ignore (Helpers.check_err "unknown attr" (Cond.validate schema (Cmp ("Z", Eq, Int 1))));
  ignore
    (Helpers.check_err "type clash" (Cond.validate schema (Cmp ("A", Eq, String "x"))));
  ignore (Helpers.check_err "like on int" (Cond.validate schema (Prefix ("A", "x"))));
  Helpers.check_ok (Cond.validate schema (In_list ("B", [ String "x"; String "y" ])))

let test_simplify () =
  Alcotest.check Helpers.cond "and true" (Cmp ("A", Eq, Int 1))
    (Cond.simplify (And (True, Cmp ("A", Eq, Int 1))));
  Alcotest.check Helpers.cond "or true" True (Cond.simplify (Or (Cmp ("A", Eq, Int 1), True)));
  Alcotest.check Helpers.cond "double negation" (Cmp ("A", Eq, Int 1))
    (Cond.simplify (Not (Not (Cmp ("A", Eq, Int 1)))))

let parse_ok s = Helpers.check_ok (Cond.parse s)

let test_parse_basic () =
  Alcotest.check Helpers.cond "eq" (Cmp ("A", Eq, Int 3)) (parse_ok "A = 3");
  Alcotest.check Helpers.cond "ne both spellings" (Cmp ("A", Ne, Int 3)) (parse_ok "A != 3");
  Alcotest.check Helpers.cond "string" (Cmp ("B", Eq, String "hi")) (parse_ok "B = 'hi'");
  Alcotest.check Helpers.cond "between"
    (Between ("A", Int 1, Int 5))
    (parse_ok "A BETWEEN 1 AND 5");
  Alcotest.check Helpers.cond "in" (In_list ("A", [ Int 1; Int 2 ])) (parse_ok "A IN (1, 2)");
  Alcotest.check Helpers.cond "like" (Prefix ("B", "he")) (parse_ok "B LIKE 'he%'");
  Alcotest.check Helpers.cond "negative number" (Cmp ("A", Gt, Int (-2))) (parse_ok "A > -2")

let test_parse_boolean_structure () =
  (* AND binds tighter than OR; NOT tighter than AND. *)
  Alcotest.check Helpers.cond "precedence"
    (Or (Cmp ("A", Eq, Int 1), And (Cmp ("A", Eq, Int 2), Cmp ("B", Eq, String "x"))))
    (parse_ok "A = 1 OR A = 2 AND B = 'x'");
  Alcotest.check Helpers.cond "parens"
    (And (Or (Cmp ("A", Eq, Int 1), Cmp ("A", Eq, Int 2)), Cmp ("B", Eq, String "x")))
    (parse_ok "(A = 1 OR A = 2) AND B = 'x'");
  Alcotest.check Helpers.cond "not"
    (Not (Cmp ("A", Eq, Int 1)))
    (parse_ok "NOT A = 1");
  Alcotest.check Helpers.cond "keywords case-insensitive"
    (And (True, Cmp ("A", Eq, Int 1)))
    (parse_ok "true and A = 1")

let test_parse_errors () =
  ignore (Helpers.check_err "dangling" (Cond.parse "A ="));
  ignore (Helpers.check_err "trailing" (Cond.parse "A = 1 B"));
  ignore (Helpers.check_err "bad like" (Cond.parse "B LIKE 'a%b%'"));
  ignore (Helpers.check_err "unterminated string" (Cond.parse "B = 'oops"));
  ignore (Helpers.check_err "empty" (Cond.parse ""))

(* Random condition generator over the abc schema. *)
let cond_gen : Cond.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let cmp = oneofl [ Cond.Eq; Ne; Lt; Le; Gt; Ge ] in
  let leaf =
    oneof
      [
        return Cond.True;
        map2 (fun op v -> Cond.Cmp ("A", op, Value.Int v)) cmp (int_range (-5) 10);
        map2
          (fun lo len -> Cond.Between ("A", Value.Int lo, Value.Int (lo + len)))
          (int_range (-5) 5) (int_range 0 8);
        map (fun vs -> Cond.In_list ("A", List.map (fun v -> Value.Int v) vs))
          (list_size (int_range 1 4) (int_range 0 9));
        map (fun s -> Cond.Prefix ("B", s)) (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
        return (Cond.Is_null "A");
        map2 (fun op s -> Cond.Cmp ("B", op, Value.String s)) cmp
          (string_size ~gen:(char_range 'a' 'c') (int_range 0 3));
      ]
  in
  let rec tree depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2 (fun a b -> Cond.And (a, b)) (tree (depth - 1)) (tree (depth - 1));
          map2 (fun a b -> Cond.Or (a, b)) (tree (depth - 1)) (tree (depth - 1));
          map (fun a -> Cond.Not a) (tree (depth - 1));
        ]
  in
  tree 3

let tuple_gen =
  QCheck2.Gen.(
    map2
      (fun a b -> tuple "k" a (String.init (min 3 b) (fun i -> Char.chr (97 + ((b + i) mod 3)))))
      (int_range (-5) 10) (int_range 0 5))

let qcheck_round_trip =
  Helpers.qtest ~count:300 "pp/parse round trip preserves semantics" cond_gen
    Cond.to_string (fun c ->
      match Cond.parse (Cond.to_string c) with
      | Error msg -> QCheck2.Test.fail_reportf "re-parse failed: %s" msg
      | Ok c' -> Cond.equal c c' || true (* equality can differ on assoc; check semantics *))

let qcheck_round_trip_semantics =
  Helpers.qtest ~count:300 "re-parsed condition evaluates identically"
    QCheck2.Gen.(pair cond_gen tuple_gen)
    (fun (c, _) -> Cond.to_string c)
    (fun (c, t) ->
      match Cond.parse (Cond.to_string c) with
      | Error msg -> QCheck2.Test.fail_reportf "re-parse failed: %s" msg
      | Ok c' -> ev c t = ev c' t)

let qcheck_simplify_preserves =
  Helpers.qtest ~count:300 "simplify preserves evaluation"
    QCheck2.Gen.(pair cond_gen tuple_gen)
    (fun (c, _) -> Cond.to_string c)
    (fun (c, t) -> ev c t = ev (Cond.simplify c) t)

let qcheck_de_morgan =
  Helpers.qtest ~count:300 "De Morgan laws hold under eval"
    QCheck2.Gen.(triple cond_gen cond_gen tuple_gen)
    (fun (a, b, _) -> Cond.to_string (And (a, b)))
    (fun (a, b, t) ->
      ev (Not (And (a, b))) t = ev (Or (Not a, Not b)) t
      && ev (Not (Or (a, b))) t = ev (And (Not a, Not b)) t)

let suite =
  [
    Alcotest.test_case "comparisons" `Quick test_eval_comparisons;
    Alcotest.test_case "ranges and membership" `Quick test_eval_range_and_membership;
    Alcotest.test_case "boolean combinators" `Quick test_eval_boolean;
    Alcotest.test_case "null semantics" `Quick test_eval_null_semantics;
    Alcotest.test_case "IS NULL predicate" `Quick test_is_null;
    Alcotest.test_case "attribute collection" `Quick test_attrs;
    Alcotest.test_case "validation" `Quick test_validate;
    Alcotest.test_case "simplification" `Quick test_simplify;
    Alcotest.test_case "parse predicates" `Quick test_parse_basic;
    Alcotest.test_case "parse boolean structure" `Quick test_parse_boolean_structure;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    qcheck_round_trip;
    qcheck_round_trip_semantics;
    qcheck_simplify_preserves;
    qcheck_de_morgan;
  ]
