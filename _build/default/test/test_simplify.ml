(* Plan peephole simplification: semantics preservation and cleanups. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let test_alias_elimination () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Union { dst = "B"; args = [ "A" ] };
          Op.Select { dst = "C"; cond = 1; source = 0 };
          Op.Inter { dst = "D"; args = [ "B"; "C" ] };
        ]
      ~output:"D"
  in
  let simplified = Simplify.simplify plan in
  Alcotest.(check int) "union dropped" 3 (List.length (Plan.ops simplified));
  (* The intersection must now read A directly. *)
  let reads_a =
    List.exists
      (fun op -> match op with Op.Inter { args; _ } -> List.mem "A" args | _ -> false)
      (Plan.ops simplified)
  in
  Alcotest.(check bool) "alias rewritten" true reads_a

let test_output_alias_kept () =
  (* X := ∪{Y} where X is the output: the alias target becomes the
     output instead. *)
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "Y"; cond = 0; source = 0 };
          Op.Union { dst = "X"; args = [ "Y" ] };
        ]
      ~output:"X"
  in
  let simplified = Simplify.simplify plan in
  (* Either the union stays, or the output was rewritten to Y — both are
     sound; what matters is validity and semantics. *)
  Helpers.check_ok (Plan.validate ~m:1 ~n:1 simplified)

let test_duplicate_args_dropped () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Select { dst = "B"; cond = 0; source = 1 };
          Op.Union { dst = "U"; args = [ "A"; "B"; "A"; "B" ] };
        ]
      ~output:"U"
  in
  let simplified = Simplify.simplify plan in
  List.iter
    (fun op ->
      match op with
      | Op.Union { args; _ } -> Alcotest.(check int) "two args" 2 (List.length args)
      | _ -> ())
    (Plan.ops simplified)

let test_dead_local_ops_removed () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Select { dst = "B"; cond = 1; source = 0 };
          Op.Inter { dst = "DEAD"; args = [ "A"; "B" ] };
          Op.Union { dst = "OUT"; args = [ "A"; "B" ] };
        ]
      ~output:"OUT"
  in
  let dead = Simplify.dead_local_ops plan in
  Alcotest.(check int) "one dead op" 1 (List.length dead);
  let simplified = Simplify.simplify plan in
  Alcotest.(check int) "dead op dropped" 3 (List.length (Plan.ops simplified))

let test_source_queries_never_dropped () =
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "A"; cond = 0; source = 0 };
          Op.Select { dst = "UNUSED"; cond = 1; source = 1 };
          Op.Union { dst = "OUT"; args = [ "A" ] };
        ]
      ~output:"OUT"
  in
  let simplified = Simplify.simplify plan in
  Alcotest.(check int) "both source queries kept" 2 (Plan.source_query_count simplified)

let qcheck_simplify_preserves_semantics =
  Helpers.qtest ~count:60 "simplify preserves answers and cost" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let check plan =
        let simplified = Simplify.simplify plan in
        let before = Helpers.execute_plan instance plan in
        let after = Helpers.execute_plan instance simplified in
        Item_set.equal before.Exec.answer after.Exec.answer
        && Float.abs (before.Exec.total_cost -. after.Exec.total_cost) < 1e-6
      in
      check (Optimizer.optimize Optimizer.Sja env).Optimized.plan
      && check (Optimizer.optimize Optimizer.Sja_plus env).Optimized.plan
      && check (Optimizer.optimize Optimizer.Filter env).Optimized.plan)

let qcheck_simplify_validates =
  Helpers.qtest ~count:60 "simplified plans still validate" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let m = Fusion_query.Query.m instance.Workload.query in
      let n = Array.length instance.Workload.sources in
      let plus = Optimizer.optimize Optimizer.Sja_plus env in
      match Plan.validate ~m ~n (Simplify.simplify plus.Optimized.plan) with
      | Ok () -> true
      | Error msg -> QCheck2.Test.fail_reportf "invalid after simplify: %s" msg)

let suite =
  [
    Alcotest.test_case "single-arg union becomes alias" `Quick test_alias_elimination;
    Alcotest.test_case "output alias handled" `Quick test_output_alias_kept;
    Alcotest.test_case "duplicate arguments dropped" `Quick test_duplicate_args_dropped;
    Alcotest.test_case "dead local ops removed" `Quick test_dead_local_ops_removed;
    Alcotest.test_case "source queries never dropped" `Quick
      test_source_queries_never_dropped;
    qcheck_simplify_preserves_semantics;
    qcheck_simplify_validates;
  ]
