(* The discrete-event simulator and the parallel plan executor. *)

open Fusion_core
open Fusion_plan
module Sim = Fusion_net.Sim
module Workload = Fusion_workload.Workload

let task id server duration deps = { Sim.id; server; duration; deps }

let test_independent_tasks_overlap () =
  let timeline =
    Sim.run ~servers:2 [ task 0 0 10.0 []; task 1 1 7.0 [] ]
  in
  Alcotest.(check (float 0.001)) "makespan = slowest" 10.0 timeline.Sim.makespan

let test_same_server_serializes () =
  let timeline = Sim.run ~servers:1 [ task 0 0 10.0 []; task 1 0 7.0 [] ] in
  Alcotest.(check (float 0.001)) "makespan = sum" 17.0 timeline.Sim.makespan

let test_dependencies_respected () =
  let timeline = Sim.run ~servers:2 [ task 0 0 10.0 []; task 1 1 5.0 [ 0 ] ] in
  Alcotest.(check (float 0.001)) "chain" 15.0 timeline.Sim.makespan;
  match timeline.Sim.events with
  | [ first; second ] ->
    Alcotest.(check (float 0.001)) "dep starts at parent's finish" first.Sim.finish
      second.Sim.start
  | _ -> Alcotest.fail "expected two events"

let test_diamond () =
  (* 0 -> {1, 2} -> 3, all on distinct servers. *)
  let timeline =
    Sim.run ~servers:4
      [ task 0 0 4.0 []; task 1 1 6.0 [ 0 ]; task 2 2 2.0 [ 0 ]; task 3 3 1.0 [ 1; 2 ] ]
  in
  Alcotest.(check (float 0.001)) "critical path" 11.0 timeline.Sim.makespan

let test_fifo_on_contended_server () =
  (* Two ready tasks on one server: the lower id goes first. *)
  let timeline = Sim.run ~servers:1 [ task 5 0 3.0 []; task 2 0 4.0 [] ] in
  match timeline.Sim.events with
  | [ first; _ ] -> Alcotest.(check int) "id 2 first" 2 first.Sim.task.Sim.id
  | _ -> Alcotest.fail "expected two events"

let test_errors () =
  Alcotest.(check bool) "cycle" true
    (match Sim.run ~servers:1 [ task 0 0 1.0 [ 1 ]; task 1 0 1.0 [ 0 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "dangling dep" true
    (match Sim.run ~servers:1 [ task 0 0 1.0 [ 9 ] ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad server" true
    (match Sim.run ~servers:1 [ task 0 3 1.0 [] ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- parallel plan execution ------------------------------------------ *)

let instance_and_run algo seed =
  let instance = Workload.generate { Workload.default_spec with seed } in
  let env =
    Opt_env.create ~universe:instance.Workload.spec.Workload.universe
      instance.Workload.sources instance.Workload.query
  in
  let optimized = Optimizer.optimize algo env in
  let result = Helpers.execute_plan instance optimized.Optimized.plan in
  (instance, optimized.Optimized.plan, result)

let test_tasks_extracted_per_source_query () =
  let _, plan, result = instance_and_run Optimizer.Sja 3 in
  let tasks = Parallel_exec.tasks_of plan result in
  Alcotest.(check int) "one task per source query" (Plan.source_query_count plan)
    (List.length tasks)

let test_filter_plan_fully_parallel () =
  let instance, plan, result = instance_and_run Optimizer.Filter 5 in
  let n = Array.length instance.Workload.sources in
  let unconstrained = Parallel_exec.makespan ~serialize_sources:false ~n plan result in
  (* No dependencies between selection queries: critical path = slowest
     single query. *)
  let slowest =
    List.fold_left
      (fun acc s -> if Op.is_source_query s.Exec.op then Float.max acc s.Exec.cost else acc)
      0.0 result.Exec.steps
  in
  Alcotest.(check (float 0.001)) "critical path = slowest query" slowest unconstrained;
  (* With one-at-a-time sources, each source serializes its m queries. *)
  let serialized = Parallel_exec.makespan ~serialize_sources:true ~n plan result in
  Alcotest.(check bool) "serialization can only slow down" true
    (serialized >= unconstrained -. 1e-6)

let test_agrees_with_analytic_response_time () =
  (* With infinitely concurrent sources, the simulator's makespan on a
     round-shaped plan equals the analytic critical-path model. *)
  List.iter
    (fun seed ->
      let instance, plan, result = instance_and_run Optimizer.Sja seed in
      let n = Array.length instance.Workload.sources in
      match Response_time.of_result ~n plan result with
      | None -> Alcotest.fail "SJA plan must be round-shaped"
      | Some analytic ->
        let simulated = Parallel_exec.makespan ~serialize_sources:false ~n plan result in
        Alcotest.(check bool)
          (Printf.sprintf "simulated %.1f ≤ analytic %.1f (seed %d)" simulated analytic seed)
          true
          (simulated <= analytic +. 1e-6))
    [ 1; 2; 3; 4; 5 ]

let qcheck_sja_plus_simulates =
  Helpers.qtest ~count:40 "SJA+ plans simulate (diff chains, loads)" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env =
        Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
          instance.Workload.query
      in
      let plus = Optimizer.optimize Optimizer.Sja_plus env in
      let result = Helpers.execute_plan instance plus.Optimized.plan in
      let n = Array.length instance.Workload.sources in
      let serialized = Parallel_exec.makespan ~serialize_sources:true ~n plus.Optimized.plan result in
      let parallel = Parallel_exec.makespan ~serialize_sources:false ~n plus.Optimized.plan result in
      parallel <= serialized +. 1e-6
      && serialized <= result.Exec.total_cost +. 1e-6
      && parallel >= 0.0)

let suite =
  [
    Alcotest.test_case "independent tasks overlap" `Quick test_independent_tasks_overlap;
    Alcotest.test_case "same server serializes" `Quick test_same_server_serializes;
    Alcotest.test_case "dependencies respected" `Quick test_dependencies_respected;
    Alcotest.test_case "diamond critical path" `Quick test_diamond;
    Alcotest.test_case "FIFO on contended server" `Quick test_fifo_on_contended_server;
    Alcotest.test_case "input validation" `Quick test_errors;
    Alcotest.test_case "tasks per source query" `Quick test_tasks_extracted_per_source_query;
    Alcotest.test_case "filter plans fully parallel" `Quick test_filter_plan_fully_parallel;
    Alcotest.test_case "simulator vs analytic response model" `Quick
      test_agrees_with_analytic_response_time;
    qcheck_sja_plus_simulates;
  ]
