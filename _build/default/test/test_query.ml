(* Fusion query AST and the SQL front-end's fusion-pattern detection. *)

open Fusion_data
open Fusion_cond
module Query = Fusion_query.Query
module Sql = Fusion_query.Sql

let schema =
  Schema.create_exn ~merge:"L"
    [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]

let dui = Cond.Cmp ("V", Cond.Eq, Value.String "dui")
let sp = Cond.Cmp ("V", Cond.Eq, Value.String "sp")

let parse text = Helpers.check_ok (Sql.parse ~schema ~union:"U" text)

let expect_fusion text =
  match parse text with
  | Sql.Fusion (q, []) -> q
  | Sql.Fusion (_, projection) ->
    Alcotest.failf "unexpected projection [%s]" (String.concat "; " projection)
  | Sql.Not_fusion reason -> Alcotest.failf "rejected as non-fusion: %s" reason

let expect_not_fusion text =
  match parse text with
  | Sql.Fusion _ -> Alcotest.failf "accepted as fusion: %s" text
  | Sql.Not_fusion reason -> reason

let check_conds label expected query =
  Alcotest.(check (list Helpers.cond)) label expected (Array.to_list (Query.conditions query))

let test_query_create () =
  ignore (Helpers.check_err "empty" (Query.create []));
  let q = Helpers.check_ok (Query.create [ dui; sp ]) in
  Alcotest.(check int) "m" 2 (Query.m q);
  Alcotest.check Helpers.cond "condition 1" dui (Query.condition q 0)

let test_query_validate () =
  let q = Query.create_exn [ dui ] in
  Helpers.check_ok (Query.validate schema q);
  let bad = Query.create_exn [ Cond.Cmp ("Z", Cond.Eq, Value.Int 1) ] in
  ignore (Helpers.check_err "unknown attr" (Query.validate schema bad))

let test_paper_example () =
  let q =
    expect_fusion
      "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'"
  in
  check_conds "dui, sp" [ dui; sp ] q

let test_condition_order_follows_from () =
  let q =
    expect_fusion
      "SELECT u1.L FROM U u1, U u2 WHERE u2.V = 'sp' AND u1.V = 'dui' AND u1.L = u2.L"
  in
  (* Conditions come back in FROM order (u1 then u2), not WHERE order. *)
  check_conds "dui first" [ dui; sp ] q

let test_three_variables_chain () =
  let q =
    expect_fusion
      "SELECT u1.L FROM U u1, U u2, U u3 \
       WHERE u1.L = u2.L AND u2.L = u3.L \
       AND u1.V = 'dui' AND u2.V = 'sp' AND u3.D < 1995"
  in
  check_conds "three conditions" [ dui; sp; Cond.Cmp ("D", Cond.Lt, Value.Int 1995) ] q

let test_unconditioned_variable_gets_true () =
  let q = expect_fusion "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui'" in
  check_conds "true placeholder" [ dui; Cond.True ] q

let test_multiple_conjuncts_same_variable () =
  let q =
    expect_fusion
      "SELECT u1.L FROM U u1, U u2 \
       WHERE u1.L = u2.L AND u1.V = 'dui' AND u1.D > 1990 AND u2.V = 'sp'"
  in
  check_conds "anded per variable"
    [ Cond.And (dui, Cond.Cmp ("D", Cond.Gt, Value.Int 1990)); sp ]
    q

let test_complex_single_variable_condition () =
  let q =
    expect_fusion
      "SELECT u1.L FROM U u1, U u2 \
       WHERE u1.L = u2.L AND (u1.V = 'dui' OR u1.V = 'sp') AND NOT u2.D = 1993"
  in
  check_conds "or and not"
    [ Cond.Or (dui, sp); Cond.Not (Cond.Cmp ("D", Cond.Eq, Value.Int 1993)) ]
    q

let test_single_variable_unqualified () =
  let q = expect_fusion "SELECT L FROM U u1 WHERE V = 'dui'" in
  check_conds "bare attrs allowed" [ dui ] q

let test_merge_equality_transitive () =
  (* u1=u3 and u2=u3 connects all three without a direct u1=u2. *)
  ignore
    (expect_fusion
       "SELECT u1.L FROM U u1, U u2, U u3 \
        WHERE u1.L = u3.L AND u2.L = u3.L AND u1.V = 'dui' AND u2.V = 'sp' AND u3.V = 'x'")

let test_reject_disconnected () =
  let reason =
    expect_not_fusion
      "SELECT u1.L FROM U u1, U u2, U u3 \
       WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp' AND u3.V = 'x'"
  in
  Alcotest.(check bool) "mentions connectivity" true
    (String.length reason > 0
    && String.lowercase_ascii reason |> fun s ->
       String.length s > 0 && Option.is_some (String.index_opt s 'c'))

let test_reject_non_merge_join () =
  ignore
    (expect_not_fusion
       "SELECT u1.L FROM U u1, U u2 WHERE u1.V = u2.V AND u1.V = 'dui' AND u2.V = 'sp'")

let test_reject_non_merge_select () =
  ignore
    (expect_not_fusion "SELECT u1.V FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui'")

let test_reject_cross_variable_condition () =
  ignore
    (expect_not_fusion
       "SELECT u1.L FROM U u1, U u2 \
        WHERE u1.L = u2.L AND (u1.V = 'dui' OR u2.V = 'sp')")

let test_reject_merge_eq_under_or () =
  ignore
    (expect_not_fusion
       "SELECT u1.L FROM U u1, U u2 WHERE (u1.L = u2.L OR u1.V = 'dui') AND u2.V = 'sp'")

let test_reject_wrong_table () =
  ignore
    (expect_not_fusion "SELECT u1.L FROM T u1 WHERE u1.V = 'dui'")

let test_reject_duplicate_alias () =
  ignore (expect_not_fusion "SELECT u1.L FROM U u1, U u1 WHERE u1.V = 'dui'")

let test_parse_errors () =
  ignore (Helpers.check_err "garbage" (Sql.parse ~schema ~union:"U" "HELLO WORLD"));
  ignore
    (Helpers.check_err "unknown attr"
       (Sql.parse ~schema ~union:"U" "SELECT u1.L FROM U u1 WHERE u1.Z = 1"));
  ignore
    (Helpers.check_err "type clash"
       (Sql.parse ~schema ~union:"U" "SELECT u1.L FROM U u1 WHERE u1.D = 'nope'"));
  ignore
    (Helpers.check_err "trailing"
       (Sql.parse ~schema ~union:"U" "SELECT u1.L FROM U u1 WHERE u1.V = 'dui' extra"))

let test_projection_parses () =
  match parse "SELECT u1.L, u1.V, u2.D, u1.V FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui'" with
  | Sql.Fusion (q, projection) ->
    Alcotest.(check int) "two conditions (u2 gets TRUE)" 2 (Query.m q);
    Alcotest.(check (list string)) "projection dedup, merge excluded" [ "V"; "D" ] projection
  | Sql.Not_fusion reason -> Alcotest.failf "rejected: %s" reason

let test_projection_errors () =
  ignore
    (Helpers.check_err "unknown projected attribute"
       (Sql.parse ~schema ~union:"U" "SELECT u1.L, u1.Z FROM U u1 WHERE u1.V = 'dui'"));
  ignore
    (Helpers.check_err "parse_fusion rejects projections"
       (Sql.parse_fusion ~schema ~union:"U"
          "SELECT u1.L, u1.V FROM U u1 WHERE u1.V = 'dui'"));
  (* First select item must still be the merge attribute. *)
  match parse "SELECT u1.V, u1.L FROM U u1 WHERE u1.V = 'dui'" with
  | Sql.Not_fusion _ -> ()
  | Sql.Fusion _ -> Alcotest.fail "non-merge first column accepted"

let test_to_sql_round_trip () =
  let q = Query.create_exn [ dui; Cond.And (sp, Cond.Cmp ("D", Cond.Lt, Value.Int 1995)) ] in
  let text = Query.to_sql ~union:"U" ~merge:"L" q in
  let q' = Helpers.check_ok (Sql.parse_fusion ~schema ~union:"U" text) in
  Alcotest.(check bool) "round trip" true (Query.equal q q')

let qcheck_to_sql_round_trip =
  let cond_gen =
    QCheck2.Gen.(
      let leaf =
        oneof
          [
            map (fun s -> Cond.Cmp ("V", Cond.Eq, Value.String s))
              (string_size ~gen:(char_range 'a' 'd') (int_range 1 3));
            map (fun d -> Cond.Cmp ("D", Cond.Lt, Value.Int d)) (int_range 1980 2000);
            map (fun p -> Cond.Prefix ("V", p)) (string_size ~gen:(char_range 'a' 'c') (int_range 0 2));
          ]
      in
      oneof
        [
          leaf;
          map2 (fun a b -> Cond.And (a, b)) leaf leaf;
          map2 (fun a b -> Cond.Or (a, b)) leaf leaf;
          map (fun a -> Cond.Not a) leaf;
        ])
  in
  Helpers.qtest ~count:200 "to_sql/parse_fusion round trip"
    QCheck2.Gen.(list_size (int_range 1 4) cond_gen)
    (fun conds -> String.concat " ; " (List.map Cond.to_string conds))
    (fun conds ->
      let q = Query.create_exn conds in
      match Sql.parse_fusion ~schema ~union:"U" (Query.to_sql ~union:"U" ~merge:"L" q) with
      | Error msg -> QCheck2.Test.fail_reportf "parse failed: %s" msg
      | Ok q' -> Query.equal q q')

let suite =
  [
    Alcotest.test_case "query creation" `Quick test_query_create;
    Alcotest.test_case "query validation" `Quick test_query_validate;
    Alcotest.test_case "paper's example parses" `Quick test_paper_example;
    Alcotest.test_case "condition order follows FROM" `Quick test_condition_order_follows_from;
    Alcotest.test_case "three variables" `Quick test_three_variables_chain;
    Alcotest.test_case "unconditioned variable gets TRUE" `Quick
      test_unconditioned_variable_gets_true;
    Alcotest.test_case "conjuncts grouped per variable" `Quick
      test_multiple_conjuncts_same_variable;
    Alcotest.test_case "OR/NOT within one variable" `Quick test_complex_single_variable_condition;
    Alcotest.test_case "single variable, unqualified attrs" `Quick
      test_single_variable_unqualified;
    Alcotest.test_case "transitive merge equalities" `Quick test_merge_equality_transitive;
    Alcotest.test_case "reject disconnected variables" `Quick test_reject_disconnected;
    Alcotest.test_case "reject non-merge join" `Quick test_reject_non_merge_join;
    Alcotest.test_case "reject non-merge select" `Quick test_reject_non_merge_select;
    Alcotest.test_case "reject cross-variable condition" `Quick
      test_reject_cross_variable_condition;
    Alcotest.test_case "reject merge equality under OR" `Quick test_reject_merge_eq_under_or;
    Alcotest.test_case "reject wrong table" `Quick test_reject_wrong_table;
    Alcotest.test_case "reject duplicate alias" `Quick test_reject_duplicate_alias;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "projection list parses" `Quick test_projection_parses;
    Alcotest.test_case "projection errors" `Quick test_projection_errors;
    Alcotest.test_case "to_sql round trip" `Quick test_to_sql_round_trip;
    qcheck_to_sql_round_trip;
  ]
