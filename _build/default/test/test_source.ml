(* Wrapper layer: metered selection/semijoin/load queries, semijoin
   emulation, capability enforcement. *)

open Fusion_data
open Fusion_cond
open Fusion_source
module Profile = Fusion_net.Profile
module Meter = Fusion_net.Meter

let relation () =
  Helpers.abc_relation
    [
      Helpers.abc_row "k1" 1 "x";
      Helpers.abc_row "k2" 5 "y";
      Helpers.abc_row "k3" 9 "x";
      Helpers.abc_row "k1" 7 "y";
    ]

let small = Cond.Cmp ("A", Cond.Lt, Value.Int 5)

let test_meter_record () =
  let meter = Meter.create () in
  let profile = Profile.make ~request_overhead:10.0 ~send_per_item:1.0 ~recv_per_item:2.0 () in
  let cost = Meter.record meter profile ~items_sent:3 ~items_received:2 ~tuples_received:0 in
  Alcotest.(check (float 0.001)) "cost formula" 17.0 cost;
  let totals = Meter.totals meter in
  Alcotest.(check int) "requests" 1 totals.Meter.requests;
  Alcotest.(check int) "sent" 3 totals.Meter.items_sent;
  Meter.reset meter;
  Alcotest.(check int) "reset" 0 (Meter.totals meter).Meter.requests

let test_profile_scale () =
  let p = Profile.scale 2.0 Profile.default in
  Alcotest.(check (float 0.001)) "overhead doubled"
    (2.0 *. Profile.default.Profile.request_overhead)
    p.Profile.request_overhead

let test_select_query () =
  let profile = Profile.make ~request_overhead:10.0 ~recv_per_item:1.0 () in
  let s = Source.create ~profile (relation ()) in
  let answer, cost = Source.select_query s small in
  Alcotest.check Helpers.item_set "answer" (Helpers.items_of_strings [ "k1" ]) answer;
  Alcotest.(check (float 0.001)) "overhead + 1 item" 11.0 cost;
  Alcotest.(check int) "metered" 1 (Source.totals s).Meter.requests

let test_native_semijoin () =
  let profile =
    Profile.make ~request_overhead:10.0 ~send_per_item:1.0 ~recv_per_item:1.0 ()
  in
  let s = Source.create ~profile (relation ()) in
  let probe = Helpers.items_of_strings [ "k1"; "k3"; "zz" ] in
  let answer, cost = Source.semijoin_query s small probe in
  Alcotest.check Helpers.item_set "subset of probe" (Helpers.items_of_strings [ "k1" ]) answer;
  (* one request + 3 sent + 1 received *)
  Alcotest.(check (float 0.001)) "cost" 14.0 cost

let test_emulated_semijoin_same_answer_higher_cost () =
  let profile =
    Profile.make ~request_overhead:10.0 ~send_per_item:1.0 ~recv_per_item:1.0 ()
  in
  let native = Source.create ~profile (relation ()) in
  let emulated =
    Source.create ~capability:Capability.no_semijoin ~profile (relation ())
  in
  let probe = Helpers.items_of_strings [ "k1"; "k2"; "k3"; "zz" ] in
  let a1, c1 = Source.semijoin_query native small probe in
  let a2, c2 = Source.semijoin_query emulated small probe in
  Alcotest.check Helpers.item_set "same answer" a1 a2;
  Alcotest.(check bool) "emulation dearer" true (c2 > c1);
  (* Emulation sends one point query per binding. *)
  Alcotest.(check int) "4 requests" 4 (Source.totals emulated).Meter.requests

let test_minimal_source_rejects_semijoin () =
  let s = Source.create ~capability:Capability.minimal (relation ()) in
  Alcotest.check_raises "unsupported"
    (Source.Unsupported "source R cannot answer semijoin queries") (fun () ->
      ignore (Source.semijoin_query s small (Helpers.items_of_strings [ "k1" ])))

let test_load_query () =
  let profile = Profile.make ~request_overhead:10.0 ~recv_per_tuple:2.0 () in
  let s = Source.create ~profile (relation ()) in
  let r, cost = Source.load_query s in
  Alcotest.(check int) "full relation" 4 (Relation.cardinality r);
  Alcotest.(check (float 0.001)) "cost" 18.0 cost

let test_load_rejected_when_unsupported () =
  let s = Source.create ~capability:Capability.minimal (relation ()) in
  Alcotest.check_raises "unsupported"
    (Source.Unsupported "source R cannot ship its relation") (fun () ->
      ignore (Source.load_query s))

let test_fetch_records () =
  let profile = Profile.make ~request_overhead:10.0 ~send_per_item:0.0 ~recv_per_tuple:2.0 () in
  let s = Source.create ~profile (relation ()) in
  let tuples, cost = Source.fetch_records s (Helpers.items_of_strings [ "k1" ]) in
  Alcotest.(check int) "both k1 tuples" 2 (List.length tuples);
  Alcotest.(check (float 0.001)) "cost" 14.0 cost

let test_semijoin_empty_probe () =
  let s = Source.create (relation ()) in
  let answer, _ = Source.semijoin_query s small Item_set.empty in
  Alcotest.check Helpers.item_set "empty" Item_set.empty answer

let test_meter_add_zero () =
  let a =
    { Meter.requests = 2; items_sent = 3; items_received = 4; tuples_received = 5; cost = 6.0 }
  in
  Alcotest.(check bool) "zero is neutral" true (Meter.add a Meter.zero = a);
  let b = Meter.add a a in
  Alcotest.(check int) "requests add" 4 b.Meter.requests;
  Alcotest.(check (float 0.001)) "cost adds" 12.0 b.Meter.cost

let test_pp_smoke () =
  let profile_text = Format.asprintf "%a" Profile.pp Profile.default in
  Alcotest.(check bool) "profile pp" true (String.length profile_text > 10);
  let cap_text = Format.asprintf "%a" Capability.pp Capability.no_semijoin in
  Alcotest.(check bool) "capability pp mentions point" true
    (Option.is_some (Str_find.find_substring cap_text "point"));
  let source_text = Format.asprintf "%a" Source.pp (Source.create (relation ())) in
  Alcotest.(check bool) "source pp mentions tuples" true
    (Option.is_some (Str_find.find_substring source_text "tuples"))

let suite =
  [
    Alcotest.test_case "meter record and reset" `Quick test_meter_record;
    Alcotest.test_case "profile scaling" `Quick test_profile_scale;
    Alcotest.test_case "selection query" `Quick test_select_query;
    Alcotest.test_case "native semijoin" `Quick test_native_semijoin;
    Alcotest.test_case "emulated semijoin" `Quick
      test_emulated_semijoin_same_answer_higher_cost;
    Alcotest.test_case "minimal source rejects semijoin" `Quick
      test_minimal_source_rejects_semijoin;
    Alcotest.test_case "load query" `Quick test_load_query;
    Alcotest.test_case "load rejected when unsupported" `Quick
      test_load_rejected_when_unsupported;
    Alcotest.test_case "phase-2 record fetch" `Quick test_fetch_records;
    Alcotest.test_case "semijoin with empty probe" `Quick test_semijoin_empty_probe;
    Alcotest.test_case "meter totals algebra" `Quick test_meter_add_zero;
    Alcotest.test_case "printers smoke" `Quick test_pp_smoke;
  ]
