(* Wrapper schema mapping (View), catalog [view] sections, and query
   normalization. *)

open Fusion_data
open Fusion_cond
module View = Fusion_source.View
module Query = Fusion_query.Query

let common =
  Schema.create_exn ~merge:"L"
    [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]

(* An internal DMV schema with different names and column order. *)
let internal_schema =
  Schema.create_exn ~merge:"lic"
    [ ("year", Value.Tint); ("lic", Value.Tstring); ("vtype", Value.Tstring) ]

let internal_relation () =
  Helpers.check_ok
    (Relation.of_rows ~name:"NV" internal_schema
       [
         [ Value.Int 1993; Value.String "J55"; Value.String "dui" ];
         [ Value.Int 1994; Value.String "T21"; Value.String "sp" ];
       ])

let mapping = [ ("L", "lic"); ("V", "vtype"); ("D", "year") ]

let test_export_renames_and_reorders () =
  let exported = Helpers.check_ok (View.export ~common ~mapping (internal_relation ())) in
  Alcotest.(check bool) "common schema" true (Schema.equal common (Relation.schema exported));
  Alcotest.(check string) "keeps name" "NV" (Relation.name exported);
  Alcotest.(check int) "all tuples" 2 (Relation.cardinality exported);
  (* Data moved to the right columns. *)
  let matching =
    Relation.select_items exported (fun t ->
        Cond.eval common (Cond.Cmp ("V", Cond.Eq, Value.String "dui")) t)
  in
  Alcotest.check Helpers.item_set "dui row found" (Helpers.items_of_strings [ "J55" ]) matching

let test_export_identity () =
  let r =
    Helpers.check_ok
      (Relation.of_rows ~name:"CA" common
         [ [ Value.String "S07"; Value.String "sp"; Value.Int 1996 ] ])
  in
  let exported =
    Helpers.check_ok (View.export ~common ~mapping:(View.identity_mapping common) r)
  in
  Alcotest.(check int) "tuples preserved" 1 (Relation.cardinality exported)

let test_export_errors () =
  let r = internal_relation () in
  let err mapping = Helpers.check_err "export" (View.export ~common ~mapping r) in
  ignore (err [ ("L", "lic"); ("V", "vtype") ]); (* D unmapped *)
  ignore (err (("L", "lic") :: mapping)); (* L mapped twice *)
  ignore (err [ ("L", "lic"); ("V", "vtype"); ("D", "nope") ]); (* unknown internal *)
  ignore (err [ ("L", "lic"); ("V", "year"); ("D", "year") ]); (* type clash *)
  ignore (err [ ("L", "vtype"); ("V", "lic"); ("D", "year") ]) (* merge mismatch *)

let test_catalog_with_view () =
  let dir = Filename.temp_file "fusion_view" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      (* CA speaks the common schema; NV needs mapping. *)
      Out_channel.with_open_text (Filename.concat dir "ca.csv") (fun oc ->
          Out_channel.output_string oc "*L:string,V:string,D:int\nS07,sp,1996\n");
      Out_channel.with_open_text (Filename.concat dir "nv.csv") (fun oc ->
          Out_channel.output_string oc "year:int,*lic:string,vtype:string\n1993,J55,dui\n");
      let text =
        "[view]\n\
         schema = *L:string,V:string,D:int\n\
         [source CA]\n\
         file = ca.csv\n\
         [source NV]\n\
         file = nv.csv\n\
         map = L=lic,V=vtype,D=year\n"
      in
      let sources = Helpers.check_ok (Fusion_source.Catalog.parse ~dir text) in
      Alcotest.(check int) "two sources" 2 (List.length sources);
      List.iter
        (fun s ->
          Alcotest.(check bool) "common schema" true
            (Schema.equal common (Fusion_source.Source.schema s)))
        sources;
      (* The federation is queryable end to end. *)
      let mediator = Fusion_mediator.Mediator.create_exn sources in
      let report =
        Helpers.check_ok
          (Fusion_mediator.Mediator.run_sql mediator
             "SELECT u1.L FROM U u1 WHERE u1.V = 'dui'")
      in
      Alcotest.check Helpers.item_set "J55 via mapping"
        (Helpers.items_of_strings [ "J55" ])
        report.Fusion_mediator.Mediator.answer;
      (* Mismatched schema without a map is an error. *)
      ignore
        (Helpers.check_err "missing map"
           (Fusion_source.Catalog.parse ~dir
              "[view]\nschema = *L:string,V:string,D:int\n[source NV]\nfile = nv.csv\n"));
      (* map without a view is an error. *)
      ignore
        (Helpers.check_err "map without view"
           (Fusion_source.Catalog.parse ~dir
              "[source NV]\nfile = nv.csv\nmap = L=lic,V=vtype,D=year\n")))

(* --- Query.normalize ---------------------------------------------------- *)

let dui = Cond.Cmp ("V", Cond.Eq, Value.String "dui")
let sp = Cond.Cmp ("V", Cond.Eq, Value.String "sp")

let test_normalize_dedup () =
  let q = Query.create_exn [ dui; sp; dui ] in
  let n = Query.normalize q in
  Alcotest.(check int) "two conditions" 2 (Query.m n);
  Alcotest.(check bool) "order preserved" true
    (Cond.equal (Query.condition n 0) dui && Cond.equal (Query.condition n 1) sp)

let test_normalize_drops_true () =
  let q = Query.create_exn [ dui; Cond.True; sp ] in
  Alcotest.(check int) "true dropped" 2 (Query.m (Query.normalize q));
  (* ... but an all-TRUE query keeps one condition. *)
  let trivial = Query.create_exn [ Cond.True; Cond.True ] in
  Alcotest.(check int) "one true kept" 1 (Query.m (Query.normalize trivial))

let test_normalize_simplifies_then_dedups () =
  let q = Query.create_exn [ Cond.And (Cond.True, dui); dui ] in
  Alcotest.(check int) "simplified duplicate collapses" 1 (Query.m (Query.normalize q))

let qcheck_normalize_preserves_answers =
  Helpers.qtest ~count:40 "normalize preserves the fusion answer" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Fusion_workload.Workload.generate spec in
      (* Duplicate a condition and inject a TRUE to give normalize work. *)
      let conds = Array.to_list (Query.conditions instance.Fusion_workload.Workload.query) in
      let noisy = Query.create_exn (conds @ [ Cond.True ] @ [ List.hd conds ]) in
      let normalized = Query.normalize noisy in
      let sources = instance.Fusion_workload.Workload.sources in
      Item_set.equal
        (Fusion_core.Reference.answer_query ~sources noisy)
        (Fusion_core.Reference.answer_query ~sources normalized)
      && Query.m normalized <= Query.m noisy)

(* --- selectivity jitter -------------------------------------------------- *)

let test_jitter_varies_sources () =
  let spec =
    {
      Fusion_workload.Workload.default_spec with
      Fusion_workload.Workload.n_sources = 8;
      tuples_per_source = (2000, 2000);
      selectivities = [| 0.3 |];
      selectivity_jitter = 0.6;
      seed = 33;
    }
  in
  let instance = Fusion_workload.Workload.generate spec in
  let cond = Query.condition instance.Fusion_workload.Workload.query 0 in
  let shares =
    Array.to_list
      (Array.map
         (fun s ->
           let relation = Fusion_source.Source.relation s in
           let matching =
             Relation.fold
               (fun acc t ->
                 if Cond.eval (Relation.schema relation) cond t then acc + 1 else acc)
               0 relation
           in
           float_of_int matching /. float_of_int (Relation.cardinality relation))
         instance.Fusion_workload.Workload.sources)
  in
  let lo = List.fold_left Float.min 1.0 shares in
  let hi = List.fold_left Float.max 0.0 shares in
  Alcotest.(check bool)
    (Printf.sprintf "spread %.2f..%.2f" lo hi)
    true
    (hi -. lo > 0.1)

let test_workload_save_load_round_trip () =
  let dir = Filename.temp_file "fusion_save" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      let instance =
        Fusion_workload.Workload.generate
          {
            Fusion_workload.Workload.default_spec with
            Fusion_workload.Workload.n_sources = 4;
            tuples_per_source = (20, 30);
            heterogeneity =
              { Fusion_workload.Workload.homogeneous with
                Fusion_workload.Workload.no_semijoin = 0.5; slow = 0.5 };
            seed = 77;
          }
      in
      Fusion_workload.Workload.save ~dir instance;
      let reloaded =
        Helpers.check_ok (Fusion_source.Catalog.load (Filename.concat dir "catalog.ini"))
      in
      Alcotest.(check int) "source count" 4 (List.length reloaded);
      List.iteri
        (fun j s ->
          let original = instance.Fusion_workload.Workload.sources.(j) in
          Alcotest.(check string) "name" (Fusion_source.Source.name original)
            (Fusion_source.Source.name s);
          Alcotest.(check bool) "capability preserved" true
            (Fusion_source.Source.capability s = Fusion_source.Source.capability original);
          Alcotest.(check (float 0.001)) "overhead preserved"
            (Fusion_source.Source.profile original).Fusion_net.Profile.request_overhead
            (Fusion_source.Source.profile s).Fusion_net.Profile.request_overhead;
          Alcotest.check Helpers.item_set "data preserved"
            (Relation.items (Fusion_source.Source.relation original))
            (Relation.items (Fusion_source.Source.relation s)))
        reloaded;
      (* The saved query runs identically on the reloaded federation. *)
      let sql = In_channel.with_open_text (Filename.concat dir "query.sql")
          In_channel.input_all in
      let mediator = Fusion_mediator.Mediator.create_exn reloaded in
      let report = Helpers.check_ok (Fusion_mediator.Mediator.run_sql mediator sql) in
      Alcotest.check Helpers.item_set "same answer"
        (Fusion_core.Reference.answer_query
           ~sources:instance.Fusion_workload.Workload.sources
           instance.Fusion_workload.Workload.query)
        report.Fusion_mediator.Mediator.answer)

let suite =
  [
    Alcotest.test_case "export renames and reorders" `Quick test_export_renames_and_reorders;
    Alcotest.test_case "identity export" `Quick test_export_identity;
    Alcotest.test_case "export errors" `Quick test_export_errors;
    Alcotest.test_case "catalog with a view section" `Quick test_catalog_with_view;
    Alcotest.test_case "normalize dedups" `Quick test_normalize_dedup;
    Alcotest.test_case "normalize drops TRUE" `Quick test_normalize_drops_true;
    Alcotest.test_case "normalize simplifies first" `Quick test_normalize_simplifies_then_dedups;
    qcheck_normalize_preserves_answers;
    Alcotest.test_case "selectivity jitter varies sources" `Quick test_jitter_varies_sources;
    Alcotest.test_case "workload save/load round trip" `Quick
      test_workload_save_load_round_trip;
  ]
