(* Estimator and cost models, including the paper's cost-model axioms
   (Section 2.4): non-negative costs and subadditivity of semijoins. *)

open Fusion_data
open Fusion_cond
open Fusion_source
module Estimator = Fusion_cost.Estimator
module Model = Fusion_cost.Model
module Source_stats = Fusion_stats.Source_stats
module Profile = Fusion_net.Profile

let source ?capability ?profile rows =
  Source.create ?capability ?profile (Helpers.abc_relation rows)

let rows_k lo hi a = List.init (hi - lo + 1) (fun i -> Helpers.abc_row (Printf.sprintf "k%03d" (lo + i)) a "x")

let with_est ?universe source_list =
  let entries = List.map (fun s -> (s, Source_stats.exact (Source.relation s))) source_list in
  Estimator.create ?universe entries

let small = Cond.Cmp ("A", Cond.Lt, Value.Int 5)

let test_universe_default_is_sum () =
  let s1 = source (rows_k 0 9 1) and s2 = source (rows_k 5 14 1) in
  let est = with_est [ s1; s2 ] in
  (* Default assumes no overlap: 10 + 10. *)
  Alcotest.(check (float 0.001)) "sum of distinct" 20.0 (Estimator.universe est)

let test_universe_override () =
  let s1 = source (rows_k 0 9 1) in
  let est = with_est ~universe:100 [ s1 ] in
  Alcotest.(check (float 0.001)) "explicit" 100.0 (Estimator.universe est)

let test_matching_and_sq_answer () =
  let s = source (rows_k 0 9 1 @ rows_k 10 19 9) in
  let est = with_est [ s ] in
  Alcotest.(check (float 0.001)) "only A=1 rows match" 10.0 (Estimator.matching est s small);
  Alcotest.(check (float 0.001)) "sq answer = matching" 10.0 (Estimator.sq_answer est s small)

let test_sjq_answer_scales_with_probe () =
  let s = source (rows_k 0 9 1 @ rows_k 10 19 9) in
  let est = with_est ~universe:40 [ s ] in
  (* hit rate = 10/40 *)
  Alcotest.(check (float 0.001)) "half probe" 5.0 (Estimator.sjq_answer est s small 20.0)

let test_sel_somewhere_combines_sources () =
  let s1 = source (rows_k 0 9 1) and s2 = source (rows_k 10 19 1) in
  let est = with_est ~universe:40 [ s1; s2 ] in
  (* each source covers 10/40; 1 - (1-0.25)^2 = 0.4375 *)
  Alcotest.(check (float 0.001)) "independent union" 0.4375 (Estimator.sel_somewhere est small);
  Alcotest.(check (float 0.001)) "first round size" 17.5 (Estimator.first_round_size est small);
  Alcotest.(check (float 0.001)) "shrink" 8.75 (Estimator.shrink est small 20.0)

let test_internet_model_sq () =
  let profile = Profile.make ~request_overhead:10.0 ~recv_per_item:2.0 () in
  let s = source ~profile (rows_k 0 9 1) in
  let est = with_est [ s ] in
  let model = Model.internet est in
  Alcotest.(check (float 0.001)) "overhead + 2*10" 30.0 (model.Model.sq_cost s small)

let test_internet_model_sjq_native_vs_emulated () =
  let profile =
    Profile.make ~request_overhead:10.0 ~send_per_item:1.0 ~recv_per_item:1.0 ()
  in
  let native = source ~profile (rows_k 0 9 1) in
  let emulated = source ~capability:Capability.no_semijoin ~profile (rows_k 0 9 1) in
  let minimal = source ~capability:Capability.minimal ~profile (rows_k 0 9 1) in
  let est = with_est ~universe:20 [ native; emulated; minimal ] in
  let model = Model.internet est in
  (* native: 10 + 8 + 8*(10/20) = 22 *)
  Alcotest.(check (float 0.001)) "native" 22.0 (model.Model.sjq_cost native small 8.0);
  (* emulated: 8 * (10 + 1 + 0.5) = 92 *)
  Alcotest.(check (float 0.001)) "emulated" 92.0 (model.Model.sjq_cost emulated small 8.0);
  Alcotest.(check bool) "unsupported is infinite" true
    (model.Model.sjq_cost minimal small 8.0 = infinity)

let test_internet_model_lq () =
  let profile = Profile.make ~request_overhead:10.0 ~recv_per_tuple:3.0 () in
  let s = source ~profile (rows_k 0 9 1) in
  let no_load = source ~capability:Capability.minimal ~profile (rows_k 0 9 1) in
  let est = with_est [ s; no_load ] in
  let model = Model.internet est in
  Alcotest.(check (float 0.001)) "10 + 3*10" 40.0 (model.Model.lq_cost s);
  Alcotest.(check bool) "unsupported" true (model.Model.lq_cost no_load = infinity)

let test_uniform_model () =
  let s = source (rows_k 0 3 1) in
  let model = Model.uniform ~sq:7.0 ~sjq_per_item:2.0 ~lq:99.0 () in
  Alcotest.(check (float 0.001)) "sq" 7.0 (model.Model.sq_cost s small);
  Alcotest.(check (float 0.001)) "sjq" 12.0 (model.Model.sjq_cost s small 6.0);
  Alcotest.(check (float 0.001)) "lq" 99.0 (model.Model.lq_cost s)

(* The subadditivity axiom: cost(sjq over X∪Y) ≤ cost over X + cost
   over Y, for disjoint splits (sizes add). Checked over random profiles,
   capabilities and split points. *)
let qcheck_subadditivity =
  Helpers.qtest ~count:200 "semijoin cost is subadditive in the probe set"
    QCheck2.Gen.(
      tup5 (float_range 0.0 100.0) (float_range 0.0 5.0) (float_range 0.0 5.0)
        (pair (float_range 0.0 500.0) (float_range 0.0 500.0))
        bool)
    (fun (o, snd_, rcv, (x, y), native) ->
      Printf.sprintf "overhead=%.1f send=%.2f recv=%.2f x=%.1f y=%.1f native=%b" o snd_ rcv x
        y native)
    (fun (overhead, send, recv, (x, y), native) ->
      let profile =
        Profile.make ~request_overhead:overhead ~send_per_item:send ~recv_per_item:recv ()
      in
      let capability = if native then Capability.full else Capability.no_semijoin in
      let s = source ~capability ~profile (rows_k 0 9 1) in
      let est = with_est ~universe:30 [ s ] in
      let model = Model.internet est in
      let c = model.Model.sjq_cost s small in
      c (x +. y) <= c x +. c y +. 1e-9)

let qcheck_costs_nonnegative =
  Helpers.qtest ~count:100 "all costs are non-negative" Helpers.spec_gen Helpers.spec_print
    (fun spec ->
      let instance = Fusion_workload.Workload.generate spec in
      let env =
        Fusion_core.Opt_env.create instance.Fusion_workload.Workload.sources
          instance.Fusion_workload.Workload.query
      in
      let model = env.Fusion_core.Opt_env.model in
      Array.for_all
        (fun s ->
          Array.for_all
            (fun c ->
              model.Model.sq_cost s c >= 0.0
              && model.Model.sjq_cost s c 10.0 >= 0.0
              && model.Model.lq_cost s >= 0.0)
            env.Fusion_core.Opt_env.conds)
        env.Fusion_core.Opt_env.sources)

let test_sampled_estimator_close_to_exact () =
  let spec =
    { Fusion_workload.Workload.default_spec with n_sources = 3; seed = 5 }
  in
  let instance = Fusion_workload.Workload.generate spec in
  let sources = instance.Fusion_workload.Workload.sources in
  let cond = Fusion_query.Query.condition instance.Fusion_workload.Workload.query 0 in
  let exact = with_est (Array.to_list sources) in
  let sampled =
    Estimator.create
      (Array.to_list
         (Array.map
            (fun s ->
              (s, Source_stats.sampled ~sample_size:150 (Fusion_stats.Prng.create 1) (Source.relation s)))
            sources))
  in
  let e = Estimator.matching exact sources.(0) cond in
  let s = Estimator.matching sampled sources.(0) cond in
  Alcotest.(check bool)
    (Printf.sprintf "within 2x (exact %.1f, sampled %.1f)" e s)
    true
    (s > e /. 2.0 && s < e *. 2.0 +. 10.0)

let suite =
  [
    Alcotest.test_case "default universe sums distincts" `Quick test_universe_default_is_sum;
    Alcotest.test_case "universe override" `Quick test_universe_override;
    Alcotest.test_case "matching / sq answer" `Quick test_matching_and_sq_answer;
    Alcotest.test_case "sjq answer scales with probe" `Quick test_sjq_answer_scales_with_probe;
    Alcotest.test_case "sel_somewhere combines sources" `Quick
      test_sel_somewhere_combines_sources;
    Alcotest.test_case "internet model sq" `Quick test_internet_model_sq;
    Alcotest.test_case "internet model sjq native/emulated/unsupported" `Quick
      test_internet_model_sjq_native_vs_emulated;
    Alcotest.test_case "internet model lq" `Quick test_internet_model_lq;
    Alcotest.test_case "uniform model" `Quick test_uniform_model;
    qcheck_subadditivity;
    qcheck_costs_nonnegative;
    Alcotest.test_case "sampled estimator close to exact" `Quick
      test_sampled_estimator_close_to_exact;
  ]
