(* Substring search helper for test assertions. *)

let find_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then None
    else if String.sub haystack i n = needle then Some i
    else go (i + 1)
  in
  if n = 0 then Some 0 else go 0
