(* The whole-plan cost/size estimator (Plan_cost), including agreement
   with the optimizer's own recurrence on the shapes where the two are
   defined to coincide. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let estimate env plan =
  Plan_cost.estimate ~model:env.Opt_env.model ~est:env.Opt_env.est
    ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds plan

let size_of estimate var =
  match List.assoc_opt var estimate.Plan_cost.sizes with
  | Some s -> s
  | None -> Alcotest.failf "no size recorded for %s" var

let qcheck_filter_cost_matches_recurrence =
  Helpers.qtest ~count:60 "Plan_cost = recurrence on FILTER plans" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let filter = Algorithms.filter env in
      let whole = (estimate env filter.Optimized.plan).Plan_cost.total in
      Float.abs (whole -. filter.Optimized.est_cost)
      <= 1e-6 +. (1e-9 *. filter.Optimized.est_cost))

let qcheck_sja_cost_matches_recurrence =
  Helpers.qtest ~count:60 "Plan_cost = recurrence on SJA plans" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let whole = (estimate env sja.Optimized.plan).Plan_cost.total in
      (* The subset-aware union/intersection estimates make the generic
         estimator reproduce the recurrence's |X| chain exactly, so the
         totals must coincide to rounding. *)
      if
        Float.abs (whole -. sja.Optimized.est_cost)
        <= 1e-6 +. (1e-9 *. Float.abs sja.Optimized.est_cost)
      then true
      else
        QCheck2.Test.fail_reportf "recurrence %.6f vs plan_cost %.6f (plan:@.%a)"
          sja.Optimized.est_cost whole
          (Plan.pp ?source_name:None)
          sja.Optimized.plan)

let test_op_costs_align_with_ops () =
  let instance = Workload.generate { Workload.default_spec with seed = 3 } in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  let e = estimate env sja.Optimized.plan in
  let ops = Plan.ops sja.Optimized.plan in
  Alcotest.(check int) "one cost per op" (List.length ops) (Array.length e.Plan_cost.op_costs);
  List.iteri
    (fun i op ->
      let cost = e.Plan_cost.op_costs.(i) in
      if Op.is_source_query op then
        Alcotest.(check bool) "source query has a cost" true (cost > 0.0)
      else Alcotest.(check (float 0.0)) "local ops free" 0.0 cost)
    ops;
  let sum = Array.fold_left ( +. ) 0.0 e.Plan_cost.op_costs in
  Alcotest.(check (float 0.001)) "op costs sum to total" e.Plan_cost.total sum

let test_subset_tracking_via_diff () =
  (* X ⊃ Y ⇒ |X − Y| = |X| − |Y| when Y was derived from X. *)
  let instance = Workload.generate { Workload.default_spec with seed = 5 } in
  let env = env_of instance in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Semijoin { dst = "Y"; cond = 1; source = 1; input = "X" };
          Op.Diff { dst = "D"; left = "X"; right = "Y" };
        ]
      ~output:"D"
  in
  let e = estimate env plan in
  Alcotest.(check (float 0.001)) "difference of subset"
    (size_of e "X" -. size_of e "Y")
    (size_of e "D")

let test_inter_with_superset_is_noop () =
  let instance = Workload.generate { Workload.default_spec with seed = 7 } in
  let env = env_of instance in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Semijoin { dst = "Y"; cond = 1; source = 1; input = "X" };
          Op.Inter { dst = "Z"; args = [ "X"; "Y" ] };
        ]
      ~output:"Z"
  in
  let e = estimate env plan in
  Alcotest.(check (float 0.001)) "X ∩ Y = Y when Y ⊆ X" (size_of e "Y") (size_of e "Z")

let test_union_of_subsets_stays_within_scope () =
  let instance = Workload.generate { Workload.default_spec with seed = 9 } in
  let env = env_of instance in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X"; cond = 0; source = 0 };
          Op.Semijoin { dst = "A"; cond = 1; source = 0; input = "X" };
          Op.Semijoin { dst = "B"; cond = 1; source = 1; input = "X" };
          Op.Union { dst = "U"; args = [ "A"; "B" ] };
        ]
      ~output:"U"
  in
  let e = estimate env plan in
  Alcotest.(check bool) "U ≤ X" true (size_of e "U" <= size_of e "X" +. 1e-6);
  Alcotest.(check bool) "U ≥ max(A,B)" true
    (size_of e "U" >= Float.max (size_of e "A") (size_of e "B") -. 1e-6)

let test_estimate_error_on_bad_plan () =
  let instance = Workload.generate { Workload.default_spec with seed = 11 } in
  let env = env_of instance in
  let bad = Plan.create ~ops:[ Op.Union { dst = "X"; args = [ "nope" ] } ] ~output:"X" in
  match estimate env bad with
  | exception _ -> ()
  | _ -> Alcotest.fail "expected an exception on an invalid plan"

let qcheck_estimates_nonnegative =
  Helpers.qtest ~count:60 "all size estimates non-negative for SJA+ plans"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let plus = Optimizer.optimize Optimizer.Sja_plus env in
      let e = estimate env plus.Optimized.plan in
      List.for_all (fun (_, s) -> s >= 0.0) e.Plan_cost.sizes
      && e.Plan_cost.total >= 0.0)

let suite =
  [
    qcheck_filter_cost_matches_recurrence;
    qcheck_sja_cost_matches_recurrence;
    Alcotest.test_case "per-op costs align" `Quick test_op_costs_align_with_ops;
    Alcotest.test_case "subset-aware difference" `Quick test_subset_tracking_via_diff;
    Alcotest.test_case "intersect with superset is no-op" `Quick
      test_inter_with_superset_is_noop;
    Alcotest.test_case "union of subsets bounded by scope" `Quick
      test_union_of_subsets_stays_within_scope;
    Alcotest.test_case "error on invalid plan" `Quick test_estimate_error_on_bad_plan;
    qcheck_estimates_nonnegative;
  ]
