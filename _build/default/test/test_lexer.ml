(* The shared tokenizer: token kinds, offsets, error positions; plus the
   Gantt rendering smoke checks that round out fusion_net. *)

module Lexer = Fusion_cond.Lexer
module Sim = Fusion_net.Sim

let tokens input =
  List.map (fun l -> l.Lexer.token) (Helpers.check_ok (Lexer.tokenize input))

let test_token_kinds () =
  Alcotest.(check bool) "mix" true
    (tokens "abc 'quoted' 42 -7 2.5 = <> != <= >= ( ) , . *"
    = [
        Lexer.Ident "abc"; Lexer.Str "quoted"; Lexer.Int 42; Lexer.Int (-7);
        Lexer.Float 2.5; Lexer.Sym "="; Lexer.Sym "<>"; Lexer.Sym "<>";
        Lexer.Sym "<="; Lexer.Sym ">="; Lexer.Sym "("; Lexer.Sym ")";
        Lexer.Sym ","; Lexer.Sym "."; Lexer.Sym "*"; Lexer.Eof;
      ])

let test_offsets () =
  let located = Helpers.check_ok (Lexer.tokenize "ab = 'x'") in
  let offsets = List.map (fun l -> l.Lexer.offset) located in
  Alcotest.(check (list int)) "token starts" [ 0; 3; 5; 8 ] offsets

let test_lex_errors_carry_offset () =
  let msg = Helpers.check_err "bad char" (Lexer.tokenize "a = @") in
  Alcotest.(check bool) ("mentions offset: " ^ msg) true
    (Option.is_some (Str_find.find_substring msg "offset 4"));
  let msg = Helpers.check_err "unterminated" (Lexer.tokenize "a = 'oops") in
  Alcotest.(check bool) ("mentions offset: " ^ msg) true
    (Option.is_some (Str_find.find_substring msg "offset 4"))

let test_parse_errors_carry_offset () =
  let msg = Helpers.check_err "parse" (Fusion_cond.Cond.parse "A = 1 AND B >") in
  Alcotest.(check bool) ("mentions offset: " ^ msg) true
    (Option.is_some (Str_find.find_substring msg "offset"))

let test_keywords_case_insensitive () =
  Alcotest.(check bool) "and/AND" true (Lexer.is_keyword "AND" "and");
  Alcotest.(check bool) "Between" true (Lexer.is_keyword "BETWEEN" "Between");
  Alcotest.(check bool) "not a keyword" false (Lexer.is_keyword "AND" "andy")

(* --- Gantt -------------------------------------------------------------- *)

let gantt timeline = Format.asprintf "%a" (Sim.pp_gantt ~width:20 ?server_name:None) timeline

let test_gantt_renders_lanes () =
  let timeline =
    Sim.run ~servers:2
      [
        { Sim.id = 0; server = 0; duration = 10.0; deps = [] };
        { Sim.id = 1; server = 1; duration = 5.0; deps = [ 0 ] };
      ]
  in
  let text = gantt timeline in
  Alcotest.(check bool) "has R1 lane" true
    (Option.is_some (Str_find.find_substring text "R1"));
  Alcotest.(check bool) "has R2 lane" true
    (Option.is_some (Str_find.find_substring text "R2"));
  Alcotest.(check bool) "has service marks" true
    (Option.is_some (Str_find.find_substring text "#"));
  Alcotest.(check bool) "reports makespan" true
    (Option.is_some (Str_find.find_substring text "makespan: 15.0"))

let test_gantt_empty () =
  let timeline = { Sim.events = []; makespan = 0.0 } in
  Alcotest.(check string) "placeholder" "(empty timeline)" (gantt timeline)

let suite =
  [
    Alcotest.test_case "token kinds" `Quick test_token_kinds;
    Alcotest.test_case "token offsets" `Quick test_offsets;
    Alcotest.test_case "lex errors carry offsets" `Quick test_lex_errors_carry_offset;
    Alcotest.test_case "parse errors carry offsets" `Quick test_parse_errors_carry_offset;
    Alcotest.test_case "keyword case-insensitivity" `Quick test_keywords_case_insensitive;
    Alcotest.test_case "gantt renders lanes" `Quick test_gantt_renders_lanes;
    Alcotest.test_case "gantt empty timeline" `Quick test_gantt_empty;
  ]
