(* Shared test utilities: Alcotest testables and random-instance
   generation for property tests. *)

open Fusion_data
open Fusion_cond
open Fusion_source

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let item_set : Item_set.t Alcotest.testable = Alcotest.testable Item_set.pp Item_set.equal
let cond : Cond.t Alcotest.testable = Alcotest.testable Cond.pp Cond.equal

let check_ok = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let check_err label = function
  | Ok _ -> Alcotest.failf "%s: expected an error" label
  | Error msg -> msg

let items_of_strings names = Item_set.of_list (List.map (fun s -> Value.String s) names)

(* A small deterministic schema for hand-written relation tests. *)
let abc_schema =
  Schema.create_exn ~merge:"M"
    [ ("M", Value.Tstring); ("A", Value.Tint); ("B", Value.Tstring) ]

let abc_row m a b = [ Value.String m; Value.Int a; Value.String b ]

let abc_relation ?(name = "R") rows =
  check_ok (Relation.of_rows ~name abc_schema rows)

(* QCheck generator for workload specs: small random worlds that stay
   fast to optimize and execute. *)
let spec_gen : Fusion_workload.Workload.spec QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n_sources = int_range 1 6 in
  let* m = int_range 1 3 in
  let* universe = int_range 30 300 in
  let* lo = int_range 5 60 in
  let* extra = int_range 0 60 in
  let* sels = array_repeat m (float_range 0.05 0.6) in
  let* correlation = float_range 0.0 1.0 in
  let* item_skew = oneofl [ 0.0; 0.0; 1.0 ] in
  let* entity_correlation = oneofl [ 0.0; 0.0; 0.8 ] in
  let* selectivity_jitter = oneofl [ 0.0; 0.0; 0.4 ] in
  let* no_semijoin = oneofl [ 0.0; 0.3; 0.7 ] in
  let* minimal = oneofl [ 0.0; 0.2 ] in
  let* slow = oneofl [ 0.0; 0.3 ] in
  let* tiny = oneofl [ 0.0; 0.3 ] in
  let* seed = int_range 0 1_000_000 in
  return
    {
      Fusion_workload.Workload.default_spec with
      n_sources;
      universe;
      tuples_per_source = (lo, lo + extra);
      selectivities = sels;
      correlation;
      entity_correlation;
      selectivity_jitter;
      item_skew;
      heterogeneity = { Fusion_workload.Workload.no_semijoin; minimal; slow; tiny };
      seed;
    }

let spec_print spec =
  let h = spec.Fusion_workload.Workload.heterogeneity in
  Printf.sprintf
    "{n=%d; universe=%d; tuples=(%d,%d); sels=[%s]; corr=%.2f; skew=%.1f; het=(nsj %.1f, min %.1f, slow %.1f, tiny %.1f); seed=%d}"
    spec.Fusion_workload.Workload.n_sources spec.Fusion_workload.Workload.universe
    (fst spec.Fusion_workload.Workload.tuples_per_source)
    (snd spec.Fusion_workload.Workload.tuples_per_source)
    (String.concat ";"
       (List.map (Printf.sprintf "%.2f")
          (Array.to_list spec.Fusion_workload.Workload.selectivities)))
    spec.Fusion_workload.Workload.correlation spec.Fusion_workload.Workload.item_skew
    h.Fusion_workload.Workload.no_semijoin h.Fusion_workload.Workload.minimal
    h.Fusion_workload.Workload.slow h.Fusion_workload.Workload.tiny
    spec.Fusion_workload.Workload.seed

let qtest ?(count = 50) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)

(* Execute a plan against an instance's sources, returning the answer. *)
let execute_plan (instance : Fusion_workload.Workload.instance) plan =
  Array.iter Source.reset_meter instance.Fusion_workload.Workload.sources;
  Fusion_plan.Exec.run
    ~sources:instance.Fusion_workload.Workload.sources
    ~conds:(Fusion_query.Query.conditions instance.Fusion_workload.Workload.query)
    plan
