(* The OEM semistructured substrate and its relational extraction. *)

open Fusion_data
module Oem = Fusion_oem.Oem
module Extract = Fusion_oem.Extract

let dmv_doc =
  "{ violation { lic \"J55\" type \"dui\" year 1993 }\n\
  \  violation { lic \"T21\" type \"sp\"  year 1994 }\n\
  \  # a record with extra structure and a missing year\n\
  \  violation { lic \"T80\" type \"dui\" court { city \"SF\" } }\n\
  \  station { name \"HQ\" } }"

let parse_ok text = Helpers.check_ok (Oem.parse text)

let test_parse_shapes () =
  let doc = parse_ok dmv_doc in
  match doc with
  | Oem.Object children ->
    Alcotest.(check int) "four children" 4 (List.length children);
    Alcotest.(check (list string)) "labels"
      [ "violation"; "violation"; "violation"; "station" ]
      (List.map fst children)
  | _ -> Alcotest.fail "expected an object"

let test_atoms () =
  Alcotest.(check bool) "int" true (parse_ok "42" = Oem.Atom (Value.Int 42));
  Alcotest.(check bool) "float" true (parse_ok "2.5" = Oem.Atom (Value.Float 2.5));
  Alcotest.(check bool) "bool" true (parse_ok "true" = Oem.Atom (Value.Bool true));
  Alcotest.(check bool) "null" true (parse_ok "null" = Oem.Atom Value.Null);
  Alcotest.(check bool) "string escape" true
    (parse_ok "\"a\\\"b\"" = Oem.Atom (Value.String "a\"b"))

let test_parse_errors () =
  ignore (Helpers.check_err "unbalanced" (Oem.parse "{ a 1 "));
  ignore (Helpers.check_err "stray brace" (Oem.parse "}"));
  ignore (Helpers.check_err "trailing" (Oem.parse "{ a 1 } extra"));
  ignore (Helpers.check_err "label needed" (Oem.parse "{ \"str\" 1 }"));
  ignore (Helpers.check_err "unterminated" (Oem.parse "{ a \"oops }"));
  ignore (Helpers.check_err "bad word" (Oem.parse "{ a wat }"))

let test_select_and_first_atom () =
  let doc = parse_ok dmv_doc in
  Alcotest.(check int) "three violations" 3 (List.length (Oem.select doc [ "violation" ]));
  Alcotest.(check int) "three lics" 3 (List.length (Oem.select doc [ "violation"; "lic" ]));
  Alcotest.(check bool) "nested path" true
    (Oem.first_atom doc [ "violation"; "court"; "city" ] = Some (Value.String "SF"));
  Alcotest.(check bool) "missing path" true (Oem.first_atom doc [ "nope" ] = None);
  Alcotest.(check bool) "first atom is document order" true
    (Oem.first_atom doc [ "violation"; "lic" ] = Some (Value.String "J55"))

let qcheck_pp_parse_round_trip =
  let gen =
    QCheck2.Gen.(
      let atom =
        oneof
          [
            map (fun i -> Oem.Atom (Value.Int i)) (int_range (-50) 50);
            map (fun s -> Oem.Atom (Value.String s))
              (string_size ~gen:(char_range 'a' 'z') (int_range 0 5));
            return (Oem.Atom Value.Null);
            return (Oem.Atom (Value.Bool true));
            map (fun f -> Oem.Atom (Value.Float f))
              (map (fun i -> float_of_int i /. 4.0) (int_range 1 200));
          ]
      in
      let label = string_size ~gen:(char_range 'a' 'e') (int_range 1 3) in
      let rec obj depth =
        if depth = 0 then atom
        else
          oneof
            [
              atom;
              map (fun kids -> Oem.Object kids)
                (list_size (int_range 0 4) (pair label (obj (depth - 1))));
            ]
      in
      obj 3)
  in
  Helpers.qtest ~count:200 "OEM pp/parse round trip" gen Oem.to_string (fun doc ->
      match Oem.parse (Oem.to_string doc) with
      | Ok doc' -> Oem.equal doc doc'
      | Error msg -> QCheck2.Test.fail_reportf "re-parse failed: %s" msg)

(* --- extraction ---------------------------------------------------------- *)

let common =
  Schema.create_exn ~merge:"L"
    [ ("L", Value.Tstring); ("V", Value.Tstring); ("D", Value.Tint) ]

let mapping =
  {
    Extract.entities = [ "violation" ];
    columns = [ ("L", [ "lic" ]); ("V", [ "type" ]); ("D", [ "year" ]) ];
  }

let test_extract_relation () =
  let relation =
    Helpers.check_ok (Extract.relation ~name:"OEM1" ~common mapping (parse_ok dmv_doc))
  in
  Alcotest.(check int) "three tuples" 3 (Relation.cardinality relation);
  Alcotest.check Helpers.item_set "items"
    (Helpers.items_of_strings [ "J55"; "T21"; "T80" ])
    (Relation.items relation);
  (* The record without a year gets a Null. *)
  match Relation.tuples_of_item relation (Value.String "T80") with
  | [ t ] -> Alcotest.check Helpers.value "null year" Value.Null (Tuple.get t 2)
  | _ -> Alcotest.fail "expected one T80 tuple"

let test_extract_skips_unjoinable () =
  let doc = parse_ok "{ violation { type \"dui\" } violation { lic \"X1\" type \"sp\" } }" in
  let relation = Helpers.check_ok (Extract.relation ~name:"R" ~common mapping doc) in
  Alcotest.(check int) "entity without merge skipped" 1 (Relation.cardinality relation)

let test_extract_errors () =
  let doc = parse_ok dmv_doc in
  ignore
    (Helpers.check_err "missing column"
       (Extract.relation ~name:"R" ~common
          { Extract.entities = [ "violation" ]; columns = [ ("L", [ "lic" ]) ] }
          doc));
  ignore
    (Helpers.check_err "type clash"
       (Extract.relation ~name:"R" ~common
          {
            Extract.entities = [ "violation" ];
            columns = [ ("L", [ "lic" ]); ("V", [ "type" ]); ("D", [ "type" ]) ];
          }
          doc))

let test_oem_federation_end_to_end () =
  (* Two OEM sources with different internal shapes, one relational
     federation, the paper's query. *)
  let doc2 =
    parse_ok
      "{ record { driver { id \"T21\" } offense \"dui\" when 1996 }\n\
      \  record { driver { id \"J55\" } offense \"sp\" when 1996 } }"
  in
  let r1 = Helpers.check_ok (Extract.relation ~name:"OEM1" ~common mapping (parse_ok dmv_doc)) in
  let r2 =
    Helpers.check_ok
      (Extract.relation ~name:"OEM2" ~common
         {
           Extract.entities = [ "record" ];
           columns =
             [ ("L", [ "driver"; "id" ]); ("V", [ "offense" ]); ("D", [ "when" ]) ];
         }
         doc2)
  in
  let mediator =
    Fusion_mediator.Mediator.create_exn
      [ Fusion_source.Source.create r1; Fusion_source.Source.create r2 ]
  in
  let report =
    Helpers.check_ok
      (Fusion_mediator.Mediator.run_sql mediator
         "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'")
  in
  Alcotest.check Helpers.item_set "J55 and T21 via OEM wrappers"
    (Helpers.items_of_strings [ "J55"; "T21" ])
    report.Fusion_mediator.Mediator.answer

let test_oem_source_in_catalog () =
  let dir = Filename.temp_file "fusion_oemcat" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Out_channel.with_open_text (Filename.concat dir "az.oem") (fun oc ->
          Out_channel.output_string oc
            "{ record { driver { id \"J55\" } offense \"dui\" when 1993 } }");
      Out_channel.with_open_text (Filename.concat dir "ca.csv") (fun oc ->
          Out_channel.output_string oc "*L:string,V:string,D:int\nJ55,sp,1996\n");
      let text =
        "[view]\n\
         schema = *L:string,V:string,D:int\n\
         [source AZ]\n\
         file = az.oem\n\
         format = oem\n\
         entities = record\n\
         col.L = driver/id\n\
         col.V = offense\n\
         col.D = when\n\
         [source CA]\n\
         file = ca.csv\n"
      in
      let sources = Helpers.check_ok (Fusion_source.Catalog.parse ~dir text) in
      Alcotest.(check int) "two sources" 2 (List.length sources);
      let mediator = Fusion_mediator.Mediator.create_exn sources in
      let report =
        Helpers.check_ok
          (Fusion_mediator.Mediator.run_sql mediator
             "SELECT u1.L FROM U u1, U u2 WHERE u1.L = u2.L AND u1.V = 'dui' AND u2.V = 'sp'")
      in
      Alcotest.check Helpers.item_set "fusion across OEM + CSV"
        (Helpers.items_of_strings [ "J55" ])
        report.Fusion_mediator.Mediator.answer;
      (* oem without a view is rejected. *)
      ignore
        (Helpers.check_err "oem needs view"
           (Fusion_source.Catalog.parse ~dir
              "[source AZ]\nfile = az.oem\nformat = oem\nentities = record\n")))

let suite =
  [
    Alcotest.test_case "parse shapes" `Quick test_parse_shapes;
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "select and first_atom" `Quick test_select_and_first_atom;
    qcheck_pp_parse_round_trip;
    Alcotest.test_case "extract relation" `Quick test_extract_relation;
    Alcotest.test_case "extract skips unjoinable entities" `Quick
      test_extract_skips_unjoinable;
    Alcotest.test_case "extract errors" `Quick test_extract_errors;
    Alcotest.test_case "OEM federation end to end" `Quick test_oem_federation_end_to_end;
    Alcotest.test_case "OEM source via catalog" `Quick test_oem_source_in_catalog;
  ]
