(* The optimizer suite: soundness on random worlds, the paper's
   dominance claims, classification invariants, brute-force agreement. *)

open Fusion_data
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of (instance : Workload.instance) =
  Opt_env.create ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let optimize algo instance = Optimizer.optimize algo (env_of instance)

let run_plan instance plan =
  (Helpers.execute_plan instance plan).Exec.answer

let reference (instance : Workload.instance) =
  Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query

(* -- Soundness: every algorithm's plan computes the fusion answer. ---- *)

let qcheck_soundness algo =
  Helpers.qtest ~count:60
    (Printf.sprintf "%s plans compute the reference answer" (Optimizer.name algo))
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let optimized = optimize algo instance in
      Item_set.equal (run_plan instance optimized.Optimized.plan) (reference instance))

(* -- Structure: each algorithm stays in its plan class. ---------------- *)

let qcheck_class_invariants =
  Helpers.qtest ~count:60 "algorithms respect their plan classes" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let n = Array.length instance.Workload.sources in
      let m = Fusion_query.Query.m instance.Workload.query in
      let check algo pred =
        let optimized = optimize algo instance in
        (match Plan.validate ~m ~n optimized.Optimized.plan with
        | Ok () -> ()
        | Error msg -> QCheck2.Test.fail_reportf "%s invalid: %s" (Optimizer.name algo) msg);
        pred optimized.Optimized.plan
      in
      check Optimizer.Filter Plan.is_filter
      && check Optimizer.Filter (Plan.is_semijoin ~n)
      && check Optimizer.Sj (Plan.is_semijoin ~n)
      && check Optimizer.Sja (Plan.is_semijoin_adaptive ~n)
      && check Optimizer.Sja Plan.is_simple
      && check Optimizer.Greedy_sj (Plan.is_semijoin ~n)
      && check Optimizer.Greedy_sja (Plan.is_semijoin_adaptive ~n))

(* -- Dominance: larger plan spaces can only help. ---------------------- *)

let qcheck_dominance =
  Helpers.qtest ~count:80 "est cost: SJA ≤ SJ ≤ FILTER and SJA ≤ greedy-SJA"
    Helpers.spec_gen Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let cost algo = (optimize algo instance).Optimized.est_cost in
      let filter = cost Optimizer.Filter
      and sj = cost Optimizer.Sj
      and sja = cost Optimizer.Sja
      and greedy_sj = cost Optimizer.Greedy_sj
      and greedy_sja = cost Optimizer.Greedy_sja in
      let eps = 1e-6 in
      sja <= sj +. eps && sj <= filter +. eps && sja <= greedy_sja +. eps
      && greedy_sja <= greedy_sj +. eps && sj <= greedy_sj +. eps)

(* SJA+ must not be worse than SJA under the whole-plan estimator. *)
let qcheck_sja_plus_dominates =
  Helpers.qtest ~count:80 "Plan_cost: SJA+ ≤ SJA" Helpers.spec_gen Helpers.spec_print
    (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let whole_plan_cost (optimized : Optimized.t) =
        (Plan_cost.estimate ~model:env.Opt_env.model ~est:env.Opt_env.est
           ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds optimized.Optimized.plan)
          .Plan_cost.total
      in
      let sja = Optimizer.optimize Optimizer.Sja env in
      let sja_plus = Optimizer.optimize Optimizer.Sja_plus env in
      whole_plan_cost sja_plus <= whole_plan_cost sja +. 1e-6
      && sja_plus.Optimized.est_cost <= whole_plan_cost sja +. 1e-6)

(* -- Brute force agreement on tiny instances. -------------------------- *)

let tiny_spec_gen =
  QCheck2.Gen.(
    let* n_sources = int_range 1 3 in
    let* m = int_range 1 3 in
    let* sels = array_repeat m (float_range 0.05 0.6) in
    let* no_semijoin = oneofl [ 0.0; 0.5 ] in
    let* seed = int_range 0 100_000 in
    return
      {
        Workload.default_spec with
        n_sources;
        universe = 60;
        tuples_per_source = (10, 40);
        selectivities = sels;
        heterogeneity = { Workload.homogeneous with Workload.no_semijoin };
        seed;
      })

let qcheck_sja_matches_brute_force =
  Helpers.qtest ~count:40 "SJA = brute-force optimum over its space" tiny_spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sja = Algorithms.sja env in
      let _, best = Brute.best_estimated env in
      Float.abs (sja.Optimized.est_cost -. best) <= 1e-6 +. (1e-9 *. Float.abs best))

let qcheck_sj_never_beats_brute =
  Helpers.qtest ~count:40 "SJ within brute-force space bounds" tiny_spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let env = env_of instance in
      let sj = Algorithms.sj env in
      let _, best = Brute.best_estimated env in
      sj.Optimized.est_cost >= best -. 1e-6)

(* -- Deterministic scenario tests. ------------------------------------- *)

let heterogeneous_instance () =
  Workload.generate
    {
      Workload.default_spec with
      n_sources = 6;
      selectivities = [| 0.02; 0.4; 0.5 |];
      heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.5 };
      seed = 7;
    }

let test_sja_adapts_per_source () =
  (* With half the sources semijoin-less and a very selective first
     condition, SJA should mix strategies within some round. *)
  let instance = heterogeneous_instance () in
  let optimized = optimize Optimizer.Sja instance in
  let rounds =
    Helpers.check_ok
      (Plan.rounds ~n:(Array.length instance.Workload.sources) optimized.Optimized.plan)
  in
  let mixed =
    List.exists
      (fun r ->
        Array.exists (fun a -> a = Plan.By_select) r.Plan.actions
        && Array.exists (fun a -> a = Plan.By_semijoin) r.Plan.actions)
      rounds
  in
  Alcotest.(check bool) "some round mixes strategies" true mixed;
  let sj_cost = (optimize Optimizer.Sj instance).Optimized.est_cost in
  Alcotest.(check bool) "strictly better than SJ here" true
    (optimized.Optimized.est_cost < sj_cost)

let test_semijoins_win_on_selective_first_condition () =
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        n_sources = 6;
        universe = 5000;
        tuples_per_source = (800, 1000);
        selectivities = [| 0.01; 0.5 |];
        seed = 3;
      }
  in
  let sja = optimize Optimizer.Sja instance in
  let has_semijoin =
    List.exists
      (fun op -> match op with Op.Semijoin _ -> true | _ -> false)
      (Plan.ops sja.Optimized.plan)
  in
  Alcotest.(check bool) "uses semijoins" true has_semijoin;
  let filter_cost = (optimize Optimizer.Filter instance).Optimized.est_cost in
  Alcotest.(check bool) "beats filter" true (sja.Optimized.est_cost < filter_cost)

let test_ordering_prefers_selective_condition_first () =
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        n_sources = 4;
        universe = 5000;
        tuples_per_source = (800, 1000);
        selectivities = [| 0.6; 0.01; 0.3 |];
        seed = 11;
      }
  in
  let sja = optimize Optimizer.Sja instance in
  Alcotest.(check int) "c2 (selective) first" 1 sja.Optimized.ordering.(0)

let test_filter_cost_is_sum_of_selections () =
  let instance = Workload.fig1 () in
  let env = env_of instance in
  let filter = Algorithms.filter env in
  let expected =
    Array.fold_left
      (fun acc c ->
        Array.fold_left
          (fun acc s -> acc +. env.Opt_env.model.Fusion_cost.Model.sq_cost s c)
          acc env.Opt_env.sources)
      0.0 env.Opt_env.conds
  in
  Alcotest.(check (float 0.001)) "mn selections" expected filter.Optimized.est_cost

let test_greedy_equals_exact_on_uniform_world () =
  (* Homogeneous sources, clearly ranked selectivities: the greedy
     ordering (most selective first) is the exact optimum. *)
  let instance =
    Workload.generate
      {
        Workload.default_spec with
        n_sources = 5;
        selectivities = [| 0.4; 0.05; 0.2 |];
        seed = 13;
      }
  in
  let exact = (optimize Optimizer.Sja instance).Optimized.est_cost in
  let greedy = (optimize Optimizer.Greedy_sja instance).Optimized.est_cost in
  Alcotest.(check (float 0.001)) "same cost" exact greedy

let test_single_condition_all_algorithms_agree () =
  let instance =
    Workload.generate
      { Workload.default_spec with selectivities = [| 0.2 |]; seed = 17 }
  in
  (* With m = 1 every plan is the same mn-selection round. *)
  let costs = List.map (fun a -> (optimize a instance).Optimized.est_cost) Optimizer.all in
  match costs with
  | first :: rest ->
    List.iter (fun c -> Alcotest.(check (float 0.001)) "equal" first c) rest
  | [] -> Alcotest.fail "no algorithms"

let test_perm_count_and_iter () =
  Alcotest.(check int) "3!" 6 (Perm.count 3);
  Alcotest.(check int) "0!" 1 (Perm.count 0);
  let seen = Hashtbl.create 16 in
  Perm.iter 4 (fun p -> Hashtbl.replace seen (Array.to_list p) ());
  Alcotest.(check int) "all 24 distinct" 24 (Hashtbl.length seen)

let test_optimizer_names () =
  List.iter
    (fun algo ->
      match Optimizer.of_name (Optimizer.name algo) with
      | Ok a -> Alcotest.(check bool) "round trip" true (a = algo)
      | Error msg -> Alcotest.fail msg)
    Optimizer.all;
  ignore (Helpers.check_err "unknown" (Optimizer.of_name "magic"))

let suite =
  [
    qcheck_soundness Optimizer.Filter;
    qcheck_soundness Optimizer.Sj;
    qcheck_soundness Optimizer.Sja;
    qcheck_soundness Optimizer.Sja_plus;
    qcheck_soundness Optimizer.Greedy_sj;
    qcheck_soundness Optimizer.Greedy_sja;
    qcheck_class_invariants;
    qcheck_dominance;
    qcheck_sja_plus_dominates;
    qcheck_sja_matches_brute_force;
    qcheck_sj_never_beats_brute;
    Alcotest.test_case "SJA adapts per source" `Quick test_sja_adapts_per_source;
    Alcotest.test_case "semijoins win on selective first condition" `Quick
      test_semijoins_win_on_selective_first_condition;
    Alcotest.test_case "selective condition ordered first" `Quick
      test_ordering_prefers_selective_condition_first;
    Alcotest.test_case "filter cost = sum of mn selections" `Quick
      test_filter_cost_is_sum_of_selections;
    Alcotest.test_case "greedy matches exact on uniform world" `Quick
      test_greedy_equals_exact_on_uniform_world;
    Alcotest.test_case "single condition: all agree" `Quick
      test_single_condition_all_algorithms_agree;
    Alcotest.test_case "permutations" `Quick test_perm_count_and_iter;
    Alcotest.test_case "algorithm names" `Quick test_optimizer_names;
  ]
