(* Plan executor: semantics on the Figure 1 instance and random worlds. *)

open Fusion_data
open Fusion_plan
module Workload = Fusion_workload.Workload
module Reference = Fusion_core.Reference

let fig1 () = Workload.fig1 ()

let fig1_conds instance = Fusion_query.Query.conditions instance.Workload.query

(* Plan P1 from the paper's Section 1 / Figure 5(a): all dui items by
   selection, then semijoin sp against R1, R2, select at R3. *)
let p1 =
  Plan.create
    ~ops:
      [
        Op.Select { dst = "X11"; cond = 0; source = 0 };
        Op.Select { dst = "X12"; cond = 0; source = 1 };
        Op.Select { dst = "X13"; cond = 0; source = 2 };
        Op.Union { dst = "X1"; args = [ "X11"; "X12"; "X13" ] };
        Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" };
        Op.Semijoin { dst = "X22"; cond = 1; source = 1; input = "X1" };
        Op.Semijoin { dst = "X23"; cond = 1; source = 2; input = "X1" };
        Op.Union { dst = "X2"; args = [ "X21"; "X22"; "X23" ] };
      ]
    ~output:"X2"

let expected_answer = Helpers.items_of_strings [ "J55"; "T21" ]

let test_fig1_semijoin_plan () =
  let instance = fig1 () in
  let result = Helpers.execute_plan instance p1 in
  Alcotest.check Helpers.item_set "J55 and T21" expected_answer result.Exec.answer;
  Alcotest.(check int) "eight steps" 8 (List.length result.Exec.steps);
  Alcotest.(check bool) "positive cost" true (result.Exec.total_cost > 0.0)

let test_fig1_intermediate_sets () =
  (* The paper: X1 = {J55, T80, T21} (all dui items). *)
  let instance = fig1 () in
  let result = Helpers.execute_plan instance p1 in
  let x1_step =
    List.find (fun s -> Op.dst s.Exec.op = "X1") result.Exec.steps
  in
  Alcotest.(check int) "X1 has three items" 3 x1_step.Exec.result_size

let test_fig1_reference () =
  let instance = fig1 () in
  Alcotest.check Helpers.item_set "reference answer" expected_answer
    (Reference.answer ~sources:instance.Workload.sources ~conds:(fig1_conds instance))

let test_load_and_local_select () =
  let instance = fig1 () in
  let plan =
    Plan.create
      ~ops:
        [
          Op.Load { dst = "L1"; source = 0 };
          Op.Load { dst = "L2"; source = 1 };
          Op.Load { dst = "L3"; source = 2 };
          Op.Local_select { dst = "A1"; cond = 0; input = "L1" };
          Op.Local_select { dst = "A2"; cond = 0; input = "L2" };
          Op.Local_select { dst = "A3"; cond = 0; input = "L3" };
          Op.Union { dst = "X1"; args = [ "A1"; "A2"; "A3" ] };
          Op.Local_select { dst = "B1"; cond = 1; input = "L1" };
          Op.Local_select { dst = "B2"; cond = 1; input = "L2" };
          Op.Local_select { dst = "B3"; cond = 1; input = "L3" };
          Op.Union { dst = "U2"; args = [ "B1"; "B2"; "B3" ] };
          Op.Inter { dst = "X2"; args = [ "X1"; "U2" ] };
        ]
      ~output:"X2"
  in
  let result = Helpers.execute_plan instance plan in
  Alcotest.check Helpers.item_set "same answer via loading" expected_answer result.Exec.answer;
  (* Only the three load requests cost anything. *)
  let paid = List.filter (fun s -> s.Exec.cost > 0.0) result.Exec.steps in
  Alcotest.(check int) "three paid steps" 3 (List.length paid)

let test_diff_pruning_preserves_answer () =
  let instance = fig1 () in
  (* Figure 5(c): prune the second semijoin's input with the first
     round's confirmations. *)
  let pruned =
    Plan.create
      ~ops:
        [
          Op.Select { dst = "X11"; cond = 0; source = 0 };
          Op.Select { dst = "X12"; cond = 0; source = 1 };
          Op.Select { dst = "X13"; cond = 0; source = 2 };
          Op.Union { dst = "X1"; args = [ "X11"; "X12"; "X13" ] };
          Op.Semijoin { dst = "X21"; cond = 1; source = 0; input = "X1" };
          Op.Diff { dst = "D1"; left = "X1"; right = "X21" };
          Op.Semijoin { dst = "X22"; cond = 1; source = 1; input = "D1" };
          Op.Diff { dst = "D2"; left = "D1"; right = "X22" };
          Op.Semijoin { dst = "X23"; cond = 1; source = 2; input = "D2" };
          Op.Union { dst = "X2"; args = [ "X21"; "X22"; "X23" ] };
        ]
      ~output:"X2"
  in
  let full = Helpers.execute_plan instance p1 in
  let less = Helpers.execute_plan instance pruned in
  Alcotest.check Helpers.item_set "same answer" full.Exec.answer less.Exec.answer;
  Alcotest.(check bool) "pruning is not dearer" true
    (less.Exec.total_cost <= full.Exec.total_cost)

let test_runtime_error_on_undefined () =
  let instance = fig1 () in
  let bad = Plan.create ~ops:[ Op.Union { dst = "X"; args = [ "nope" ] } ] ~output:"X" in
  Alcotest.check_raises "undefined" (Exec.Runtime_error "undefined variable nope")
    (fun () -> ignore (Helpers.execute_plan instance bad))

let test_exec_cost_matches_meters () =
  let instance = fig1 () in
  let result = Helpers.execute_plan instance p1 in
  let metered =
    Array.fold_left
      (fun acc s -> acc +. (Fusion_source.Source.totals s).Fusion_net.Meter.cost)
      0.0 instance.Workload.sources
  in
  Alcotest.(check (float 0.001)) "steps sum = meter sum" metered result.Exec.total_cost

(* Property: executing the FILTER-shaped plan computes the reference
   semantics on arbitrary generated worlds. *)
let qcheck_filter_plan_sound =
  Helpers.qtest ~count:60 "filter-shaped execution = reference semantics" Helpers.spec_gen
    Helpers.spec_print (fun spec ->
      let instance = Workload.generate spec in
      let conds = Fusion_query.Query.conditions instance.Workload.query in
      let m = Array.length conds and n = Array.length instance.Workload.sources in
      let ops = ref [] in
      for i = 0 to m - 1 do
        let dsts = ref [] in
        for j = 0 to n - 1 do
          let dst = Printf.sprintf "X%d_%d" i j in
          dsts := dst :: !dsts;
          ops := Op.Select { dst; cond = i; source = j } :: !ops
        done;
        ops := Op.Union { dst = Printf.sprintf "C%d" i; args = !dsts } :: !ops
      done;
      ops :=
        Op.Inter
          { dst = "OUT"; args = List.init m (fun i -> Printf.sprintf "C%d" i) }
        :: !ops;
      let plan = Plan.create ~ops:(List.rev !ops) ~output:"OUT" in
      let result = Helpers.execute_plan instance plan in
      Item_set.equal result.Exec.answer
        (Reference.answer ~sources:instance.Workload.sources ~conds))

let suite =
  [
    Alcotest.test_case "figure 1 semijoin plan answer" `Quick test_fig1_semijoin_plan;
    Alcotest.test_case "figure 1 intermediate X1" `Quick test_fig1_intermediate_sets;
    Alcotest.test_case "figure 1 reference semantics" `Quick test_fig1_reference;
    Alcotest.test_case "loading + local selection" `Quick test_load_and_local_select;
    Alcotest.test_case "difference pruning preserves answer" `Quick
      test_diff_pruning_preserves_answer;
    Alcotest.test_case "runtime error on undefined variable" `Quick
      test_runtime_error_on_undefined;
    Alcotest.test_case "step costs match source meters" `Quick test_exec_cost_matches_meters;
    qcheck_filter_plan_sound;
  ]
