(* X18 — extension: sharded mediation under churn.

   The distributed mediator (lib/dist) hash-partitions the catalog
   across N shards, replicates every slice K ways, and scatters one
   global plan as fragments. Three questions, one per table:

   1. Does sharding pay?  Slices shrink with N and the shards' lanes
      are disjoint, so per-shard makespan drops while the gathered
      answer stays exactly the oracle's.
   2. Does the federation survive churn?  Dead primaries force
      failovers onto the surviving replicas; a whole dead shard
      degrades to an explicit partial answer rather than a wrong one.
   3. Do hedged requests beat stragglers?  With replica 0 of every
      group slowed 10x, primary routing rides the straggler; hedging
      duplicates the request onto the predicted-faster replica and
      should cut tail makespan across a fleet of seeded queries.

   Everything runs on the simulated network, so every cell is
   deterministic and the tables gate against a committed baseline. *)

open Fusion_dist
module Reference = Fusion_core.Reference
module Workload = Fusion_workload.Workload
module Item_set = Fusion_data.Item_set
module Profile = Fusion_net.Profile

let instance =
  lazy
    (Workload.generate
       {
         Workload.default_spec with
         Workload.n_sources = 6;
         universe = 3000;
         tuples_per_source = (400, 700);
         selectivities = [| 0.1; 0.3 |];
         seed = 1808;
       })

let truth inst =
  Reference.answer_query ~sources:inst.Workload.sources inst.Workload.query

let run_on ?config cluster inst =
  match Coordinator.run ?config cluster inst.Workload.query with
  | Ok r -> r
  | Error msg -> failwith ("x18: coordinator failed: " ^ msg)

let cluster_of ?replicas ?profile_of ~shards inst =
  match
    Cluster.create ?replicas ?profile_of ~shards
      (Array.to_list inst.Workload.sources)
  with
  | Ok c -> c
  | Error msg -> failwith ("x18: cluster failed: " ^ msg)

let verdict b = if b then "yes" else "no"

(* --- 1: shard-count sweep ------------------------------------------------ *)

let shard_sweep inst =
  let expected = truth inst in
  let runs =
    List.map
      (fun shards -> (shards, run_on (cluster_of ~shards inst) inst))
      [ 1; 2; 3; 5 ]
  in
  let base_makespan =
    match runs with (_, r) :: _ -> r.Coordinator.r_makespan | [] -> 0.0
  in
  Tables.print ~title:"x18: shard-count sweep (replicas=1, global plan)"
    ~header:
      [ "shards"; "answer"; "exact"; "requests"; "total cost"; "makespan";
        "speedup" ]
    (List.map
       (fun (shards, r) ->
         let requests =
           List.fold_left
             (fun acc s -> acc + s.Coordinator.sr_requests)
             0 r.Coordinator.r_shards
         in
         [
           Tables.i shards;
           Tables.i (Item_set.cardinal r.Coordinator.r_answer);
           verdict (Item_set.equal r.Coordinator.r_answer expected);
           Tables.i requests;
           Tables.f1 r.Coordinator.r_total_cost;
           Tables.f1 r.Coordinator.r_makespan;
           Tables.ratio base_makespan r.Coordinator.r_makespan;
         ])
       runs)

(* --- 2: churn and failover ----------------------------------------------- *)

let churn inst =
  let expected = truth inst in
  let shards = 3 in
  let healthy = run_on (cluster_of ~replicas:2 ~shards inst) inst in
  let kill_primaries which =
    let cluster = cluster_of ~replicas:2 ~shards inst in
    List.iter
      (fun shard ->
        for j = 0 to Cluster.n_sources cluster - 1 do
          Cluster.kill cluster ~shard ~source:j ~replica:0
        done)
      which;
    cluster
  in
  let dead_shard =
    let cluster = cluster_of ~replicas:2 ~shards inst in
    Cluster.kill_shard cluster ~shard:1;
    cluster
  in
  let partial_config =
    { Coordinator.Config.default with Coordinator.Config.on_exhausted = `Partial }
  in
  let rows =
    [
      ("healthy", healthy);
      ("dead primaries, shard 0", run_on (kill_primaries [ 0 ]) inst);
      ("dead primaries, all shards", run_on (kill_primaries [ 0; 1; 2 ]) inst);
      ("shard 1 dead (partial)", run_on ~config:partial_config dead_shard inst);
    ]
  in
  Tables.print
    ~title:"x18: churn and failover (3 shards x 2 replicas)"
    ~header:
      [ "scenario"; "answer"; "exact"; "partial"; "failures"; "failovers";
        "cost / healthy" ]
    (List.map
       (fun (name, r) ->
         [
           name;
           Tables.i (Item_set.cardinal r.Coordinator.r_answer);
           verdict (Item_set.equal r.Coordinator.r_answer expected);
           verdict r.Coordinator.r_partial;
           Tables.i r.Coordinator.r_failures;
           Tables.i r.Coordinator.r_failovers;
           Tables.ratio r.Coordinator.r_total_cost
             healthy.Coordinator.r_total_cost;
         ])
       rows)

(* --- 3: hedging vs stragglers -------------------------------------------- *)

(* A fleet of seeded queries, each against its own 2x2 cluster whose
   primary replicas are 10x stragglers. Primary routing rides the
   straggler unless hedging redirects; the claim under test is that
   hedging cuts tail (p99) makespan, not just the median. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let hedging () =
  let straggle ~shard:_ ~source:_ ~replica profile =
    if replica = 0 then Profile.straggler profile else profile
  in
  let makespans hedge =
    let config = { Coordinator.Config.default with Coordinator.Config.hedge } in
    Array.init 25 (fun i ->
        let inst =
          Workload.generate { Workload.default_spec with Workload.seed = 500 + i }
        in
        let cluster =
          cluster_of ~replicas:2 ~profile_of:straggle ~shards:2 inst
        in
        let r = run_on ~config cluster inst in
        assert (Item_set.equal r.Coordinator.r_answer (truth inst));
        (r.Coordinator.r_makespan, r.Coordinator.r_hedges,
         r.Coordinator.r_hedge_wins))
  in
  let plain = makespans None in
  let hedged = makespans (Some 1.3) in
  let spans a = Array.map (fun (m, _, _) -> m) a in
  let sum f a = Array.fold_left (fun acc x -> acc + f x) 0 a in
  let sorted a =
    let s = Array.copy (spans a) in
    Array.sort compare s;
    s
  in
  let sp = sorted plain and sh = sorted hedged in
  let row name a s =
    [
      name;
      Tables.i (sum (fun (_, h, _) -> h) a);
      Tables.i (sum (fun (_, _, w) -> w) a);
      Tables.f1 (percentile s 0.5);
      Tables.f1 (percentile s 0.99);
    ]
  in
  Tables.print
    ~title:
      "x18: hedging vs 10x stragglers (25 queries, 2 shards x 2 replicas, \
       primary routing)"
    ~header:[ "config"; "hedges"; "hedge wins"; "p50 makespan"; "p99 makespan" ]
    [ row "no hedging" plain sp; row "hedge factor 1.3" hedged sh ];
  Tables.print ~title:"x18: hedging claim"
    ~header:[ "claim"; "verdict" ]
    [
      [ "hedging cuts p99 makespan"; verdict (percentile sh 0.99 < percentile sp 0.99) ];
      [ "hedging cuts p50 makespan"; verdict (percentile sh 0.5 < percentile sp 0.5) ];
      [ "every hedged answer exact"; "yes" ];
    ]

let run () =
  let inst = Lazy.force instance in
  shard_sweep inst;
  churn inst;
  hedging ()
