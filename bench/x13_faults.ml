(* X13 — extension: the price of autonomy — flaky sources.

   Internet sources time out. Each request fails independently with
   probability p; the executor retries until the query succeeds. We
   measure the actual total cost (failed attempts pay their overhead)
   and the observed timeout count, as p grows. Answers stay exact — the
   qcheck suite asserts that; here we price the robustness. The last
   column shows partial-mode behaviour with a single permanently dead
   source: how much of the answer survives. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng

let base_spec seed =
  {
    Workload.default_spec with
    Workload.n_sources = 6;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    seed;
  }

let with_faults probability fault_seed (instance : Workload.instance) =
  Array.iteri
    (fun j s ->
      Source.set_fault s
        (if probability > 0.0 then
           Some { Source.probability; prng = Prng.create (fault_seed + (31 * j)) }
         else None))
    instance.Workload.sources;
  instance

let run_with instance =
  let env = Runner.env_of instance in
  let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
  Array.iter Source.reset_meter instance.Workload.sources;
  Exec.run
    ~policy:{ Exec.retries = 1000; on_exhausted = `Fail }
    ~sources:instance.Workload.sources
    ~conds:(Fusion_query.Query.conditions instance.Workload.query)
    plan

let run () =
  let rows =
    List.map
      (fun probability ->
        let costs, failures =
          List.fold_left
            (fun (costs, fails) seed ->
              let instance =
                with_faults probability (seed * 13) (Workload.generate (base_spec seed))
              in
              let result = run_with instance in
              (costs +. result.Exec.total_cost, fails + result.Exec.failures))
            (0.0, 0) Runner.seeds
        in
        let k = float_of_int (List.length Runner.seeds) in
        [
          Printf.sprintf "%.0f%%" (100.0 *. probability);
          Tables.f1 (costs /. k);
          Tables.f1 (float_of_int failures /. k);
        ])
      [ 0.0; 0.1; 0.2; 0.4 ]
  in
  Tables.print
    ~title:"X13: cost of retrying flaky sources (SJA, exact answers, mean of 3 seeds)"
    ~header:[ "timeout prob"; "total cost"; "timeouts/query" ]
    rows;
  (* Partial mode with one dead source: recall of the partial answer. *)
  let partial_rows =
    List.map
      (fun seed ->
        let instance = Workload.generate (base_spec seed) in
        let truth =
          Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
        in
        Source.set_fault
          instance.Workload.sources.(0)
          (Some { Source.probability = 1.0; prng = Prng.create seed });
        let env = Runner.env_of instance in
        let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
        Array.iter Source.reset_meter instance.Workload.sources;
        let result =
          Exec.run
            ~policy:{ Exec.retries = 0; on_exhausted = `Partial }
            ~sources:instance.Workload.sources
            ~conds:(Fusion_query.Query.conditions instance.Workload.query)
            plan
        in
        Source.set_fault instance.Workload.sources.(0) None;
        let recall =
          if Fusion_data.Item_set.cardinal truth = 0 then 1.0
          else
            float_of_int (Fusion_data.Item_set.cardinal result.Exec.answer)
            /. float_of_int (Fusion_data.Item_set.cardinal truth)
        in
        [
          Tables.i seed;
          Tables.i (Fusion_data.Item_set.cardinal truth);
          Tables.i (Fusion_data.Item_set.cardinal result.Exec.answer);
          Tables.f2 recall;
        ])
      Runner.seeds
  in
  Tables.print
    ~title:"X13b: partial answers with one dead source (of 6)"
    ~header:[ "seed"; "true answers"; "partial answers"; "recall" ]
    partial_rows
