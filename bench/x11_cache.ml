(* X11 — extension: session-level reuse of selection answers.

   Section 5 notes that fusion-query plans over distributed unions
   repeatedly evaluate common subexpressions. A mediator session that
   serves a stream of fusion queries sharing hot conditions (the same
   'dui' filter appearing in many analysts' queries) can cache
   per-(condition, source) selection answers and even derive semijoins
   from them locally. We replay sessions of k queries over m conditions
   drawn from a small hot pool and report total session cost with and
   without the cache. *)

open Fusion_core
open Fusion_cond
open Fusion_data
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator
module Prng = Fusion_stats.Prng

(* Queries over a shared world: each picks 2 conditions from a pool of
   thresholds over the 3 attributes. *)
let build_world seed =
  Workload.generate
    {
      Workload.default_spec with
      Workload.n_sources = 6;
      universe = 3000;
      tuples_per_source = (400, 600);
      selectivities = [| 0.1; 0.2; 0.3 |];
      seed;
    }

let pool =
  [|
    Cond.Cmp ("A1", Cond.Lt, Value.Int 100);
    Cond.Cmp ("A1", Cond.Lt, Value.Int 50);
    Cond.Cmp ("A2", Cond.Lt, Value.Int 200);
    Cond.Cmp ("A2", Cond.Lt, Value.Int 150);
    Cond.Cmp ("A3", Cond.Lt, Value.Int 300);
    Cond.Cmp ("A3", Cond.Lt, Value.Int 250);
  |]

let session_queries prng k =
  List.init k (fun _ ->
      let c1 = Prng.pick prng pool in
      let c2 = ref (Prng.pick prng pool) in
      while Cond.equal c1 !c2 do
        c2 := Prng.pick prng pool
      done;
      Fusion_query.Query.create_exn [ c1; !c2 ])

let session_cost ~cache mediator queries =
  List.fold_left
    (fun acc query ->
      let report =
        match Mediator.run
          ~config:
            { Mediator.Config.default with Mediator.Config.algo = Optimizer.Sja; cache }
          mediator query with
        | Ok r -> r
        | Error msg -> failwith msg
      in
      acc +. report.Mediator.actual_cost)
    0.0 queries

let run () =
  let rows =
    List.map
      (fun k ->
        let totals =
          List.map
            (fun seed ->
              let instance = build_world seed in
              let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
              let queries = session_queries (Prng.create (seed * 7)) k in
              let cold = session_cost ~cache:None mediator queries in
              let cache = Fusion_plan.Exec.Query_cache.create () in
              let warm = session_cost ~cache:(Some cache) mediator queries in
              (cold, warm))
            Runner.seeds
        in
        let n = float_of_int (List.length totals) in
        let cold = List.fold_left (fun acc (c, _) -> acc +. c) 0.0 totals /. n in
        let warm = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 totals /. n in
        [ Tables.i k; Tables.f1 cold; Tables.f1 warm; Tables.ratio cold warm ])
      [ 2; 5; 10; 20 ]
  in
  Tables.print
    ~title:"X11: session cost with/without the selection cache (6 hot conditions, 3 seeds)"
    ~header:[ "queries/session"; "no cache"; "cache"; "speedup" ]
    rows
