(* Regression gate over two BENCH JSON files (FUSION_BENCH_JSON).

   Usage: compare.exe [--tolerance F] baseline.json candidate.json

   Tables are matched by title, rows by their first (label) cell, and
   numeric cells are compared pairwise: any cell whose relative change
   exceeds the tolerance is reported, and the exit status is non-zero
   when at least one cell drifted. Non-numeric cells must match
   exactly. Tables or rows present on only one side are reported as
   structural drift (also failing): a silently vanished experiment
   should not pass the gate. *)

module J = Fusion_obs.Json

let default_tolerance = 0.05

type table = { title : string; header : string list; rows : string list list }

let strings_of json =
  match json with
  | J.List items -> Some (List.filter_map J.to_str items)
  | _ -> None

let tables_of_file path =
  let text = In_channel.with_open_text path In_channel.input_all in
  match J.of_string text with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok json -> (
    match J.member "tables" json with
    | Some (J.List tables) ->
      let table json =
        match
          ( Option.bind (J.member "title" json) J.to_str,
            Option.bind (J.member "header" json) strings_of,
            J.member "rows" json )
        with
        | Some title, Some header, Some (J.List rows) ->
          Some { title; header; rows = List.filter_map strings_of rows }
        | _ -> None
      in
      Ok (List.filter_map table tables)
    | _ -> Error (path ^ ": no \"tables\" array"))

(* The harness prints numbers via Tables.f1/f2/f3 and string_of_int, so
   a plain float parse recognizes exactly the numeric cells. *)
let numeric cell = float_of_string_opt cell

let drifted = ref 0
let structural = ref 0

let report fmt = Printf.printf fmt

let compare_rows ~tolerance ~title ~header base cand =
  let label row = match row with [] -> "" | first :: _ -> first in
  List.iter
    (fun brow ->
      match List.find_opt (fun crow -> label crow = label brow) cand with
      | None ->
        incr structural;
        report "MISSING ROW  %s / %s\n" title (label brow)
      | Some crow ->
        if List.length crow <> List.length brow then begin
          incr structural;
          report "SHAPE        %s / %s: %d vs %d cells\n" title (label brow)
            (List.length brow) (List.length crow)
        end
        else
          List.iteri
            (fun i (b, c) ->
              let column =
                match List.nth_opt header i with Some h -> h | None -> string_of_int i
              in
              match numeric b, numeric c with
              | Some vb, Some vc ->
                let change =
                  if vb = 0.0 then if vc = 0.0 then 0.0 else infinity
                  else Float.abs (vc -. vb) /. Float.abs vb
                in
                if change > tolerance then begin
                  incr drifted;
                  report "DRIFT        %s / %s / %s: %s -> %s (%+.1f%%)\n" title
                    (label brow) column b c
                    (if vb = 0.0 then Float.nan else 100.0 *. ((vc /. vb) -. 1.0))
                end
              | _ ->
                if b <> c then begin
                  incr drifted;
                  report "CHANGED      %s / %s / %s: %S -> %S\n" title (label brow)
                    column b c
                end)
            (List.combine brow crow))
    base

let compare_files ~tolerance base cand =
  List.iter
    (fun bt ->
      match List.find_opt (fun ct -> ct.title = bt.title) cand with
      | None ->
        incr structural;
        report "MISSING TABLE  %s (in baseline only — an experiment vanished)\n" bt.title
      | Some ct -> compare_rows ~tolerance ~title:bt.title ~header:bt.header bt.rows ct.rows)
    base;
  (* A table on only one side fails the gate in both directions: a
     vanished experiment and an unvetted new one are equally silent
     regressions of coverage. *)
  List.iter
    (fun ct ->
      if not (List.exists (fun bt -> bt.title = ct.title) base) then begin
        incr structural;
        report "NEW TABLE    %s (in candidate only — regenerate the baseline)\n" ct.title
      end)
    cand

let usage () =
  prerr_endline "usage: compare [--tolerance F] baseline.json candidate.json";
  exit 2

let () =
  let tolerance = ref default_tolerance in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 0.0 ->
        tolerance := f;
        parse rest
      | _ -> usage ())
    | arg :: rest ->
      files := arg :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !files with
  | [ baseline; candidate ] -> (
    match tables_of_file baseline, tables_of_file candidate with
    | Error msg, _ | _, Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 2
    | Ok base, Ok cand ->
      compare_files ~tolerance:!tolerance base cand;
      if !drifted + !structural = 0 then begin
        Printf.printf "OK: no drift beyond %.1f%% across %d tables\n"
          (100.0 *. !tolerance) (List.length base);
        exit 0
      end
      else begin
        Printf.printf "FAIL: %d drifted cells, %d structural differences (tolerance %.1f%%)\n"
          !drifted !structural (100.0 *. !tolerance);
        exit 1
      end)
  | _ -> usage ()
