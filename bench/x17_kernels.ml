(* X17 — the dictionary-encoded data plane, measured.

   Micro: union/inter/diff/subset over the flat Item_set (sorted id
   arrays / bitsets over an Intern scope) against the historical
   Set.Make reference (Item_set_ref), at varying cardinalities, in both
   a sparse shape (ids spread 16x apart — stays in the array form) and
   a dense shape (contiguous ids — takes the bitset form). Probe and
   construction micro-benchmarks ride along, informational.

   Macro: an x15-style mediator query (sequential + concurrent) and an
   x16-style serving drain, recording only simulation-deterministic
   cells (cardinalities, costs, completion counts) — wall-clock numbers
   are printed but never recorded, so the committed baseline gates
   correctness and the speedup claims, not this machine's clock.

   The recorded claims table asserts the tentpole's bar: every set
   kernel at cardinality >= 10^4 runs >= 2x faster than the reference.
   Timings for smaller cardinalities are printed for context only. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Mediator = Fusion_mediator.Mediator
module Serve = Fusion_serve.Server
module Driver = Fusion_serve.Driver
module Prng = Fusion_stats.Prng

(* --- deterministic input shapes ---------------------------------------- *)

(* Ints with stride 16 and a per-position jitter: distinct, and sparse
   enough (spread 16 > bits_max_spread) to stay in the array form. *)
let sparse_values lo n =
  List.init n (fun i ->
      let k = lo + i in
      Value.Int ((k * 16) + (k * 7 mod 8)))

(* A contiguous run: span = cardinality, so the set goes to bits. *)
let dense_values lo n = List.init n (fun i -> Value.Int (lo + i))

(* A/B pairs overlapping on half their elements. *)
let ab_pair shape n =
  let make lo = match shape with `Sparse -> sparse_values lo n | `Dense -> dense_values lo n in
  (make 0, make (n / 2))

(* --- timing ------------------------------------------------------------- *)

let time_ns iters f =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters

let shape_name = function `Sparse -> "sparse" | `Dense -> "dense"

let cards = [ 1_000; 10_000; 100_000 ]

let run_micro () =
  let claims = ref [] in
  Printf.printf "\n  raw kernel timings (ns/op; flat vs Set.Make reference)\n";
  Printf.printf "  %-22s %12s %12s %9s\n" "op" "flat" "reference" "speedup";
  List.iter
    (fun card ->
      let iters = max 3 (300_000 / card) in
      List.iter
        (fun shape ->
          let va, vb = ab_pair shape card in
          let tbl = Intern.create ~name:"x17" () in
          let fa = Item_set.of_list_in tbl va and fb = Item_set.of_list_in tbl vb in
          let ra = Item_set_ref.of_list va and rb = Item_set_ref.of_list vb in
          let ops =
            [
              ( "union",
                (fun () -> ignore (Item_set.union fa fb)),
                (fun () -> ignore (Item_set_ref.union ra rb)),
                Item_set.cardinal (Item_set.union fa fb),
                Item_set_ref.cardinal (Item_set_ref.union ra rb) );
              ( "inter",
                (fun () -> ignore (Item_set.inter fa fb)),
                (fun () -> ignore (Item_set_ref.inter ra rb)),
                Item_set.cardinal (Item_set.inter fa fb),
                Item_set_ref.cardinal (Item_set_ref.inter ra rb) );
              ( "diff",
                (fun () -> ignore (Item_set.diff fa fb)),
                (fun () -> ignore (Item_set_ref.diff ra rb)),
                Item_set.cardinal (Item_set.diff fa fb),
                Item_set_ref.cardinal (Item_set_ref.diff ra rb) );
              (* A true subset (A ∩ B ⊆ A) forces the kernel to verify
                 every element; the A ⊆ B case exits on the first gap. *)
              ( "subset",
                (let fsub = Item_set.inter fa fb in
                 fun () -> ignore (Item_set.subset fsub fa)),
                (let rsub = Item_set_ref.inter ra rb in
                 fun () -> ignore (Item_set_ref.subset rsub ra)),
                (if Item_set.subset (Item_set.inter fa fb) fa then 1 else 0),
                if Item_set_ref.subset (Item_set_ref.inter ra rb) ra then 1 else 0 );
            ]
          in
          List.iter
            (fun (op, flat, reference, flat_card, ref_card) ->
              let t_flat = time_ns iters flat in
              let t_ref = time_ns iters reference in
              let speedup = t_ref /. Float.max t_flat 1.0 in
              let label = Printf.sprintf "%s %s @%d" op (shape_name shape) card in
              Printf.printf "  %-22s %12.0f %12.0f %8.1fx\n" label t_flat t_ref speedup;
              let agree = if flat_card = ref_card then "yes" else "NO" in
              let verdict =
                if card < 10_000 then "info"
                else if speedup >= 2.0 then "pass"
                else "FAIL"
              in
              claims := [ label; Tables.i flat_card; agree; verdict ] :: !claims)
            ops)
        [ `Sparse; `Dense ])
    cards;
  Tables.print ~title:"X17a: kernel claims (speedup >= 2x at card >= 10^4)"
    ~header:[ "kernel"; "result card"; "agrees"; "verdict" ]
    (List.rev !claims);
  List.for_all (fun row -> match row with [ _; _; a; v ] -> a = "yes" && v <> "FAIL" | _ -> false)
    !claims

(* --- probe and construction (informational) ----------------------------- *)

let probe_schema =
  Schema.create_exn ~merge:"M" [ ("M", Value.Tint); ("A", Value.Tint) ]

let check_ok = function Ok v -> v | Error msg -> failwith msg

let run_probe () =
  let rows = ref [] in
  List.iter
    (fun card ->
      let tbl = Intern.create ~name:"x17-probe" () in
      let relation =
        check_ok
          (Relation.of_rows ~name:"R" ~intern:tbl probe_schema
             (List.init card (fun i -> [ Value.Int (i * 2); Value.Int (i mod 100) ])))
      in
      (* Half the probes hit the relation's id space. *)
      let probe = Item_set.of_list_in tbl (List.init (card / 2) (fun i -> Value.Int i)) in
      let p tuple = match Tuple.get tuple 1 with Value.Int a -> a < 50 | _ -> false in
      let iters = max 3 (100_000 / card) in
      let t_fast = time_ns iters (fun () -> ignore (Relation.semijoin_items relation p probe)) in
      let t_value =
        time_ns iters (fun () ->
            ignore
              (Item_set.filter
                 (fun item -> List.exists p (Relation.tuples_of_item relation item))
                 probe))
      in
      let answer = Relation.semijoin_items relation p probe in
      Printf.printf "  %-22s %12.0f %12.0f %8.1fx\n"
        (Printf.sprintf "probe @%d" card)
        t_fast t_value (t_value /. Float.max t_fast 1.0);
      let t_build =
        time_ns iters (fun () -> ignore (Item_set.of_list_in tbl (dense_values 0 card)))
      in
      Printf.printf "  %-22s %12.0f (of_list, dense)\n"
        (Printf.sprintf "of_list @%d" card)
        t_build;
      rows := [ Printf.sprintf "probe @%d" card; Tables.i (Item_set.cardinal answer) ] :: !rows)
    cards;
  Tables.print ~title:"X17b: probe answers (id-keyed semijoin index)"
    ~header:[ "probe"; "answer card" ] (List.rev !rows)

(* --- macro: x15/x16-style end-to-end ------------------------------------ *)

let macro_instance =
  lazy
    (Workload.generate
       {
         Workload.default_spec with
         Workload.n_sources = 6;
         universe = 4000;
         tuples_per_source = (400, 700);
         selectivities = [| 0.05; 0.25; 0.4 |];
         seed = 1717;
       })

let run_macro () =
  let instance = Lazy.force macro_instance in
  let t0 = Unix.gettimeofday () in
  let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let report concurrency =
    match
      Mediator.run
        ~config:
          {
            Mediator.Config.default with
            Mediator.Config.algo = Optimizer.Sja_plus;
            concurrency;
          }
        mediator instance.Workload.query
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let seq = report `Seq in
  let par = report `Par in
  if not (Item_set.equal seq.Mediator.answer par.Mediator.answer) then
    failwith "x17 macro: concurrent executor changed the answer";
  (* x16-style: a serving drain over the same sources. *)
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  let optimized = Optimizer.optimize Optimizer.Sja_plus env in
  let server = Serve.create ~policy:Serve.Fair_share ~cache_ttl:500.0 instance.Workload.sources in
  let job =
    {
      Serve.plan = optimized.Optimized.plan;
      conds = env.Opt_env.conds;
      tenant = "t";
      priority = 0;
      est_cost = optimized.Optimized.est_cost;
      deadline = None;
      label = "";
    }
  in
  Driver.open_loop server ~prng:(Prng.create 4242) ~rate:0.002 ~count:120 (fun _ -> job);
  Serve.drain server;
  let stats = Serve.stats server in
  let wall = Unix.gettimeofday () -. t0 in
  Printf.printf "  macro wall-clock: %.2fs (not recorded)\n" wall;
  Tables.print ~title:"X17c: end-to-end answers on the flat data plane"
    ~header:[ "scenario"; "answer card"; "cost"; "completed" ]
    [
      [
        "x15-style sja+ seq";
        Tables.i (Item_set.cardinal seq.Mediator.answer);
        Tables.f1 seq.Mediator.actual_cost;
        "1";
      ];
      [
        "x15-style sja+ par";
        Tables.i (Item_set.cardinal par.Mediator.answer);
        Tables.f1 par.Mediator.actual_cost;
        "1";
      ];
      [
        "x16-style fair drain";
        (match Serve.completions server with
        | c :: _ -> (
          match c.Serve.c_answer with
          | Some answer -> Tables.i (Item_set.cardinal answer)
          | None -> "failed")
        | [] -> "none");
        Tables.f1
          (List.fold_left (fun acc c -> acc +. c.Serve.c_cost) 0.0 (Serve.completions server));
        Tables.i stats.Serve.completed;
      ];
    ]

let run () =
  let ok = run_micro () in
  run_probe ();
  run_macro ();
  if not ok then begin
    Printf.printf "\nX17: kernel claims FAILED\n";
    exit 1
  end
