(* X1 — Figures 1 and 2: the worked examples as executable artifacts.

   (a) The Figure 1 DMV instance: run the mediator end to end and check
       the answer is {J55, T21}.
   (b) A 3-condition, 2-source world in the shape of Figure 2: build the
       figure's filter, semijoin and semijoin-adaptive plans and price
       them with the optimizer's estimator, then execute them. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let fig2_instance () =
  Workload.generate
    {
      Workload.default_spec with
      Workload.n_sources = 2;
      universe = 1500;
      tuples_per_source = (400, 500);
      selectivities = [| 0.05; 0.2; 0.4 |];
      seed = 1;
    }

let plan_of_decisions instance decisions =
  let m = Fusion_query.Query.m instance.Workload.query in
  ignore m;
  Builder.round_shaped ~ordering:[| 0; 1; 2 |] ~decisions

let run () =
  (* (a) Figure 1 *)
  let fig1 = Workload.fig1 () in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list fig1.Workload.sources) in
  let report =
    match Fusion_mediator.Mediator.run
      ~config:
        {
          Fusion_mediator.Mediator.Config.default with
          Fusion_mediator.Mediator.Config.algo = Optimizer.Sja;
        }
      mediator fig1.Workload.query with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  Printf.printf "\n== X1a: Figure 1 (DMV example) ==\n";
  Format.printf "answer: %a (expected {J55, T21})@."
    Fusion_data.Item_set.pp report.Fusion_mediator.Mediator.answer;
  (* (b) Figure 2 *)
  let instance = fig2_instance () in
  let sel = Plan.By_select and sjq = Plan.By_semijoin in
  let plans =
    [
      ("filter (Fig 2a)", plan_of_decisions instance [| [| sel; sel |]; [| sel; sel |]; [| sel; sel |] |]);
      ("semijoin (Fig 2b)", plan_of_decisions instance [| [| sel; sel |]; [| sjq; sjq |]; [| sel; sel |] |]);
      ("adaptive (Fig 2c)", plan_of_decisions instance [| [| sel; sel |]; [| sjq; sel |]; [| sel; sel |] |]);
    ]
  in
  let env = Runner.env_of instance in
  let rows =
    List.map
      (fun (name, plan) ->
        let est =
          (Plan_cost.estimate ~model:env.Opt_env.model ~est:env.Opt_env.est
             ~sources:env.Opt_env.sources ~conds:env.Opt_env.conds plan)
            .Plan_cost.total
        in
        let result = Runner.execute instance plan in
        [
          name;
          Tables.f1 est;
          Tables.f1 result.Exec.total_cost;
          Tables.i (Fusion_data.Item_set.cardinal result.Exec.answer);
        ])
      plans
  in
  Tables.print ~title:"X1b: the three Figure 2 plans (m=3, n=2)"
    ~header:[ "plan"; "est. cost"; "actual cost"; "answers" ]
    rows;
  (* Show the adaptive plan in the paper's notation. *)
  let _, adaptive = List.nth plans 2 in
  Format.printf "@.semijoin-adaptive plan (Fig 2c shape):@.%a@."
    (Plan.pp ?source_name:None) adaptive
