(* X22 — the columnar data plane and compiled plans, measured.

   Micro: selection scans and semijoin probes over one relation, three
   engines deep — the compiled column scan (Cond_vec, what sources and
   Plan_compile run), the hoisted row predicate (Cond.compile once,
   then per-tuple application: the interpreted executor's path), and
   the naive per-tuple Cond.eval closure (the pre-hoisting historical
   path). All three must agree on every answer; the recorded claim is
   the tentpole's bar: at cardinality >= 10^4 the compiled scan beats
   the hoisted row path by >= 5x on selection shapes. Smaller
   cardinalities and the semijoin probes are printed for context.

   Macro: an x16-shape serving drain on the columnar plane (recorded
   cells are simulation-deterministic: completions, costs, answer
   cardinality — drift here means the data plane changed answers), and
   the steady-state loop the PR is named for: one warm session query
   re-executed back to back through the interpreted executor and
   through its compiled form. Answers must stay equal run for run, and
   the compiled loop must allocate <= 10% of the interpreter's minor
   words (it skips env hashing, step lists and per-lookup cache-key
   rendering; the allocation that remains is the answer sets both
   engines share). Allocation counts are exact for a given binary, so
   the verdict is stable the way x17's kernel claims are; raw words
   and wall times are printed, never recorded. *)

open Fusion_data
open Fusion_cond
open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Serve = Fusion_serve.Server
module Driver = Fusion_serve.Driver
module Prng = Fusion_stats.Prng

(* Best of three batches: scheduler noise only ever slows a batch down,
   so the minimum is the stablest estimate for a pass/FAIL verdict. *)
let time_ns iters f =
  let batch () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Sys.opaque_identity (f ()))
    done;
    1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters
  in
  let t1 = batch () in
  let t2 = batch () in
  let t3 = batch () in
  Float.min t1 (Float.min t2 t3)

(* --- micro: one relation, three engines --------------------------------- *)

let micro_schema =
  Schema.create_exn ~merge:"M"
    [ ("M", Value.Tint); ("A", Value.Tint); ("B", Value.Tstring) ]

let check_ok = function Ok v -> v | Error msg -> failwith msg

(* ~8 rows per item, values deterministic; a few nulls so the bitmap
   path is on the scanned data, not just in the type. *)
let micro_relation tbl card =
  check_ok
    (Relation.of_rows ~name:"R" ~intern:tbl micro_schema
       (List.init card (fun i ->
            [
              Value.Int (i / 8);
              (if i mod 97 = 0 then Value.Null else Value.Int (i mod 1000));
              Value.String (if i mod 3 = 0 then "abc" else "xyz");
            ])))

let micro_conds =
  [
    ("A < 300", Cond.Cmp ("A", Lt, Value.Int 300));
    ("A = 417", Cond.Cmp ("A", Eq, Value.Int 417));
    ( "between+prefix",
      Cond.And
        (Cond.Between ("A", Value.Int 100, Value.Int 700), Cond.Prefix ("B", "ab")) );
    ( "disjunction+null",
      Cond.Or (Cond.Is_null "A", Cond.Cmp ("A", Ge, Value.Int 900)) );
  ]

let cards = [ 1_000; 10_000; 100_000 ]

let run_micro () =
  let claims = ref [] in
  Printf.printf
    "\n  selection scans (ns/op; compiled columns vs hoisted rows vs naive eval)\n";
  Printf.printf "  %-26s %12s %12s %12s %9s\n" "cond" "compiled" "hoisted" "naive"
    "speedup";
  List.iter
    (fun card ->
      let tbl = Intern.create ~name:"x22" () in
      let rel = micro_relation tbl card in
      let iters = max 3 (2_000_000 / card) in
      List.iter
        (fun (label, cond) ->
          let vec = Cond_vec.compile rel cond in
          let hoisted = Cond.compile micro_schema cond in
          let t_compiled = time_ns iters (fun () -> Cond_vec.select_items vec) in
          let t_hoisted =
            time_ns iters (fun () -> Relation.select_items rel hoisted)
          in
          let t_naive =
            time_ns iters (fun () ->
                Relation.select_items rel (fun t -> Cond.eval micro_schema cond t))
          in
          let a_compiled = Cond_vec.select_items vec in
          let a_hoisted = Relation.select_items rel hoisted in
          let a_naive =
            Relation.select_items rel (fun t -> Cond.eval micro_schema cond t)
          in
          let agree =
            if Item_set.equal a_compiled a_hoisted && Item_set.equal a_compiled a_naive
            then "yes"
            else "NO"
          in
          let speedup = t_hoisted /. Float.max t_compiled 1.0 in
          let row_label = Printf.sprintf "%s @%d" label card in
          Printf.printf "  %-26s %12.0f %12.0f %12.0f %8.1fx\n" row_label t_compiled
            t_hoisted t_naive speedup;
          let verdict =
            if card < 10_000 then "info"
            else if speedup >= 5.0 then "pass"
            else "FAIL"
          in
          claims :=
            [ row_label; Tables.i (Item_set.cardinal a_compiled); agree; verdict ]
            :: !claims)
        micro_conds)
    cards;
  Tables.print ~title:"X22a: scan claims (compiled >= 5x hoisted at card >= 10^4)"
    ~header:[ "scan"; "answer card"; "agrees"; "verdict" ]
    (List.rev !claims);
  List.for_all
    (fun row -> match row with [ _; _; a; v ] -> a = "yes" && v <> "FAIL" | _ -> false)
    !claims

let run_semijoin () =
  let rows = ref [] in
  Printf.printf "\n  semijoin probes (ns/op; compiled index probe vs hoisted rows)\n";
  List.iter
    (fun card ->
      let tbl = Intern.create ~name:"x22-sj" () in
      let rel = micro_relation tbl card in
      let cond = Cond.Cmp ("A", Lt, Value.Int 500) in
      let vec = Cond_vec.compile rel cond in
      let hoisted = Cond.compile micro_schema cond in
      (* Half the probes live in the relation's item space. *)
      let probe =
        Item_set.of_list_in tbl (List.init (card / 8) (fun i -> Value.Int (i * 2)))
      in
      let iters = max 3 (1_000_000 / card) in
      let t_compiled = time_ns iters (fun () -> Cond_vec.semijoin_items vec probe) in
      let t_hoisted =
        time_ns iters (fun () -> Relation.semijoin_items rel hoisted probe)
      in
      let a_compiled = Cond_vec.semijoin_items vec probe in
      let a_hoisted = Relation.semijoin_items rel hoisted probe in
      let agree = if Item_set.equal a_compiled a_hoisted then "yes" else "NO" in
      Printf.printf "  %-26s %12.0f %12.0f %8.1fx\n"
        (Printf.sprintf "semijoin @%d" card)
        t_compiled t_hoisted
        (t_hoisted /. Float.max t_compiled 1.0);
      rows :=
        [
          Printf.sprintf "semijoin @%d" card;
          Tables.i (Item_set.cardinal a_compiled);
          agree;
        ]
        :: !rows)
    cards;
  Tables.print ~title:"X22b: semijoin probe answers (compiled index probe)"
    ~header:[ "probe"; "answer card"; "agrees" ]
    (List.rev !rows);
  List.for_all (fun row -> match row with [ _; _; a ] -> a = "yes" | _ -> false) !rows

(* --- macro: serving drain + the steady-state allocation loop ------------ *)

let macro_spec =
  {
    Workload.default_spec with
    Workload.n_sources = 6;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.05; 0.25; 0.4 |];
    seed = 2222;
  }

let run_macro () =
  let instance = Workload.generate macro_spec in
  let env = Opt_env.create instance.Workload.sources instance.Workload.query in
  let optimized = Optimizer.optimize Optimizer.Sja_plus env in
  let plan = optimized.Optimized.plan in
  let conds = env.Opt_env.conds in

  (* x16-shape drain: the serving layer compiles each admitted plan and
     reuses it across the whole replay. *)
  let server =
    Serve.create ~policy:Serve.Fair_share ~cache_ttl:500.0 instance.Workload.sources
  in
  let job =
    {
      Serve.plan;
      conds;
      tenant = "t";
      priority = 0;
      est_cost = optimized.Optimized.est_cost;
      deadline = None;
      label = "";
    }
  in
  Driver.open_loop server ~prng:(Prng.create 4242) ~rate:0.002 ~count:120 (fun _ -> job);
  Serve.drain server;
  let stats = Serve.stats server in
  let drain_answer =
    match Serve.completions server with
    | c :: _ -> (
      match c.Serve.c_answer with
      | Some answer -> Tables.i (Item_set.cardinal answer)
      | None -> "failed")
    | [] -> "none"
  in
  let drain_cost =
    List.fold_left (fun acc c -> acc +. c.Serve.c_cost) 0.0 (Serve.completions server)
  in

  (* Steady state, the gated shape: a Local_select-heavy plan (the
     shape the columnar plane targets — the interpreter materializes a
     boxed row per tuple per run, the compiled scan touches int columns
     and allocates only the answer). Re-executed back to back, answers
     must stay equal run for run and the compiled loop must allocate
     <= 10% of the interpreter's minor words. *)
  let rounds = 200 in
  let minor_words f =
    for _ = 1 to 3 do
      ignore (Sys.opaque_identity (f ()))
    done;
    let s0 = Gc.quick_stat () in
    for _ = 1 to rounds do
      ignore (Sys.opaque_identity (f ()))
    done;
    let s1 = Gc.quick_stat () in
    (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int rounds
  in
  let local_plan =
    Plan.create
      ~ops:
        [
          Op.Load { dst = "L1"; source = 0 };
          Op.Local_select { dst = "X1"; cond = 0; input = "L1" };
          Op.Load { dst = "L2"; source = 1 };
          Op.Local_select { dst = "X2"; cond = 1; input = "L2" };
          Op.Union { dst = "OUT"; args = [ "X1"; "X2" ] };
        ]
      ~output:"OUT"
  in
  let lp =
    check_ok (Plan_compile.compile ~sources:instance.Workload.sources ~conds local_plan)
  in
  let interp_local () =
    Array.iter Source.reset_meter instance.Workload.sources;
    (Exec.run ~sources:instance.Workload.sources ~conds local_plan).Exec.answer
  in
  let compiled_local () =
    Array.iter Source.reset_meter instance.Workload.sources;
    Plan_compile.answer lp
  in
  let a_interp = interp_local () and a_compiled = compiled_local () in
  let w_interp = minor_words interp_local in
  let w_compiled = minor_words compiled_local in
  let ratio = w_compiled /. Float.max w_interp 1.0 in
  let answers_agree =
    Item_set.equal a_interp a_compiled
    && Item_set.equal (interp_local ()) a_interp
    && Item_set.equal (compiled_local ()) a_interp
  in
  Printf.printf
    "\n  steady state (local-select shape): %.0f minor words/run interpreted, %.0f compiled (ratio %.3f)\n"
    w_interp w_compiled ratio;
  let alloc_verdict =
    if not answers_agree then "FAIL"
    else if ratio <= 0.10 then "pass"
    else "FAIL"
  in
  (* The sq/sjq session shape for context: both engines share the
     answer-set algebra (the intersections and differences ARE the
     work), so the gap here is the interpreter's per-run env hashing,
     key rendering and step lists — real but bounded by that shared
     floor. Printed, not gated. *)
  let cp = check_ok (Plan_compile.compile ~sources:instance.Workload.sources ~conds plan) in
  let ci = Exec.Query_cache.create () and cc = Exec.Query_cache.create () in
  let interp_session () =
    Array.iter Source.reset_meter instance.Workload.sources;
    (Exec.run ~cache:ci ~sources:instance.Workload.sources ~conds plan).Exec.answer
  in
  let compiled_session () =
    Array.iter Source.reset_meter instance.Workload.sources;
    Plan_compile.answer ~cache:cc cp
  in
  let ws_interp = minor_words interp_session in
  let ws_compiled = minor_words compiled_session in
  let session_agree = Item_set.equal (interp_session ()) (compiled_session ()) in
  Printf.printf
    "  steady state (warm sq/sjq session): %.0f words/run interpreted, %.0f compiled (ratio %.3f)\n"
    ws_interp ws_compiled
    (ws_compiled /. Float.max ws_interp 1.0);
  Tables.print ~title:"X22c: columnar serving loop"
    ~header:[ "scenario"; "answer card"; "cost"; "completed"; "verdict" ]
    [
      [
        "x16-style fair drain";
        drain_answer;
        Tables.f1 drain_cost;
        Tables.i stats.Serve.completed;
        "info";
      ];
      [
        "steady-state alloc <= 10% of interpreted";
        Tables.i (Item_set.cardinal a_compiled);
        Tables.f1 0.0;
        Tables.i rounds;
        alloc_verdict;
      ];
      [
        "warm sq/sjq session answers agree";
        Tables.i (Item_set.cardinal (compiled_session ()));
        Tables.f1 optimized.Optimized.est_cost;
        Tables.i rounds;
        (if session_agree then "pass" else "FAIL");
      ];
    ];
  alloc_verdict = "pass" && session_agree

let run () =
  let ok_micro = run_micro () in
  let ok_sj = run_semijoin () in
  let ok_macro = run_macro () in
  if not (ok_micro && ok_sj && ok_macro) then begin
    Printf.printf "\nX22: columnar claims FAILED\n";
    exit 1
  end
