(* Executable claims: every headline finding of EXPERIMENTS.md as a
   pass/fail assertion over quick, deterministic workloads. Run with

     dune exec bench/main.exe -- check

   Exit code 1 if any claim fails — the reproduction's regression gate. *)

open Fusion_core
open Fusion_plan
module Workload = Fusion_workload.Workload

let env_of ?stats (instance : Workload.instance) =
  Opt_env.create ?stats ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

let base_spec seed =
  {
    Workload.default_spec with
    Workload.n_sources = 8;
    universe = 4000;
    tuples_per_source = (400, 700);
    selectivities = [| 0.02; 0.3; 0.4 |];
    heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.3 };
    seed;
  }

let est_cost algo instance = (Optimizer.optimize algo (env_of instance)).Optimized.est_cost

let actual algo instance =
  let optimized = Optimizer.optimize algo (env_of instance) in
  Runner.actual_cost instance optimized.Optimized.plan

let check_fig1 () =
  let instance = Workload.fig1 () in
  let answer =
    Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
  in
  let expected =
    Fusion_data.Item_set.of_list [ Fusion_data.Value.String "J55"; Fusion_data.Value.String "T21" ]
  in
  ( Fusion_data.Item_set.equal answer expected,
    Format.asprintf "answer %a" Fusion_data.Item_set.pp answer )

let check_dominance () =
  let ok = ref true and detail = Buffer.create 64 in
  List.iter
    (fun seed ->
      let instance = Workload.generate (base_spec seed) in
      let filter = est_cost Optimizer.Filter instance in
      let sj = est_cost Optimizer.Sj instance in
      let sja = est_cost Optimizer.Sja instance in
      if not (sja <= sj +. 1e-6 && sj <= filter +. 1e-6) then ok := false;
      Buffer.add_string detail (Printf.sprintf "[%d: %.0f≤%.0f≤%.0f] " seed sja sj filter))
    Runner.seeds;
  (!ok, Buffer.contents detail)

let check_sja_plus () =
  let ok = ref true and detail = Buffer.create 64 in
  List.iter
    (fun seed ->
      let instance = Workload.generate (base_spec seed) in
      let sja = actual Optimizer.Sja instance in
      let plus = actual Optimizer.Sja_plus instance in
      if plus > sja +. 1e-6 then ok := false;
      Buffer.add_string detail (Printf.sprintf "[%d: %.0f≤%.0f] " seed plus sja))
    Runner.seeds;
  (!ok, Buffer.contents detail)

let check_heterogeneity_gap () =
  let spec =
    { (base_spec 101) with
      Workload.n_sources = 10;
      heterogeneity = { Workload.homogeneous with Workload.no_semijoin = 0.5 } }
  in
  let instance = Workload.generate spec in
  let sj = actual Optimizer.Sj instance and sja = actual Optimizer.Sja instance in
  (sj >= 1.15 *. sja, Printf.sprintf "sj/sja = %.2f (want ≥ 1.15)" (sj /. sja))

let check_crossover () =
  let with_sel1 sel1 =
    Workload.generate { (base_spec 101) with Workload.selectivities = [| sel1; 0.3; 0.4 |];
                        heterogeneity = Workload.homogeneous }
  in
  let selective = with_sel1 0.01 in
  let unselective = with_sel1 0.4 in
  let ratio_selective = actual Optimizer.Filter selective /. actual Optimizer.Sja selective in
  let ratio_unselective =
    actual Optimizer.Filter unselective /. actual Optimizer.Sja unselective
  in
  ( ratio_selective >= 1.5 && ratio_unselective <= 1.15,
    Printf.sprintf "filter/sja: %.2f at sel=0.01 (want ≥1.5), %.2f at sel=0.4 (want ≤1.15)"
      ratio_selective ratio_unselective )

let check_loading () =
  let spec =
    { (base_spec 101) with
      Workload.universe = 300; tuples_per_source = (4, 10);
      selectivities = [| 0.3; 0.4; 0.5 |]; n_sources = 4;
      heterogeneity = Workload.homogeneous }
  in
  let instance = Workload.generate spec in
  let sja = actual Optimizer.Sja instance and plus = actual Optimizer.Sja_plus instance in
  (sja >= 1.2 *. plus, Printf.sprintf "sja/sja+ = %.2f on tiny sources (want ≥ 1.2)" (sja /. plus))

let check_linear_in_n () =
  let time n =
    let spec = { (base_spec 7) with Workload.n_sources = n; tuples_per_source = (50, 80) } in
    let env = env_of (Workload.generate spec) in
    ignore (Optimizer.optimize Optimizer.Sja env);
    Runner.time_median (fun () -> Optimizer.optimize Optimizer.Sja env)
  in
  let ratio = time 128 /. time 16 in
  (ratio >= 3.0 && ratio <= 24.0, Printf.sprintf "t(128)/t(16) = %.1f (want ~8, accept 3-24)" ratio)

let check_brute_force () =
  let ok = ref true and detail = Buffer.create 64 in
  List.iter
    (fun seed ->
      let spec =
        { Workload.default_spec with
          Workload.n_sources = 3; universe = 200; tuples_per_source = (20, 60);
          selectivities = [| 0.1; 0.3 |]; seed }
      in
      let env = env_of (Workload.generate spec) in
      let sja = (Algorithms.sja env).Optimized.est_cost in
      let _, best = Brute.best_estimated env in
      if Float.abs (sja -. best) > 1e-6 then ok := false;
      Buffer.add_string detail (Printf.sprintf "[%d: %.1f=%.1f] " seed sja best))
    Runner.seeds;
  (!ok, Buffer.contents detail)

let check_two_phase () =
  let instance = Workload.generate { (base_spec 101) with Workload.selectivities = [| 0.05; 0.3 |] } in
  let widened =
    Array.map
      (fun s ->
        Fusion_source.Source.create
          ~capability:(Fusion_source.Source.capability s)
          ~profile:(Fusion_net.Profile.make ~recv_per_tuple:32.0 ())
          (Fusion_source.Source.relation s))
      instance.Workload.sources
  in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list widened) in
  match Fusion_mediator.Mediator.two_phase mediator instance.Workload.query with
  | Error msg -> (false, msg)
  | Ok (report, records) ->
    let two = report.Fusion_mediator.Mediator.actual_cost +. records.Fusion_mediator.Mediator.fetch_cost in
    let single = Fusion_mediator.Mediator.single_phase_cost mediator instance.Workload.query in
    (single >= 3.0 *. two, Printf.sprintf "single/two = %.2f at width 32 (want ≥ 3)" (single /. two))

let check_adaptive () =
  let spec =
    { (base_spec 0) with
      Workload.n_sources = 32; universe = 1200; item_skew = 1.1; entity_correlation = 0.9 }
  in
  let instance = Workload.generate spec in
  let sja = actual Optimizer.Sja instance in
  let adaptive = (Adaptive.run (env_of instance)).Adaptive.total_cost in
  (adaptive <= sja +. 1e-6, Printf.sprintf "adaptive %.0f ≤ sja %.0f" adaptive sja)

let check_search_variants () =
  let instance = Workload.generate (base_spec 101) in
  let env = env_of instance in
  let sja = (Algorithms.sja env).Optimized.est_cost in
  let bb = (Branch_bound.sja_bb env).Optimized.est_cost in
  let greedy = (Algorithms.greedy_sja env).Optimized.est_cost in
  let hill = (Iterative.sja_hill_climb env).Optimized.est_cost in
  ( Float.abs (bb -. sja) <= 1e-6 && hill <= greedy +. 1e-6 && hill >= sja -. 1e-6,
    Printf.sprintf "sja %.1f = b&b %.1f; sja ≤ hill %.1f ≤ greedy %.1f" sja bb hill greedy )

let check_cache () =
  let instance = Workload.generate (base_spec 101) in
  let mediator = Fusion_mediator.Mediator.create_exn (Array.to_list instance.Workload.sources) in
  let cache = Exec.Query_cache.create () in
  let run () =
    match Fusion_mediator.Mediator.run
      ~config:
        {
          Fusion_mediator.Mediator.Config.default with
          Fusion_mediator.Mediator.Config.algo = Optimizer.Sja;
          cache = Some cache;
        }
      mediator instance.Workload.query with
    | Ok r -> r.Fusion_mediator.Mediator.actual_cost
    | Error msg -> failwith msg
  in
  let first = run () in
  let second = run () in
  (second <= 0.01 *. first, Printf.sprintf "replay %.1f after first run %.1f (want ~0)" second first)

let check_calibration () =
  let instance = Workload.generate (base_spec 303) in
  let conds = Array.to_list (Fusion_query.Query.conditions instance.Workload.query) in
  let fitted =
    Array.map
      (fun s ->
        match Fusion_cost.Calibration.fit_source s conds with
        | Ok p ->
          Fusion_source.Source.reset_meter s;
          Fusion_source.Source.create ~capability:(Fusion_source.Source.capability s)
            ~profile:p (Fusion_source.Source.relation s)
        | Error msg -> failwith msg)
      instance.Workload.sources
  in
  let plan_from srcs =
    let env = Opt_env.create ~universe:instance.Workload.spec.Workload.universe srcs
        instance.Workload.query in
    (Optimizer.optimize Optimizer.Sja env).Optimized.plan
  in
  let cost plan = Runner.actual_cost instance plan in
  let oracle = cost (plan_from instance.Workload.sources) in
  let calibrated = cost (plan_from fitted) in
  (calibrated <= 1.02 *. oracle, Printf.sprintf "calibrated %.1f vs oracle %.1f (want ≤ +2%%)" calibrated oracle)

let check_faults () =
  let instance = Workload.generate (base_spec 101) in
  Array.iteri
    (fun j s ->
      Fusion_source.Source.set_fault s
        (Some { Fusion_source.Source.probability = 0.2;
                prng = Fusion_stats.Prng.create (7 + (31 * j)) }))
    instance.Workload.sources;
  let env = env_of instance in
  let plan = (Optimizer.optimize Optimizer.Sja env).Optimized.plan in
  Array.iter Fusion_source.Source.reset_meter instance.Workload.sources;
  let result =
    Exec.run
      ~policy:{ Exec.retries = 500; on_exhausted = `Fail }
      ~sources:instance.Workload.sources ~conds:env.Opt_env.conds plan
  in
  Array.iter (fun s -> Fusion_source.Source.set_fault s None) instance.Workload.sources;
  let truth =
    Reference.answer_query ~sources:instance.Workload.sources instance.Workload.query
  in
  ( (not result.Exec.partial) && Fusion_data.Item_set.equal result.Exec.answer truth
    && result.Exec.failures > 0,
    Printf.sprintf "%d timeouts retried, answer exact" result.Exec.failures )

let check_robust_interval () =
  let instance = Workload.generate (base_spec 202) in
  let env = env_of instance in
  let sja = Algorithms.sja env in
  match Fusion_plan.Plan.rounds ~n:(Opt_env.n env) sja.Optimized.plan with
  | Error msg -> (false, msg)
  | Ok rs ->
    let ordering = Array.of_list (List.map (fun r -> r.Fusion_plan.Plan.cond) rs) in
    let decisions = Array.of_list (List.map (fun r -> r.Fusion_plan.Plan.actions) rs) in
    let interval = Robust.plan_cost_interval env ~uncertainty:0.5 ordering decisions in
    let actual = Runner.actual_cost instance sja.Optimized.plan in
    ( interval.Robust.lo <= actual +. 1e-6 && actual <= interval.Robust.hi +. 1e-6,
      Printf.sprintf "actual %.1f in [%.1f, %.1f]" actual interval.Robust.lo
        interval.Robust.hi )

let claims =
  [
    ("X1: Figure 1 answer is {J55, T21}", check_fig1);
    ("X2: est cost SJA ≤ SJ ≤ FILTER", check_dominance);
    ("X5: actual cost SJA+ ≤ SJA", check_sja_plus);
    ("X3: SJA ≥ 1.15x better under 50% heterogeneity", check_heterogeneity_gap);
    ("X4: crossover — semijoins win when c1 selective, not when loose", check_crossover);
    ("X5b: loading wins ≥ 1.2x on tiny sources", check_loading);
    ("X6: SJA roughly linear in n", check_linear_in_n);
    ("X7: SJA equals brute-force optimum (m=2, n=3)", check_brute_force);
    ("X8: two-phase ≥ 3x cheaper at tuple width 32", check_two_phase);
    ("X9: adaptive ≤ static SJA under entity correlation", check_adaptive);
    ("X6d/X6e: b&b exact; sja ≤ hill ≤ greedy", check_search_variants);
    ("X11: cached replay is (nearly) free", check_cache);
    ("X12: calibrated plans within 2% of oracle", check_calibration);
    ("X13: retries keep flaky federations exact", check_faults);
    ("X14: cost interval brackets the realized cost", check_robust_interval);
  ]

let run () =
  let failures = ref 0 in
  List.iter
    (fun (name, check) ->
      let passed, detail =
        try check () with exn -> (false, Printexc.to_string exn)
      in
      if not passed then incr failures;
      Printf.printf "%s %-60s %s\n%!" (if passed then "PASS" else "FAIL") name detail)
    claims;
  Printf.printf "\n%d/%d claims hold\n" (List.length claims - !failures) (List.length claims);
  if !failures > 0 then exit 1
