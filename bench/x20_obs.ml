(* X20 — the price of observability.

   The serving layer records counters, per-tenant sliding windows, and
   (optionally) slow-log entries on every submit/complete/shed event.
   The claim this experiment gates: with a metrics registry installed
   AND a zero-threshold slow log capturing every completion, an
   x16-style serving drain loses less than 5% throughput against the
   same drain with observability off (no registry installed, so every
   [Metrics.record] is a no-op).

   Recorded cells are simulation-deterministic (admission counts,
   registry series, slow-log entries) plus the overhead verdict.
   Timing follows x17's best-of noise discipline, adapted for a bar
   this tight: off/on measurements run as interleaved pairs (each
   several drains long), the overhead of each pair is its delta —
   pairing cancels slow drift like GC state and frequency scaling —
   and the verdict takes the cleanest (smallest) paired delta, the
   analogue of x17 timing each side at its best. Host contention can
   only inflate a pair, so the minimum over 7 pairs is the tightest
   upper bound on the intrinsic cost this box can give. Raw wall-clock
   numbers are printed but never recorded. *)

open Fusion_core
module Workload = Fusion_workload.Workload
module Prng = Fusion_stats.Prng
module Serve = Fusion_serve.Server
module Slow_log = Fusion_serve.Slow_log
module Metrics = Fusion_obs.Metrics
module Prom = Fusion_obs.Prom

let instance =
  lazy
    (Workload.generate
       {
         Workload.default_spec with
         Workload.n_sources = 5;
         universe = 2000;
         tuples_per_source = (300, 500);
         selectivities = [| 0.1; 0.3 |];
         seed = 2001;
       })

let optimize inst =
  let env = Opt_env.create inst.Workload.sources inst.Workload.query in
  (env, Optimizer.optimize Optimizer.Sja_plus env)

let job_of env (optimized : Optimized.t) ~tenant ~priority =
  {
    Serve.plan = optimized.Optimized.plan;
    conds = env.Opt_env.conds;
    tenant;
    priority;
    est_cost = optimized.Optimized.est_cost;
    deadline = None;
    label = "x20";
  }

(* The x16 shape scaled down: a heavy tenant past saturation plus two
   light tenants through the same window, drained to completion. *)
let drain_batch ?slow_log inst env optimized =
  let srv =
    Serve.create ~policy:Serve.Fair_share ~max_inflight:32 ~window:1e9 ?slow_log
      inst.Workload.sources
  in
  let est = Float.max 1.0 optimized.Optimized.est_cost in
  let submit_stream seed rate n tenant priority =
    let prng = Prng.create seed in
    let at = ref 0.0 in
    for _ = 1 to n do
      at := !at +. Prng.exponential prng rate;
      ignore (Serve.submit srv ~at:!at (job_of env optimized ~tenant ~priority))
    done
  in
  submit_stream 1 (4.0 /. est) 80 "heavy" 0;
  submit_stream 2 (0.5 /. est) 8 "light1" 1;
  submit_stream 3 (0.5 /. est) 8 "light2" 1;
  Serve.drain srv;
  srv

(* Only the numbers survive a measurement — retaining the servers
   (timelines, completions) across repeats would grow the live heap
   and slow every later run, biasing whichever side runs last. *)
type measured = {
  submitted : int;
  completed : int;
  shed : int;
  conserves : bool;
  samples : int;
  slow : int;
  wall : float;
}

let measure ~samples ~slow ~wall srv =
  let s = Serve.stats srv in
  {
    submitted = s.Serve.submitted;
    completed = s.Serve.completed;
    shed = s.Serve.shed;
    conserves = Serve.conservation_ok s;
    samples;
    slow;
    wall;
  }

(* Each measurement times [rounds] back-to-back drains (~100ms of
   work): a single drain is ~20ms, small enough that one scheduler
   preemption or major GC slice swings it past the 5% bar. *)
let rounds = 4

(* One measurement with observability off (no ambient registry): every
   Metrics.record call inside the serving layer is a no-op. *)
let run_off inst env optimized =
  let t0 = Unix.gettimeofday () in
  let srv = ref (drain_batch inst env optimized) in
  for _ = 2 to rounds do
    srv := drain_batch inst env optimized
  done;
  measure ~samples:0 ~slow:0 ~wall:(Unix.gettimeofday () -. t0) !srv

(* One measurement with the full observability surface: an installed
   registry, the per-tenant windows (always on), a slow log recording
   every completion, and a post-drain publish of the gauge view. *)
let run_on inst env optimized =
  let registry = Metrics.create () in
  let slow_log = Slow_log.create ~threshold:0.0 () in
  let t0 = Unix.gettimeofday () in
  let srv =
    Metrics.with_registry registry (fun () ->
        let srv = ref (drain_batch ~slow_log inst env optimized) in
        for _ = 2 to rounds do
          srv := drain_batch ~slow_log inst env optimized
        done;
        Serve.publish_metrics !srv;
        !srv)
  in
  let wall = Unix.gettimeofday () -. t0 in
  measure
    ~samples:(List.length (Metrics.snapshot registry))
    ~slow:(Slow_log.recorded slow_log) ~wall srv

let repeats = 7

let run () =
  let inst = Lazy.force instance in
  let env, optimized = optimize inst in
  (* Warm both paths once so neither side pays first-touch costs, then
     interleave off/on pairs so slow drift (GC state, frequency
     scaling) hits both sides alike. *)
  ignore (run_off inst env optimized);
  ignore (run_on inst env optimized);
  let pairs =
    List.init repeats (fun _ ->
        (run_off inst env optimized, run_on inst env optimized))
  in
  let offs = List.map fst pairs and ons = List.map snd pairs in
  let throughput (m : measured) =
    float_of_int (rounds * m.completed) /. m.wall
  in
  let best ms = List.fold_left (fun acc m -> Float.max acc (throughput m)) 0.0 ms in
  let off = List.hd offs and on = List.hd ons in
  (* Observability must not change what the server does — only record
     it. Any drift between the two admission rows fails the gate. *)
  Tables.print ~title:"x20: serving batch, observability off vs on"
    ~header:
      [ "config"; "submitted"; "completed"; "shed"; "conserves"; "series";
        "slow entries" ]
    (List.map
       (fun (name, m) ->
         [
           name; Tables.i m.submitted; Tables.i m.completed; Tables.i m.shed;
           (if m.conserves then "yes" else "NO"); Tables.i m.samples;
           Tables.i m.slow;
         ])
       [ ("off", off); ("on", on) ]);
  let best_off = best offs and best_on = best ons in
  let deltas =
    List.map
      (fun (moff, mon) ->
        (throughput moff -. throughput mon) /. throughput moff)
      pairs
  in
  let delta = List.fold_left Float.min infinity deltas in
  List.iteri
    (fun i (moff, mon) ->
      Printf.printf
        "  pair %d: off %.0f q/s (%.3fs), on %.0f q/s (%.3fs), delta %+.1f%%  [not recorded]\n"
        i (throughput moff) moff.wall (throughput mon) mon.wall
        (100.0 *. (throughput moff -. throughput mon) /. throughput moff))
    pairs;
  Printf.printf
    "  best-of-%d: off %.0f q/s, on %.0f q/s; cleanest paired overhead %.1f%%\n"
    repeats best_off best_on (100.0 *. delta);
  Tables.print ~title:"x20: observability overhead claim"
    ~header:[ "claim"; "verdict" ]
    [
      [
        "metrics + windows + slow log cost < 5% throughput";
        (if delta < 0.05 then "yes" else "FAIL");
      ];
    ]
