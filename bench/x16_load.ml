(* X16 — extension: multi-query serving under overload.

   One shared simulated network, many concurrent fusion queries
   (lib/serve). A heavy tenant floods the server well past saturation
   while two light tenants trickle; we compare scheduling policies on
   what each tenant actually gets. Goodput is SLO-goodput: completions
   that respond within a few multiples of a lone query's latency.
   Under FIFO the flood's requests queue ahead of everyone — a light
   query waits out the whole heavy backlog and blows its SLO. Fair
   share schedules the tenant that has consumed the least service
   first, so the light tenants ride through the flood.

   A second sweep drives offered load from half to 8x saturation with
   a response-time deadline on every query: admission control sheds
   queries whose deadline cannot survive the backlog, and shed rate /
   p99 are the operator-facing signals. Percentiles come from
   Obs.Summary; the run records Metrics counters and prints their
   Prometheus exposition. *)

open Fusion_core
module Workload = Fusion_workload.Workload
module Prng = Fusion_stats.Prng
module Serve = Fusion_serve.Server
module Summary = Fusion_obs.Summary
module Metrics = Fusion_obs.Metrics
module Prom = Fusion_obs.Prom

let instance =
  lazy
    (Workload.generate
       {
         Workload.default_spec with
         Workload.n_sources = 5;
         universe = 2000;
         tuples_per_source = (300, 500);
         selectivities = [| 0.1; 0.3 |];
         seed = 1606;
       })

let optimize inst =
  let env = Opt_env.create inst.Workload.sources inst.Workload.query in
  (env, Optimizer.optimize Optimizer.Sja_plus env)

let job_of ?deadline env (optimized : Optimized.t) ~tenant ~priority =
  {
    Serve.plan = optimized.Optimized.plan;
    conds = env.Opt_env.conds;
    tenant;
    priority;
    est_cost = optimized.Optimized.est_cost;
    deadline;
    label = "";
  }

(* Response time of the query with the whole network to itself — the
   yardstick for saturation and for the SLO. *)
let lone_latency inst env optimized =
  let srv = Serve.create inst.Workload.sources in
  ignore (Serve.submit srv ~at:0.0 (job_of env optimized ~tenant:"solo" ~priority:0));
  Serve.drain srv;
  match Serve.completions srv with
  | [ c ] -> c.Serve.c_response
  | _ -> failwith "x16: lone query did not complete"

(* One serving run: a heavy tenant flooding at [heavy_rate] arrivals
   per unit time plus two light tenants trickling through the same
   window, all Poisson, drained to completion. *)
let run_policy ~policy ~heavy_rate ~light_rate ~heavy_n ~light_n inst env optimized =
  let srv = Serve.create ~policy ~max_inflight:32 inst.Workload.sources in
  let submit_stream seed rate n tenant priority =
    let prng = Prng.create seed in
    let at = ref 0.0 in
    for _ = 1 to n do
      at := !at +. Prng.exponential prng rate;
      ignore (Serve.submit srv ~at:!at (job_of env optimized ~tenant ~priority))
    done
  in
  submit_stream 1 heavy_rate heavy_n "heavy" 0;
  submit_stream 2 light_rate light_n "light1" 1;
  submit_stream 3 light_rate light_n "light2" 1;
  Serve.drain srv;
  srv

(* Completions within the SLO, per tenant. *)
let on_time srv ~slo tenant =
  List.length
    (List.filter
       (fun (c : Serve.completion) ->
         c.Serve.c_job.Serve.tenant = tenant && c.Serve.c_response <= slo)
       (Serve.completions srv))

(* compare.exe keys rows by their first cell, so the label fuses
   policy and tenant. *)
let tenant_rows policy srv ~slo =
  List.map
    (fun (name, ts) ->
      let p = Summary.latency_percentiles ts.Serve.ts_summary in
      [
        Serve.policy_name policy ^ "/" ^ name;
        Tables.i ts.Serve.ts_submitted;
        Tables.i ts.Serve.ts_completed;
        Tables.i ts.Serve.ts_shed;
        Tables.i (on_time srv ~slo name);
        Tables.f1 p.Summary.p50;
        Tables.f1 p.Summary.p99;
      ])
    (Serve.tenants srv)

(* Share of a tenant's submissions that completed within the SLO. *)
let on_time_rate srv ~slo name =
  match List.assoc_opt name (Serve.tenants srv) with
  | Some ts ->
    float_of_int (on_time srv ~slo name)
    /. float_of_int (max 1 ts.Serve.ts_submitted)
  | None -> 0.0

let run () =
  let inst = Lazy.force instance in
  let env, optimized = optimize inst in
  let registry = Metrics.create () in
  Metrics.with_registry registry (fun () ->
      let base = lone_latency inst env optimized in
      let slo = 3.0 *. base in
      (* Saturation for one query stream: one arrival per lone-query
         service time. The heavy tenant offers 6x that; each light
         tenant offers half of it, so the trickle overlaps the
         flood. *)
      let saturation = 1.0 /. base in
      Printf.printf "  lone-query latency %.1f, SLO %.1f (3x)\n" base slo;
      let policies = Serve.all_policies in
      let runs =
        List.map
          (fun policy ->
            ( policy,
              run_policy ~policy ~heavy_rate:(6.0 *. saturation)
                ~light_rate:(saturation /. 2.0) ~heavy_n:60 ~light_n:8 inst env
                optimized ))
          policies
      in
      Tables.print ~title:"x16: per-tenant service under a heavy-tenant flood"
        ~header:
          [ "policy/tenant"; "submitted"; "completed"; "shed"; "on-time"; "p50";
            "p99" ]
        (List.concat_map (fun (policy, srv) -> tenant_rows policy srv ~slo) runs);
      (* The light tenants offer a small fraction of capacity, so any
         isolating policy should serve them near their lone-query
         latency no matter what the heavy tenant does. FIFO instead
         makes them wait out the flood's backlog. *)
      Tables.print
        ~title:"x16: tenant isolation (light tenants through the flood)"
        ~header:
          [ "policy"; "light on-time %"; "light p99 / lone"; "heavy on-time %" ]
        (List.map
           (fun (policy, srv) ->
             let p99 name =
               match List.assoc_opt name (Serve.tenants srv) with
               | Some ts ->
                 (Summary.latency_percentiles ts.Serve.ts_summary).Summary.p99
               | None -> 0.0
             in
             let light_rate =
               (on_time_rate srv ~slo "light1" +. on_time_rate srv ~slo "light2")
               /. 2.0
             in
             [
               Serve.policy_name policy;
               Tables.f1 (100.0 *. light_rate);
               Tables.f2 (Float.max (p99 "light1") (p99 "light2") /. base);
               Tables.f1 (100.0 *. on_time_rate srv ~slo "heavy");
             ])
           runs);
      (* Offered-load sweep under FIFO with a deadline on every query:
         admission control sheds what the backlog makes hopeless. *)
      let deadline = 6.0 *. base in
      Tables.print
        ~title:
          (Printf.sprintf
             "x16: load sweep under fifo (deadline %.0f, 32 in-flight cap)"
             deadline)
        ~header:
          [ "offered/saturation"; "submitted"; "completed"; "shed rate %"; "p50";
            "p99"; "makespan" ]
        (List.map
           (fun multiplier ->
             let srv =
               let s =
                 Serve.create ~policy:Serve.Fifo ~max_inflight:32
                   inst.Workload.sources
               in
               let prng = Prng.create 4 in
               let at = ref 0.0 in
               for _ = 1 to 60 do
                 at := !at +. Prng.exponential prng (multiplier *. saturation);
                 ignore
                   (Serve.submit s ~at:!at
                      (job_of ~deadline env optimized ~tenant:"t" ~priority:0))
               done;
               Serve.drain s;
               s
             in
             let stats = Serve.stats srv in
             assert (Serve.conservation_ok stats);
             let summary = Summary.create () in
             List.iter
               (fun (c : Serve.completion) ->
                 Summary.add summary ~cost:c.Serve.c_cost
                   ~response_time:c.Serve.c_response ())
               (Serve.completions srv);
             let p = Summary.latency_percentiles summary in
             [
               Tables.f2 multiplier;
               Tables.i stats.Serve.submitted;
               Tables.i stats.Serve.completed;
               Tables.f1
                 (100.0 *. float_of_int stats.Serve.shed
                  /. float_of_int stats.Serve.submitted);
               Tables.f1 p.Summary.p50;
               Tables.f1 p.Summary.p99;
               Tables.f1 (Serve.now srv);
             ])
           [ 0.5; 1.0; 2.0; 4.0; 8.0 ]));
  (* The counters the serving layer records, as a scraper would see
     them. *)
  let exposition = Prom.of_registry registry in
  let serve_lines =
    List.filter
      (fun line ->
        String.length line >= 12
        && line.[0] <> '#'
        && String.sub line 0 12 = "fusion_serve")
      (String.split_on_char '\n' exposition)
  in
  Printf.printf "\n  prometheus exposition: %d fusion_serve_* samples, e.g.\n"
    (List.length serve_lines);
  List.iteri
    (fun i line -> if i < 4 then Printf.printf "    %s\n" line)
    (List.sort compare serve_lines)
