(* Aligned-table printing for the experiment harness. *)

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    (String.lowercase_ascii title)

(* With FUSION_BENCH_CSV=<dir>, every printed table is also written as
   <dir>/<slug-of-title>.csv for plotting. *)
let write_csv ~title ~header rows =
  match Sys.getenv_opt "FUSION_BENCH_CSV" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (String.sub (slug title) 0 (min 60 (String.length (slug title))) ^ ".csv") in
    Out_channel.with_open_text path (fun oc ->
        List.iter
          (fun row -> Out_channel.output_string oc (String.concat "," row ^ "\n"))
          (header :: rows))

(* Every printed table is also recorded here; [main] writes the lot as
   one JSON file when FUSION_BENCH_JSON=<file> is set, and
   bench/compare.exe diffs two such files. *)
let recorded : (string * string list * string list list) list ref = ref []

let results_json () =
  let module J = Fusion_obs.Json in
  let table (title, header, rows) =
    J.Obj
      [
        ("title", J.Str title);
        ("header", J.List (List.map (fun h -> J.Str h) header));
        ( "rows",
          J.List
            (List.map (fun row -> J.List (List.map (fun c -> J.Str c) row)) rows) );
      ]
  in
  J.Obj [ ("tables", J.List (List.map table (List.rev !recorded))) ]

let print ~title ~header rows =
  recorded := (title, header, rows) :: !recorded;
  write_csv ~title ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Printf.printf "%-*s" w cell else Printf.printf "  %*s" w cell)
      row;
    print_newline ()
  in
  Printf.printf "\n== %s ==\n" title;
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let i v = string_of_int v

let ratio a b = if b = 0.0 then "n/a" else f2 (a /. b)
