(* X19 — extension: the runtime API and its domains backend.

   PR 7 re-routed every executor through one request-dispatch
   signature (Fusion_rt.Runtime) with two backends: the discrete-event
   simulator (the oracle) and an effects-based fibre scheduler over an
   OCaml 5 domain pool with real OS concurrency. Two questions:

   1. Is the domains backend correct?  Answers, failure counts and
      total work must equal the sequential executor's on the same
      sources — concurrency may only change the clock.
   2. Does it scale?  The same served query batch on 1, 2 and 4
      worker domains should complete in measurably less wall time as
      the pool grows (up to the lane count / core count).

   The gated tables record only machine-independent cells — answer
   cardinalities, equality/conservation verdicts, completion counts.
   Wall-clock seconds and the measured speedup go to stdout only: they
   depend on the host's core count (a single-core runner shows ~1x). *)

module Runtime = Fusion_rt.Runtime
module Workload = Fusion_workload.Workload
module Item_set = Fusion_data.Item_set
module Value = Fusion_data.Value
module Cond = Fusion_cond.Cond
module Source = Fusion_source.Source
module Serve = Fusion_serve.Server
module Exec = Fusion_plan.Exec
module Exec_async = Fusion_plan.Exec_async
module Reference = Fusion_core.Reference
open Fusion_core

let verdict b = if b then "yes" else "no"

let optimize sources query =
  let env = Opt_env.create sources query in
  (env, Optimizer.optimize Optimizer.Sja_plus env)

(* --- 1: oracle equivalence ----------------------------------------------- *)

(* One plan, two executions on the same sources: the sequential
   executor, then the domains backend (2 workers). Every row is
   deterministic — the dataflow driver may reorder dispatches, but the
   answer set, charged work and failure count may not move. *)
let equivalence () =
  let rows =
    List.map
      (fun seed ->
        let inst = Workload.generate { Workload.default_spec with Workload.seed } in
        let env, optimized = optimize inst.Workload.sources inst.Workload.query in
        let reference =
          Exec.run ~sources:inst.Workload.sources ~conds:env.Opt_env.conds
            optimized.Optimized.plan
        in
        Array.iter Source.reset_meter inst.Workload.sources;
        let rt =
          Runtime.domains ~domains:2
            ~servers:(Array.length inst.Workload.sources) ()
        in
        let r =
          Fun.protect
            ~finally:(fun () -> Runtime.shutdown rt)
            (fun () ->
              Exec_async.run_on ~rt ~sources:inst.Workload.sources
                ~conds:env.Opt_env.conds optimized.Optimized.plan)
        in
        [
          Tables.i seed;
          Tables.i (Item_set.cardinal r.Exec_async.answer);
          verdict (Item_set.equal r.Exec_async.answer reference.Exec.answer);
          verdict
            (Float.abs (r.Exec_async.total_cost -. reference.Exec.total_cost)
             < 1e-6);
          Tables.i r.Exec_async.failures;
        ])
      [ 1901; 1902; 1903; 1904; 1905 ]
  in
  Tables.print ~title:"x19: domains backend vs sequential oracle (2 workers)"
    ~header:[ "seed"; "answer"; "exact"; "same work"; "failures" ]
    rows

(* --- 2: served batch, scaling the pool ----------------------------------- *)

let spec =
  {
    Workload.default_spec with
    Workload.n_sources = 6;
    universe = 12000;
    tuples_per_source = (2500, 3500);
    seed = 1910;
  }

let batch = 24

(* Distinct conjunctive queries so concurrent jobs cannot all coalesce
   onto one in-flight request — the pool must do real parallel work. *)
let query_of i =
  Fusion_query.Query.create_exn
    [
      Cond.Cmp ("A1", Cond.Lt, Value.Int (200 + (29 * (i mod 19))));
      Cond.Cmp ("A2", Cond.Lt, Value.Int (300 + (23 * (i mod 17))));
      Cond.Cmp ("A3", Cond.Lt, Value.Int (400 + (31 * (i mod 13))));
    ]

(* Serves the whole batch on a fresh world with a [domains]-wide pool;
   returns machine-independent verdicts plus the measured wall time. *)
let serve_batch ~domains ~expected =
  let inst = Workload.generate spec in
  let sources = inst.Workload.sources in
  let rt = Runtime.domains ~domains ~servers:(Array.length sources) () in
  Fun.protect
    ~finally:(fun () -> Runtime.shutdown rt)
    (fun () ->
      let srv = Serve.create ~policy:Serve.Fifo ~rt sources in
      let owner = Hashtbl.create batch in
      for i = 0 to batch - 1 do
        let env, optimized = optimize sources (query_of i) in
        let id =
          Serve.submit srv ~at:0.0
            {
              Serve.plan = optimized.Optimized.plan;
              conds = env.Opt_env.conds;
              tenant = "bench";
              priority = 0;
              est_cost = optimized.Optimized.est_cost;
              deadline = None;
              label = "";
            }
        in
        Hashtbl.replace owner id i
      done;
      let t0 = Unix.gettimeofday () in
      Serve.drain srv;
      let wall = Unix.gettimeofday () -. t0 in
      let s = Serve.stats srv in
      let exact =
        List.for_all
          (fun (c : Serve.completion) ->
            match (Hashtbl.find_opt owner c.Serve.c_id, c.Serve.c_answer) with
            | Some i, Some answer -> Item_set.equal answer expected.(i)
            | _ -> false)
          (Serve.completions srv)
      in
      (s, exact, wall))

(* --- 3: raw pool parallelism --------------------------------------------- *)

(* The pool on pure compute: one fixed-size job spun across 8 lanes.
   Per-lane FIFO still serializes within a lane, so with enough lanes
   the wall time should shrink with the worker count (bounded by the
   host's cores). This isolates the OS-concurrency claim from the
   serving stack's scheduler-domain work above. *)
let pool_scaling () =
  let module Pool = Fusion_rt.Pool in
  let lanes = 8 and jobs = 64 in
  (* ~2-4 ms of arithmetic per job; enough to dwarf handoff overhead. *)
  let work () =
    let acc = ref 0.0 in
    for i = 1 to 400_000 do
      acc := !acc +. (1.0 /. float_of_int i)
    done;
    !acc
  in
  let wall_of domains =
    let pool = Pool.create ~domains ~lanes in
    let m = Mutex.create () and cv = Condition.create () in
    let left = ref jobs and failed = ref 0 in
    let t0 = Unix.gettimeofday () in
    for j = 0 to jobs - 1 do
      Pool.submit pool ~lane:(j mod lanes) work (fun r ->
          Mutex.lock m;
          (match r with Ok _ -> () | Error _ -> incr failed);
          decr left;
          if !left = 0 then Condition.signal cv;
          Mutex.unlock m)
    done;
    Mutex.lock m;
    while !left > 0 do
      Condition.wait cv m
    done;
    Mutex.unlock m;
    let wall = Unix.gettimeofday () -. t0 in
    Pool.shutdown pool;
    (wall, !failed)
  in
  let runs = List.map (fun d -> (d, wall_of d)) [ 1; 2; 4 ] in
  Tables.print
    ~title:
      (Printf.sprintf "x19: pool compute batch (%d jobs over %d lanes)" jobs lanes)
    ~header:[ "domains"; "jobs"; "failures" ]
    (List.map
       (fun (d, (_, failed)) -> [ Tables.i d; Tables.i jobs; Tables.i failed ])
       runs);
  let base = match runs with (_, (w, _)) :: _ -> w | [] -> 0.0 in
  Printf.printf "\n  pool wall-clock (host-dependent, not gated):\n";
  List.iter
    (fun (d, (wall, _)) ->
      Printf.printf "    domains=%d  wall %.3fs  speedup x%.2f\n" d wall
        (if wall > 0.0 then base /. wall else 0.0))
    runs

let scaling () =
  let truth = Workload.generate spec in
  let expected =
    Array.init batch (fun i ->
        Reference.answer_query ~sources:truth.Workload.sources (query_of i))
  in
  let runs =
    List.map
      (fun domains ->
        let s, exact, wall = serve_batch ~domains ~expected in
        (domains, s, exact, wall))
      [ 1; 2; 4 ]
  in
  Tables.print
    ~title:
      (Printf.sprintf "x19: served batch across pool sizes (%d queries, %d lanes)"
         batch spec.Workload.n_sources)
    ~header:[ "domains"; "completed"; "shed"; "conserves"; "all exact" ]
    (List.map
       (fun (domains, s, exact, _) ->
         [
           Tables.i domains;
           Tables.i s.Serve.completed;
           Tables.i s.Serve.shed;
           verdict (Serve.conservation_ok s);
           verdict exact;
         ])
       runs);
  (* Wall-clock scaling: stdout only — the speedup is a property of the
     host (cores, load), not of the reproduction. *)
  let base = match runs with (_, _, _, w) :: _ -> w | [] -> 0.0 in
  Printf.printf "\n  wall-clock (host-dependent, not gated; %d cores available):\n"
    (Runtime.default_domains ());
  List.iter
    (fun (domains, _, _, wall) ->
      Printf.printf "    domains=%d  wall %.3fs  speedup x%.2f\n" domains wall
        (if wall > 0.0 then base /. wall else 0.0))
    runs

let run () =
  equivalence ();
  scaling ();
  pool_scaling ()
