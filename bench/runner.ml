(* Shared machinery for the experiments: build instances, optimize,
   execute, and collect actual costs. *)

open Fusion_core
module Workload = Fusion_workload.Workload

let env_of ?stats (instance : Workload.instance) =
  Opt_env.create ?stats ~universe:instance.Workload.spec.Workload.universe
    instance.Workload.sources instance.Workload.query

(* When FUSION_TRACE_DIR is set, every [execute] also records a span
   trace and appends it (numbered) under that directory, so experiment
   output can be correlated with per-request traces after the fact. *)
let trace_dir = Sys.getenv_opt "FUSION_TRACE_DIR"
let trace_seq = ref 0

let execute (instance : Workload.instance) plan =
  let go () =
    Array.iter Fusion_source.Source.reset_meter instance.Workload.sources;
    Fusion_plan.Exec.run ~sources:instance.Workload.sources
      ~conds:(Fusion_query.Query.conditions instance.Workload.query)
      plan
  in
  match trace_dir with
  | None -> go ()
  | Some dir ->
    let collector = Fusion_obs.Trace.create () in
    let result = Fusion_obs.Trace.with_collector collector go in
    incr trace_seq;
    let path = Filename.concat dir (Printf.sprintf "exec-%04d.jsonl" !trace_seq) in
    (try Fusion_obs.Jsonl.write_file path (Fusion_obs.Trace.spans collector)
     with Sys_error msg -> Printf.eprintf "trace: %s\n%!" msg);
    result

(* Trace one execution explicitly, regardless of FUSION_TRACE_DIR. *)
let execute_traced (instance : Workload.instance) plan =
  let collector = Fusion_obs.Trace.create () in
  let result =
    Fusion_obs.Trace.with_collector collector (fun () ->
        Array.iter Fusion_source.Source.reset_meter instance.Workload.sources;
        Fusion_plan.Exec.run ~sources:instance.Workload.sources
          ~conds:(Fusion_query.Query.conditions instance.Workload.query)
          plan)
  in
  (result, Fusion_obs.Trace.spans collector)

let actual_cost instance plan = (execute instance plan).Fusion_plan.Exec.total_cost

let run_algo ?stats instance algo =
  let env = env_of ?stats instance in
  let optimized = Optimizer.optimize algo env in
  (optimized, actual_cost instance optimized.Optimized.plan)

let run_algo_traced ?stats instance algo =
  let env = env_of ?stats instance in
  let optimized = Optimizer.optimize algo env in
  let result, spans = execute_traced instance optimized.Optimized.plan in
  (optimized, result, spans)

(* Mean actual cost over several seeds of the same spec. *)
let mean_over_seeds ?stats spec seeds algo =
  let total =
    List.fold_left
      (fun acc seed ->
        let instance = Workload.generate { spec with Workload.seed } in
        acc +. snd (run_algo ?stats instance algo))
      0.0 seeds
  in
  total /. float_of_int (List.length seeds)

let seeds = [ 101; 202; 303 ]

(* Wall-clock timing (median of [runs]) for the optimizer-complexity
   experiment; Bechamel handles the fine-grained version. *)
let time_median ?(runs = 5) f =
  let samples =
    List.init runs (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)
