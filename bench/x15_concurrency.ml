(* X15 — extension: concurrent execution and response time.

   The paper's optimizers minimize total work; Section 6 asks what
   changes when the mediator overlaps its source queries. We run the
   same plans through the sequential executor (elapsed = total cost)
   and through the live concurrent executor (elapsed = makespan on the
   discrete-event network) across source-speed heterogeneity scenarios:
   with equal sources everything is latency-bound by queueing, while a
   slow mirror shows concurrency hiding the fast sources' work behind
   the slow one's. *)

open Fusion_core
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator

let base_instance seed =
  Workload.generate
    {
      Workload.default_spec with
      Workload.n_sources = 6;
      universe = 4000;
      tuples_per_source = (400, 700);
      selectivities = [| 0.05; 0.25; 0.4 |];
      seed;
    }

(* Rescale selected sources' network profiles without touching data. *)
let with_speeds instance speed_of =
  let sources =
    Array.mapi
      (fun j s ->
        let factor = speed_of j in
        if factor = 1.0 then s
        else
          Source.create
            ~capability:(Source.capability s)
            ~profile:(Fusion_net.Profile.scale factor (Source.profile s))
            (Source.relation s))
      instance.Workload.sources
  in
  { instance with Workload.sources = sources }

let scenarios =
  [
    ("homogeneous", fun _ -> 1.0);
    ("one 5x mirror", fun j -> if j = 0 then 5.0 else 1.0);
    ("spread 1x-8x", fun j -> float_of_int (1 lsl (j mod 4)));
  ]

let algos = [ Optimizer.Filter; Optimizer.Sja; Optimizer.Sja_plus ]

let run () =
  let base = base_instance 303 in
  List.iter
    (fun (name, speed_of) ->
      let instance = with_speeds base speed_of in
      let mediator = Mediator.create_exn (Array.to_list instance.Workload.sources) in
      Printf.printf "\n  %-14s %12s %12s %9s\n" name "total cost" "makespan" "speedup";
      List.iter
        (fun algo ->
          let report concurrency =
            match
              Mediator.run
                ~config:
                  { Mediator.Config.default with Mediator.Config.algo; concurrency }
                mediator instance.Workload.query
            with
            | Ok r -> r
            | Error msg -> failwith msg
          in
          let seq = report `Seq and par = report `Par in
          if not (Fusion_data.Item_set.equal seq.Mediator.answer par.Mediator.answer)
          then failwith "concurrent executor changed the answer";
          Printf.printf "  %-14s %12.1f %12.1f %8.2fx%s\n" (Optimizer.name algo)
            seq.Mediator.actual_cost par.Mediator.response_time
            (seq.Mediator.response_time /. par.Mediator.response_time)
            (if par.Mediator.response_time < seq.Mediator.response_time then ""
             else "  (no overlap)"))
        algos)
    scenarios
