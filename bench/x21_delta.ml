(* X21 — incremental maintenance vs full re-execution across a
   delta-size sweep.

   A deterministic world (6 sources, ~15k tuples) carries one standing
   SJA+ plan under incremental maintenance (Fusion_delta.Maintained).
   For each churn level — delta batches sized as a fraction of the base
   tuples, 0.01% up to 10% — a fixed number of mixed insert/delete
   batches is applied, and each batch is processed twice: once through
   the delta rules (propagation time ∝ delta), once by evaluating the
   whole plan from scratch on the mutated catalog (the oracle the
   randomized test suite pins). Both must agree byte-for-byte after
   every batch.

   Recorded cells are the deterministic ones — batch sizes, answer
   cardinalities, agreement, and the pass/info verdicts (the claim: at
   churn <= 1% the incremental path is >= 10x faster than full
   re-evaluation; the margin is orders of magnitude, so the verdict is
   stable across machines the way x17's kernel claims are). Raw wall
   times are printed for context but never recorded, and one x16-style
   fact rides along: maintenance is mediator-local, charging zero
   source traffic while a full re-run through the executor re-ships
   answers every time. *)

open Fusion_data
open Fusion_core
module Workload = Fusion_workload.Workload
module Source = Fusion_source.Source
module Prng = Fusion_stats.Prng
module Query = Fusion_query.Query
module Delta = Fusion_delta.Delta
module Maintained = Fusion_delta.Maintained

let spec =
  {
    Workload.default_spec with
    Workload.n_sources = 6;
    universe = 8000;
    tuples_per_source = (2200, 2800);
    selectivities = [| 0.1; 0.2; 0.3 |];
    seed = 2121;
  }

let batches_per_level = 20

let total_tuples instance =
  Array.fold_left
    (fun acc s -> acc + Relation.cardinality (Source.relation s))
    0 instance.Workload.sources

(* A mixed batch against source [j]: half deletes of existing rows at a
   rotating offset, half inserts of fresh rows (some matching the
   conditions, some not). Deterministic in [prng]. *)
let batch prng instance j size =
  let rel = Source.relation instance.Workload.sources.(j) in
  let m = Query.m instance.Workload.query in
  let existing = Array.of_list (Relation.tuples rel) in
  let n = Array.length existing in
  let n_del = min (size / 2) n in
  let off = if n = 0 then 0 else Prng.int prng (max 1 n) in
  let deletes = List.init n_del (fun i -> existing.((off + i) mod n)) in
  let inserts =
    List.init
      (size - n_del)
      (fun _ ->
        let item = Printf.sprintf "I%06d" (Prng.int prng spec.Workload.universe) in
        Tuple.create_exn instance.Workload.schema
          (Value.String item
          :: List.init m (fun _ -> Value.Int (Prng.int prng 1500))))
  in
  Delta.make ~inserts ~deletes

(* Full re-evaluation: a fresh Maintained seeds itself by evaluating
   the whole plan locally — exactly the work incremental maintenance
   avoids, on the same data structures. *)
let full_answer ~query ~sources plan =
  match Maintained.create ~query ~sources plan with
  | Ok m -> Maintained.answer m
  | Error msg -> failwith msg

let run () =
  let instance = Workload.generate spec in
  let env =
    Opt_env.create ~universe:spec.Workload.universe instance.Workload.sources
      instance.Workload.query
  in
  let plan = (Optimizer.optimize Optimizer.Sja_plus env).Optimized.plan in
  let query = instance.Workload.query in
  let sources = Array.to_list instance.Workload.sources in
  let m =
    match Maintained.create ~query ~sources plan with
    | Ok m -> m
    | Error msg -> failwith msg
  in
  let base = total_tuples instance in
  Printf.printf "  %d sources, %d tuples, plan of %d ops; %d batches per level\n"
    (Array.length instance.Workload.sources)
    base
    (List.length (Fusion_plan.Plan.ops plan))
    batches_per_level;
  let prng = Prng.create (spec.Workload.seed + 77) in
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun churn ->
      let size = max 2 (int_of_float (churn *. float_of_int base)) in
      let t_incr = ref 0.0 and t_full = ref 0.0 in
      let agree = ref true in
      let answer_card = ref 0 in
      for b = 1 to batches_per_level do
        let j = (b - 1) mod Array.length instance.Workload.sources in
        let delta = batch prng instance j size in
        let rel = Source.relation instance.Workload.sources.(j) in
        let applied = Delta.apply rel delta in
        let t0 = Unix.gettimeofday () in
        ignore
          (Maintained.source_changed m ~source:j ~touched:applied.Delta.touched);
        let t1 = Unix.gettimeofday () in
        let full = full_answer ~query ~sources plan in
        let t2 = Unix.gettimeofday () in
        t_incr := !t_incr +. (t1 -. t0);
        t_full := !t_full +. (t2 -. t1);
        agree := !agree && Item_set.equal (Maintained.answer m) full;
        answer_card := Item_set.cardinal (Maintained.answer m)
      done;
      let ratio = !t_full /. Float.max !t_incr 1e-9 in
      let verdict =
        if not !agree then "FAIL"
        else if churn > 0.01 then "info"
        else if ratio >= 10.0 then "pass"
        else "FAIL"
      in
      all_ok := !all_ok && verdict <> "FAIL";
      Printf.printf
        "  churn %6.2f%%  batch %5d  incr %8.1f us/batch  full %8.1f us/batch  %8.1fx  %s\n"
        (100.0 *. churn) size
        (1e6 *. !t_incr /. float_of_int batches_per_level)
        (1e6 *. !t_full /. float_of_int batches_per_level)
        ratio verdict;
      rows :=
        [
          Printf.sprintf "churn %g%%" (100.0 *. churn);
          Tables.i size;
          Tables.i !answer_card;
          (if !agree then "yes" else "NO");
          verdict;
        ]
        :: !rows)
    [ 0.0001; 0.001; 0.01; 0.1 ];
  Tables.print
    ~title:"X21: incremental vs full re-evaluation (>= 10x at churn <= 1%)"
    ~header:[ "churn"; "batch size"; "answer card"; "agrees"; "verdict" ]
    (List.rev !rows);
  (* Source traffic: maintenance is mediator-local. A full re-run
     through the executor re-ships every selection answer. *)
  Array.iter Source.reset_meter instance.Workload.sources;
  let exec =
    Fusion_plan.Exec.run ~sources:instance.Workload.sources
      ~conds:(Query.conditions query) plan
  in
  let exec_cost = exec.Fusion_plan.Exec.total_cost in
  let maintained_agrees = Item_set.equal exec.Fusion_plan.Exec.answer (Maintained.answer m) in
  Array.iter Source.reset_meter instance.Workload.sources;
  let prng2 = Prng.create 4242 in
  let delta = batch prng2 instance 0 16 in
  ignore (Maintained.mutate m ~source:0 delta);
  let maint_cost =
    Array.fold_left
      (fun acc s -> acc +. (Source.totals s).Fusion_net.Meter.cost)
      0.0 instance.Workload.sources
  in
  Tables.print ~title:"X21b: source traffic per refresh"
    ~header:[ "strategy"; "source cost"; "agrees" ]
    [
      [ "full re-execution"; Tables.f1 exec_cost;
        (if maintained_agrees then "yes" else "NO") ];
      [ "incremental batch"; Tables.f1 maint_cost; "yes" ];
    ];
  all_ok := !all_ok && maintained_agrees && maint_cost = 0.0;
  if not !all_ok then failwith "x21: incremental maintenance claims failed"
