(* The experiment harness: regenerates every figure-level artifact and
   claim-level table of the reproduction (see DESIGN.md §5 and
   EXPERIMENTS.md for the index and recorded results).

   Usage:
     dune exec bench/main.exe            # all experiments
     dune exec bench/main.exe -- x2 x5   # a subset
     FUSION_BENCH_BECHAMEL=1 dune exec bench/main.exe -- x6
                                         # adds the Bechamel microbench *)

let experiments =
  [
    ("x1", "Figures 1 & 2: worked examples", X1_fig2.run);
    ("x2", "cost vs number of sources", X2_scaling.run);
    ("x3", "heterogeneity ablation (SJ vs SJA)", X3_heterogeneity.run);
    ("x4", "selection/semijoin crossover", X4_crossover.run);
    ("x5", "postoptimization ablation (SJA+)", X5_postopt.run);
    ("x6", "optimizer running time", X6_opt_time.run);
    ("x7", "optimality vs brute force & correlation", X7_optimality.run);
    ("x7c", "sampled-statistics regret", X7b_stats.run);
    ("x8", "two-phase vs single-phase", X8_two_phase.run);
    ("x9", "adaptive runtime vs static plans", X9_adaptive.run);
    ("x10", "total work vs response time", X10_response.run);
    ("x11", "session selection cache", X11_cache.run);
    ("x12", "cost-model calibration", X12_calibration.run);
    ("x13", "flaky sources: retries and partial answers", X13_faults.run);
    ("x14", "planning under estimate uncertainty", X14_robust.run);
    ("x15", "concurrent execution: makespan vs total work", X15_concurrency.run);
    ("x16", "multi-query serving under overload", X16_load.run);
    ("x17", "flat set kernels vs Set.Make reference", X17_kernels.run);
    ("x18", "sharded mediation: scatter/gather under churn", X18_shards.run);
    ("x19", "runtime backends: domains pool vs simulator oracle", X19_runtime.run);
    ("x20", "observability overhead: metrics on vs off", X20_obs.run);
    ("x21", "incremental maintenance vs full re-execution", X21_delta.run);
    ("x22", "columnar scans and compiled plans vs interpreted rows", X22_columnar.run);
    ("check", "executable claims (regression gate)", Checks.run);
  ]

(* (experiment, minor Mwords, major Mwords), in run order. Recorded as
   a table so compare.exe gates allocation regressions alongside the
   experiments' own cells. *)
let allocations : (string * float * float) list ref = ref []

let with_alloc_stats name run () =
  let s0 = Gc.quick_stat () in
  run ();
  let s1 = Gc.quick_stat () in
  allocations :=
    ( name,
      (s1.Gc.minor_words -. s0.Gc.minor_words) /. 1e6,
      (s1.Gc.major_words -. s0.Gc.major_words) /. 1e6 )
    :: !allocations

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (name, _, _) -> name) experiments
  in
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, description, run) ->
        Printf.printf "\n#### %s — %s\n%!" name description;
        with_alloc_stats name run ()
      | None ->
        Printf.eprintf "unknown experiment %s (have: %s)\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 1)
    requested;
  if Sys.getenv_opt "FUSION_BENCH_BECHAMEL" = Some "1"
     && List.exists (fun n -> n = "x6") requested
  then X6_opt_time.run_bechamel ();
  if !allocations <> [] then
    Tables.print ~title:"allocation per experiment (Mwords)"
      ~header:[ "experiment"; "minor"; "major" ]
      (List.rev_map
         (fun (name, minor, major) -> [ name; Tables.f1 minor; Tables.f1 major ])
         !allocations);
  (match Sys.getenv_opt "FUSION_BENCH_JSON" with
  | None -> ()
  | Some path ->
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc
          (Fusion_obs.Json.to_string (Tables.results_json ()) ^ "\n"));
    Printf.printf "\nBENCH JSON written to %s\n" path);
  print_newline ()
