(** Workload drivers: how submissions arrive at a {!Server}.

    Both drivers only {e enqueue} submissions (plus, for the closed
    loop, a completion hook); call {!Server.drain} afterwards to run
    the workload to completion. *)

val open_loop :
  Server.t ->
  prng:Fusion_stats.Prng.t ->
  rate:float ->
  count:int ->
  (int -> Server.job) ->
  unit
(** Poisson arrivals: [count] jobs with Exp([rate]) interarrival gaps
    drawn from [prng], independent of service progress — the driver
    that can push a server past saturation. [make_job i] builds the
    [i]th submission. *)

val closed_loop :
  Server.t -> clients:int -> think:float -> count:int -> (int -> Server.job) -> unit
(** A fixed population of [clients] submits at time 0; each completion
    triggers the next submission [think] after it finishes, until
    [count] jobs have been issued. Concurrency never exceeds the
    population. A shed submission ends its client's stream, so pick
    [clients <= max_inflight] and leave deadlines off for a classic
    closed loop. *)
