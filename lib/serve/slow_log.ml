(* A structured slow-query log: a bounded ring of the most recent
   completions whose response time exceeded a threshold, each entry
   carrying what an operator needs to diagnose it — the query's label
   (the SQL text when it came through the TCP front end), the chosen
   plan's shape, the per-source request breakdown, and the critical
   path through the executed schedule (the dependency chain of source
   queries that actually bounded the response time).

   Mutex-guarded like the metrics registry: completions are noted on
   the server's pump while the admin front reads entries for /statusz. *)

module Exec_async = Fusion_plan.Exec_async
module Op = Fusion_plan.Op
module Json = Fusion_obs.Json

type source_line = {
  sl_server : int;
  sl_requests : int; (* source-query steps served by this source *)
  sl_dispatched : int; (* those that actually occupied it (no cache/coalesce) *)
  sl_cost : float; (* service cost charged at this source *)
}

type hop = {
  h_task : int;
  h_server : int;
  h_op : string;
  h_start : float;
  h_finish : float;
}

type entry = {
  e_id : int;
  e_tenant : string;
  e_label : string; (* the submitted SQL, or "" when unlabelled *)
  e_plan_shape : string; (* e.g. "7 ops: sq*2 sjq*4 union" *)
  e_submitted : float;
  e_response : float;
  e_cost : float;
  e_failed : string option;
  e_sources : source_line list; (* ascending server index *)
  e_critical_path : hop list; (* dispatch order, last hop ends the query *)
}

type t = {
  lock : Mutex.t;
  threshold : float;
  capacity : int;
  (* Newest first, at most [capacity]. Suspended: the per-entry
     analysis (plan shape, source breakdown, critical path) runs at
     read time, so [note] on the completion hot path only conses —
     entries evicted before anyone scrapes never pay for it. Forced
     under the lock, because concurrent first-forces of a lazy race. *)
  mutable entries : entry Lazy.t list;
  mutable recorded : int; (* entries ever recorded (evicted included) *)
}

let create ?(capacity = 32) ~threshold () =
  if not (Float.is_finite threshold && threshold >= 0.0) then
    invalid_arg "Slow_log.create: threshold must be finite and non-negative";
  if capacity < 1 then invalid_arg "Slow_log.create: capacity must be >= 1";
  { lock = Mutex.create (); threshold; capacity; entries = []; recorded = 0 }

let threshold t = t.threshold

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* "7 ops: sq*2 sjq*4 union" — operator mnemonics in first-appearance
   order; enough to tell FILTER from SJ chains at a glance. *)
let plan_shape plan =
  let ops = Fusion_plan.Plan.ops plan in
  let order = ref [] in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun op ->
      let n = Op.name op in
      (match Hashtbl.find_opt counts n with
      | None ->
        order := n :: !order;
        Hashtbl.replace counts n 1
      | Some c -> Hashtbl.replace counts n (c + 1)))
    ops;
  let parts =
    List.rev_map
      (fun n ->
        match Hashtbl.find counts n with
        | 1 -> n
        | c -> Printf.sprintf "%s*%d" n c)
      !order
  in
  Printf.sprintf "%d ops: %s" (List.length ops) (String.concat " " parts)

let source_breakdown (steps : Exec_async.step list) =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : Exec_async.step) ->
      match s.Exec_async.sched with
      | None -> ()
      | Some sc ->
        let j = sc.Exec_async.server in
        let req, disp, cost =
          match Hashtbl.find_opt tbl j with
          | Some (r, d, c) -> (r, d, c)
          | None -> (0, 0, 0.0)
        in
        Hashtbl.replace tbl j
          ( req + 1,
            (disp + if sc.Exec_async.dispatched then 1 else 0),
            cost +. s.Exec_async.cost ))
    steps;
  Hashtbl.fold
    (fun j (r, d, c) acc ->
      { sl_server = j; sl_requests = r; sl_dispatched = d; sl_cost = c } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.sl_server b.sl_server)

(* The dependency chain that ends at the latest-finishing source query:
   from that step, repeatedly hop to the latest-finishing dependency.
   Ties break on task id so the path is deterministic. *)
let critical_path (steps : Exec_async.step list) =
  let scheduled =
    List.filter_map
      (fun (s : Exec_async.step) ->
        match s.Exec_async.sched with Some sc -> Some (s, sc) | None -> None)
      steps
  in
  let find_task task =
    List.find_opt (fun (_, sc) -> sc.Exec_async.task = task) scheduled
  in
  let later (a, asc) (b, bsc) =
    match compare a.Exec_async.finish b.Exec_async.finish with
    | 0 -> if bsc.Exec_async.task > asc.Exec_async.task then (b, bsc) else (a, asc)
    | c -> if c < 0 then (b, bsc) else (a, asc)
  in
  match scheduled with
  | [] -> []
  | first :: rest ->
    let hop_of ((s : Exec_async.step), sc) =
      {
        h_task = sc.Exec_async.task;
        h_server = sc.Exec_async.server;
        h_op = Op.name s.Exec_async.op;
        h_start = s.Exec_async.start;
        h_finish = s.Exec_async.finish;
      }
    in
    let rec walk (s, sc) acc =
      let acc = hop_of (s, sc) :: acc in
      let deps = List.filter_map find_task sc.Exec_async.deps in
      match deps with
      | [] -> acc
      | d :: ds -> walk (List.fold_left later d ds) acc
    in
    walk (List.fold_left later first rest) []

let note t ~id ~tenant ~label ~plan ~submitted ~response ~cost ~failed steps =
  if response > t.threshold then begin
    let entry =
      lazy
        {
          e_id = id;
          e_tenant = tenant;
          e_label = label;
          e_plan_shape = plan_shape plan;
          e_submitted = submitted;
          e_response = response;
          e_cost = cost;
          e_failed = failed;
          e_sources = source_breakdown steps;
          e_critical_path = critical_path steps;
        }
    in
    locked t (fun () ->
        let kept =
          if List.length t.entries >= t.capacity then
            List.filteri (fun i _ -> i < t.capacity - 1) t.entries
          else t.entries
        in
        t.entries <- entry :: kept;
        t.recorded <- t.recorded + 1)
  end

let entries t = locked t (fun () -> List.map Lazy.force t.entries)
let recorded t = locked t (fun () -> t.recorded)

let entry_to_json e =
  Json.Obj
    [
      ("id", Json.Int e.e_id);
      ("tenant", Json.Str e.e_tenant);
      ("label", Json.Str e.e_label);
      ("plan_shape", Json.Str e.e_plan_shape);
      ("submitted", Json.Float e.e_submitted);
      ("response", Json.Float e.e_response);
      ("cost", Json.Float e.e_cost);
      ( "failed",
        match e.e_failed with None -> Json.Null | Some m -> Json.Str m );
      ( "sources",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("server", Json.Int s.sl_server);
                   ("requests", Json.Int s.sl_requests);
                   ("dispatched", Json.Int s.sl_dispatched);
                   ("cost", Json.Float s.sl_cost);
                 ])
             e.e_sources) );
      ( "critical_path",
        Json.List
          (List.map
             (fun h ->
               Json.Obj
                 [
                   ("task", Json.Int h.h_task);
                   ("server", Json.Int h.h_server);
                   ("op", Json.Str h.h_op);
                   ("start", Json.Float h.h_start);
                   ("finish", Json.Float h.h_finish);
                 ])
             e.e_critical_path) );
    ]

let to_json t =
  Json.Obj
    [
      ("threshold", Json.Float t.threshold);
      ("recorded", Json.Int (recorded t));
      ("entries", Json.List (List.map entry_to_json (entries t)));
    ]

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>#%d %s %.3fs cost %.1f [%s]%s%s@]" e.e_id e.e_tenant
    e.e_response e.e_cost e.e_plan_shape
    (if e.e_label = "" then "" else " " ^ e.e_label)
    (match e.e_failed with None -> "" | Some m -> " FAILED: " ^ m)
