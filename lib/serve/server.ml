(* Multi-query serving on one shared network.

   A server holds one [Fusion_rt.Runtime] over a fixed source array
   and multiplexes many fusion queries onto it. Each admitted query becomes
   an [Exec_async.Engine] — an incremental cursor that evaluates local
   operations for free and surfaces one source query at a time — and
   the server's event loop is the scheduler: at every step it either
   admits the next arrival or dispatches, among the in-flight engines'
   pending requests, the one its policy ranks first.

   The loop interleaves arrivals and dispatches in simulated-time
   order: an arrival is admitted before any dispatch that could only
   start after it, so admission-time signals (queue backlog) are read
   at a consistent instant. With a single in-flight query and the
   [Fifo] policy every surfaced request is dispatched immediately, which
   makes the execution byte-identical to [Exec_async.run] — the
   serving layer's correctness anchor, pinned by the equivalence test.

   Admission control sheds load instead of queueing it hopelessly: a
   submission bounces when the in-flight population is at the cap
   ([Queue_full]) or when, for a job with a deadline, the worst-case
   source backlog plus the optimizer's cost estimate already exceeds
   the budget ([Deadline_unmeetable]).

   Bookkeeping maintains the conservation law

     submitted = queued + in_flight + completed + shed

   at every step; after [drain], queued and in_flight are zero. *)

open Fusion_data
open Fusion_cond
open Fusion_source
module Runtime = Fusion_rt.Runtime
module Fiber = Fusion_rt.Fiber
module Plan = Fusion_plan.Plan
module Exec = Fusion_plan.Exec
module Exec_async = Fusion_plan.Exec_async
module Engine = Exec_async.Engine
module Answer_cache = Fusion_plan.Answer_cache
module Plan_compile = Fusion_plan.Plan_compile
module Query = Fusion_query.Query
module Delta = Fusion_delta.Delta
module Change = Fusion_delta.Change
module Maintained = Fusion_delta.Maintained
module Metrics = Fusion_obs.Metrics
module Summary = Fusion_obs.Summary
module Window = Fusion_obs.Window

type policy = Fifo | Priority | Fair_share | Sjf

let policy_name = function
  | Fifo -> "fifo"
  | Priority -> "priority"
  | Fair_share -> "fair"
  | Sjf -> "sjf"

let policy_of_name = function
  | "fifo" -> Some Fifo
  | "priority" -> Some Priority
  | "fair" | "fair_share" | "fair-share" -> Some Fair_share
  | "sjf" -> Some Sjf
  | _ -> None

let all_policies = [ Fifo; Priority; Fair_share; Sjf ]

type job = {
  plan : Plan.t;
  conds : Cond.t array;
  tenant : string;
  priority : int;
  est_cost : float;
  deadline : float option;
  label : string; (* human-readable descriptor (the SQL text); "" if none *)
}

type shed_reason = Queue_full | Deadline_unmeetable

let shed_reason_name = function
  | Queue_full -> "queue_full"
  | Deadline_unmeetable -> "deadline_unmeetable"

type completion = {
  c_id : int;
  c_job : job;
  c_submitted : float;
  c_finished : float;
  c_response : float;
  c_cost : float;
  c_answer : Item_set.t option;
  c_failed : string option;
  c_partial : bool;
  c_steps : Exec_async.step list;
}

type shed = { s_id : int; s_job : job; s_at : float; s_reason : shed_reason }

type stats = {
  submitted : int;
  queued : int;
  in_flight : int;
  completed : int;
  shed : int;
}

type tenant_stats = {
  ts_submitted : int;
  ts_completed : int;
  ts_shed : int;
  ts_consumed : float;  (* service cost dispatched on the tenant's behalf *)
  ts_summary : Summary.t;
  ts_window : Window.t;
}

type tenant = {
  mutable tn_submitted : int;
  mutable tn_completed : int;
  mutable tn_shed : int;
  mutable tn_consumed : float;
  (* Dispatched steps since the counter was last flushed to the metrics
     registry. Dispatch is the per-step hot path — queries dispatch
     tens of source requests each — so the increment is buffered here
     and folded into the registry by the per-query record calls
     (completion/failure), never one registry round-trip per step. *)
  mutable tn_dispatch_pending : int;
  tn_summary : Summary.t;
  tn_window : Window.t;
}

type subscription = {
  sub_id : int;
  sub_tenant : string;
  sub_label : string;
  sub_maintained : Maintained.t;
  mutable sub_pushes : int;
}

type subscription_info = {
  si_id : int;
  si_tenant : string;
  si_label : string;
  si_pushes : int;
  si_answer_size : int;
}

type push = {
  pu_sub : int;
  pu_tenant : string;
  pu_label : string;
  pu_seq : int;
  pu_change : Change.t;
  pu_answer : Item_set.t;
  pu_at : float;
}

type delta_stats = {
  ds_batches : int;
  ds_inserts : int;
  ds_deletes : int;
  ds_pushes : int;
  ds_subscribers : int;
}

type pending = { p_id : int; p_job : job; p_at : float }

(* [a_busy] is set while a real-clock dispatch fibre is inside the
   engine: the cursor is strictly sequential per engine, so a busy
   engine is skipped by [settle] and the candidate scan until its
   request completes. Always [false] on the simulator. *)
type active = {
  a_id : int;
  a_job : job;
  a_at : float;
  a_engine : Engine.t;
  mutable a_busy : bool;
}

type t = {
  sources : Source.t array;
  shard : string option; (* prepended as a ("shard", _) label on every metric *)
  window_span : float; (* per-tenant sliding-window length, server-clock seconds *)
  slow_log : Slow_log.t option;
  rt : Runtime.t;
  answers : Answer_cache.t;
  exec_policy : Exec.policy;
  policy : policy;
  max_inflight : int;
  mutable seq : int;
  mutable task_offset : int;
  mutable queue : pending list; (* sorted by (arrival, id) *)
  mutable inflight : active list; (* in admission order *)
  mutable completions : completion list; (* newest first *)
  mutable sheds : shed list; (* newest first *)
  tenants : (string, tenant) Hashtbl.t;
  mutable hooks : (completion -> unit) list;
  mutable shed_hooks : (shed -> unit) list;
  mutable push_hooks : (push -> unit) list;
  mutable subs : subscription list; (* in subscription order *)
  mutable sub_seq : int;
  mutable delta_batches : int;
  mutable delta_inserts : int;
  mutable delta_deletes : int;
  mutable pushes : int;
  mutable now : float; (* latest instant the server acted at *)
  mutable compiled : (Plan.t * Cond.t array * Plan_compile.t) list;
      (* compiled-plan cache, MRU first, keyed by physical (plan, conds)
         identity: drivers resubmit the same job value, so steady-state
         serving reuses one compiled plan (and its columnar scans) per
         standing query shape *)
  wake : Fiber.Semaphore.t; (* nudged on submit/completion; a real-clock pump waits here *)
}

let create ?(policy = Fifo) ?(max_inflight = 64) ?cache_ttl ?(versioned_cache = false)
    ?(exec_policy = Exec.default_policy) ?shard ?(window = 60.0) ?slow_log ?rt
    sources =
  if max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  if not (Float.is_finite window && window > 0.0) then
    invalid_arg "Server.create: window must be positive";
  {
    sources;
    shard;
    window_span = window;
    slow_log;
    rt =
      (match rt with
      | Some rt -> rt
      | None -> Runtime.sim ~servers:(Array.length sources));
    answers = Answer_cache.create ?ttl:cache_ttl ~versioned:versioned_cache ();
    exec_policy;
    policy;
    max_inflight;
    seq = 0;
    task_offset = 0;
    queue = [];
    inflight = [];
    completions = [];
    sheds = [];
    tenants = Hashtbl.create 8;
    hooks = [];
    shed_hooks = [];
    push_hooks = [];
    subs = [];
    sub_seq = 0;
    delta_batches = 0;
    delta_inserts = 0;
    delta_deletes = 0;
    pushes = 0;
    now = 0.0;
    compiled = [];
    wake = Fiber.Semaphore.create 0;
  }

(* The compiled form of a job's plan: MRU lookup by physical identity,
   compiling (and remembering) on first sight. A plan that fails to
   compile (it would also fail to run) just skips the fast path. *)
let compiled_cap = 64

let compiled_plan t job =
  let rec find acc = function
    | [] -> None
    | ((p, cs, cp) as e) :: rest ->
      if p == job.plan && cs == job.conds then begin
        t.compiled <- e :: List.rev_append acc rest;
        Some cp
      end
      else find (e :: acc) rest
  in
  match find [] t.compiled with
  | Some cp -> Some cp
  | None -> (
    match Plan_compile.compile ~sources:t.sources ~conds:job.conds job.plan with
    | Error _ -> None
    | Ok cp ->
      let kept =
        if List.length t.compiled >= compiled_cap then
          List.filteri (fun i _ -> i < compiled_cap - 1) t.compiled
        else t.compiled
      in
      t.compiled <- (job.plan, job.conds, cp) :: kept;
      Some cp)

let policy t = t.policy
let shard t = t.shard
let window_span t = t.window_span
let slow_log t = t.slow_log

(* A multi-shard deployment runs one server per shard against one
   process-wide registry; the shard label is what keeps their
   fusion_serve_* series apart. *)
let labels t rest = match t.shard with None -> rest | Some s -> ("shard", s) :: rest

(* The dictionary scope the server's relations are encoded in: sources
   loaded from one catalog share one table (the catalog scope), so the
   first source's is representative. *)
let dictionary t =
  if Array.length t.sources = 0 then None
  else Some (Relation.intern (Source.relation t.sources.(0)))

let dictionary_size t =
  match dictionary t with None -> 0 | Some tbl -> Intern.size tbl

let runtime t = t.rt
let timeline t = Runtime.timeline t.rt
let busy t = Runtime.busy t.rt
let cache_stats t = Answer_cache.stats t.answers
let now t = t.now
let on_complete t hook = t.hooks <- t.hooks @ [ hook ]
let on_shed t hook = t.shed_hooks <- t.shed_hooks @ [ hook ]
let on_push t hook = t.push_hooks <- t.push_hooks @ [ hook ]

let tenant t name =
  match Hashtbl.find_opt t.tenants name with
  | Some tn -> tn
  | None ->
    let tn =
      {
        tn_submitted = 0;
        tn_completed = 0;
        tn_shed = 0;
        tn_consumed = 0.0;
        tn_dispatch_pending = 0;
        tn_summary = Summary.create ?label:t.shard ();
        tn_window = Window.create ~span:t.window_span ();
      }
    in
    Hashtbl.replace t.tenants name tn;
    tn

let tenants t =
  Hashtbl.fold
    (fun name tn acc ->
      ( name,
        {
          ts_submitted = tn.tn_submitted;
          ts_completed = tn.tn_completed;
          ts_shed = tn.tn_shed;
          ts_consumed = tn.tn_consumed;
          ts_summary = tn.tn_summary;
          ts_window = tn.tn_window;
        } )
      :: acc)
    t.tenants []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let submit t ~at job =
  if at < 0.0 then invalid_arg "Server.submit: negative arrival time";
  let id = t.seq in
  t.seq <- t.seq + 1;
  (tenant t job.tenant).tn_submitted <- (tenant t job.tenant).tn_submitted + 1;
  Metrics.record (fun r ->
      Metrics.incr r
        ~labels:(labels t [ ("tenant", job.tenant) ])
        "fusion_serve_submitted_total");
  let p = { p_id = id; p_job = job; p_at = at } in
  (* Insert in (arrival, id) order; submissions are usually appended. *)
  let rec insert = function
    | [] -> [ p ]
    | q :: rest when q.p_at < p.p_at || (q.p_at = p.p_at && q.p_id < p.p_id) ->
      q :: insert rest
    | rest -> p :: rest
  in
  t.queue <- insert t.queue;
  Fiber.Semaphore.release t.wake;
  id

let nudge t = Fiber.Semaphore.release t.wake

let stats t =
  {
    submitted = t.seq;
    queued = List.length t.queue;
    in_flight = List.length t.inflight;
    completed = List.length t.completions;
    shed = List.length t.sheds;
  }

let conservation_ok s = s.submitted = s.queued + s.in_flight + s.completed + s.shed

let completions t = List.rev t.completions
let sheds t = List.rev t.sheds

let finalize t a ~failed =
  t.inflight <- List.filter (fun x -> x.a_id <> a.a_id) t.inflight;
  let finished = Float.max a.a_at (Engine.finish_time a.a_engine) in
  t.now <- Float.max t.now finished;
  let cost = Engine.total_cost a.a_engine in
  let answer = if failed = None then Some (Engine.answer a.a_engine) else None in
  let c =
    {
      c_id = a.a_id;
      c_job = a.a_job;
      c_submitted = a.a_at;
      c_finished = finished;
      c_response = finished -. a.a_at;
      c_cost = cost;
      c_answer = answer;
      c_failed = failed;
      c_partial = Engine.partial a.a_engine;
      c_steps = Engine.steps a.a_engine;
    }
  in
  t.completions <- c :: t.completions;
  let tn = tenant t a.a_job.tenant in
  tn.tn_completed <- tn.tn_completed + 1;
  Summary.add tn.tn_summary ~plan:(policy_name t.policy) ~est_cost:a.a_job.est_cost
    ~cost ~response_time:c.c_response ();
  (* The window's clock is the server's: simulated instants on the sim
     backend, epoch-relative wall seconds on domains — monotone either
     way. *)
  Window.add tn.tn_window ~now:finished c.c_response;
  Option.iter
    (fun log ->
      Slow_log.note log ~id:c.c_id ~tenant:a.a_job.tenant ~label:a.a_job.label
        ~plan:a.a_job.plan ~submitted:c.c_submitted ~response:c.c_response
        ~cost ~failed c.c_steps)
    t.slow_log;
  Metrics.record (fun r ->
      let ls = labels t [ ("tenant", a.a_job.tenant) ] in
      Metrics.incr r ~labels:ls "fusion_serve_completed_total";
      if failed <> None then Metrics.incr r ~labels:ls "fusion_serve_failed_total";
      if tn.tn_dispatch_pending > 0 then begin
        Metrics.incr r ~labels:ls
          ~by:(float_of_int tn.tn_dispatch_pending)
          "fusion_serve_dispatched_total";
        tn.tn_dispatch_pending <- 0
      end;
      Metrics.observe r ~labels:ls "fusion_serve_response_time"
        (int_of_float (Float.round c.c_response)));
  List.iter (fun hook -> hook c) t.hooks

(* Retire every in-flight engine whose plan has run out of operations.
   [Engine.pending] also evaluates trailing local operations, so this
   is what materializes final answers. *)
let settle t =
  let finished, running =
    List.partition
      (fun a -> (not a.a_busy) && Engine.pending a.a_engine = None)
      t.inflight
  in
  t.inflight <- running;
  List.iter (fun a -> finalize t a ~failed:None) finished

let shed t p reason =
  t.now <- Float.max t.now p.p_at;
  let s = { s_id = p.p_id; s_job = p.p_job; s_at = p.p_at; s_reason = reason } in
  t.sheds <- s :: t.sheds;
  let tn = tenant t p.p_job.tenant in
  tn.tn_shed <- tn.tn_shed + 1;
  Metrics.record (fun r ->
      Metrics.incr r
        ~labels:
          (labels t [ ("tenant", p.p_job.tenant); ("reason", shed_reason_name reason) ])
        "fusion_serve_shed_total");
  List.iter (fun hook -> hook s) t.shed_hooks

let admit t p =
  t.now <- Float.max t.now p.p_at;
  if List.length t.inflight >= t.max_inflight then shed t p Queue_full
  else
    let unmeetable =
      match p.p_job.deadline with
      | None -> false
      | Some budget ->
        (* Worst case, every remaining source query of this job lands on
           the most backlogged source; if even the estimate can't fit in
           the budget behind that backlog, don't bother starting. *)
        let backlog = Runtime.backlog t.rt ~at:p.p_at in
        let wait = Array.fold_left Float.max 0.0 backlog in
        wait +. p.p_job.est_cost > budget
    in
    if unmeetable then shed t p Deadline_unmeetable
    else begin
      let engine =
        Engine.create ~policy:t.exec_policy ~answers:t.answers ~offset:t.task_offset
          ~base:p.p_at ?compiled:(compiled_plan t p.p_job) ~rt:t.rt
          ~sources:t.sources ~conds:p.p_job.conds p.p_job.plan
      in
      t.task_offset <- t.task_offset + Engine.task_count engine;
      t.inflight <-
        t.inflight
        @ [ { a_id = p.p_id; a_job = p.p_job; a_at = p.p_at; a_engine = engine;
              a_busy = false } ]
    end

(* How the policy ranks a pending request; lexicographic, smaller
   first. The trailing submission id makes every ordering total and
   deterministic. *)
let rank t a (rq : Engine.request) =
  match t.policy with
  | Fifo -> (rq.Engine.rq_ready, 0.0, float_of_int a.a_id)
  | Priority -> (-.float_of_int a.a_job.priority, rq.Engine.rq_ready, float_of_int a.a_id)
  | Fair_share ->
    ((tenant t a.a_job.tenant).tn_consumed, rq.Engine.rq_ready, float_of_int a.a_id)
  | Sjf -> (a.a_job.est_cost, rq.Engine.rq_ready, float_of_int a.a_id)

let pick t candidates =
  let best =
    List.fold_left
      (fun acc c ->
        match acc with
        | None -> Some c
        | Some (ba, brq) ->
          let a, rq = c in
          if compare (rank t a rq) (rank t ba brq) < 0 then Some c else acc)
      None candidates
  in
  best

(* Executes one dispatch for [a] synchronously (on the simulator this
   is instantaneous; on a real clock the calling fibre suspends for the
   request's wall time) and accounts for it. *)
let dispatch_for t a =
  match Engine.dispatch a.a_engine with
  | step ->
    t.now <- Float.max t.now step.Exec_async.finish;
    let tn = tenant t a.a_job.tenant in
    tn.tn_consumed <- tn.tn_consumed +. step.Exec_async.cost;
    tn.tn_dispatch_pending <- tn.tn_dispatch_pending + 1
  | exception Source.Timeout d ->
    finalize t a ~failed:(Some (Printf.sprintf "timeout on %s" d))
  | exception Exec.Runtime_error msg -> finalize t a ~failed:(Some msg)

let dispatch_one t candidates =
  match pick t candidates with None -> () | Some (a, _rq) -> dispatch_for t a

(* The earliest instant any pending request could actually start:
   arrivals before that point must be admitted first so the schedule
   unfolds in simulated-time order. *)
let earliest_start t candidates =
  List.fold_left
    (fun acc (_, rq) ->
      Float.min acc
        (Float.max rq.Engine.rq_ready (Runtime.free_at t.rt rq.Engine.rq_server)))
    infinity candidates

let candidates t =
  List.filter_map
    (fun a ->
      if a.a_busy then None
      else
        match Engine.pending a.a_engine with Some rq -> Some (a, rq) | None -> None)
    t.inflight

let step t =
  settle t;
  let candidates = candidates t in
  match (t.queue, candidates) with
  | [], [] -> false
  | p :: rest, _ when candidates = [] || p.p_at <= earliest_start t candidates ->
    t.queue <- rest;
    admit t p;
    true
  | _, _ :: _ ->
    dispatch_one t candidates;
    true
  | _ :: _, [] -> assert false

(* The real-clock event loop: same scheduling decisions as [step], but
   a dispatch is forked as a fibre that suspends for the request's wall
   time while the loop keeps admitting and dispatching other engines —
   queries genuinely overlap, the policy still picks who goes next.
   Runs until [stop ()] holds and the server is idle; [submit] and
   every completion nudge [t.wake], so a front end can keep feeding the
   pump while it runs. Must be called inside the runtime's fibre
   scheduler (see [Fusion_rt.Runtime.run]). *)
let pump t ~stop =
  Fiber.Switch.run @@ fun sw ->
  let rec loop () =
    settle t;
    let cs = candidates t in
    let busy_exists () = List.exists (fun a -> a.a_busy) t.inflight in
    match (t.queue, cs) with
    | [], [] ->
      if busy_exists () || not (stop ()) then begin
        Fiber.Semaphore.acquire t.wake;
        loop ()
      end
    | p :: rest, _ when cs = [] || p.p_at <= earliest_start t cs ->
      t.queue <- rest;
      admit t p;
      loop ()
    | _, _ :: _ ->
      (match pick t cs with
      | None -> ()
      | Some (a, _rq) ->
        a.a_busy <- true;
        Fiber.Switch.fork sw (fun () ->
            Fun.protect
              ~finally:(fun () ->
                a.a_busy <- false;
                Fiber.Semaphore.release t.wake)
              (fun () -> dispatch_for t a)));
      loop ()
    | _ :: _, [] -> assert false
  in
  loop ()

let drain t =
  if Runtime.is_real t.rt then
    Runtime.run t.rt (fun () -> pump t ~stop:(fun () -> true))
  else while step t do () done

let shed_counts t =
  List.fold_left
    (fun (qf, du) s ->
      match s.s_reason with
      | Queue_full -> (qf + 1, du)
      | Deadline_unmeetable -> (qf, du + 1))
    (0, 0) t.sheds

(* ---------- standing queries and source deltas ---------- *)

let subscribe t ~tenant ?(label = "") ~conds plan =
  match Query.create (Array.to_list conds) with
  | Error e -> Error e
  | Ok query -> (
    match Maintained.create ~query ~sources:(Array.to_list t.sources) plan with
    | Error e -> Error e
    | Ok m ->
      let id = t.sub_seq in
      t.sub_seq <- t.sub_seq + 1;
      t.subs <-
        t.subs
        @ [ { sub_id = id; sub_tenant = tenant; sub_label = label;
              sub_maintained = m; sub_pushes = 0 } ];
      Metrics.record (fun r ->
          Metrics.incr r
            ~labels:(labels t [ ("tenant", tenant) ])
            "fusion_delta_subscribe_total");
      Ok id)

let unsubscribe t id =
  let before = List.length t.subs in
  t.subs <- List.filter (fun s -> s.sub_id <> id) t.subs;
  let removed = List.length t.subs < before in
  if removed then
    Metrics.record (fun r ->
        Metrics.incr r ~labels:(labels t []) "fusion_delta_unsubscribe_total");
  removed

let subscriptions t =
  List.map
    (fun s ->
      {
        si_id = s.sub_id;
        si_tenant = s.sub_tenant;
        si_label = s.sub_label;
        si_pushes = s.sub_pushes;
        si_answer_size = Item_set.cardinal (Maintained.answer s.sub_maintained);
      })
    t.subs

let subscription_answer t id =
  List.find_opt (fun s -> s.sub_id = id) t.subs
  |> Option.map (fun s -> Maintained.answer s.sub_maintained)

let delta_stats t =
  {
    ds_batches = t.delta_batches;
    ds_inserts = t.delta_inserts;
    ds_deletes = t.delta_deletes;
    ds_pushes = t.pushes;
    ds_subscribers = List.length t.subs;
  }

let source_index t name =
  let n = Array.length t.sources in
  let rec go i =
    if i >= n then None
    else if String.equal (Source.name t.sources.(i)) name then Some i
    else go (i + 1)
  in
  go 0

(* A delta lands: apply it to the wrapped relation, patch or invalidate
   the shared answer cache (each completed selection entry is repaired
   by re-probing only the touched items), then propagate through every
   standing query and push non-empty answer diffs. Everything after
   [Delta.apply] costs O(|touched| · consumers), never O(base). *)
let mutate t ~source delta =
  match source_index t source with
  | None -> Error (Printf.sprintf "unknown source %s" source)
  | Some j ->
    let rel = Source.relation t.sources.(j) in
    let applied = Delta.apply rel delta in
    let touched = applied.Delta.touched in
    t.delta_batches <- t.delta_batches + 1;
    t.delta_inserts <- t.delta_inserts + applied.Delta.inserted;
    t.delta_deletes <- t.delta_deletes + applied.Delta.deleted;
    Answer_cache.apply_delta t.answers ~source ~now:t.now
      ~version:applied.Delta.version
      ~patch:(fun ~cond answer ->
        match Cond.parse cond with
        | Error _ -> None
        | Ok c ->
          let change =
            Change.of_parts
              ~old_on:(Item_set.inter touched answer)
              ~new_on:(Cond_vec.semijoin_items (Cond_vec.compile rel c) touched)
          in
          Some (Change.apply answer change));
    let t0 = Runtime.now t.rt in
    let pushed = ref 0 in
    List.iter
      (fun sub ->
        let change = Maintained.source_changed sub.sub_maintained ~source:j ~touched in
        if not (Change.is_empty change) then begin
          sub.sub_pushes <- sub.sub_pushes + 1;
          t.pushes <- t.pushes + 1;
          incr pushed;
          let push =
            {
              pu_sub = sub.sub_id;
              pu_tenant = sub.sub_tenant;
              pu_label = sub.sub_label;
              pu_seq = sub.sub_pushes;
              pu_change = change;
              pu_answer = Maintained.answer sub.sub_maintained;
              pu_at = Runtime.now t.rt;
            }
          in
          List.iter (fun hook -> hook push) t.push_hooks
        end)
      t.subs;
    let elapsed = Runtime.now t.rt -. t0 in
    Metrics.record (fun r ->
        let ls = labels t [ ("source", source) ] in
        Metrics.incr r ~labels:ls "fusion_delta_batches_total";
        if applied.Delta.inserted > 0 then
          Metrics.incr r ~labels:ls
            ~by:(float_of_int applied.Delta.inserted)
            "fusion_delta_inserts_total";
        if applied.Delta.deleted > 0 then
          Metrics.incr r ~labels:ls
            ~by:(float_of_int applied.Delta.deleted)
            "fusion_delta_deletes_total";
        if !pushed > 0 then
          Metrics.incr r ~labels:(labels t [])
            ~by:(float_of_int !pushed)
            "fusion_delta_pushes_total";
        Metrics.observe r ~labels:(labels t []) "fusion_delta_propagate_us"
          (int_of_float (elapsed *. 1e6)));
    Ok applied

(* Publish the server's live state as gauges into the installed
   registry — queue depths plus per-tenant sliding-window percentiles.
   Cumulative counters (submitted/completed/shed) are already recorded
   incrementally at each event; this covers the point-in-time view and
   is meant to run from the admin front's pre-scrape refresh hook. *)
let publish_metrics t =
  Answer_cache.publish_metrics t.answers;
  Metrics.record (fun r ->
      let g ?(ls = []) name v = Metrics.gauge r ~labels:(labels t ls) name v in
      let s = stats t in
      g "fusion_serve_queued" (float_of_int s.queued);
      g "fusion_serve_in_flight" (float_of_int s.in_flight);
      g "fusion_serve_dictionary_size" (float_of_int (dictionary_size t));
      g "fusion_delta_subscribers" (float_of_int (List.length t.subs));
      let qf, du = shed_counts t in
      g ~ls:[ ("reason", shed_reason_name Queue_full) ] "fusion_serve_shed"
        (float_of_int qf);
      g
        ~ls:[ ("reason", shed_reason_name Deadline_unmeetable) ]
        "fusion_serve_shed" (float_of_int du);
      let now = t.now in
      Hashtbl.iter
        (fun name tn ->
          let ls = [ ("tenant", name) ] in
          if tn.tn_dispatch_pending > 0 then begin
            Metrics.incr r ~labels:(labels t ls)
              ~by:(float_of_int tn.tn_dispatch_pending)
              "fusion_serve_dispatched_total";
            tn.tn_dispatch_pending <- 0
          end;
          let p = Window.snapshot tn.tn_window ~now in
          g ~ls "fusion_serve_window_p50" p.Summary.p50;
          g ~ls "fusion_serve_window_p90" p.Summary.p90;
          g ~ls "fusion_serve_window_p99" p.Summary.p99;
          g ~ls "fusion_serve_window_count" (float_of_int p.Summary.n))
        t.tenants)

let pp_stats ppf s =
  Format.fprintf ppf
    "conservation: submitted %d = completed %d + shed %d + in-flight %d + queued %d"
    s.submitted s.completed s.shed s.in_flight s.queued
