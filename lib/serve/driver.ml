(* Workload drivers for a server.

   Open loop: arrivals are a Poisson process — interarrival gaps drawn
   Exp(rate) from the deterministic [Prng] — regardless of how fast the
   server keeps up. This is the driver that exposes overload: past
   saturation the queue grows and admission control starts shedding.

   Closed loop: a fixed population of clients, each submitting its next
   query a think time after its previous one completes. Concurrency is
   bounded by the population, so a closed loop cannot oversaturate —
   it measures latency under controlled load instead. *)

module Prng = Fusion_stats.Prng

let open_loop server ~prng ~rate ~count make_job =
  if count < 0 then invalid_arg "Driver.open_loop: negative count";
  let at = ref 0.0 in
  for i = 0 to count - 1 do
    at := !at +. Prng.exponential prng rate;
    ignore (Server.submit server ~at:!at (make_job i))
  done

let closed_loop server ~clients ~think ~count make_job =
  if clients < 1 then invalid_arg "Driver.closed_loop: clients must be >= 1";
  if think < 0.0 then invalid_arg "Driver.closed_loop: negative think time";
  if count < 0 then invalid_arg "Driver.closed_loop: negative count";
  let issued = ref 0 in
  let next_arrival finished =
    if !issued < count then begin
      let i = !issued in
      incr issued;
      ignore (Server.submit server ~at:(finished +. think) (make_job i))
    end
  in
  Server.on_complete server (fun c -> next_arrival c.Server.c_finished);
  let initial = min clients count in
  for _ = 1 to initial do
    let i = !issued in
    incr issued;
    ignore (Server.submit server ~at:0.0 (make_job i))
  done
