(** A structured slow-query log: a bounded ring of the most recent
    completions whose response time exceeded a threshold, each entry
    carrying the query's label (the SQL text when it arrived through
    the TCP front end), the chosen plan's shape, the per-source
    request breakdown, and the critical path through the executed
    schedule — the dependency chain of source queries that actually
    bounded the response time.

    Domain-safe (internal mutex): the serving pump notes completions
    while the admin front reads {!entries} for [/statusz]. *)

type source_line = {
  sl_server : int;
  sl_requests : int;  (** source-query steps served by this source *)
  sl_dispatched : int;  (** those that occupied it (no cache/coalesce) *)
  sl_cost : float;  (** service cost charged at this source *)
}

type hop = {
  h_task : int;
  h_server : int;
  h_op : string;
  h_start : float;
  h_finish : float;
}

type entry = {
  e_id : int;
  e_tenant : string;
  e_label : string;  (** the submitted SQL, or [""] when unlabelled *)
  e_plan_shape : string;  (** e.g. ["7 ops: sq*2 sjq*4 union"] *)
  e_submitted : float;
  e_response : float;
  e_cost : float;
  e_failed : string option;
  e_sources : source_line list;  (** ascending server index *)
  e_critical_path : hop list;
      (** dispatch order; the last hop's finish ends the query *)
}

type t

val create : ?capacity:int -> threshold:float -> unit -> t
(** Queries slower than [threshold] (seconds of response time) are
    recorded; the newest [capacity] (default 32) entries are kept.
    @raise Invalid_argument on a negative/non-finite threshold or a
    capacity < 1. *)

val threshold : t -> float

val note :
  t ->
  id:int ->
  tenant:string ->
  label:string ->
  plan:Fusion_plan.Plan.t ->
  submitted:float ->
  response:float ->
  cost:float ->
  failed:string option ->
  Fusion_plan.Exec_async.step list ->
  unit
(** Records the completion if [response > threshold]; no-op otherwise.
    The server calls this from its finalize path. *)

val entries : t -> entry list
(** Newest first, at most [capacity]. *)

val recorded : t -> int
(** Entries ever recorded, evicted ones included. *)

val plan_shape : Fusion_plan.Plan.t -> string
(** The compact operator summary used in {!entry.e_plan_shape}. *)

val critical_path : Fusion_plan.Exec_async.step list -> hop list
(** The dependency chain ending at the latest-finishing source query,
    in dispatch order (exposed for tests). *)

val entry_to_json : entry -> Fusion_obs.Json.t
val to_json : t -> Fusion_obs.Json.t
(** [{threshold, recorded, entries}] with entries newest first. *)

val pp_entry : Format.formatter -> entry -> unit
