(** Multi-query serving on one shared network.

    Where {!Fusion_plan.Exec_async} runs {e one} plan on a private
    network, a server multiplexes many concurrently executing fusion
    queries onto a single {!Fusion_rt.Runtime}: each admitted query
    is an {!Fusion_plan.Exec_async.Engine}, and the server's event
    loop plays scheduler — at every {!step} it either admits the next
    arrival or dispatches the pending source request its {!policy}
    ranks first onto the shared per-source FIFO queues. On the
    simulator backend (the default) time is the discrete-event clock;
    with a {!Fusion_rt.Runtime.domains} runtime the same scheduling
    decisions drive real concurrent execution ({!pump}) and the clock
    is the wall.

    {b Scheduling policies.} [Fifo] serves requests in ready-time
    order; [Priority] prefers higher {!job.priority}; [Fair_share]
    prefers the tenant that has consumed the least service cost so
    far; [Sjf] prefers the query with the smallest optimizer cost
    estimate.

    {b Admission control.} A submission is shed rather than admitted
    when the in-flight population is at [max_inflight]
    ({!Queue_full}), or when its {!job.deadline} cannot be met even
    optimistically — worst-case source backlog at arrival plus the
    optimizer's estimate already exceeds the budget
    ({!Deadline_unmeetable}).

    {b Cross-query caching.} All engines share one
    {!Fusion_plan.Answer_cache}: identical selections overlapping in
    time are coalesced into one source request, and — when
    [cache_ttl] is set — recently completed answers are replayed with
    their staleness accounted.

    {b Invariants.} Conservation,
    [submitted = queued + in_flight + completed + shed], holds after
    every step; after {!drain}, [queued = in_flight = 0]. And a lone
    query served under [Fifo] (no TTL) executes byte-identically to
    {!Fusion_plan.Exec_async.run} — same answers, costs, and
    fault-injection draws. Both are pinned by tests. *)

open Fusion_data
open Fusion_cond
open Fusion_source

type policy = Fifo | Priority | Fair_share | Sjf

val policy_name : policy -> string
val policy_of_name : string -> policy option
val all_policies : policy list

type job = {
  plan : Fusion_plan.Plan.t;
  conds : Cond.t array;
  tenant : string;
  priority : int;  (** higher is served earlier under [Priority] *)
  est_cost : float;  (** optimizer estimate; drives [Sjf] and admission *)
  deadline : float option;  (** response-time budget from submission *)
  label : string;
      (** human-readable descriptor — the SQL text when the job came
          through the front end; recorded in the slow-query log.
          [""] if none. *)
}

type shed_reason = Queue_full | Deadline_unmeetable

val shed_reason_name : shed_reason -> string

type completion = {
  c_id : int;
  c_job : job;
  c_submitted : float;
  c_finished : float;
  c_response : float;  (** [c_finished - c_submitted] *)
  c_cost : float;  (** total service cost charged *)
  c_answer : Item_set.t option;  (** [None] when execution failed *)
  c_failed : string option;
  c_partial : bool;  (** gave up on some source under [`Use_partial] *)
  c_steps : Fusion_plan.Exec_async.step list;
}

type shed = { s_id : int; s_job : job; s_at : float; s_reason : shed_reason }

type subscription_info = {
  si_id : int;
  si_tenant : string;
  si_label : string;
  si_pushes : int;  (** non-empty diffs pushed so far *)
  si_answer_size : int;  (** current maintained answer cardinality *)
}

type push = {
  pu_sub : int;  (** subscription id *)
  pu_tenant : string;
  pu_label : string;
  pu_seq : int;  (** per-subscription push sequence, 1-based *)
  pu_change : Fusion_delta.Change.t;  (** the answer diff *)
  pu_answer : Item_set.t;  (** the full post-change answer *)
  pu_at : float;
}

type delta_stats = {
  ds_batches : int;  (** delta batches applied via {!mutate} *)
  ds_inserts : int;
  ds_deletes : int;
  ds_pushes : int;  (** non-empty diffs pushed across all subscriptions *)
  ds_subscribers : int;  (** currently registered standing queries *)
}

type stats = {
  submitted : int;
  queued : int;
  in_flight : int;
  completed : int;
  shed : int;
}

type tenant_stats = {
  ts_submitted : int;
  ts_completed : int;
  ts_shed : int;
  ts_consumed : float;  (** service cost dispatched for the tenant *)
  ts_summary : Fusion_obs.Summary.t;
      (** one run per completion; latency percentiles, cost drift *)
  ts_window : Fusion_obs.Window.t;
      (** sliding-window response times (see [window] in {!create});
          snapshot with the server's {!now} for live percentiles *)
}

type t

val create :
  ?policy:policy ->
  ?max_inflight:int ->
  ?cache_ttl:float ->
  ?versioned_cache:bool ->
  ?exec_policy:Fusion_plan.Exec.policy ->
  ?shard:string ->
  ?window:float ->
  ?slow_log:Slow_log.t ->
  ?rt:Fusion_rt.Runtime.t ->
  Source.t array ->
  t
(** [policy] defaults to [Fifo]; [max_inflight] (default 64) caps the
    concurrently executing queries; [cache_ttl] enables replay of
    completed answers (omitted: in-flight coalescing only);
    [exec_policy] is the per-source-query retry policy
    ({!Fusion_plan.Exec.default_policy} if omitted). [versioned_cache]
    switches the shared answer cache to source-version staleness
    accounting (see {!Fusion_plan.Answer_cache}): entries are patched
    or invalidated by {!mutate} and version-matching replays report an
    exact staleness of zero. [shard] names the
    shard this server is for in a multi-shard deployment: it is
    prepended as a [("shard", _)] label to every [fusion_serve_*]
    metric the server records (so one process-wide registry keeps the
    shards' series apart) and labels the per-tenant summaries. [rt] is
    the execution runtime (a private simulated network if omitted);
    the caller keeps ownership — shut a domains runtime down after the
    server is drained. [window] (default 60) is the per-tenant
    sliding-window length in server-clock seconds (see
    {!tenant_stats.ts_window}); [slow_log], when given, receives every
    completion slower than its threshold.
    @raise Invalid_argument if [max_inflight < 1] or [window <= 0]. *)

val submit : t -> at:float -> job -> int
(** Enqueues an arrival at simulated instant [at]; returns its id.
    Admission control runs when the event loop reaches the arrival,
    not at submission. @raise Invalid_argument on a negative [at]. *)

val step : t -> bool
(** One scheduling decision: retire finished queries, then admit the
    next arrival or dispatch the best pending request. [false] when
    there is nothing left to do. *)

val drain : t -> unit
(** Runs until idle: every submission completed or shed. On the
    simulator this steps the event loop; on a real-clock runtime it
    runs {!pump} under the runtime's fibre scheduler. *)

val pump : t -> stop:(unit -> bool) -> unit
(** The real-clock event loop: the same scheduling decisions as
    {!step}, but each dispatch runs as a fibre suspended for the
    request's wall time while the loop keeps serving other engines —
    queries genuinely overlap and the policy still picks who goes
    next. Returns once [stop ()] holds {e and} the server is idle;
    {!submit} (from a concurrent fibre) nudges a waiting pump, so a
    front end can keep feeding it. Must run inside the runtime's fibre
    scheduler (see {!Fusion_rt.Runtime.run}). *)

val nudge : t -> unit
(** Wakes a blocked {!pump} so it re-evaluates its stop condition.
    {!submit} nudges implicitly; a front end whose stop condition
    advances outside the serving layer — e.g. a statement answered
    synchronously from its own reader fibre — must nudge explicitly,
    or an idle pump sleeps through its own quota. *)

val on_complete : t -> (completion -> unit) -> unit
(** Hooks run at each completion, in registration order — a
    closed-loop driver submits the next query from here. *)

val on_shed : t -> (shed -> unit) -> unit
(** Hooks run at each shed, in registration order — a front end
    reports the rejection to the submitting client from here. *)

(** {1 Standing queries and source deltas}

    A subscription registers a plan for {e incremental maintenance}:
    the server evaluates it once locally, and every {!mutate} batch
    updates the maintained answer in time proportional to the delta
    (the {!Fusion_delta} rules), pushing a non-empty answer diff to the
    {!on_push} hooks. Mutations also patch or invalidate the shared
    answer cache, so one-shot queries never see pre-delta answers. *)

val subscribe :
  t ->
  tenant:string ->
  ?label:string ->
  conds:Cond.t array ->
  Fusion_plan.Plan.t ->
  (int, string) result
(** Registers a standing query (plan + conditions, as in {!job});
    returns the subscription id. Fails when the plan does not validate
    against the conditions and sources. *)

val unsubscribe : t -> int -> bool
(** Removes a subscription; [false] when the id is unknown. *)

val subscriptions : t -> subscription_info list
(** Live subscriptions, in registration order. *)

val subscription_answer : t -> int -> Item_set.t option
(** The current maintained answer of a subscription. *)

val on_push : t -> (push -> unit) -> unit
(** Hooks run at each pushed answer diff, in registration order — the
    TCP front end forwards these to subscribed clients. *)

val mutate : t -> source:string -> Fusion_delta.Delta.t -> (Fusion_delta.Delta.applied, string) result
(** Applies a source delta (by source name): mutates the wrapped
    relation, patches or invalidates affected answer-cache entries,
    propagates through every subscription, and pushes diffs. Records
    [fusion_delta_*] metrics. Fails on an unknown source name. *)

val delta_stats : t -> delta_stats

val stats : t -> stats
val conservation_ok : stats -> bool
(** [submitted = queued + in_flight + completed + shed]. *)

val completions : t -> completion list
(** In completion order. *)

val sheds : t -> shed list
val tenants : t -> (string * tenant_stats) list
(** Sorted by tenant name. *)

val policy : t -> policy

val shard : t -> string option
(** The shard label passed at creation, if any. *)

val window_span : t -> float
(** The per-tenant sliding-window length, in server-clock seconds. *)

val slow_log : t -> Slow_log.t option
(** The slow-query log passed at creation, if any. *)

val shed_counts : t -> int * int
(** Sheds so far as [(queue_full, deadline_unmeetable)] — the
    admission-control breakdown [/statusz] reports. *)

val publish_metrics : t -> unit
(** Publishes the server's live state as gauges into the installed
    {!Fusion_obs.Metrics} registry (no-op when none is installed):
    [fusion_serve_queued], [fusion_serve_in_flight], shed counts by
    reason, and per-tenant sliding-window percentiles
    ([fusion_serve_window_p50/p90/p99{tenant=...}], plus the window
    sample count). Cumulative [fusion_serve_*_total] counters are
    recorded incrementally as events happen; call this before a scrape
    for the point-in-time view. *)

val dictionary : t -> Fusion_data.Intern.t option
(** The dictionary scope of the server's relations (the catalog scope
    when all sources were loaded from one catalog); [None] for an empty
    source array. *)

val dictionary_size : t -> int
(** Distinct merge-attribute equality classes in {!dictionary}; also
    exported as the [fusion_serve_dictionary_size] gauge. 0 when there
    are no sources. *)

val runtime : t -> Fusion_rt.Runtime.t
val timeline : t -> Fusion_net.Sim.timeline
val busy : t -> float array
val cache_stats : t -> Fusion_plan.Answer_cache.stats
val now : t -> float
(** Latest instant the server acted at. *)

val pp_stats : Format.formatter -> stats -> unit
(** The conservation line:
    [conservation: submitted N = completed C + shed S + in-flight I + queued Q]. *)
