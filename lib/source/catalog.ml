open Fusion_data
module Profile = Fusion_net.Profile

type entry = {
  name : string;
  mutable file : string option;
  mutable capability : Capability.t;
  mutable overhead : float;
  mutable send : float;
  mutable recv : float;
  mutable tuple : float;
  mutable scale : float;
  mutable map : (string * string) list option;
  mutable oem : bool;
  mutable entities : string list option;
  mutable columns : (string * string list) list;
  mutable replicas : int;
}

let fresh_entry name =
  {
    name;
    file = None;
    capability = Capability.full;
    overhead = Profile.default.Profile.request_overhead;
    send = Profile.default.Profile.send_per_item;
    recv = Profile.default.Profile.recv_per_item;
    tuple = Profile.default.Profile.recv_per_tuple;
    scale = 1.0;
    map = None;
    oem = false;
    entities = None;
    columns = [];
    replicas = 1;
  }

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let capability_of_string = function
  | "full" -> Ok Capability.full
  | "no-semijoin" -> Ok Capability.no_semijoin
  | "minimal" -> Ok Capability.minimal
  | other -> Error (Printf.sprintf "unknown capability %S" other)

let parse_line lineno entry line =
  match String.index_opt line '=' with
  | None -> Error (Printf.sprintf "line %d: expected 'key = value'" lineno)
  | Some i -> (
    let key = String.trim (String.sub line 0 i) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    let float_field set =
      match float_of_string_opt value with
      | Some f when f >= 0.0 ->
        set f;
        Ok ()
      | _ -> Error (Printf.sprintf "line %d: %s must be a non-negative number" lineno key)
    in
    match key with
    | "file" ->
      entry.file <- Some value;
      Ok ()
    | "capability" -> (
      match capability_of_string value with
      | Ok c ->
        entry.capability <- c;
        Ok ()
      | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
    | "overhead" -> float_field (fun f -> entry.overhead <- f)
    | "send" -> float_field (fun f -> entry.send <- f)
    | "recv" -> float_field (fun f -> entry.recv <- f)
    | "tuple" -> float_field (fun f -> entry.tuple <- f)
    | "scale" -> float_field (fun f -> entry.scale <- f)
    | "map" -> (
      (* common=internal pairs, comma separated *)
      let pairs = String.split_on_char ',' value |> List.map String.trim in
      let rec parse_pairs acc = function
        | [] -> Ok (List.rev acc)
        | pair :: rest -> (
          match String.index_opt pair '=' with
          | None ->
            Error (Printf.sprintf "line %d: map entries are common=internal" lineno)
          | Some i ->
            let common = String.trim (String.sub pair 0 i) in
            let internal =
              String.trim (String.sub pair (i + 1) (String.length pair - i - 1))
            in
            if common = "" || internal = "" then
              Error (Printf.sprintf "line %d: empty map entry" lineno)
            else parse_pairs ((common, internal) :: acc) rest)
      in
      match parse_pairs [] pairs with
      | Ok pairs ->
        entry.map <- Some pairs;
        Ok ()
      | Error _ as e -> e)
    | "format" -> (
      match value with
      | "csv" ->
        entry.oem <- false;
        Ok ()
      | "oem" ->
        entry.oem <- true;
        Ok ()
      | other -> Error (Printf.sprintf "line %d: unknown format %S" lineno other))
    | "replicas" -> (
      match int_of_string_opt value with
      | Some k when k >= 1 ->
        entry.replicas <- k;
        Ok ()
      | _ -> Error (Printf.sprintf "line %d: replicas must be a positive integer" lineno))
    | "entities" ->
      entry.entities <- Some (String.split_on_char '/' value);
      Ok ()
    | other when String.length other > 4 && String.sub other 0 4 = "col." ->
      let attr = String.sub other 4 (String.length other - 4) in
      entry.columns <- entry.columns @ [ (attr, String.split_on_char '/' value) ];
      Ok ()
    | other -> Error (Printf.sprintf "line %d: unknown key %S" lineno other))

let parse_section_header lineno line =
  (* [source NAME] or [view] *)
  let inner = String.sub line 1 (String.length line - 2) in
  match String.split_on_char ' ' (String.trim inner) with
  | [ "source"; name ] when name <> "" -> Ok (`Source name)
  | [ "view" ] -> Ok `View
  | _ -> Error (Printf.sprintf "line %d: expected [source NAME] or [view]" lineno)

let build ~dir ~view ?intern entry =
  match entry.file with
  | None -> Error (Printf.sprintf "source %s: missing 'file'" entry.name)
  | Some file -> (
    let path = if Filename.is_relative file then Filename.concat dir file else file in
    let loaded =
      if not entry.oem then Csv_io.read_file ~name:entry.name ?intern path
      else
        match view with
        | None -> Error "'format = oem' needs a [view] section"
        | Some common -> (
          match entry.entities with
          | None -> Error "'format = oem' needs an 'entities' path"
          | Some entities ->
            Fusion_oem.Extract.load_file ~name:entry.name ~common ?intern
              { Fusion_oem.Extract.entities; columns = entry.columns }
              path)
    in
    match loaded with
    | Error msg -> Error (Printf.sprintf "source %s: %s" entry.name msg)
    | Ok relation -> (
      let mapped =
        if entry.oem then Ok relation (* extraction already targeted the view *)
        else
          match view, entry.map with
          | None, None -> Ok relation
          | None, Some _ ->
            Error (Printf.sprintf "source %s: 'map' needs a [view] section" entry.name)
          | Some common, None ->
            if Fusion_data.Schema.equal common (Relation.schema relation) then Ok relation
            else
              Error
                (Printf.sprintf
                   "source %s: schema differs from the view; add a 'map' entry" entry.name)
          | Some common, Some mapping -> View.export ~common ~mapping relation
      in
      match mapped with
      | Error msg -> Error (Printf.sprintf "source %s: %s" entry.name msg)
      | Ok relation ->
        let profile =
          Profile.scale entry.scale
            (Profile.make ~request_overhead:entry.overhead ~send_per_item:entry.send
               ~recv_per_item:entry.recv ~recv_per_tuple:entry.tuple ())
        in
        Ok (Source.create ~capability:entry.capability ~profile relation)))

type section = In_source of entry | In_view | Toplevel

let parse_groups ~dir ?intern text =
  let lines = String.split_on_char '\n' text in
  let view = ref None in
  let parse_view_line lineno line =
    match String.index_opt line '=' with
    | None -> Error (Printf.sprintf "line %d: expected 'schema = ...'" lineno)
    | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      if key <> "schema" then
        Error (Printf.sprintf "line %d: unknown [view] key %S" lineno key)
      else (
        match Csv_io.schema_of_header value with
        | Ok schema ->
          view := Some schema;
          Ok ()
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  let rec go lineno current acc = function
    | [] -> (
      let entries =
        List.rev (match current with In_source e -> e :: acc | _ -> acc)
      in
      if entries = [] then Error "catalog declares no sources"
      else
        let rec build_all built = function
          | [] -> Ok (List.rev built)
          | e :: rest -> (
            match build ~dir ~view:!view ?intern e with
            | Ok source -> build_all ((source, e.replicas) :: built) rest
            | Error msg -> Error msg)
        in
        build_all [] entries)
    | line :: rest -> (
      let line = String.trim (strip_comment line) in
      if line = "" then go (lineno + 1) current acc rest
      else if String.length line >= 2 && line.[0] = '[' && line.[String.length line - 1] = ']'
      then
        match parse_section_header lineno line with
        | Error _ as e -> e
        | Ok `View ->
          let acc = match current with In_source e -> e :: acc | _ -> acc in
          go (lineno + 1) In_view acc rest
        | Ok (`Source name) ->
          let acc = match current with In_source e -> e :: acc | _ -> acc in
          if List.exists (fun (e : entry) -> e.name = name) acc then
            Error (Printf.sprintf "line %d: duplicate source %S" lineno name)
          else go (lineno + 1) (In_source (fresh_entry name)) acc rest
      else
        match current with
        | Toplevel ->
          Error (Printf.sprintf "line %d: key outside a [source ...] section" lineno)
        | In_view -> (
          match parse_view_line lineno line with
          | Ok () -> go (lineno + 1) current acc rest
          | Error _ as e -> e)
        | In_source entry -> (
          match parse_line lineno entry line with
          | Ok () -> go (lineno + 1) current acc rest
          | Error _ as e -> e))
  in
  go 1 Toplevel [] lines

let parse ~dir ?intern text =
  Result.map (List.map fst) (parse_groups ~dir ?intern text)

let render sources =
  let buffer = Buffer.create 512 in
  List.iter
    (fun (source, file) ->
      let caps = Source.capability source in
      let capability =
        if caps.Capability.native_semijoin then "full"
        else if caps.Capability.point_select then "no-semijoin"
        else "minimal"
      in
      let p = Source.profile source in
      Buffer.add_string buffer
        (Printf.sprintf
           "[source %s]\nfile = %s\ncapability = %s\noverhead = %g\nsend = %g\nrecv = %g\ntuple = %g\n\n"
           (Source.name source) file capability p.Profile.request_overhead
           p.Profile.send_per_item p.Profile.recv_per_item p.Profile.recv_per_tuple))
    sources;
  Buffer.contents buffer

let load_groups ?intern path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_groups ~dir:(Filename.dirname path) ?intern text
  | exception Sys_error msg -> Error msg

let load ?intern path = Result.map (List.map fst) (load_groups ?intern path)
