open Fusion_data
open Fusion_cond
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics

exception Unsupported of string

exception Timeout of string

type fault = { probability : float; prng : Fusion_stats.Prng.t }

type t = {
  relation : Relation.t;
  capability : Capability.t;
  profile : Fusion_net.Profile.t;
  meter : Fusion_net.Meter.t;
  mutable fault : fault option;
  vecs : (Cond.t, Cond_vec.t) Hashtbl.t;
      (* compiled column scans, one per distinct condition seen *)
  preds : (Cond.t, Tuple.t -> bool) Hashtbl.t;
      (* hoisted row predicates for the per-item emulated path *)
}

let create ?(capability = Capability.full) ?(profile = Fusion_net.Profile.default) ?fault
    relation =
  {
    relation;
    capability;
    profile;
    meter = Fusion_net.Meter.create ();
    fault;
    vecs = Hashtbl.create 8;
    preds = Hashtbl.create 8;
  }

let set_fault t fault = t.fault <- fault

let name t = Relation.name t.relation
let relation t = t.relation
let schema t = Relation.schema t.relation
let capability t = t.capability
let profile t = t.profile

let charge t ~items_sent ~items_received ~tuples_received =
  Fusion_net.Meter.record t.meter t.profile ~items_sent ~items_received ~tuples_received

(* A timed-out request still costs its overhead (the packet went out)
   plus whatever was shipped with it. *)
let maybe_fail t ~items_sent =
  match t.fault with
  | Some { probability; prng } when Fusion_stats.Prng.bernoulli prng probability ->
    ignore (charge t ~items_sent ~items_received:0 ~tuples_received:0);
    raise (Timeout (Printf.sprintf "source %s timed out" (Relation.name t.relation)))
  | _ -> ()

(* Compiled artifacts are cached per structural condition: wrappers see
   the same handful of conditions over and over (one per plan node), so
   steady-state queries never recompile. Like the meter, these caches
   assume one lane drives a source at a time. *)
let vec t cond =
  match Hashtbl.find_opt t.vecs cond with
  | Some v -> v
  | None ->
    let v = Cond_vec.compile t.relation cond in
    Hashtbl.add t.vecs cond v;
    v

let predicate t cond =
  match Hashtbl.find_opt t.preds cond with
  | Some p -> p
  | None ->
    let p = Cond.compile (schema t) cond in
    Hashtbl.add t.preds cond p;
    p

(* One [Trace.Request] span per logical source query, whether or not it
   succeeds: the span's cost and request count are meter deltas, so
   timed-out attempts (which still pay their overhead) are attributed to
   the span that caused them. When neither tracing nor metrics are on,
   this is one closure call and one option match. *)
let observed t ~op f =
  Trace.span Trace.Request op (fun ctx ->
      if not (Trace.active ctx || Metrics.installed () <> None) then f ctx
      else begin
        let before = Fusion_net.Meter.totals t.meter in
        Fun.protect
          ~finally:(fun () ->
            let after = Fusion_net.Meter.totals t.meter in
            let cost = after.Fusion_net.Meter.cost -. before.Fusion_net.Meter.cost in
            let requests =
              after.Fusion_net.Meter.requests - before.Fusion_net.Meter.requests
            in
            if Trace.active ctx then begin
              Trace.attrs ctx
                [
                  ("source", Trace.Str (name t));
                  ("requests", Trace.Int requests);
                  ("cost", Trace.Float cost);
                ];
              Trace.charge ctx cost
            end;
            Metrics.record (fun r ->
                let labels = [ ("source", name t); ("op", op) ] in
                Metrics.incr r ~labels "fusion_requests_total"
                  ~by:(float_of_int requests);
                Metrics.incr r ~labels "fusion_request_cost_total" ~by:cost))
          (fun () -> f ctx)
      end)

let select_query t cond =
  observed t ~op:"sq" (fun ctx ->
      maybe_fail t ~items_sent:0;
      let answer = Cond_vec.select_items (vec t cond) in
      let cost =
        charge t ~items_sent:0 ~items_received:(Item_set.cardinal answer)
          ~tuples_received:0
      in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("cond", Trace.Str (Cond.to_string cond));
            ("items_sent", Trace.Int 0);
            ("items_received", Trace.Int (Item_set.cardinal answer));
          ];
      (answer, cost))

let native_semijoin t cond xs =
  maybe_fail t ~items_sent:(Item_set.cardinal xs);
  let answer = Cond_vec.semijoin_items (vec t cond) xs in
  let cost =
    charge t ~items_sent:(Item_set.cardinal xs)
      ~items_received:(Item_set.cardinal answer) ~tuples_received:0
  in
  (answer, cost)

(* One point-selection request per binding: [c AND M = m]. Each pays the
   request overhead — this is exactly why emulated semijoins are dear. *)
let emulated_semijoin t cond xs =
  let pred = predicate t cond in
  (* Iterate in value order (fold_items) so the per-item fault draws and
     charges happen in the same sequence as the historical fold; collect
     surviving ids and build the answer in one pass at the end. *)
  let kept, cost =
    Item_set.fold_items
      (fun id item (kept, cost) ->
        maybe_fail t ~items_sent:1;
        let hit = List.exists pred (Relation.tuples_of_item t.relation item) in
        let received = if hit then 1 else 0 in
        let c = charge t ~items_sent:1 ~items_received:received ~tuples_received:0 in
        ((if hit then id :: kept else kept), cost +. c))
      xs ([], 0.0)
  in
  match Item_set.table xs with
  | None -> (Item_set.empty, cost)
  | Some tbl -> (Item_set.of_ids tbl (Array.of_list kept), cost)

let semijoin_query t cond xs =
  if
    not
      (t.capability.Capability.native_semijoin || t.capability.Capability.point_select)
  then
    raise (Unsupported (Printf.sprintf "source %s cannot answer semijoin queries" (name t)));
  observed t ~op:"sjq" (fun ctx ->
      let emulated = not t.capability.Capability.native_semijoin in
      let answer, cost =
        if emulated then emulated_semijoin t cond xs else native_semijoin t cond xs
      in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("cond", Trace.Str (Cond.to_string cond));
            ("items_sent", Trace.Int (Item_set.cardinal xs));
            ("items_received", Trace.Int (Item_set.cardinal answer));
            ("emulated", Trace.Bool emulated);
          ];
      (answer, cost))

let load_query t =
  if not t.capability.Capability.load then
    raise (Unsupported (Printf.sprintf "source %s cannot ship its relation" (name t)));
  observed t ~op:"lq" (fun ctx ->
      maybe_fail t ~items_sent:0;
      let cost =
        charge t ~items_sent:0 ~items_received:0
          ~tuples_received:(Relation.cardinality t.relation)
      in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("items_sent", Trace.Int 0);
            ("tuples_received", Trace.Int (Relation.cardinality t.relation));
          ];
      (t.relation, cost))

let fetch_records t items =
  observed t ~op:"fetch" (fun ctx ->
      maybe_fail t ~items_sent:(Item_set.cardinal items);
      let tuples =
        Item_set.fold
          (fun item acc -> Relation.tuples_of_item t.relation item @ acc)
          items []
      in
      let cost =
        charge t ~items_sent:(Item_set.cardinal items) ~items_received:0
          ~tuples_received:(List.length tuples)
      in
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("items_sent", Trace.Int (Item_set.cardinal items));
            ("tuples_received", Trace.Int (List.length tuples));
          ];
      (tuples, cost))

let totals t = Fusion_net.Meter.totals t.meter
let reset_meter t = Fusion_net.Meter.reset t.meter

let pp ppf t =
  Format.fprintf ppf "%s%a %a [%d tuples, %d items]" (name t) Capability.pp t.capability
    Fusion_net.Profile.pp t.profile
    (Relation.cardinality t.relation)
    (Relation.distinct_item_count t.relation)
