(** Federation catalogs: declarative source descriptions.

    A catalog is an INI-style text file declaring, per source, where its
    data lives and how its wrapper behaves — the operational knowledge a
    mediator administrator has about autonomous Internet sources:

    {v # DMV federation
       [source CA]
       file = ca.csv
       capability = full        # full | no-semijoin | minimal
       overhead = 50            # per-request charge
       send = 0.5               # per item shipped to the source
       recv = 1.0               # per item received
       tuple = 8.0              # per full tuple received
       scale = 1.0              # multiplies all four charges
       replicas = 2             # mirrored wrappers ({!load_groups})

       [source NV]
       file = nv.csv
       capability = no-semijoin
       scale = 4.0 v}

    Only [file] is required; everything else defaults to a
    full-capability source with the default profile. [#] starts a
    comment. Relative [file] paths resolve against the catalog's
    directory.

    An optional [[view]] section declares the federation's common schema
    (in the CSV-header syntax); sources whose internal schema differs
    then provide a [map] of [common=internal] attribute pairs and are
    exported through {!View.export} — the paper's Section 2.1 wrapper
    mapping:

    {v [view]
       schema = *L:string,V:string,D:int

       [source NV]
       file = nv.csv                # internal header: *lic,vtype,year
       map = L=lic,V=vtype,D=year v}

    Semistructured sources declare [format = oem] and an extraction
    mapping instead (requires the [[view]] section; paths are
    [/]-separated):

    {v [source AZ]
       file = az.oem
       format = oem
       entities = record
       col.L = driver/id
       col.V = offense
       col.D = when v} *)

val load : ?intern:Fusion_data.Intern.t -> string -> (Source.t list, string) result
(** [load path] parses the catalog at [path] and loads every declared
    source's CSV relation. [intern] is the dictionary scope shared by
    all loaded relations — the catalog scope; defaults to
    {!Fusion_data.Intern.global}. *)

val parse : dir:string -> ?intern:Fusion_data.Intern.t -> string -> (Source.t list, string) result
(** [parse ~dir text] — as {!load}, with the text supplied directly and
    [dir] as the base for relative files. *)

val load_groups :
  ?intern:Fusion_data.Intern.t -> string -> ((Source.t * int) list, string) result
(** As {!load}, but each source comes with its declared replica count
    (the [replicas = K] key; defaults to 1). A replicated source is one
    logical relation served by [K] independently failing mirrors —
    {!Fusion_dist.Cluster.of_groups} turns the counts into replica
    groups with their own meters and fault injectors. *)

val parse_groups :
  dir:string ->
  ?intern:Fusion_data.Intern.t ->
  string ->
  ((Source.t * int) list, string) result
(** As {!load_groups}, with the text supplied directly. *)

val render : (Source.t * string) list -> string
(** [render [(source, file); ...]] writes a catalog declaring each
    source with its capability and profile, reading data from [file].
    [parse] of the result (with the CSVs in place) reconstructs
    equivalent sources. *)
