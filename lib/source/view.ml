open Fusion_data

let identity_mapping schema = List.map (fun (a, _) -> (a, a)) (Schema.attrs schema)

let export ~common ~mapping internal =
  let internal_schema = Relation.schema internal in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  (* Internal position and type for each common attribute, in common
     order. *)
  let resolve (name, ty) =
    match List.filter (fun (c, _) -> c = name) mapping with
    | [] -> Error (Printf.sprintf "common attribute %S is not mapped" name)
    | _ :: _ :: _ -> Error (Printf.sprintf "common attribute %S mapped twice" name)
    | [ (_, internal_name) ] -> (
      match Schema.pos internal_schema internal_name with
      | None ->
        Error
          (Printf.sprintf "mapping for %S references unknown internal attribute %S" name
             internal_name)
      | Some pos ->
        let internal_ty = Option.get (Schema.ty internal_schema internal_name) in
        if internal_ty <> ty then
          Error
            (Printf.sprintf "attribute %S: common type %s but internal %S has type %s" name
               (Value.ty_to_string ty) internal_name (Value.ty_to_string internal_ty))
        else Ok (name, internal_name, pos))
  in
  let rec resolve_all acc = function
    | [] -> Ok (List.rev acc)
    | attr :: rest ->
      let* entry = resolve attr in
      resolve_all (entry :: acc) rest
  in
  let* entries = resolve_all [] (Schema.attrs common) in
  (* The merge attributes must correspond. *)
  let* () =
    match
      List.find_opt (fun (name, _, _) -> name = Schema.merge common) entries
    with
    | Some (_, internal_name, _) when internal_name = Schema.merge internal_schema -> Ok ()
    | Some (_, internal_name, _) ->
      Error
        (Printf.sprintf
           "merge attribute %S maps to %S, which is not the internal merge attribute %S"
           (Schema.merge common) internal_name
           (Schema.merge internal_schema))
    | None -> Error "unreachable: merge attribute unmapped"
  in
  let positions = List.map (fun (_, _, pos) -> pos) entries in
  let exported =
    Relation.create ~name:(Relation.name internal) ~intern:(Relation.intern internal) common
  in
  Relation.iter
    (fun tuple -> Relation.insert exported (Array.of_list (List.map (Tuple.get tuple) positions)))
    internal;
  Ok exported
