open Fusion_data

type mapping = { entities : string list; columns : (string * string list) list }

let relation ~name ~common ?intern mapping document =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  (* Column paths in schema order. *)
  let* ordered =
    let resolve (attr, _ty) =
      match List.filter (fun (a, _) -> a = attr) mapping.columns with
      | [ (_, path) ] -> Ok (attr, path)
      | [] -> Error (Printf.sprintf "attribute %S has no path in the mapping" attr)
      | _ -> Error (Printf.sprintf "attribute %S mapped twice" attr)
    in
    List.fold_left
      (fun acc attr ->
        let* acc = acc in
        let* entry = resolve attr in
        Ok (entry :: acc))
      (Ok []) (Schema.attrs common)
    |> Result.map List.rev
  in
  let merge = Schema.merge common in
  let entities = Oem.select document mapping.entities in
  let rec build relation_rows = function
    | [] -> Ok (List.rev relation_rows)
    | entity :: rest -> (
      let values =
        List.map
          (fun (attr, path) ->
            (attr, Option.value ~default:Value.Null (Oem.first_atom entity path)))
          ordered
      in
      match List.assoc merge values with
      | Value.Null -> build relation_rows rest (* unjoinable: skip *)
      | _ -> build (List.map snd values :: relation_rows) rest)
  in
  let* rows = build [] entities in
  Relation.of_rows ~name ?intern common rows

let load_file ~name ~common ?intern mapping path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Oem.parse text with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok document -> relation ~name ~common ?intern mapping document)
