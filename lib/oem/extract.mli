(** Relational views over OEM sources — the wrapper's "map it to the
    common view" step (Section 2.1) for semistructured data.

    A mapping names the path that enumerates the source's entity
    objects and, for each attribute of the common schema, the path
    (relative to an entity) of its value. Missing paths yield [Null];
    entities whose merge attribute is missing are skipped (they can
    never join). *)

open Fusion_data

type mapping = {
  entities : string list;  (** path from the root to each entity object *)
  columns : (string * string list) list;
      (** (common attribute, path relative to the entity) — every
          schema attribute must appear exactly once *)
}

val relation :
  name:string ->
  common:Schema.t ->
  ?intern:Intern.t ->
  mapping ->
  Oem.t ->
  (Relation.t, string) result
(** Fails when a column is missing/duplicated in the mapping or an
    extracted atom has the wrong type for its attribute. [intern] is
    the dictionary scope for the extracted relation. *)

val load_file :
  name:string ->
  common:Schema.t ->
  ?intern:Intern.t ->
  mapping ->
  string ->
  (Relation.t, string) result
(** Parses the OEM document at the path, then {!relation}. *)
