(* A sharded, replicated federation.

   The cluster keeps TWO views of the same data. The oracle view is a
   single Mediator.t over the original sources: the coordinator plans
   on it, and tests compare against its answers. The distributed view
   is a shard × source grid of replica groups, each group serving the
   shard's hash slice of one source relation. Both views share one
   dictionary scope, so interned ids mean the same thing everywhere. *)

module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator

type t = {
  med : Mediator.t;
  grid : Replica.t array array;  (* grid.(shard).(source) *)
  shards : int;
  stride : int;  (* max replica-group size: the lane-index multiplier *)
}

let create_groups ?profile_of ?staleness_of ~shards groups =
  if shards < 1 then Error "cluster: need at least one shard"
  else
    match Mediator.create (List.map fst groups) with
    | Error msg -> Error msg
    | Ok med ->
      let counts = List.map snd groups in
      if List.exists (fun k -> k < 1) counts then
        Error "cluster: every source needs at least one replica"
      else
        let sliced = Partition.split ~shards (List.map fst groups) in
        let grid =
          Array.init shards (fun shard ->
              Array.of_list
                (List.map2
                   (fun source replicas ->
                     let profile_of =
                       Option.map
                         (fun f ~replica profile ->
                           f ~shard ~source:(Source.name source) ~replica profile)
                         profile_of
                     in
                     let staleness_of =
                       Option.map
                         (fun f ~replica -> f ~shard ~source:(Source.name source) ~replica)
                         staleness_of
                     in
                     Replica.create ~replicas ?profile_of ?staleness_of source)
                   sliced.(shard) counts))
        in
        let stride = List.fold_left max 1 counts in
        Ok { med; grid; shards; stride }

let create ?(replicas = 1) ?profile_of ?staleness_of ~shards sources =
  create_groups ?profile_of ?staleness_of ~shards (List.map (fun s -> (s, replicas)) sources)

let of_groups = create_groups

let of_catalog ?profile_of ?staleness_of ~shards path =
  match Fusion_source.Catalog.load_groups path with
  | Error msg -> Error msg
  | Ok groups -> create_groups ?profile_of ?staleness_of ~shards groups

let mediator t = t.med
let schema t = Mediator.schema t.med
let shards t = t.shards
let n_sources t = Array.length t.grid.(0)
let stride t = t.stride
let group t ~shard ~source = t.grid.(shard).(source)
let replica t ~shard ~source ~replica = Replica.replica t.grid.(shard).(source) replica

let set_fault t ~shard ~source ~replica:r fault =
  Replica.set_fault t.grid.(shard).(source) r fault

let kill t ~shard ~source ~replica:r = Replica.kill t.grid.(shard).(source) r

let kill_shard t ~shard =
  Array.iter (fun g -> for r = 0 to Replica.size g - 1 do Replica.kill g r done) t.grid.(shard)

let reset_meters t = Array.iter (Array.iter Replica.reset_meters) t.grid

(* One Sim.Live lane per (shard, source, replica-slot): replicas of a
   source are genuinely parallel servers, while requests to the same
   replica queue FIFO behind each other on its lane. *)
let lanes t = t.shards * n_sources t * t.stride
let lane t ~shard ~source ~replica = ((shard * n_sources t) + source) * t.stride + replica

let lane_name t lane =
  let stride = t.stride in
  let ns = n_sources t in
  let replica = lane mod stride in
  let source = lane / stride mod ns in
  let shard = lane / stride / ns in
  Printf.sprintf "s%d/%s#%d" shard (Replica.name t.grid.(shard).(source)) replica
