(** Sharded serving: one {!Fusion_serve.Server} per shard behind a
    single submit path.

    Each shard runs its own serving loop over the shard's replica-0
    sources, created with the shard's label so every [fusion_serve_*]
    metric series carries a [("shard", "sN")] label in the shared
    registry. A submission is planned once on the cluster's oracle
    mediator and fans out to all shards; the joined {!outcome} unions
    the per-shard answers (exact under merge-id partitioning) and
    reports the slowest shard's response time. *)

open Fusion_data

type t

val create :
  ?policy:Fusion_serve.Server.policy ->
  ?max_inflight:int ->
  ?cache_ttl:float ->
  ?exec_policy:Fusion_plan.Exec.policy ->
  Cluster.t ->
  t
(** Options as in {!Fusion_serve.Server.create}, applied to every
    shard's server. *)

val cluster : t -> Cluster.t
val shards : t -> int
val server : t -> int -> Fusion_serve.Server.t
(** One shard's serving loop, for its stats, timeline and tenants. *)

val submit :
  t ->
  at:float ->
  ?tenant:string ->
  ?priority:int ->
  ?deadline:float ->
  Fusion_query.Query.t ->
  (int, string) result
(** Optimize once, enqueue the job on every shard at instant [at];
    returns the fleet-wide submission id. *)

val step : t -> bool
(** One scheduling step on every shard; [false] when all are idle. *)

val drain : t -> unit

type outcome = {
  f_id : int;
  f_answer : Item_set.t option;  (** [None] when any shard failed or shed *)
  f_response : float;  (** the slowest shard's response time *)
  f_cost : float;  (** summed over shards *)
  f_partial : bool;
  f_failed : string option;  (** first failure among the shards, if any *)
}

val outcomes : t -> outcome list
(** Every submission joined across its shards, in submission order. *)
