(* The scatter/gather coordinator.

   One query, one plan (chosen on the cluster's oracle mediator),
   scattered as Fragment.t to every shard over the wire encoding, and
   executed against the shard's replica groups on one shared
   [Fusion_rt.Runtime]. On the simulator backend (the default) shards
   execute sequentially against the discrete-event clock; on a real
   runtime each fragment runs as its own fibre and replica requests
   really overlap across lanes. The gather step is
   Fragment.merge_answers — exact because the shards' slices are
   disjoint on merge ids.

   The per-request routine is where the distribution machinery lives:
   a routing policy picks the replica to try first, failover cycles
   through the rest of the group (failed attempts still occupy their
   lane and charge their overhead, exactly like the single mediator's
   retry accounting), and an optional hedge factor duplicates a
   request onto the best alternative replica when the routed one's
   predicted finish looks straggler-like. *)

open Fusion_data
open Fusion_cond
module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator
module Optimizer = Fusion_core.Optimizer
module Opt_env = Fusion_core.Opt_env
module Optimized = Fusion_core.Optimized
module Op = Fusion_plan.Op
module Plan = Fusion_plan.Plan
module Fragment = Fusion_plan.Fragment
module Sim = Fusion_net.Sim
module Meter = Fusion_net.Meter
module Runtime = Fusion_rt.Runtime
module Fiber = Fusion_rt.Fiber
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Analyze = Fusion_obs.Analyze

module Config = struct
  type plan_mode = [ `Global | `Local ]

  type t = {
    algo : Optimizer.algo;
    stats : Opt_env.stats_mode;
    retries : int;
    on_exhausted : [ `Fail | `Partial ];
    routing : Replica.routing;
    hedge : float option;
    plan_mode : plan_mode;
    runtime : Runtime.spec;
  }

  let default =
    {
      algo = Optimizer.Sja_plus;
      stats = Opt_env.Exact;
      retries = 0;
      on_exhausted = `Fail;
      routing = Replica.Primary;
      hedge = None;
      plan_mode = `Global;
      runtime = `Sim;
    }
end

type shard_report = {
  sr_shard : int;
  sr_answer : Item_set.t;
  sr_cost : float;
  sr_makespan : float;
  sr_busy : float;
  sr_requests : int;
  sr_failures : int;
  sr_failovers : int;
  sr_hedges : int;
  sr_hedge_wins : int;
  sr_partial : bool;
}

type report = {
  r_shard_count : int;
  r_replica_count : int;  (** the cluster's stride: largest replica group *)
  r_answer : Item_set.t;
  r_optimized : Optimized.t;  (** the oracle mediator's plan (the one scattered under [`Global]) *)
  r_fragments : Fragment.t list;
  r_shards : shard_report list;
  r_total_cost : float;
  r_makespan : float;
  r_failures : int;
  r_failovers : int;
  r_hedges : int;
  r_hedge_wins : int;
  r_partial : bool;
  r_staleness : float;
  r_per_source : (string * Meter.totals) list;
  r_timeline : Sim.timeline;
  r_critical_path : Analyze.path;
}

type binding = Items of Item_set.t | Loaded of Relation.t

exception Runtime_error of string

(* Execute one fragment against its shard's replica groups. All
   runtime state (lanes, task ids, labels) is shared across shards;
   lanes are disjoint per shard so their schedules never interact. *)
let exec_fragment ~cluster ~(config : Config.t) ~rt ~next_id ~labels ~cond_of ~ctx
    ~conds fragment =
  let shard = fragment.Fragment.shard in
  let plan = fragment.Fragment.plan in
  let env : (string, binding * float * int list) Hashtbl.t = Hashtbl.create 16 in
  let failures = ref 0 and failovers = ref 0 in
  let hedges = ref 0 and hedge_wins = ref 0 in
  let partial = ref false in
  let shard_makespan = ref 0.0 in
  let items var =
    match Hashtbl.find_opt env var with
    | Some (Items s, avail, prod) -> (s, avail, prod)
    | Some (Loaded _, _, _) ->
      raise (Runtime_error (var ^ " is a loaded relation, not an item set"))
    | None -> raise (Runtime_error ("undefined variable " ^ var))
  in
  let loaded var =
    match Hashtbl.find_opt env var with
    | Some (Loaded r, avail, prod) -> (r, avail, prod)
    | Some (Items _, _, _) ->
      raise (Runtime_error (var ^ " is an item set, not a loaded relation"))
    | None -> raise (Runtime_error ("undefined variable " ^ var))
  in
  let cond i =
    if i < 0 || i >= Array.length conds then
      raise (Runtime_error (Printf.sprintf "condition index %d out of range" i));
    conds.(i)
  in
  (* One attempt of a source op at one replica: the fault is drawn (and
     the overhead charged) when the request is issued; the lane holds
     the replica for the metered duration either way. *)
  let try_replica ~op ~source:j ~probe ~ready ~deps ~hedged r =
    let group = Cluster.group cluster ~shard ~source:j in
    let src = Replica.replica group r in
    let lane = Cluster.lane cluster ~shard ~source:j ~replica:r in
    (* The thunk touches only the replica source: on a real runtime it
       runs on the lane's pool worker, where same-lane requests
       serialize. A failed attempt still occupies the lane for its
       metered duration, exactly like the single mediator's retry
       accounting, so it books either way. *)
    let thunk () =
      let before = (Source.totals src).Meter.cost in
      let outcome =
        match (op : Op.t) with
        | Select { cond = c; _ } ->
          (try Ok (Items (fst (Source.select_query src (cond c)))) with
          | Source.Timeout msg -> Error msg)
        | Semijoin { cond = c; _ } ->
          (try Ok (Items (fst (Source.semijoin_query src (cond c) probe))) with
          | Source.Timeout msg -> Error msg)
        | Load _ ->
          (try Ok (Loaded (fst (Source.load_query src))) with
          | Source.Timeout msg -> Error msg)
        | _ -> assert false
      in
      let duration = (Source.totals src).Meter.cost -. before in
      (outcome, duration, true)
    in
    let id = next_id () in
    Hashtbl.replace labels id
      (Printf.sprintf "%s %s" (Op.name op) (Cluster.lane_name cluster lane));
    Hashtbl.replace cond_of id
      (match (op : Op.t) with
      | Select { cond = c; _ } | Semijoin { cond = c; _ } -> Some c
      | _ -> None);
    let outcome, sched = Runtime.call rt ~id ~server:lane ~ready ~deps thunk in
    if Trace.active ctx then
      Trace.span Trace.Request (Op.name op) (fun rctx ->
          Trace.attrs rctx
            [
              ("shard", Trace.Int shard);
              ("replica", Trace.Int r);
              ("lane", Trace.Str (Cluster.lane_name cluster lane));
              ("hedged", Trace.Bool hedged);
              ("ok", Trace.Bool (Result.is_ok outcome));
            ])
    |> ignore;
    shard_makespan := max !shard_makespan sched.Sim.finish;
    (outcome, sched, id)
  in
  (* Routed execution of one source op: try the routing order with a
     budget of [retries] extra attempts, optionally hedging the first
     attempt onto the best alternative replica. *)
  let route_op ~op ~source:j ~probe ~ready ~deps =
    let group = Cluster.group cluster ~shard ~source:j in
    let order = Replica.order group config.Config.routing in
    let width = List.length order in
    let budget = config.Config.retries + width in
    let bind_result outcome finish id =
      match outcome with
      | Items _ | Loaded _ -> (outcome, finish, [ id ])
    in
    let fail_exhausted ~ready ~last_id =
      match config.Config.on_exhausted with
      | `Fail -> raise (Source.Timeout (Op.dst op))
      | `Partial ->
        partial := true;
        let empty_binding =
          match (op : Op.t) with
          | Select _ | Semijoin _ -> Items Item_set.empty
          | Load _ ->
            let src = Replica.replica group 0 in
            Loaded (Relation.create ~name:(Source.name src) (Source.schema src))
          | _ -> assert false
        in
        (empty_binding, ready, Option.to_list last_id)
    in
    let rec failover attempt ~ready ~prev ~last_id =
      if attempt >= budget then fail_exhausted ~ready ~last_id
      else begin
        let r = List.nth order (attempt mod width) in
        if attempt > 0 && prev <> Some r then incr failovers;
        match try_replica ~op ~source:j ~probe ~ready ~deps ~hedged:false r with
        | Ok v, sched, id ->
          Replica.note_success group r;
          bind_result v sched.Sim.finish id
        | Error _, sched, id ->
          incr failures;
          Replica.note_timeout group r;
          failover (attempt + 1) ~ready:sched.Sim.finish ~prev:(Some r) ~last_id:(Some id)
      end
    in
    (* Hedge decision on the first attempt only: predicted finish from
       lane availability plus the replica's advertised speed. *)
    let hedge_alt primary =
      match config.Config.hedge with
      | None -> None
      | Some factor when width < 2 -> ignore factor; None
      | Some factor ->
        let predicted r =
          let lane = Cluster.lane cluster ~shard ~source:j ~replica:r in
          max ready (Runtime.free_at rt lane) +. Replica.speed_score group r
        in
        let alts = List.filter (fun r -> r <> primary) order in
        let best =
          List.fold_left
            (fun acc r ->
              match acc with
              | Some b when predicted b <= predicted r -> acc
              | _ -> Some r)
            None alts
        in
        (match best with
        | Some alt when predicted primary > factor *. predicted alt -> Some alt
        | _ -> None)
    in
    let primary = List.hd order in
    match hedge_alt primary with
    | None -> failover 0 ~ready ~prev:None ~last_id:None
    | Some alt -> (
      incr hedges;
      (* The routed replica draws its fault first, then the hedge. *)
      let op_p, sched_p, id_p = try_replica ~op ~source:j ~probe ~ready ~deps ~hedged:false primary in
      let op_a, sched_a, id_a = try_replica ~op ~source:j ~probe ~ready ~deps ~hedged:true alt in
      match op_p, op_a with
      | Ok vp, Ok va ->
        Replica.note_success group primary;
        Replica.note_success group alt;
        if sched_a.Sim.finish < sched_p.Sim.finish then begin
          incr hedge_wins;
          bind_result va sched_a.Sim.finish id_a
        end
        else bind_result vp sched_p.Sim.finish id_p
      | Ok vp, Error _ ->
        incr failures;
        Replica.note_success group primary;
        Replica.note_timeout group alt;
        bind_result vp sched_p.Sim.finish id_p
      | Error _, Ok va ->
        incr failures;
        incr hedge_wins;
        Replica.note_timeout group primary;
        Replica.note_success group alt;
        bind_result va sched_a.Sim.finish id_a
      | Error _, Error _ ->
        failures := !failures + 2;
        Replica.note_timeout group primary;
        Replica.note_timeout group alt;
        let ready = min sched_p.Sim.finish sched_a.Sim.finish in
        failover 2 ~ready ~prev:(Some alt) ~last_id:(Some id_a))
  in
  let exec_op (op : Op.t) =
    match op with
    | Select { dst; source = j; _ } ->
      let b, avail, prod = route_op ~op ~source:j ~probe:Item_set.empty ~ready:0.0 ~deps:[] in
      Hashtbl.replace env dst (b, avail, prod)
    | Semijoin { dst; source = j; input; _ } ->
      let probe, ready, deps = items input in
      let b, avail, prod = route_op ~op ~source:j ~probe ~ready ~deps in
      Hashtbl.replace env dst (b, avail, prod)
    | Load { dst; source = j } ->
      let b, avail, prod = route_op ~op ~source:j ~probe:Item_set.empty ~ready:0.0 ~deps:[] in
      Hashtbl.replace env dst (b, avail, prod)
    | Local_select { dst; cond = c; input } ->
      let relation, avail, prod = loaded input in
      let pred = Cond.compile (Relation.schema relation) (cond c) in
      Hashtbl.replace env dst (Items (Relation.select_items relation pred), avail, prod)
    | Union { dst; args } ->
      let parts = List.map items args in
      let answer = Item_set.union_list (List.map (fun (s, _, _) -> s) parts) in
      let avail = List.fold_left (fun a (_, t, _) -> max a t) 0.0 parts in
      let prod = List.concat_map (fun (_, _, p) -> p) parts in
      Hashtbl.replace env dst (Items answer, avail, prod)
    | Inter { dst; args } ->
      let parts = List.map items args in
      let answer = Item_set.inter_list (List.map (fun (s, _, _) -> s) parts) in
      let avail = List.fold_left (fun a (_, t, _) -> max a t) 0.0 parts in
      let prod = List.concat_map (fun (_, _, p) -> p) parts in
      Hashtbl.replace env dst (Items answer, avail, prod)
    | Diff { dst; left; right } ->
      let l, tl, pl = items left and r, tr, pr = items right in
      Hashtbl.replace env dst (Items (Item_set.diff l r), max tl tr, pl @ pr)
  in
  List.iter exec_op (Plan.ops plan);
  let answer, _, _ = items (Plan.output plan) in
  let requests =
    let n = ref 0 in
    for j = 0 to Cluster.n_sources cluster - 1 do
      let g = Cluster.group cluster ~shard ~source:j in
      for r = 0 to Replica.size g - 1 do
        n := !n + (Source.totals (Replica.replica g r)).Meter.requests
      done
    done;
    !n
  in
  let cost =
    let c = ref 0.0 in
    for j = 0 to Cluster.n_sources cluster - 1 do
      c := !c +. (Replica.totals (Cluster.group cluster ~shard ~source:j)).Meter.cost
    done;
    !c
  in
  let busy =
    let all = Runtime.busy rt in
    let b = ref 0.0 in
    for j = 0 to Cluster.n_sources cluster - 1 do
      for r = 0 to Cluster.stride cluster - 1 do
        b := !b +. all.(Cluster.lane cluster ~shard ~source:j ~replica:r)
      done
    done;
    !b
  in
  {
    sr_shard = shard;
    sr_answer = answer;
    sr_cost = cost;
    sr_makespan = !shard_makespan;
    sr_busy = busy;
    sr_requests = requests;
    sr_failures = !failures;
    sr_failovers = !failovers;
    sr_hedges = !hedges;
    sr_hedge_wins = !hedge_wins;
    sr_partial = !partial;
  }

let fragments_for ~cluster ~(config : Config.t) query =
  let algo = config.Config.algo and stats = config.Config.stats in
  match Mediator.plan_for ~algo ~stats (Cluster.mediator cluster) query with
  | Error msg -> Error msg
  | Ok prepared ->
    let optimized = prepared.Mediator.prep_optimized in
    let conds = Fusion_query.Query.conditions prepared.Mediator.prep_query in
    let shards = Cluster.shards cluster in
    let fragment_of shard =
      match config.Config.plan_mode with
      | `Global -> Ok (Fragment.of_plan ~shard optimized.Optimized.plan)
      | `Local -> (
        (* Plan against the shard's own slice statistics (replica 0 of
           every group sees exactly the shard's data). *)
        let sources =
          List.init (Cluster.n_sources cluster) (fun j ->
              Cluster.replica cluster ~shard ~source:j ~replica:0)
        in
        match Mediator.create sources with
        | Error msg -> Error msg
        | Ok med -> (
          match Mediator.plan_for ~algo ~stats med query with
          | Error msg -> Error msg
          | Ok p -> Ok (Fragment.of_plan ~shard p.Mediator.prep_optimized.Optimized.plan)))
    in
    let rec scatter shard acc =
      if shard >= shards then Ok (List.rev acc)
      else
        match fragment_of shard with
        | Error msg -> Error msg
        | Ok f -> (
          (* The wire round trip: every fragment is encoded and decoded
             exactly as a remote shard would receive it. *)
          match Fragment.ship f with
          | Error msg -> Error ("fragment for shard " ^ string_of_int shard ^ ": " ^ msg)
          | Ok f -> scatter (shard + 1) (f :: acc))
    in
    Result.map (fun frags -> (optimized, conds, frags)) (scatter 0 [])

let run ?(config = Config.default) cluster query =
  Trace.span Trace.Run "coordinator.run" @@ fun ctx ->
  if Trace.active ctx then
    Trace.attrs ctx
      [
        ("shards", Trace.Int (Cluster.shards cluster));
        ("replicas", Trace.Int (Cluster.stride cluster));
        ("routing", Trace.Str (Replica.routing_name config.Config.routing));
      ];
  match fragments_for ~cluster ~config query with
  | Error msg -> Error msg
  | Ok (optimized, conds, fragments) -> (
    Cluster.reset_meters cluster;
    let rt = Runtime.of_spec config.Config.runtime ~servers:(Cluster.lanes cluster) in
    let ids = ref 0 in
    let next_id () = let id = !ids in incr ids; id in
    let labels : (int, string) Hashtbl.t = Hashtbl.create 64 in
    let cond_of : (int, int option) Hashtbl.t = Hashtbl.create 64 in
    (* On the simulator, shards execute one after another (their lanes
       are disjoint, so the schedule is as-if concurrent) under Phase
       spans. On a real runtime each fragment is a fibre and really
       overlaps; spans would interleave across fibres, so they are
       confined to the simulator path. *)
    let exec_all () =
      if Runtime.is_real rt then
        Runtime.run rt (fun () ->
            Fiber.Switch.run (fun sw ->
                List.map
                  (fun fragment ->
                    Fiber.Switch.fork_promise sw (fun () ->
                        exec_fragment ~cluster ~config ~rt ~next_id ~labels ~cond_of
                          ~ctx ~conds fragment))
                  fragments
                |> List.map Fiber.Promise.await))
      else
        List.map
          (fun fragment ->
            Trace.span (Trace.Phase "shard")
              (Printf.sprintf "shard %d" fragment.Fragment.shard) (fun sctx ->
                if Trace.active sctx then
                  Trace.attr sctx "shard" (Trace.Int fragment.Fragment.shard);
                exec_fragment ~cluster ~config ~rt ~next_id ~labels ~cond_of ~ctx
                  ~conds fragment))
          fragments
    in
    match Fun.protect ~finally:(fun () -> Runtime.shutdown rt) exec_all with
    | shard_reports ->
      let answer = Fragment.merge_answers (List.map (fun s -> s.sr_answer) shard_reports) in
      let timeline = Runtime.timeline rt in
      let tasks =
        Analyze.of_timeline
          ~label:(fun id -> Option.value ~default:"" (Hashtbl.find_opt labels id))
          ~cond:(fun id -> Option.join (Hashtbl.find_opt cond_of id))
          timeline
      in
      let sum f = List.fold_left (fun a s -> a + f s) 0 shard_reports in
      let staleness =
        let worst = ref 0.0 in
        for shard = 0 to Cluster.shards cluster - 1 do
          for j = 0 to Cluster.n_sources cluster - 1 do
            let g = Cluster.group cluster ~shard ~source:j in
            for r = 0 to Replica.size g - 1 do
              if (Source.totals (Replica.replica g r)).Meter.requests > 0 then
                worst := max !worst (Replica.staleness g r)
            done
          done
        done;
        !worst
      in
      let per_source =
        List.init (Cluster.n_sources cluster) (fun j ->
            let totals = ref Meter.zero in
            for shard = 0 to Cluster.shards cluster - 1 do
              totals :=
                Meter.add !totals (Replica.totals (Cluster.group cluster ~shard ~source:j))
            done;
            (Replica.name (Cluster.group cluster ~shard:0 ~source:j), !totals))
      in
      let report =
        {
          r_shard_count = Cluster.shards cluster;
          r_replica_count = Cluster.stride cluster;
          r_answer = answer;
          r_optimized = optimized;
          r_fragments = fragments;
          r_shards = shard_reports;
          r_total_cost = List.fold_left (fun a s -> a +. s.sr_cost) 0.0 shard_reports;
          r_makespan = timeline.Sim.makespan;
          r_failures = sum (fun s -> s.sr_failures);
          r_failovers = sum (fun s -> s.sr_failovers);
          r_hedges = sum (fun s -> s.sr_hedges);
          r_hedge_wins = sum (fun s -> s.sr_hedge_wins);
          r_partial = List.exists (fun s -> s.sr_partial) shard_reports;
          r_staleness = staleness;
          r_per_source = per_source;
          r_timeline = timeline;
          r_critical_path = Analyze.critical_path tasks;
        }
      in
      Metrics.record (fun r ->
          Metrics.incr r "fusion_dist_runs_total";
          Metrics.observe r "fusion_dist_answer_size" (Item_set.cardinal answer);
          List.iter
            (fun s ->
              let labels = [ ("shard", "s" ^ string_of_int s.sr_shard) ] in
              Metrics.incr r ~labels "fusion_dist_requests_total"
                ~by:(float_of_int s.sr_requests);
              Metrics.incr r ~labels "fusion_dist_failures_total"
                ~by:(float_of_int s.sr_failures);
              Metrics.incr r ~labels "fusion_dist_failovers_total"
                ~by:(float_of_int s.sr_failovers);
              Metrics.incr r ~labels "fusion_dist_hedges_total"
                ~by:(float_of_int s.sr_hedges);
              Metrics.incr r ~labels "fusion_dist_cost_total" ~by:s.sr_cost)
            shard_reports);
      Ok report
    | exception Source.Unsupported msg -> Error ("execution failed: " ^ msg)
    | exception Source.Timeout msg ->
      Error ("execution failed (all replicas unreachable): " ^ msg)
    | exception Runtime_error msg -> Error ("execution failed: " ^ msg))

let run_sql ?config cluster sql =
  match Fusion_query.Sql.parse_fusion ~schema:(Cluster.schema cluster) ~union:"U" sql with
  | Error msg -> Error msg
  | Ok query -> run ?config cluster query

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "sharded mediation: %d shards x %d replicas@," r.r_shard_count
    r.r_replica_count;
  Format.fprintf ppf "answer: %d items  total cost: %.2f  makespan: %.2f@,"
    (Item_set.cardinal r.r_answer) r.r_total_cost r.r_makespan;
  List.iter
    (fun s ->
      Format.fprintf ppf
        "shard s%d: %d items  cost %.2f  makespan %.2f  busy %.2f  requests %d  \
         failures %d  failovers %d  hedges %d (won %d)%s@,"
        s.sr_shard
        (Item_set.cardinal s.sr_answer)
        s.sr_cost s.sr_makespan s.sr_busy s.sr_requests s.sr_failures s.sr_failovers
        s.sr_hedges s.sr_hedge_wins
        (if s.sr_partial then "  PARTIAL" else ""))
    r.r_shards;
  Format.fprintf ppf "failures %d  failovers %d  hedges %d (won %d)@," r.r_failures
    r.r_failovers r.r_hedges r.r_hedge_wins;
  Format.fprintf ppf "staleness bound: %.2f@," r.r_staleness;
  if r.r_partial then Format.fprintf ppf "PARTIAL ANSWER@,";
  Format.fprintf ppf "critical path:@,  @[<v>%a@]"
    (fun ppf -> Analyze.pp_path ppf)
    r.r_critical_path;
  Format.fprintf ppf "@]"
