(* A replica group: K interchangeable copies of one shard-local source.

   All replicas serve the same relation slice, but each is a fresh
   Source.t so meters, network profiles and fault injectors are
   independent — replica 2 can straggle or die without touching
   replica 0. Routing decides which replica a request tries first;
   failover cycles through the rest. *)

module Source = Fusion_source.Source
module Profile = Fusion_net.Profile

type routing = Primary | Round_robin | Least_cost

let routing_name = function
  | Primary -> "primary"
  | Round_robin -> "round-robin"
  | Least_cost -> "least-cost"

let routing_of_string = function
  | "primary" -> Some Primary
  | "round-robin" | "rr" -> Some Round_robin
  | "least-cost" | "lc" -> Some Least_cost
  | _ -> None

type t = {
  replicas : Source.t array;
  staleness : float array;
  mutable fails : int array;  (* consecutive timeouts, per replica *)
  mutable next : int;  (* round-robin cursor *)
}

let create ?(replicas = 1) ?profile_of ?staleness_of source =
  if replicas < 1 then invalid_arg "Replica.create: need at least one replica";
  let capability = Source.capability source in
  let base_profile = Source.profile source in
  let relation = Source.relation source in
  let profile r =
    match profile_of with None -> base_profile | Some f -> f ~replica:r base_profile
  in
  let staleness r =
    match staleness_of with None -> 0.0 | Some f -> max 0.0 (f ~replica:r)
  in
  {
    replicas = Array.init replicas (fun r -> Source.create ~capability ~profile:(profile r) relation);
    staleness = Array.init replicas staleness;
    fails = Array.make replicas 0;
    next = 0;
  }

let size t = Array.length t.replicas
let replica t r = t.replicas.(r)
let name t = Source.name t.replicas.(0)
let staleness t r = t.staleness.(r)
let set_fault t r fault = Source.set_fault t.replicas.(r) fault

let kill t r =
  Source.set_fault t.replicas.(r)
    (Some { Source.probability = 1.0; prng = Fusion_stats.Prng.create 0 })

(* Published-knowledge speed proxy (the "knowledge-based" selection of
   the multi-replica literature): the advertised profile charges, not
   observed latencies — observations feed [fails] instead. *)
let speed_score t r =
  let p = Source.profile t.replicas.(r) in
  p.Profile.request_overhead +. p.Profile.send_per_item +. p.Profile.recv_per_item
  +. p.Profile.recv_per_tuple

let note_timeout t r = t.fails.(r) <- t.fails.(r) + 1
let note_success t r = t.fails.(r) <- 0

let order t routing =
  let n = size t in
  match routing with
  | Primary -> List.init n Fun.id
  | Round_robin ->
    let start = t.next mod n in
    t.next <- t.next + 1;
    List.init n (fun i -> (start + i) mod n)
  | Least_cost ->
    (* Health first (consecutive timeouts demote a replica), then the
       advertised speed, then index for a stable total order. *)
    List.init n Fun.id
    |> List.sort (fun a b ->
           match compare t.fails.(a) t.fails.(b) with
           | 0 -> (
             match compare (speed_score t a) (speed_score t b) with
             | 0 -> compare a b
             | c -> c)
           | c -> c)

let reset_meters t = Array.iter Source.reset_meter t.replicas

let totals t =
  Array.fold_left
    (fun acc s -> Fusion_net.Meter.add acc (Source.totals s))
    Fusion_net.Meter.zero t.replicas
