(** Merge-id hash partitioning of a federation across mediator shards.

    Dictionary ids ({!Fusion_data.Intern}) are dense ints, so shard
    ownership is a flat integer hash. Slicing every source relation by
    the owner of each tuple's merge id puts an item's {e entire}
    evidence — every tuple with that merge value, across all sources —
    on exactly one shard. Selections, semijoins and the local set
    algebra distribute over disjoint slices, so any valid plan run on a
    shard computes [answer ∩ slice] and the union over shards is the
    exact global answer (the correctness argument behind
    {!Fusion_plan.Fragment.merge_answers}; see DESIGN.md). *)

open Fusion_data

val shard_of : shards:int -> Intern.id -> int
(** The shard owning a dictionary id: deterministic, uniform via a
    splitmix64 finalizer (dense ids would stripe under a bare mod).
    With [shards = 1] always 0. @raise Invalid_argument on a
    non-positive shard count. *)

val shard_of_value : shards:int -> Intern.t -> Value.t -> int
(** Owner of a merge {e value} under the given dictionary scope. *)

val slice : shards:int -> shard:int -> Relation.t -> Relation.t
(** The tuples whose merge id hashes to [shard], in original order,
    sharing the source relation's name, schema and intern scope. *)

val split : shards:int -> Fusion_source.Source.t list -> Fusion_source.Source.t list array
(** One sliced federation per shard: each source keeps its capability
    and profile, but serves only its shard's slice, with a fresh meter
    and no fault injector. [split ~shards:1] is behaviorally identical
    to the input federation. *)
