(** A sharded, replicated federation: the distributed mediator's data
    plane plus its single-mediator oracle.

    The cluster keeps two views of the same data in one dictionary
    scope. The {e oracle} view is a plain {!Fusion_mediator.Mediator.t}
    over the original sources — the coordinator plans on it, and the
    property tests compare against its answers. The {e distributed}
    view is a [shards × sources] grid of {!Replica} groups, each group
    serving the shard's {!Partition} slice of one source relation. *)

module Source = Fusion_source.Source

type t

val create :
  ?replicas:int ->
  ?profile_of:
    (shard:int -> source:string -> replica:int -> Fusion_net.Profile.t -> Fusion_net.Profile.t) ->
  ?staleness_of:(shard:int -> source:string -> replica:int -> float) ->
  shards:int ->
  Source.t list ->
  (t, string) result
(** Partition [sources] into [shards] slices and wrap every slice in a
    replica group of uniform size [replicas] (default 1). [profile_of]
    derives each replica's network profile from the source's own — the
    hook fault drills use to make, say, replica 0 of shard 1 a
    straggler. [staleness_of] bounds each replica's data age (default
    0). Fails like {!Fusion_mediator.Mediator.create} on an empty or
    schema-inconsistent source list. *)

val of_groups :
  ?profile_of:
    (shard:int -> source:string -> replica:int -> Fusion_net.Profile.t -> Fusion_net.Profile.t) ->
  ?staleness_of:(shard:int -> source:string -> replica:int -> float) ->
  shards:int ->
  (Source.t * int) list ->
  (t, string) result
(** Like {!create} with a per-source replica count — the shape
    {!Fusion_source.Catalog.load_groups} produces from [replicas = K]
    catalog entries. *)

val of_catalog :
  ?profile_of:
    (shard:int -> source:string -> replica:int -> Fusion_net.Profile.t -> Fusion_net.Profile.t) ->
  ?staleness_of:(shard:int -> source:string -> replica:int -> float) ->
  shards:int ->
  string ->
  (t, string) result
(** Load a catalog file and build the cluster from its sources and
    their [replicas] keys. *)

val mediator : t -> Fusion_mediator.Mediator.t
(** The oracle view: one mediator over the unsliced sources. *)

val schema : t -> Fusion_data.Schema.t
val shards : t -> int
val n_sources : t -> int

val stride : t -> int
(** The largest replica-group size — the lane-index multiplier. *)

val group : t -> shard:int -> source:int -> Replica.t
val replica : t -> shard:int -> source:int -> replica:int -> Source.t

val set_fault : t -> shard:int -> source:int -> replica:int -> Source.fault option -> unit
val kill : t -> shard:int -> source:int -> replica:int -> unit
val kill_shard : t -> shard:int -> unit
(** Fail every replica of every source on one shard. *)

val reset_meters : t -> unit

val lanes : t -> int
val lane : t -> shard:int -> source:int -> replica:int -> int
(** The {!Fusion_net.Sim.Live} server index of one replica: replicas
    are genuinely parallel servers, while requests to the same replica
    queue FIFO behind each other on its lane. *)

val lane_name : t -> int -> string
(** ["s<shard>/<source>#<replica>"] — the timeline label of a lane. *)
