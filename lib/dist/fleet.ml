(* Sharded serving: one Serve.Server per shard, one submit path.

   Each shard gets its own serving loop over the shard's replica-0
   sources, created with the shard label so all fusion_serve_* metrics
   stay distinguishable in one process-wide registry. A submission is
   planned once (on the cluster's oracle mediator, exactly like a
   single-mediator submit) and the job fans out to every shard; the
   joined outcome unions the per-shard answers — exact by the
   partitioning argument — and takes the slowest shard's response. *)

open Fusion_data
module Source = Fusion_source.Source
module Mediator = Fusion_mediator.Mediator
module Optimized = Fusion_core.Optimized
module Serve = Fusion_serve.Server

type t = {
  cluster : Cluster.t;
  servers : Serve.t array;  (* one per shard *)
  mutable submissions : (int * int array) list;  (* fleet id -> per-shard ids, newest first *)
  mutable seq : int;
}

let create ?policy ?max_inflight ?cache_ttl ?exec_policy cluster =
  let servers =
    Array.init (Cluster.shards cluster) (fun shard ->
        let sources =
          Array.init (Cluster.n_sources cluster) (fun j ->
              Cluster.replica cluster ~shard ~source:j ~replica:0)
        in
        Serve.create ?policy ?max_inflight ?cache_ttl ?exec_policy
          ~shard:("s" ^ string_of_int shard) sources)
  in
  { cluster; servers; submissions = []; seq = 0 }

let cluster t = t.cluster
let server t shard = t.servers.(shard)
let shards t = Array.length t.servers

let submit t ~at ?(tenant = "default") ?(priority = 0) ?deadline query =
  match Mediator.plan_for (Cluster.mediator t.cluster) query with
  | Error msg -> Error msg
  | Ok prepared ->
    let optimized = prepared.Mediator.prep_optimized in
    let job =
      {
        Serve.plan = optimized.Optimized.plan;
        conds = Fusion_query.Query.conditions prepared.Mediator.prep_query;
        tenant;
        priority;
        est_cost = optimized.Optimized.est_cost;
        deadline;
        label = "";
      }
    in
    let per_shard = Array.map (fun server -> Serve.submit server ~at job) t.servers in
    let id = t.seq in
    t.seq <- t.seq + 1;
    t.submissions <- (id, per_shard) :: t.submissions;
    Ok id

let step t = Array.exists Fun.id (Array.map Serve.step t.servers)
let drain t = Array.iter Serve.drain t.servers

type outcome = {
  f_id : int;
  f_answer : Item_set.t option;  (** [None] when any shard failed or shed *)
  f_response : float;  (** the slowest shard's response time *)
  f_cost : float;  (** summed over shards *)
  f_partial : bool;
  f_failed : string option;  (** first failure among the shards, if any *)
}

let outcomes t =
  let completion_of server sid =
    List.find_opt (fun c -> c.Serve.c_id = sid) (Serve.completions server)
  in
  List.rev_map
    (fun (id, per_shard) ->
      let completions =
        Array.to_list (Array.mapi (fun shard sid -> completion_of t.servers.(shard) sid) per_shard)
      in
      match
        List.for_all Option.is_some completions, List.filter_map Fun.id completions
      with
      | false, _ ->
        (* At least one shard shed or has not completed: no global answer. *)
        {
          f_id = id;
          f_answer = None;
          f_response = 0.0;
          f_cost = 0.0;
          f_partial = false;
          f_failed = Some "incomplete: a shard shed or has not finished";
        }
      | true, cs ->
        let failed = List.find_map (fun c -> c.Serve.c_failed) cs in
        let answers = List.filter_map (fun c -> c.Serve.c_answer) cs in
        {
          f_id = id;
          f_answer =
            (if failed = None && List.length answers = List.length cs then
               Some (Fusion_plan.Fragment.merge_answers answers)
             else None);
          f_response = List.fold_left (fun a c -> Float.max a c.Serve.c_response) 0.0 cs;
          f_cost = List.fold_left (fun a c -> a +. c.Serve.c_cost) 0.0 cs;
          f_partial = List.exists (fun c -> c.Serve.c_partial) cs;
          f_failed = failed;
        })
    t.submissions
