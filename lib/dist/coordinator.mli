(** The scatter/gather coordinator of the distributed mediator.

    One query, one plan — chosen on the cluster's oracle mediator —
    scattered as {!Fusion_plan.Fragment}s to every shard over the wire
    encoding and executed against the shard's replica groups on one
    shared {!Fusion_net.Sim.Live} network. The gather step is
    {!Fusion_plan.Fragment.merge_answers}: exact, because hash
    partitioning makes the shards' slices disjoint on merge ids.

    With one shard, one replica and no hedging the coordinator issues
    exactly the request sequence of the single
    {!Fusion_mediator.Mediator.run} (same plan, same per-source fault
    draws, same retry accounting) — which is what the oracle-equivalence
    property suite in [test/test_dist.ml] pins down. *)

open Fusion_data

module Config : sig
  type plan_mode =
    [ `Global  (** one plan from the oracle mediator, scattered to all shards *)
    | `Local  (** each shard re-plans against its own slice statistics *) ]

  type t = {
    algo : Fusion_core.Optimizer.algo;
    stats : Fusion_core.Opt_env.stats_mode;
    retries : int;  (** extra attempts beyond one try per replica *)
    on_exhausted : [ `Fail | `Partial ];
    routing : Replica.routing;  (** which replica a request tries first *)
    hedge : float option;
        (** duplicate a request onto the best alternative replica when
            the routed one's predicted finish exceeds [factor ×] the
            alternative's; [None] disables hedging *)
    plan_mode : plan_mode;
    runtime : Fusion_rt.Runtime.spec;
        (** execution backend: [`Sim] (default) runs on the
            discrete-event clock; [`Domains n] runs fragments as
            concurrent fibres over a real domain pool and the timeline
            measures wall-clock seconds *)
  }

  val default : t
  (** SJA+, exact statistics, no retries ([`Fail]), primary routing, no
      hedging, global planning, simulated runtime — the
      oracle-equivalent configuration. *)
end

type shard_report = {
  sr_shard : int;
  sr_answer : Item_set.t;  (** the shard's slice of the answer *)
  sr_cost : float;
  sr_makespan : float;
  sr_busy : float;  (** service time summed over the shard's lanes *)
  sr_requests : int;
  sr_failures : int;  (** timed-out requests (failed attempts) *)
  sr_failovers : int;  (** attempts that switched replica after a failure *)
  sr_hedges : int;
  sr_hedge_wins : int;  (** hedged requests where the alternative answered first *)
  sr_partial : bool;
}

type report = {
  r_shard_count : int;
  r_replica_count : int;  (** the cluster's stride: largest replica group *)
  r_answer : Item_set.t;
  r_optimized : Fusion_core.Optimized.t;
      (** the oracle mediator's plan (the one scattered under [`Global]) *)
  r_fragments : Fusion_plan.Fragment.t list;  (** as decoded from the wire *)
  r_shards : shard_report list;  (** in shard order *)
  r_total_cost : float;  (** work charged across all replicas of all shards *)
  r_makespan : float;  (** completion of the last request on the shared network *)
  r_failures : int;
  r_failovers : int;
  r_hedges : int;
  r_hedge_wins : int;
  r_partial : bool;
  r_staleness : float;
      (** worst data-age bound among the replicas that actually served
          requests; 0 when every touched replica is fresh *)
  r_per_source : (string * Fusion_net.Meter.totals) list;
      (** per logical source, summed over shards and replicas *)
  r_timeline : Fusion_net.Sim.timeline;
  r_critical_path : Fusion_obs.Analyze.path;
}

val run : ?config:Config.t -> Cluster.t -> Fusion_query.Query.t -> (report, string) result
(** Plan, scatter, execute, gather. Replica meters are reset first, so
    the report accounts just this run. Fails like the single mediator
    on invalid queries, and with ["all replicas unreachable"] when a
    request exhausts every replica and its retry budget under
    [`Fail]. *)

val run_sql : ?config:Config.t -> Cluster.t -> string -> (report, string) result
(** Parses the SQL text against the cluster's schema (union view [U]). *)

val pp_report : Format.formatter -> report -> unit
(** Deterministic, seed-stable rendering: first line
    ["sharded mediation: N shards x K replicas"], then totals,
    per-shard lines and the critical path. *)
