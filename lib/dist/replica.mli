(** Replica groups: K interchangeable copies of one shard-local source.

    Every replica serves the same relation slice through its own
    {!Fusion_source.Source.t}, so meters, profiles and fault injectors
    are independent — one replica can straggle or die without touching
    the others. A {!routing} policy picks the replica a request tries
    first; {!order} lists the whole group in failover order. *)

module Source = Fusion_source.Source

(** Which replica answers first.
    - [Primary]: always replica 0 (failover only on faults).
    - [Round_robin]: rotate the starting replica per request.
    - [Least_cost]: "knowledge-based" selection — rank by consecutive
      observed timeouts, then by the advertised profile charges. *)
type routing = Primary | Round_robin | Least_cost

val routing_name : routing -> string
val routing_of_string : string -> routing option
(** Accepts ["primary"], ["round-robin"]/["rr"], ["least-cost"]/["lc"]. *)

type t

val create :
  ?replicas:int ->
  ?profile_of:(replica:int -> Fusion_net.Profile.t -> Fusion_net.Profile.t) ->
  ?staleness_of:(replica:int -> float) ->
  Source.t ->
  t
(** A group of [replicas] (default 1) fresh copies of [source]: same
    capability and relation, profile derived per replica by
    [profile_of] (default: the source's own), per-replica staleness
    bound by [staleness_of] (default 0 — perfectly fresh).
    @raise Invalid_argument on [replicas < 1]. *)

val size : t -> int
val name : t -> string
val replica : t -> int -> Source.t
val staleness : t -> int -> float

val set_fault : t -> int -> Source.fault option -> unit
val kill : t -> int -> unit
(** Permanently fail one replica: every request to it times out. *)

val speed_score : t -> int -> float
(** Sum of the replica's advertised profile charges — the published
    knowledge {!Least_cost} routing and request hedging rank by. *)

val note_timeout : t -> int -> unit
val note_success : t -> int -> unit
(** Health feedback from the coordinator: consecutive timeouts demote a
    replica under {!Least_cost}; a success resets its count. *)

val order : t -> routing -> int list
(** All replica indexes in try-order for one request: head is the
    routed choice, the rest is the failover sequence. [Round_robin]
    advances the group's cursor as a side effect. *)

val reset_meters : t -> unit
val totals : t -> Fusion_net.Meter.totals
(** Traffic summed over the group's replicas. *)
