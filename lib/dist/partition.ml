(* Merge-id hash partitioning.

   The PR-5 dictionary made merge values dense ints (one id per
   Value.equal class, catalog-wide), so "which shard owns this item"
   is a flat integer hash. Slicing every source relation by the owner
   of each tuple's merge id gives the key invariant of the distributed
   mediator: an item's *entire* evidence — every tuple carrying that
   merge value, across all sources — lands on exactly one shard.
   Selection, semijoin and the local set algebra all distribute over
   such disjoint slices, so any valid plan executed on a shard computes
   answer ∩ slice, and the union over shards is the exact answer. *)

open Fusion_data
module Source = Fusion_source.Source

(* splitmix64 finalizer: dictionary ids are dense small ints, so raw
   [id mod shards] would stripe systematically; the mix spreads them. *)
let mix id =
  let open Int64 in
  let z = of_int id in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let shard_of ~shards id =
  if shards <= 0 then invalid_arg "Partition.shard_of: shards must be positive";
  if shards = 1 then 0
  else Int64.to_int (Int64.logand (mix id) 0x3FFFFFFFFFFFFFFFL) mod shards

let shard_of_value ~shards intern v = shard_of ~shards (Intern.intern intern v)

let slice ~shards ~shard relation =
  let intern = Relation.intern relation in
  let schema = Relation.schema relation in
  let keep tuple =
    shard_of ~shards (Intern.intern intern (Tuple.item schema tuple)) = shard
  in
  (* Same name, same intern scope, tuples in original order: with one
     shard the slice behaves byte-identically to the original. *)
  let out = Relation.create ~name:(Relation.name relation) ~intern schema in
  Relation.iter (fun tuple -> if keep tuple then Relation.insert out tuple) relation;
  out

let split ~shards sources =
  if shards <= 0 then invalid_arg "Partition.split: shards must be positive";
  Array.init shards (fun shard ->
      List.map
        (fun s ->
          Source.create ~capability:(Source.capability s) ~profile:(Source.profile s)
            (slice ~shards ~shard (Source.relation s)))
        sources)
