(** The execution runtime: one request-dispatch signature, two
    backends.

    Executors call {!call} where they used to call
    [Fusion_net.Sim.Live.dispatch]; the backend decides what a call
    {e costs}:

    - {!sim} — the discrete-event simulator. The thunk runs
      synchronously, reports the model cost it consumed, and that cost
      becomes the task's service duration on the simulated per-server
      FIFO network: byte-identical answers, costs and timelines to the
      pre-runtime code (the oracle for the equivalence tests).
    - {!domains} — real concurrency. The thunk runs on an OCaml 5
      domain pool with one FIFO lane per server (a source answers one
      query at a time, matching the simulator's queueing model) and the
      timeline records measured wall-clock seconds since the runtime's
      epoch. Callers suspend as {!Fiber} fibres, or block their domain
      when called outside a scheduler.

    A runtime must be driven from one domain (cooperative fibres are
    fine; its bookkeeping is not locked). Wall-clock observations for
    cost-model calibration accumulate via {!observe} and feed
    [Fusion_cost.Calibration.fit]. *)

type t

type spec = [ `Sim | `Domains of int ]
(** How to build a runtime; [`Domains 0] means "default pool size"
    ({!default_domains}). *)

val spec_of_string : string -> (spec, string) result
(** Parses ["sim"], ["domains"], or ["domains:N"] (CLI syntax). *)

val spec_name : spec -> string

(** {1 Constructors} *)

val sim : servers:int -> t
(** A fresh simulated network with [servers] FIFO servers. *)

val of_live : Fusion_net.Sim.Live.t -> t
(** Wraps an existing simulated network (e.g. a cluster's lane grid)
    without re-creating it. *)

val domains : ?domains:int -> servers:int -> unit -> t
(** A real-concurrency runtime: a pool of [domains] worker domains
    (default {!default_domains}) serving one lane per server. Call
    {!shutdown} when done. *)

val of_spec : ?domains:int -> spec -> servers:int -> t
(** [?domains] overrides [`Domains 0]'s default pool size. *)

val default_domains : unit -> int

(** {1 Introspection} *)

val spec : t -> spec
val name : t -> string

val is_real : t -> bool
(** [true] for wall-clock backends (timelines measure seconds, not
    model cost units). *)

val server_count : t -> int

val now : t -> float
(** Simulator: the latest instant any server is busy until. Domains:
    wall-clock seconds since the runtime's epoch. *)

val free_at : t -> int -> float
(** Simulator: exact. Domains: predicted from outstanding calls times a
    smoothed call duration — an admission-control signal, not a
    schedule. *)

val backlog : t -> at:float -> float array
(** Per-server [max 0 (free_at - at)] (see {!free_at}). *)

val busy : t -> float array
(** Accumulated service time per server (model cost units or measured
    seconds). *)

val dispatched : t -> int
val timeline : t -> Fusion_net.Sim.timeline

val pool_stats : t -> Pool.stats option
(** The domains backend's pool counters; [None] on the simulator. *)

val publish_metrics : t -> unit
(** Publishes the runtime's operational state into the installed
    {!Fusion_obs.Metrics} registry (no-op when none is installed):
    [fusion_rt_pool_*] gauges from {!pool_stats}, per-server
    [fusion_rt_server_pending], fibre-scheduler gauges
    ([fusion_rt_fibres_live], [fusion_rt_run_queue],
    [fusion_rt_poll_wait_seconds], …) when called from inside a
    {!Fiber} scheduler, and [Gc.quick_stat] gauges
    ([fusion_rt_gc_*]). Call it periodically — e.g. from the admin
    front's pre-scrape refresh hook. *)

(** {1 Execution} *)

val call :
  t ->
  id:int ->
  server:int ->
  ready:float ->
  deps:int list ->
  (unit -> 'a * float * bool) ->
  'a * Fusion_net.Sim.scheduled
(** [call t ~id ~server ~ready ~deps thunk] issues one source request.
    The thunk performs the actual source interaction and returns
    [(value, model_cost, book)]; requests to one server never overlap
    (FIFO on both backends). On the simulator the request is dispatched
    at [max ready (free_at server)] for [model_cost] time units —
    unless [book] is false, in which case the timeline is left
    untouched (the sequential oracle raises on [`Fail] exhaustion
    before its failed attempt is ever booked). On domains the thunk
    runs on the server's pool lane, [book]/[ready] are moot, and the
    returned slot holds measured wall-clock start/finish. Exceptions
    from the thunk propagate to the caller. *)

val run : t -> (unit -> 'a) -> 'a
(** Enters the runtime's execution context: on domains, runs [fn] under
    a {!Fiber} scheduler (no-op if already inside one); on the
    simulator, just calls it. *)

val shutdown : t -> unit
(** Joins the domains backend's pool; no-op on the simulator. *)

(** {1 Wall-clock calibration} *)

val observe : t -> server:int -> totals:Fusion_net.Meter.totals -> wall:float -> unit
(** Records one request's meter delta and measured wall seconds
    (domains backend only; no-op on the simulator). *)

val observations : t -> (int * Fusion_net.Meter.totals * float) list
(** Everything observed so far, oldest first: [(server, meter delta,
    wall seconds)] — the raw material for
    [Fusion_cost.Calibration.fit] against real latencies. *)
