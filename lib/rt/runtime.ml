(* The execution runtime: one signature, two backends.

   Every layer that used to hard-wire [Fusion_net.Sim.Live] — the
   async executor, the serving loop, the distributed coordinator —
   takes a [Runtime.t] instead and calls [Runtime.call] where it used
   to call [Sim.Live.dispatch]:

   - [sim] is the discrete-event simulator. A call's thunk runs
     synchronously and reports the model cost it consumed; dispatching
     that cost as the task duration reproduces today's behaviour
     byte-for-byte (the oracle the equivalence tests pin).

   - [domains] issues the thunk on a {!Pool} worker — one lane per
     server, so requests at one source serialize FIFO exactly like the
     simulator's queues, while different sources answer with real OS
     parallelism — and measures wall-clock start/finish against the
     runtime's epoch. The caller suspends if it is a fibre (see
     {!Fiber}) or blocks its domain otherwise, so the same engine code
     drives both backends.

   The thunk's [book] flag keeps a subtle oracle invariant: under
   [`Fail] exhaustion the sequential executor raises before the failed
   attempt ever reaches the simulator's timeline, so the sim backend
   skips dispatch when [book] is false. The domains backend always
   books — real time passed either way.

   A runtime must be driven from one domain: timeline and observation
   state is mutated without locks (fibres interleave cooperatively;
   worker domains only run thunks and resolve suspensions). *)

[@@@alert "-sim_construct"]

module Sim = Fusion_net.Sim
module Meter = Fusion_net.Meter

type spec = [ `Sim | `Domains of int ]

let spec_of_string = function
  | "sim" -> Ok `Sim
  | "domains" -> Ok (`Domains 0)
  | s -> (
    match String.index_opt s ':' with
    | Some i when String.sub s 0 i = "domains" -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some n when n >= 1 -> Ok (`Domains n)
      | _ -> Error (Printf.sprintf "bad domain count in %S" s))
    | _ -> Error (Printf.sprintf "unknown runtime %S (expected sim or domains[:N])" s))

let spec_name = function
  | `Sim -> "sim"
  | `Domains 0 -> "domains"
  | `Domains n -> Printf.sprintf "domains:%d" n

type domains = {
  pool : Pool.t;
  d_servers : int;
  epoch : float;
  mutable d_events : Sim.scheduled list; (* newest first *)
  mutable d_count : int;
  d_pending : int array; (* calls submitted, not yet finished, per server *)
  d_ewma : float array; (* smoothed call duration per server; <0 = none yet *)
  d_free : float array; (* last observed finish per server, epoch-relative *)
  d_busy : float array; (* accumulated service time per server *)
  mutable d_obs : (int * Meter.totals * float) list; (* newest first *)
}

type backend = Sim_b of Sim.Live.t | Dom_b of domains

type t = backend

let sim ~servers = Sim_b (Sim.Live.create ~servers:(max 1 servers))
let of_live live = Sim_b live

let default_domains () = max 2 (Domain.recommended_domain_count () - 1)

let domains ?domains:d ~servers () =
  let servers = max 1 servers in
  let d = match d with Some n when n >= 1 -> n | _ -> default_domains () in
  Dom_b
    {
      pool = Pool.create ~domains:d ~lanes:servers;
      d_servers = servers;
      epoch = Unix.gettimeofday ();
      d_events = [];
      d_count = 0;
      d_pending = Array.make servers 0;
      d_ewma = Array.make servers (-1.0);
      d_free = Array.make servers 0.0;
      d_busy = Array.make servers 0.0;
      d_obs = [];
    }

let of_spec ?domains:d spec ~servers =
  match spec with
  | `Sim -> sim ~servers
  | `Domains 0 -> domains ?domains:d ~servers ()
  | `Domains n -> domains ~domains:n ~servers ()

let spec = function
  | Sim_b _ -> `Sim
  | Dom_b d -> `Domains (Pool.size d.pool)

let name t = spec_name (spec t)
let is_real = function Sim_b _ -> false | Dom_b _ -> true

let server_count = function
  | Sim_b live -> Sim.Live.server_count live
  | Dom_b d -> d.d_servers

let now = function
  | Sim_b live ->
    (* The simulator has no global clock; the latest instant any server
       is known to be busy until is the closest notion of "now". *)
    let n = Sim.Live.server_count live in
    let t = ref 0.0 in
    for j = 0 to n - 1 do
      t := Float.max !t (Sim.Live.free_at live j)
    done;
    !t
  | Dom_b d -> Unix.gettimeofday () -. d.epoch

let free_at t server =
  match t with
  | Sim_b live -> Sim.Live.free_at live server
  | Dom_b d ->
    (* Predicted: outstanding calls times the smoothed call duration —
       the admission-control signal, not an exact schedule. *)
    let n = Unix.gettimeofday () -. d.epoch in
    let est = if d.d_ewma.(server) >= 0.0 then d.d_ewma.(server) else 0.0 in
    Float.max n (Float.max d.d_free.(server) n)
    +. (float_of_int d.d_pending.(server) *. est)

let backlog t ~at =
  match t with
  | Sim_b live -> Sim.Live.backlog live ~at
  | Dom_b d ->
    Array.init d.d_servers (fun j -> Float.max 0.0 (free_at t j -. at))

let busy = function
  | Sim_b live -> Sim.Live.busy live
  | Dom_b d -> Array.copy d.d_busy

let dispatched = function
  | Sim_b live -> Sim.Live.dispatched live
  | Dom_b d -> d.d_count

let timeline = function
  | Sim_b live -> Sim.Live.timeline live
  | Dom_b d ->
    let events =
      List.sort
        (fun (a : Sim.scheduled) b ->
          match compare a.Sim.start b.Sim.start with
          | 0 -> compare a.Sim.task.Sim.id b.Sim.task.Sim.id
          | c -> c)
        d.d_events
    in
    let makespan =
      List.fold_left (fun acc (e : Sim.scheduled) -> Float.max acc e.Sim.finish) 0.0 events
    in
    { Sim.events; makespan }

(* Run [f] on the pool lane and wait: suspend when called from a fibre,
   block the domain otherwise. *)
let offload d ~lane f =
  if Fiber.inside () then
    Fiber.suspend_external (fun resume -> Pool.submit d.pool ~lane f resume)
  else begin
    let m = Mutex.create () and c = Condition.create () in
    let slot = ref None in
    Pool.submit d.pool ~lane f (fun r ->
        Mutex.lock m;
        slot := Some r;
        Condition.signal c;
        Mutex.unlock m);
    Mutex.lock m;
    while !slot = None do
      Condition.wait c m
    done;
    let r = Option.get !slot in
    Mutex.unlock m;
    match r with Ok v -> v | Error e -> raise e
  end

let call t ~id ~server ~ready ~deps thunk =
  match t with
  | Sim_b live ->
    let v, cost, book = thunk () in
    let sched =
      if book then Sim.Live.dispatch live ~id ~server ~ready ~duration:cost ~deps
      else
        (* Never reached the network (e.g. [`Fail] exhaustion raises
           before dispatch); synthesize the slot without booking it. *)
        {
          Sim.task = { Sim.id; server; duration = cost; deps };
          start = ready;
          finish = ready +. cost;
        }
    in
    (v, sched)
  | Dom_b d ->
    if server < 0 || server >= d.d_servers then
      invalid_arg (Printf.sprintf "Runtime.call: server %d out of range" server);
    d.d_pending.(server) <- d.d_pending.(server) + 1;
    let finish_call () = d.d_pending.(server) <- d.d_pending.(server) - 1 in
    let job () =
      let t0 = Unix.gettimeofday () in
      let v, cost, book = thunk () in
      let t1 = Unix.gettimeofday () in
      (v, cost, book, t0, t1)
    in
    let v, _cost, _book, t0, t1 =
      match offload d ~lane:server job with
      | r -> finish_call (); r
      | exception e -> finish_call (); raise e
    in
    let start = t0 -. d.epoch and finish = t1 -. d.epoch in
    let duration = Float.max 0.0 (t1 -. t0) in
    d.d_ewma.(server) <-
      (if d.d_ewma.(server) < 0.0 then duration
       else (0.75 *. d.d_ewma.(server)) +. (0.25 *. duration));
    d.d_free.(server) <- Float.max d.d_free.(server) finish;
    d.d_busy.(server) <- d.d_busy.(server) +. duration;
    let sched =
      { Sim.task = { Sim.id; server; duration; deps }; start; finish }
    in
    d.d_events <- sched :: d.d_events;
    d.d_count <- d.d_count + 1;
    (v, sched)

(* --- live introspection --------------------------------------------------- *)

let pool_stats = function Sim_b _ -> None | Dom_b d -> Some (Pool.stats d.pool)

(* Publish the runtime's operational state as [fusion_rt_*] gauges into
   the installed metrics registry (no-op when none is installed; see
   Obs.Metrics). Meant to be called periodically — e.g. by the admin
   front's refresh hook before every /metrics scrape — so the exported
   values are point-in-time gauges, not streaming counters. *)
let publish_metrics t =
  Fusion_obs.Metrics.record (fun m ->
      let g ?labels name v = Fusion_obs.Metrics.gauge m ?labels name v in
      (match t with
      | Sim_b _ -> ()
      | Dom_b d ->
        let ps = Pool.stats d.pool in
        g "fusion_rt_pool_domains" (float_of_int ps.Pool.domains);
        g "fusion_rt_pool_lanes" (float_of_int ps.Pool.lane_count);
        g "fusion_rt_pool_lanes_busy" (float_of_int ps.Pool.busy_lanes);
        g "fusion_rt_pool_queued_jobs" (float_of_int ps.Pool.queued_jobs);
        g "fusion_rt_pool_queue_high_water"
          (float_of_int ps.Pool.queue_high_water);
        g "fusion_rt_pool_executed" (float_of_int ps.Pool.executed);
        g "fusion_rt_calls" (float_of_int d.d_count);
        Array.iteri
          (fun j p ->
            g
              ~labels:[ ("server", string_of_int j) ]
              "fusion_rt_server_pending" (float_of_int p))
          d.d_pending);
      (match Fiber.stats () with
      | None -> ()
      | Some fs ->
        g "fusion_rt_fibres_live" (float_of_int fs.Fiber.live);
        g "fusion_rt_run_queue" (float_of_int fs.Fiber.run_queue);
        g "fusion_rt_sleepers" (float_of_int fs.Fiber.sleepers);
        g "fusion_rt_io_waiting" (float_of_int fs.Fiber.io_waiting);
        g "fusion_rt_ext_pending" (float_of_int fs.Fiber.ext_pending);
        g "fusion_rt_polls" (float_of_int fs.Fiber.polls);
        g "fusion_rt_poll_wait_seconds" fs.Fiber.poll_wait);
      let gc = Gc.quick_stat () in
      g "fusion_rt_gc_minor_words" gc.Gc.minor_words;
      g "fusion_rt_gc_major_words" gc.Gc.major_words;
      g "fusion_rt_gc_heap_words" (float_of_int gc.Gc.heap_words);
      g "fusion_rt_gc_minor_collections" (float_of_int gc.Gc.minor_collections);
      g "fusion_rt_gc_major_collections" (float_of_int gc.Gc.major_collections);
      g "fusion_rt_gc_compactions" (float_of_int gc.Gc.compactions))

let observe t ~server ~totals ~wall =
  match t with
  | Sim_b _ -> ()
  | Dom_b d -> d.d_obs <- (server, totals, wall) :: d.d_obs

let observations = function
  | Sim_b _ -> []
  | Dom_b d -> List.rev d.d_obs

let run t fn =
  match t with
  | Sim_b _ -> fn ()
  | Dom_b _ -> if Fiber.inside () then fn () else Fiber.run fn

let shutdown = function Sim_b _ -> () | Dom_b d -> Pool.shutdown d.pool
