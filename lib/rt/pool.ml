(* A domain pool with per-lane FIFO serialization.

   Lanes model the paper's sources: each source answers one query at a
   time, so jobs submitted to one lane run in submission order and
   never overlap, while jobs on different lanes run with real OS
   parallelism (one lane per Sim server index keeps the domains
   runtime's contention model aligned with the simulator's per-server
   FIFO queues).

   A lane is runnable when it has queued jobs and no job of its own in
   flight; workers pull whole lanes, not jobs, so no worker ever blocks
   behind another lane's mutex. *)

type job = Job : (unit -> 'a) * (('a, exn) result -> unit) -> job

type t = {
  lock : Mutex.t;
  work : Condition.t;
  queues : job Queue.t array;
  runnable : int Queue.t;
  busy : bool array;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  size : int;
  mutable executed : int; (* jobs completed over the pool's lifetime *)
  mutable queue_hwm : int; (* deepest any single lane's queue has been *)
}

let rec worker_loop t =
  Mutex.lock t.lock;
  while (not t.stop) && Queue.is_empty t.runnable do
    Condition.wait t.work t.lock
  done;
  if Queue.is_empty t.runnable then Mutex.unlock t.lock (* stopped and drained *)
  else begin
    let lane = Queue.pop t.runnable in
    let (Job (f, k)) = Queue.pop t.queues.(lane) in
    t.busy.(lane) <- true;
    Mutex.unlock t.lock;
    let r = match f () with v -> Ok v | exception e -> Error e in
    (try k r with _ -> ());
    Mutex.lock t.lock;
    t.busy.(lane) <- false;
    t.executed <- t.executed + 1;
    if not (Queue.is_empty t.queues.(lane)) then begin
      Queue.push lane t.runnable;
      Condition.signal t.work
    end;
    Mutex.unlock t.lock;
    worker_loop t
  end

let create ~domains ~lanes =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  if lanes < 1 then invalid_arg "Pool.create: need at least one lane";
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      queues = Array.init lanes (fun _ -> Queue.create ());
      runnable = Queue.create ();
      busy = Array.make lanes false;
      stop = false;
      workers = [];
      size = domains;
      executed = 0;
      queue_hwm = 0;
    }
  in
  t.workers <- List.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t = t.size
let lanes t = Array.length t.queues

(* --- introspection -------------------------------------------------------- *)

type stats = {
  domains : int;
  lane_count : int;
  busy_lanes : int;  (* lanes with a job in flight right now *)
  queued_jobs : int;  (* jobs waiting across all lane queues *)
  queue_high_water : int;  (* deepest any single lane's queue has been *)
  executed : int;  (* jobs completed over the pool's lifetime *)
}

let stats t =
  Mutex.lock t.lock;
  let busy_lanes = Array.fold_left (fun n b -> if b then n + 1 else n) 0 t.busy in
  let queued_jobs = Array.fold_left (fun n q -> n + Queue.length q) 0 t.queues in
  let s =
    {
      domains = t.size;
      lane_count = Array.length t.queues;
      busy_lanes;
      queued_jobs;
      queue_high_water = t.queue_hwm;
      executed = t.executed;
    }
  in
  Mutex.unlock t.lock;
  s

let submit t ~lane f k =
  if lane < 0 || lane >= Array.length t.queues then
    invalid_arg (Printf.sprintf "Pool.submit: lane %d out of range" lane);
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  let was_empty = Queue.is_empty t.queues.(lane) in
  Queue.push (Job (f, k)) t.queues.(lane);
  let depth = Queue.length t.queues.(lane) in
  if depth > t.queue_hwm then t.queue_hwm <- depth;
  if was_empty && not t.busy.(lane) then begin
    Queue.push lane t.runnable;
    Condition.signal t.work
  end;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    List.iter Domain.join t.workers;
    t.workers <- []
  end
  else Mutex.unlock t.lock
