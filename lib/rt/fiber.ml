(* An effects-based cooperative fibre scheduler on one domain.

   This is the concurrency substrate of the [Domains] runtime backend:
   fibres are delimited continuations multiplexed over one scheduler
   domain (OCaml 5 [Effect.Deep]); blocking work (source calls, socket
   readiness) is pushed off-domain and resumes the suspended fibre
   through a thread-safe wake queue drained by the scheduler's idle
   loop, which blocks in [Unix.select] on a self-pipe plus any file
   descriptors fibres are waiting on.

   Structured concurrency in the eio style: every fork happens under a
   [Switch.t]; [Switch.run] does not return until every forked fibre
   has completed (daemons are cancelled at exit), so fibres cannot
   leak past their switch — the invariant the leak-check tests pin.
   Cancellation is cooperative: it fires the fibre's current
   suspension with [Cancelled] and makes every later suspension point
   raise. *)

exception Cancelled
exception Deadlock

(* A resolve-once cell handed to whoever will produce the suspension's
   result. [fire] may be called from any domain and from cancellation
   concurrently; exactly one call wins. *)
type 'a resolver = { fire : ('a, exn) result -> unit; dead : unit -> bool }

type ctx = {
  mutable sw : switch option; (* innermost switch of this fibre *)
  mutable cancel : (unit -> unit) option; (* cancels the current suspension *)
  daemon : bool;
}

and switch = {
  mutable sw_cancelled : bool;
  mutable sw_error : exn option; (* first non-Cancelled failure *)
  mutable sw_members : ctx list; (* fibres whose suspensions this switch cancels *)
  mutable sw_children : int; (* forked, non-daemon, not yet completed *)
  mutable sw_daemons : int;
  mutable sw_joiner : (unit -> unit) option; (* wakes [Switch.run]'s join loop *)
}

type scheduler = {
  run_q : (unit -> unit) Queue.t;
  mutable sleepers : (float * unit resolver) list; (* ascending deadlines *)
  ext_lock : Mutex.t;
  mutable ext_q : (unit -> unit) list; (* newest first; drained in FIFO order *)
  mutable pipe_armed : bool; (* under ext_lock: a wake byte is in the pipe *)
  pipe_r : Unix.file_descr;
  pipe_w : Unix.file_descr;
  mutable readers : (Unix.file_descr * unit resolver) list;
  mutable writers : (Unix.file_descr * unit resolver) list;
  ext_pending : int Atomic.t; (* outstanding off-domain completions *)
  dom : Domain.id;
  mutable live : int; (* forked fibres not yet completed *)
  mutable cur : ctx;
  mutable polls : int; (* times the idle loop entered select *)
  mutable poll_wait : float; (* wall seconds spent blocked in select *)
}

type _ Effect.t +=
  | Suspend : bool (* cancellable *) * bool (* external *) * ('a resolver -> unit)
      -> 'a Effect.t

let current : scheduler option ref = ref None

let get () =
  match !current with
  | Some s -> s
  | None -> invalid_arg "Fiber: not inside Fiber.run"

let inside () = !current <> None
let now () = Unix.gettimeofday ()

let check_cancel () =
  let sched = get () in
  match sched.cur.sw with
  | Some sw when sw.sw_cancelled -> raise Cancelled
  | _ -> ()

let suspend_full ~cancellable ~external_ register =
  (* Uncancellable suspensions (the join loops in [Switch.run]) must
     wait even when the fibre's switch is already cancelled — raising
     here would let children leak past their switch. *)
  if cancellable then check_cancel ();
  Effect.perform (Suspend (cancellable, external_, register))

let suspend register = suspend_full ~cancellable:true ~external_:false (fun r -> register r.fire)
let suspend_external register =
  suspend_full ~cancellable:true ~external_:true (fun r -> register r.fire)

let enqueue_external sched thunk =
  Mutex.lock sched.ext_lock;
  sched.ext_q <- thunk :: sched.ext_q;
  let need_wake = not sched.pipe_armed in
  sched.pipe_armed <- true;
  Mutex.unlock sched.ext_lock;
  if need_wake then
    try ignore (Unix.write sched.pipe_w (Bytes.make 1 'w') 0 1) with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

(* --- switches ------------------------------------------------------------- *)

let fire_cancel c =
  match c.cancel with
  | Some f ->
    c.cancel <- None;
    f ()
  | None -> ()

let cancel_switch sw =
  if not sw.sw_cancelled then begin
    sw.sw_cancelled <- true;
    List.iter fire_cancel sw.sw_members
  end

let wake_joiner sw =
  match sw.sw_joiner with
  | Some wake ->
    sw.sw_joiner <- None;
    wake ()
  | None -> ()

let fibre_done sched ctx err =
  sched.live <- sched.live - 1;
  match ctx.sw with
  | None -> ()
  | Some sw ->
    sw.sw_members <- List.filter (fun c -> c != ctx) sw.sw_members;
    if ctx.daemon then sw.sw_daemons <- sw.sw_daemons - 1
    else sw.sw_children <- sw.sw_children - 1;
    (match err with
    | Some e when e <> Cancelled ->
      if sw.sw_error = None then sw.sw_error <- Some e;
      cancel_switch sw
    | _ -> ());
    if sw.sw_children = 0 then wake_joiner sw

let handler sched ~on_done =
  {
    Effect.Deep.retc = (fun () -> on_done (Ok ()));
    exnc = (fun e -> on_done (Error e));
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Suspend (cancellable, external_, register) ->
          Some
            (fun (k : (a, _) Effect.Deep.continuation) ->
              let ctx = sched.cur in
              let resolved = Atomic.make false in
              if external_ then Atomic.incr sched.ext_pending;
              let fire (r : (a, exn) result) =
                if Atomic.compare_and_set resolved false true then begin
                  if external_ then Atomic.decr sched.ext_pending;
                  let thunk () =
                    sched.cur <- ctx;
                    ctx.cancel <- None;
                    match r with
                    | Ok v -> Effect.Deep.continue k v
                    | Error e -> Effect.Deep.discontinue k e
                  in
                  if Domain.self () = sched.dom then Queue.push thunk sched.run_q
                  else enqueue_external sched (fun () -> Queue.push thunk sched.run_q)
                end
              in
              let r = { fire; dead = (fun () -> Atomic.get resolved) } in
              if cancellable then ctx.cancel <- Some (fun () -> fire (Error Cancelled));
              register r)
        | _ -> None);
  }

let run_fibre sched ctx ~on_done fn =
  let cancelled_at_start =
    match ctx.sw with Some sw -> sw.sw_cancelled | None -> false
  in
  if cancelled_at_start then on_done (Some Cancelled)
  else begin
    sched.cur <- ctx;
    Effect.Deep.match_with fn ()
      (handler sched ~on_done:(fun r ->
           on_done (match r with Ok () -> None | Error e -> Some e)))
  end

let pending_fibres () = (get ()).live

(* --- introspection -------------------------------------------------------- *)

(* A point-in-time view of the scheduler, read on the scheduler domain
   itself (no synchronization needed: the fields are only mutated
   there, except [ext_pending] which is already atomic). *)
type stats = {
  live : int;  (* forked fibres not yet completed *)
  run_queue : int;  (* fibres ready to run right now *)
  sleepers : int;  (* fibres parked on a deadline *)
  io_waiting : int;  (* fibres parked on fd readiness *)
  ext_pending : int;  (* outstanding off-domain completions *)
  polls : int;  (* times the idle loop entered select *)
  poll_wait : float;  (* cumulative wall seconds blocked in select *)
}

let stats () =
  match !current with
  | None -> None
  | Some s ->
    Some
      {
        live = s.live;
        run_queue = Queue.length s.run_q;
        sleepers = List.length s.sleepers;
        io_waiting = List.length s.readers + List.length s.writers;
        ext_pending = Atomic.get s.ext_pending;
        polls = s.polls;
        poll_wait = s.poll_wait;
      }

(* --- promises ------------------------------------------------------------- *)

module Promise = struct
  type 'a t = {
    mutable st : ('a, exn) result option;
    mutable waiters : (('a, exn) result -> unit) list;
  }

  let create () = { st = None; waiters = [] }

  let deliver p r =
    match p.st with
    | Some _ -> ()
    | None ->
      p.st <- Some r;
      let ws = List.rev p.waiters in
      p.waiters <- [];
      List.iter (fun w -> w r) ws

  let resolve p v = deliver p (Ok v)
  let reject p e = deliver p (Error e)
  let is_resolved p = p.st <> None

  let await p =
    check_cancel ();
    match p.st with
    | Some (Ok v) -> v
    | Some (Error e) -> raise e
    | None -> suspend (fun resume -> p.waiters <- resume :: p.waiters)
end

(* --- sleeping ------------------------------------------------------------- *)

let sleep d =
  if d <= 0.0 then check_cancel ()
  else
    let sched = get () in
    let deadline = now () +. d in
    suspend_full ~cancellable:true ~external_:false (fun r ->
        let rec insert = function
          | [] -> [ (deadline, r) ]
          | (t, _) :: _ as rest when deadline < t -> (deadline, r) :: rest
          | entry :: rest -> entry :: insert rest
        in
        sched.sleepers <- insert sched.sleepers)

let yield () = suspend (fun resume -> resume (Ok ()))

(* --- fd readiness --------------------------------------------------------- *)

let await_readable fd =
  let sched = get () in
  suspend_full ~cancellable:true ~external_:false (fun r ->
      sched.readers <- (fd, r) :: sched.readers)

let await_writable fd =
  let sched = get () in
  suspend_full ~cancellable:true ~external_:false (fun r ->
      sched.writers <- (fd, r) :: sched.writers)

(* --- switch API ----------------------------------------------------------- *)

module Switch = struct
  type t = switch

  let cancel = cancel_switch
  let cancelled sw = sw.sw_cancelled

  let fork_inner ~daemon sw fn =
    let sched = get () in
    if not sw.sw_cancelled then begin
      let ctx = { sw = Some sw; cancel = None; daemon } in
      sw.sw_members <- ctx :: sw.sw_members;
      if daemon then sw.sw_daemons <- sw.sw_daemons + 1
      else sw.sw_children <- sw.sw_children + 1;
      sched.live <- sched.live + 1;
      Queue.push
        (fun () -> run_fibre sched ctx ~on_done:(fibre_done sched ctx) fn)
        sched.run_q
    end

  let fork sw fn = fork_inner ~daemon:false sw fn
  let fork_daemon sw fn = fork_inner ~daemon:true sw fn

  let fork_promise sw fn =
    let p = Promise.create () in
    fork_inner ~daemon:false sw (fun () ->
        match fn () with
        | v -> Promise.resolve p v
        | exception e -> Promise.reject p e);
    p

  (* Wait until [cond] turns false, woken by fibre completions. When
     [cancellable], an outer cancellation can interrupt the wait (the
     caller then cancels this switch and re-joins uncancellably). *)
  let join_wait ~cancellable sw cond =
    while cond () do
      suspend_full ~cancellable ~external_:false (fun r ->
          sw.sw_joiner <- Some (fun () -> r.fire (Ok ())))
    done

  let run fn =
    let sched = get () in
    let ctx = sched.cur in
    let outer = ctx.sw in
    let sw =
      {
        sw_cancelled = false;
        sw_error = None;
        sw_members = [ ctx ];
        sw_children = 0;
        sw_daemons = 0;
        sw_joiner = None;
      }
    in
    ctx.sw <- Some sw;
    let result = match fn sw with v -> Ok v | exception e -> Error e in
    (* The body is done: the host leaves the switch, children are joined. *)
    sw.sw_members <- List.filter (fun c -> c != ctx) sw.sw_members;
    ctx.sw <- outer;
    (match result with
    | Error e when e <> Cancelled ->
      if sw.sw_error = None then sw.sw_error <- Some e;
      cancel_switch sw
    | _ -> ());
    (match join_wait ~cancellable:true sw (fun () -> sw.sw_children > 0) with
    | () -> ()
    | exception Cancelled ->
      (* The outer switch was cancelled while we were joining: cancel
         our children and finish the join uncancellably, then let the
         cancellation propagate. *)
      cancel_switch sw;
      join_wait ~cancellable:false sw (fun () -> sw.sw_children > 0);
      if sw.sw_daemons > 0 then begin
        List.iter fire_cancel sw.sw_members;
        join_wait ~cancellable:false sw (fun () -> sw.sw_daemons > 0)
      end;
      raise Cancelled);
    if sw.sw_daemons > 0 then begin
      (* Daemons don't outlive the switch: cancel and wait for them. *)
      sw.sw_cancelled <- true;
      List.iter fire_cancel sw.sw_members;
      join_wait ~cancellable:false sw (fun () -> sw.sw_daemons > 0)
    end;
    match (sw.sw_error, result) with
    | Some e, _ -> raise e
    | None, Error e -> raise e
    | None, Ok v -> v
end

let timeout d fn =
  let timed_out = ref false in
  match
    Switch.run (fun sw ->
        Switch.fork_daemon sw (fun () ->
            sleep d;
            timed_out := true;
            Switch.cancel sw);
        fn ())
  with
  | v -> Some v
  | exception Cancelled when !timed_out -> None

(* --- semaphores ----------------------------------------------------------- *)

module Semaphore = struct
  type t = { mutable n : int; waiters : unit resolver Queue.t }

  let create n =
    if n < 0 then invalid_arg "Semaphore.create: negative count";
    { n; waiters = Queue.create () }

  let value s = s.n

  let acquire s =
    check_cancel ();
    if s.n > 0 then s.n <- s.n - 1
    else suspend_full ~cancellable:true ~external_:false (fun r -> Queue.push r s.waiters)

  let release s =
    let rec wake () =
      match Queue.take_opt s.waiters with
      | Some r -> if r.dead () then wake () else r.fire (Ok ())
      | None -> s.n <- s.n + 1
    in
    wake ()
end

(* --- bounded streams ------------------------------------------------------ *)

module Stream = struct
  type 'a t = {
    cap : int;
    q : 'a Queue.t;
    readers : 'a resolver Queue.t;
    writers : ('a * unit resolver) Queue.t;
    mutable hwm : int; (* deepest the buffer has ever been *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Stream.create: capacity must be >= 1";
    {
      cap = capacity;
      q = Queue.create ();
      readers = Queue.create ();
      writers = Queue.create ();
      hwm = 0;
    }

  let length t = Queue.length t.q
  let high_water t = t.hwm

  let push t v =
    Queue.push v t.q;
    let n = Queue.length t.q in
    if n > t.hwm then t.hwm <- n

  let rec wake_writer t =
    match Queue.take_opt t.writers with
    | Some (v, r) ->
      if r.dead () then wake_writer t
      else begin
        push t v;
        r.fire (Ok ())
      end
    | None -> ()

  let take t =
    check_cancel ();
    match Queue.take_opt t.q with
    | Some v ->
      wake_writer t;
      v
    | None ->
      suspend_full ~cancellable:true ~external_:false (fun r -> Queue.push r t.readers)

  let take_opt t =
    match Queue.take_opt t.q with
    | Some v ->
      wake_writer t;
      Some v
    | None -> None

  let rec live_reader t =
    match Queue.take_opt t.readers with
    | Some r -> if r.dead () then live_reader t else Some r
    | None -> None

  let add t v =
    check_cancel ();
    match live_reader t with
    | Some r -> r.fire (Ok v)
    | None ->
      if Queue.length t.q < t.cap then push t v
      else
        suspend_full ~cancellable:true ~external_:false (fun r ->
            Queue.push (v, r) t.writers)

  let try_add t v =
    match live_reader t with
    | Some r ->
      r.fire (Ok v);
      true
    | None ->
      if Queue.length t.q < t.cap then begin
        push t v;
        true
      end
      else false
end

(* --- the scheduler loop --------------------------------------------------- *)

let drain_pipe fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let run main =
  if inside () then invalid_arg "Fiber.run: already inside a scheduler";
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  Unix.set_nonblock pipe_w;
  let root_ctx = { sw = None; cancel = None; daemon = false } in
  let sched =
    {
      run_q = Queue.create ();
      sleepers = [];
      ext_lock = Mutex.create ();
      ext_q = [];
      pipe_armed = false;
      pipe_r;
      pipe_w;
      readers = [];
      writers = [];
      ext_pending = Atomic.make 0;
      dom = Domain.self ();
      live = 0;
      cur = root_ctx;
      polls = 0;
      poll_wait = 0.0;
    }
  in
  current := Some sched;
  let result = ref None in
  (* The root body records its own result (it carries an ['a] out of a
     unit fibre); on_done only backstops an escaped exception. *)
  Queue.push
    (fun () ->
      run_fibre sched root_ctx
        ~on_done:(fun err ->
          match err with
          | Some e when !result = None -> result := Some (Error e)
          | _ -> ())
        (fun () ->
          match main () with
          | v -> result := Some (Ok v)
          | exception e -> result := Some (Error e)))
    sched.run_q;
  let take_external () =
    Mutex.lock sched.ext_lock;
    let ext = List.rev sched.ext_q in
    sched.ext_q <- [];
    sched.pipe_armed <- false;
    Mutex.unlock sched.ext_lock;
    if ext <> [] then drain_pipe sched.pipe_r;
    ext
  in
  let fire_due_sleepers () =
    let t = now () in
    let due, rest = List.partition (fun (d, _) -> d <= t) sched.sleepers in
    sched.sleepers <- rest;
    List.iter (fun (_, r) -> if not (r.dead ()) then r.fire (Ok ())) due;
    due <> []
  in
  let prune () =
    sched.sleepers <- List.filter (fun (_, r) -> not (r.dead ())) sched.sleepers;
    sched.readers <- List.filter (fun (_, r) -> not (r.dead ())) sched.readers;
    sched.writers <- List.filter (fun (_, r) -> not (r.dead ())) sched.writers
  in
  let block () =
    prune ();
    let timeout =
      match sched.sleepers with
      | (d, _) :: _ -> Float.max 0.0 (d -. now ())
      | [] ->
        if
          sched.readers = [] && sched.writers = []
          && Atomic.get sched.ext_pending = 0
        then raise Deadlock
        else -1.0
    in
    let rfds = sched.pipe_r :: List.map fst sched.readers in
    let wfds = List.map fst sched.writers in
    sched.polls <- sched.polls + 1;
    let entered = now () in
    let waited r =
      sched.poll_wait <- sched.poll_wait +. Float.max 0.0 (now () -. entered);
      r
    in
    match waited (Unix.select rfds wfds [] timeout) with
    | rs, ws, _ ->
      (* Always drain a readable self-pipe here: if an enqueuer's wake
         byte landed after [take_external] had already stolen its thunk
         (and reset [pipe_armed]), the stray byte would otherwise make
         every subsequent select return immediately — a busy spin. *)
      if List.mem sched.pipe_r rs then drain_pipe sched.pipe_r;
      let fire waiters ready =
        List.iter
          (fun (fd, r) ->
            if List.mem fd ready && not (r.dead ()) then r.fire (Ok ()))
          waiters
      in
      fire sched.readers rs;
      fire sched.writers ws;
      sched.readers <- List.filter (fun (fd, _) -> not (List.mem fd rs)) sched.readers;
      sched.writers <- List.filter (fun (fd, _) -> not (List.mem fd ws)) sched.writers
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let cleanup () =
    current := None;
    (try Unix.close pipe_r with Unix.Unix_error _ -> ());
    try Unix.close pipe_w with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match Queue.take_opt sched.run_q with
    | Some thunk ->
      thunk ();
      loop ()
    | None ->
      let ext = take_external () in
      if ext <> [] then begin
        List.iter (fun f -> f ()) ext;
        loop ()
      end
      else if fire_due_sleepers () then loop ()
      else if !result <> None && sched.live = 0 then ()
      else begin
        block ();
        loop ()
      end
  in
  (match loop () with
  | () -> ()
  | exception e ->
    cleanup ();
    raise e);
  cleanup ();
  match !result with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> raise Deadlock
