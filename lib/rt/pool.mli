(** A domain pool with per-lane FIFO serialization.

    Jobs submitted to one lane run in submission order and never
    overlap (a lane models one source: one query at a time, like the
    simulator's per-server FIFO queues); jobs on different lanes run
    with real OS parallelism. Workers claim whole lanes, so no worker
    blocks behind another lane's job. *)

type t

val create : domains:int -> lanes:int -> t
(** Spawns [domains] worker domains serving [lanes] job lanes. *)

val size : t -> int
(** Number of worker domains. *)

val lanes : t -> int

(** A point-in-time view of the pool, for live introspection. *)
type stats = {
  domains : int;
  lane_count : int;
  busy_lanes : int;  (** lanes with a job in flight right now *)
  queued_jobs : int;  (** jobs waiting across all lane queues *)
  queue_high_water : int;  (** deepest any single lane's queue has been *)
  executed : int;  (** jobs completed over the pool's lifetime *)
}

val stats : t -> stats
(** Safe from any domain (reads under the pool mutex). *)

val submit : t -> lane:int -> (unit -> 'a) -> (('a, exn) result -> unit) -> unit
(** [submit t ~lane f k] queues [f] on [lane]; [k] receives the result
    (or the exception [f] raised) {e on the worker domain} — it should
    only hand the result off, e.g. via {!Fiber.suspend_external}'s
    resolver. @raise Invalid_argument after {!shutdown} or on an
    out-of-range lane. *)

val shutdown : t -> unit
(** Runs already-queued jobs to completion, then joins every worker.
    Idempotent. Must not be called from a pool callback. *)
