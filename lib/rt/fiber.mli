(** An effects-based cooperative fibre scheduler on one domain.

    Fibres are delimited continuations ([Effect.Deep]) multiplexed over
    the calling domain. Blocking work runs off-domain (see {!Pool}) and
    resumes its fibre through a thread-safe wake queue; the idle loop
    blocks in [Unix.select] on a self-pipe plus any descriptors fibres
    await, so socket servers and domain offloads share one loop.

    Concurrency is structured: every fork happens under a {!Switch.t}
    and [Switch.run] returns only when every forked fibre has completed
    (daemons are cancelled at switch exit) — fibres cannot outlive
    their switch. Cancellation is cooperative: it interrupts the
    fibre's current suspension with {!Cancelled} and makes every later
    suspension point raise. *)

exception Cancelled
(** Raised inside a fibre when its switch is cancelled. *)

exception Deadlock
(** Raised by {!run} when fibres are suspended but nothing — no ready
    fibre, sleeper, awaited descriptor or outstanding off-domain
    completion — can ever wake one. *)

val run : (unit -> 'a) -> 'a
(** Runs [main] as the root fibre and drives the scheduler until it and
    every forked fibre have completed. Must not be nested. *)

val inside : unit -> bool
(** Whether the calling code is executing under {!run} (and may
    therefore suspend instead of blocking the domain). *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); usable anywhere. *)

val yield : unit -> unit
(** Reschedules the calling fibre behind every ready fibre. *)

val sleep : float -> unit
(** Suspends the calling fibre for [d] wall-clock seconds. *)

val pending_fibres : unit -> int
(** Number of forked fibres not yet completed — 0 after any
    [Switch.run] returns (the leak-check invariant). *)

(** A point-in-time view of the scheduler, for live introspection
    ([/statusz], [fusion_rt_*] gauges). *)
type stats = {
  live : int;  (** forked fibres not yet completed *)
  run_queue : int;  (** fibres ready to run right now *)
  sleepers : int;  (** fibres parked on a deadline *)
  io_waiting : int;  (** fibres parked on fd readiness *)
  ext_pending : int;  (** outstanding off-domain completions *)
  polls : int;  (** times the idle loop entered [select] *)
  poll_wait : float;  (** cumulative wall seconds blocked in [select] *)
}

val stats : unit -> stats option
(** [None] outside {!run}. Must be read on the scheduler domain (any
    fibre qualifies). *)

val suspend : ((('a, exn) result -> unit) -> unit) -> 'a
(** [suspend register] parks the calling fibre; [register] receives a
    resolve-once function that resumes it with a value ([Ok]) or raises
    into it ([Error]). The resolver must be called from the scheduler
    domain; cancellation may also fire it, first call wins. *)

val suspend_external : ((('a, exn) result -> unit) -> unit) -> 'a
(** Like {!suspend}, but the resolver may be invoked from any domain
    (a domain-pool completion callback); the suspension counts as an
    external wake source for deadlock detection. *)

val await_readable : Unix.file_descr -> unit
(** Suspends until [fd] selects readable. The descriptor must stay open
    while awaited. *)

val await_writable : Unix.file_descr -> unit

val timeout : float -> (unit -> 'a) -> 'a option
(** [timeout d fn] runs [fn] under a fresh switch that is cancelled
    after [d] seconds; [None] on timeout. Exceptions from [fn]
    propagate. *)

(** Write-once cells for passing one value between fibres. *)
module Promise : sig
  type 'a t

  val create : unit -> 'a t
  val resolve : 'a t -> 'a -> unit
  val reject : 'a t -> exn -> unit

  val is_resolved : 'a t -> bool

  val await : 'a t -> 'a
  (** Suspends until resolved; re-raises a rejection. *)
end

(** Structured-concurrency scopes: forked fibres are joined (or, for
    daemons, cancelled) before [run] returns. *)
module Switch : sig
  type t

  val run : (t -> 'a) -> 'a
  (** Runs the body with a fresh switch and joins every fibre forked on
      it. A fibre failure cancels the others and re-raises from [run];
      daemons are cancelled once the body and all non-daemon fibres are
      done. *)

  val fork : t -> (unit -> unit) -> unit
  (** Forks a fibre; its failure (other than {!Cancelled}) fails the
      switch. *)

  val fork_daemon : t -> (unit -> unit) -> unit
  (** Forks a background fibre that is cancelled at switch exit rather
      than joined (e.g. an accept loop or a timeout timer). *)

  val fork_promise : t -> (unit -> 'a) -> 'a Promise.t
  (** Forks a fibre whose outcome — value or exception — is captured in
      the promise instead of failing the switch. *)

  val cancel : t -> unit
  (** Cancels every fibre in the switch (cooperatively, at their next
      suspension point). Idempotent. *)

  val cancelled : t -> bool
end

(** Counting semaphores over fibres (FIFO wakeup). *)
module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val release : t -> unit
  val value : t -> int
end

(** Bounded FIFO streams: [take] blocks when empty, [add] blocks when
    full. *)
module Stream : sig
  type 'a t

  val create : capacity:int -> 'a t
  val add : 'a t -> 'a -> unit
  val take : 'a t -> 'a

  val try_add : 'a t -> 'a -> bool
  (** Non-blocking [add]: [false] when the stream is full and no reader
      is waiting. Never suspends the calling fibre — safe on fibres
      (like a server pump) that must not block on one consumer. *)

  val take_opt : 'a t -> 'a option
  (** Non-blocking [take]; never wakes writers into an empty slot it
      did not free. *)

  val length : 'a t -> int

  val high_water : 'a t -> int
  (** Deepest the buffer has ever been — a persistently full stream
      (high water = capacity) is a backpressure signal. *)
end
