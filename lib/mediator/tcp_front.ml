(* A line-oriented TCP front end over the serving stack.

   Clients connect over loopback (or anywhere), send one fusion SQL
   statement per line, and receive one response line per statement:
   [ok] with the answer set and the per-query report fields, [shed]
   when admission control rejected it, or [error] when it failed to
   parse or execute. Every query goes through the same admission
   control, scheduling policy and shared answer cache as the simulated
   serving layer — only the clock is the wall.

   The front end runs entirely inside the runtime's fibre scheduler:
   an accept-loop daemon forks one reader and one writer fibre per
   connection, readers submit parsed queries to the mediator server,
   the server's pump dispatches them over the worker domains, and the
   completion/shed hooks hand response lines to the owning
   connection's outbox stream. Readers and the accept loop are daemons
   (an idle client must not block shutdown); writers are joined, so
   every response produced before the stop condition is flushed. A
   client that disconnects mid-stream or stops reading with a full
   outbox is shed (socket shut down) rather than allowed to stall the
   pump or the shutdown join. *)

module Runtime = Fusion_rt.Runtime
module Fiber = Fusion_rt.Fiber
module Pool = Fusion_rt.Pool
module S = Fusion_serve.Server
module Slow_log = Fusion_serve.Slow_log
module Item_set = Fusion_data.Item_set
module Value = Fusion_data.Value
module Meter = Fusion_net.Meter
module Metrics = Fusion_obs.Metrics
module Summary = Fusion_obs.Summary
module Window = Fusion_obs.Window
module Json = Fusion_obs.Json

type report = {
  connections : int;  (** connections accepted *)
  received : int;  (** SQL lines taken for processing *)
  rejected : int;  (** lines that failed to parse or optimize *)
  stats : S.stats;  (** serving-layer conservation stats *)
  observations : (int * Meter.totals * float) list;
      (** per-request wall-clock observations, for calibration *)
}

let sockaddr_to_string = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let sockaddr_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" s)
  | Some i ->
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | None -> Error (Printf.sprintf "bad port %S in %S" port s)
    | Some port ->
      (match Unix.inet_addr_of_string host with
      | addr -> Ok (Unix.ADDR_INET (addr, port))
      | exception Failure _ ->
        (match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
        | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port)))))

(* --- non-blocking line IO over fibres ------------------------------------ *)

(* Returns [false] when the peer is gone (EPIPE/ECONNRESET/...); the
   caller must treat that as connection close. SIGPIPE is ignored at
   [serve] entry so the write raises instead of killing the process. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Fiber.await_writable fd;
        go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ESHUTDOWN), _, _)
        -> false
  in
  go 0

(* Reads [fd] to EOF, invoking [handle] on each newline-terminated
   line (CR trimmed). A trailing unterminated line is delivered too. *)
let read_lines fd handle =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let flush () =
    let line = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if line <> "" then handle line
  in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> flush ()
    | n ->
      for i = 0 to n - 1 do
        let ch = Bytes.get chunk i in
        if ch = '\n' then flush () else Buffer.add_char buf ch
      done;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Fiber.await_readable fd;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> flush ()
  in
  go ()

(* --- response lines ------------------------------------------------------ *)

let completion_line (c : S.completion) =
  match c.S.c_failed with
  | Some msg -> Printf.sprintf "error id=%d %s" c.S.c_id msg
  | None ->
    let answer = Option.value ~default:Item_set.empty c.S.c_answer in
    Printf.sprintf "ok id=%d rows=%d cost=%.1f response=%.6f partial=%b items=%s"
      c.S.c_id (Item_set.cardinal answer) c.S.c_cost c.S.c_response c.S.c_partial
      (String.concat "," (List.map Value.to_string (Item_set.to_list answer)))

let shed_line (s : S.shed) =
  Printf.sprintf "shed id=%d reason=%s" s.S.s_id (S.shed_reason_name s.S.s_reason)

(* --- the admin view ------------------------------------------------------ *)

(* [Json.to_string] refuses non-finite numbers; percentiles over an
   empty window are all-zero, but poll-wait arithmetic could in theory
   go non-finite, so every float goes through this guard. *)
let fnum v = if Float.is_finite v then Json.Float v else Json.Null

let percentiles_json (p : Summary.percentiles) =
  Json.Obj
    [ ("p50", fnum p.Summary.p50); ("p90", fnum p.Summary.p90);
      ("p99", fnum p.Summary.p99); ("mean", fnum p.Summary.mean);
      ("max", fnum p.Summary.max); ("n", Json.Int p.Summary.n) ]

(* --- the server ---------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  outbox : string option Fiber.Stream.t;  (* [None] closes the connection *)
  mutable pending : int;  (* submitted queries not yet responded to *)
  mutable eof : bool;  (* reader saw end of stream *)
  mutable open_ends : int;  (* reader + writer still using [fd] *)
  mutable dropped : bool;  (* peer gone or shed; stop queuing responses *)
}

let release c =
  c.open_ends <- c.open_ends - 1;
  if c.open_ends = 0 then try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Sheds a connection without blocking: the shutdown wakes a writer
   stuck in [write_all] (it sees EPIPE and exits) and gives the reader
   EOF, so both fibres wind down on their own. *)
let drop c =
  if not c.dropped then begin
    c.dropped <- true;
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let serve ?(config = Mediator.Config.default) ?(policy = S.Fifo) ?max_inflight
    ?cache_ttl ?max_queries ?window ?slow_threshold ?admin ?admin_on_listen
    ?on_listen ~listen mediator =
  match config.Mediator.Config.runtime with
  | `Sim ->
    Error
      "the TCP front end serves on the wall clock: pass a real runtime \
       (runtime=domains)"
  | `Domains ndomains ->
    (* A client that disconnects with responses in flight must surface
       as EPIPE from [Unix.write], not kill the whole server. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let slow_log =
      Option.map (fun t -> Slow_log.create ~threshold:t ()) slow_threshold
    in
    let srv =
      Mediator.Server.create ~config ?max_inflight ?cache_ttl ?window ?slow_log
        ~policy mediator
    in
    let rt = Mediator.Server.runtime srv in
    let server = Mediator.Server.serve srv in
    let target = Option.value ~default:max_int max_queries in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
    let all_conns = ref [] in
    let connections = ref 0 and received = ref 0 and rejected = ref 0 in
    let answered = ref 0 in
    let started = Unix.gettimeofday () in
    (* Built fresh per /statusz request, on the scheduler domain — so
       [Fiber.stats] is readable and the pump's state is quiescent
       (fibres only interleave at suspension points). *)
    let statusz () =
      let st = S.stats server in
      let queue_full, deadline_unmeetable = S.shed_counts server in
      let cs = S.cache_stats server in
      let pool =
        match Runtime.pool_stats rt with
        | None -> Json.Null
        | Some ps ->
          Json.Obj
            [ ("domains", Json.Int ps.Pool.domains);
              ("lanes", Json.Int ps.Pool.lane_count);
              ("busy_lanes", Json.Int ps.Pool.busy_lanes);
              ("queued_jobs", Json.Int ps.Pool.queued_jobs);
              ("queue_high_water", Json.Int ps.Pool.queue_high_water);
              ("executed", Json.Int ps.Pool.executed) ]
      in
      let scheduler =
        match Fiber.stats () with
        | None -> Json.Null
        | Some fs ->
          Json.Obj
            [ ("fibres_live", Json.Int fs.Fiber.live);
              ("run_queue", Json.Int fs.Fiber.run_queue);
              ("sleepers", Json.Int fs.Fiber.sleepers);
              ("io_waiting", Json.Int fs.Fiber.io_waiting);
              ("ext_pending", Json.Int fs.Fiber.ext_pending);
              ("polls", Json.Int fs.Fiber.polls);
              ("poll_wait_seconds", fnum fs.Fiber.poll_wait) ]
      in
      let snow = S.now server in
      let tenants =
        List.map
          (fun (name, ts) ->
            Json.Obj
              [ ("tenant", Json.Str name);
                ("submitted", Json.Int ts.S.ts_submitted);
                ("completed", Json.Int ts.S.ts_completed);
                ("shed", Json.Int ts.S.ts_shed);
                ("consumed", fnum ts.S.ts_consumed);
                ( "window",
                  percentiles_json (Window.snapshot ts.S.ts_window ~now:snow) );
                ( "cumulative",
                  percentiles_json (Summary.latency_percentiles ts.S.ts_summary)
                ) ])
          (S.tenants server)
      in
      Json.Obj
        [ ("uptime_seconds", fnum (Unix.gettimeofday () -. started));
          ("runtime", Json.Str (Printf.sprintf "domains:%d" ndomains));
          ("policy", Json.Str (S.policy_name policy));
          ("window_span_seconds", fnum (S.window_span server));
          ("connections", Json.Int !connections);
          ("received", Json.Int !received);
          ("rejected", Json.Int !rejected);
          ( "stats",
            Json.Obj
              [ ("submitted", Json.Int st.S.submitted);
                ("queued", Json.Int st.S.queued);
                ("in_flight", Json.Int st.S.in_flight);
                ("completed", Json.Int st.S.completed);
                ("shed", Json.Int st.S.shed) ] );
          ( "shed_by_reason",
            Json.Obj
              [ ("queue_full", Json.Int queue_full);
                ("deadline_unmeetable", Json.Int deadline_unmeetable) ] );
          ("pool", pool);
          ("scheduler", scheduler);
          ( "cache",
            Json.Obj
              [ ("lookups", Json.Int cs.Fusion_plan.Answer_cache.lookups);
                ( "inflight_hits",
                  Json.Int cs.Fusion_plan.Answer_cache.inflight_hits );
                ("cached_hits", Json.Int cs.Fusion_plan.Answer_cache.cached_hits);
                ( "expirations",
                  Json.Int cs.Fusion_plan.Answer_cache.expirations );
                ( "staleness_sum",
                  fnum cs.Fusion_plan.Answer_cache.staleness_sum );
                ( "staleness_max",
                  fnum cs.Fusion_plan.Answer_cache.staleness_max ) ] );
          ("tenants", Json.List tenants);
          ( "slow_queries",
            match slow_log with None -> Json.Null | Some l -> Slow_log.to_json l
          ) ]
    in
    (* Runs on the pump fibre (completion/shed hooks), so it must never
       suspend: a stalled client with a full outbox is shed rather than
       head-of-line blocking every other connection. *)
    let respond c line =
      c.pending <- c.pending - 1;
      incr answered;
      if not c.dropped then begin
        if Fiber.Stream.try_add c.outbox (Some line) then begin
          if c.eof && c.pending = 0 then
            ignore (Fiber.Stream.try_add c.outbox None : bool)
        end
        else drop c
      end
    in
    let to_owner id line =
      match Hashtbl.find_opt conns id with
      | None -> ()
      | Some c ->
        Hashtbl.remove conns id;
        respond c line
    in
    S.on_complete server (fun comp -> to_owner comp.S.c_id (completion_line comp));
    S.on_shed server (fun sh -> to_owner sh.S.s_id (shed_line sh));
    let handle_line c line =
      if !received < target then begin
        incr received;
        match Mediator.Server.submit_sql srv ~at:(Runtime.now rt) line with
        | Ok id ->
          c.pending <- c.pending + 1;
          Hashtbl.replace conns id c
        | Error msg ->
          incr rejected;
          incr answered;
          if not c.dropped then Fiber.Stream.add c.outbox (Some ("error " ^ msg))
      end
    in
    let handle_conn sw fd =
      incr connections;
      Unix.set_nonblock fd;
      let c =
        { fd; outbox = Fiber.Stream.create ~capacity:256; pending = 0; eof = false;
          open_ends = 2; dropped = false }
      in
      all_conns := c :: !all_conns;
      (* The writer is joined at switch exit so shutdown flushes every
         queued response before the socket closes. *)
      Fiber.Switch.fork sw (fun () ->
          Fun.protect
            ~finally:(fun () -> release c)
            (fun () ->
              let rec loop () =
                match Fiber.Stream.take c.outbox with
                | Some line ->
                  if write_all fd (line ^ "\n") then loop () else c.dropped <- true
                | None -> ()
              in
              loop ()));
      Fiber.Switch.fork_daemon sw (fun () ->
          Fun.protect
            ~finally:(fun () -> release c)
            (fun () ->
              read_lines fd (handle_line c);
              c.eof <- true;
              if c.pending = 0 && not c.dropped then Fiber.Stream.add c.outbox None))
    in
    let result =
      Runtime.run rt (fun () ->
          let lsock = Unix.socket (Unix.domain_of_sockaddr listen) Unix.SOCK_STREAM 0 in
          Unix.setsockopt lsock Unix.SO_REUSEADDR true;
          match Unix.bind lsock listen with
          | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close lsock with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "cannot listen on %s: %s" (sockaddr_to_string listen)
                 (Unix.error_message e))
          | () ->
            Unix.listen lsock 16;
            Unix.set_nonblock lsock;
            Option.iter (fun f -> f (Unix.getsockname lsock)) on_listen;
            (* Set when this serve installed the process registry itself
               (admin requested, none installed): it is uninstalled on
               the way out so one serve run does not leave global
               recording state behind. *)
            let installed_registry = ref false in
            Fun.protect
              ~finally:(fun () ->
                if !installed_registry then Metrics.uninstall ();
                try Unix.close lsock with Unix.Unix_error _ -> ())
              (fun () ->
                (* Set once the pump stops: the accept daemon stays live
                   while writers are joined, so without this guard a
                   late-accepted connection would fork a writer that
                   never sees [None] and the join would never finish. *)
                let shutting_down = ref false in
                let admin_error = ref None in
                Fiber.Switch.run (fun sw ->
                    let admin_ok =
                      match admin with
                      | None -> true
                      | Some addr ->
                        (* Reuse the process registry if the embedding
                           app installed one (its counters then show up
                           on /metrics too); install a fresh one
                           otherwise so the scrape is never empty. *)
                        let registry =
                          match Metrics.installed () with
                          | Some r -> r
                          | None ->
                            let r = Metrics.create () in
                            Metrics.install r;
                            installed_registry := true;
                            r
                        in
                        let refresh () =
                          Runtime.publish_metrics rt;
                          S.publish_metrics server
                        in
                        (match
                           Admin_front.start ~sw ?on_listen:admin_on_listen
                             ~listen:addr
                             { Admin_front.refresh; registry; statusz }
                         with
                        | Ok () ->
                          (* Keep point-in-time gauges (GC, run queue,
                             lane occupancy) fresh between scrapes. *)
                          Fiber.Switch.fork_daemon sw (fun () ->
                              let rec tick () =
                                refresh ();
                                Fiber.sleep 1.0;
                                tick ()
                              in
                              tick ());
                          true
                        | Error msg ->
                          admin_error := Some msg;
                          false)
                    in
                    if admin_ok then begin
                    Fiber.Switch.fork_daemon sw (fun () ->
                        let rec accept_loop () =
                          Fiber.await_readable lsock;
                          (match Unix.accept lsock with
                          | fd, _ ->
                            if !shutting_down then
                              (try Unix.close fd with Unix.Unix_error _ -> ())
                            else handle_conn sw fd
                          | exception
                              Unix.Unix_error
                                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                            -> ());
                          accept_loop ()
                        in
                        accept_loop ());
                    S.pump server ~stop:(fun () -> !answered >= target);
                    shutting_down := true;
                    (* Flush and close every connection still open. A
                       connection whose outbox is still full here has a
                       stalled client: shed it instead of blocking the
                       shutdown on its backpressure. *)
                    List.iter
                      (fun c ->
                        if
                          (not c.dropped)
                          && not (Fiber.Stream.try_add c.outbox None)
                        then drop c)
                      !all_conns
                    end);
                (match !admin_error with
                | Some msg -> Error msg
                | None -> Ok ())))
    in
    let observations = Runtime.observations rt in
    let stats = Mediator.Server.stats srv in
    Mediator.Server.shutdown srv;
    Result.map
      (fun () ->
        { connections = !connections; received = !received; rejected = !rejected;
          stats; observations })
      result

(* --- a minimal blocking client, for smoke tests -------------------------- *)

(* Connects (retrying while the server binds), sends each statement on
   its own line, then reads response lines until every statement has
   been answered. Plain blocking sockets: the client needs no fibres. *)
let client ?(retries = 50) ~connect statements =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec dial attempt =
    let fd = Unix.socket (Unix.domain_of_sockaddr connect) Unix.SOCK_STREAM 0 in
    match Unix.connect fd connect with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then
        Error
          (Printf.sprintf "cannot connect to %s: %s" (sockaddr_to_string connect)
             (Unix.error_message e))
      else begin
        Unix.sleepf 0.1;
        dial (attempt + 1)
      end
  in
  match dial 0 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let out = Unix.out_channel_of_descr fd in
        List.iter
          (fun sql ->
            output_string out sql;
            output_char out '\n')
          statements;
        flush out;
        let ic = Unix.in_channel_of_descr fd in
        let rec read_responses acc k =
          if k = 0 then Ok (List.rev acc)
          else
            match input_line ic with
            | line -> read_responses (line :: acc) (k - 1)
            | exception End_of_file ->
              Error
                (Printf.sprintf "connection closed after %d of %d responses"
                   (List.length acc) (List.length statements))
        in
        read_responses [] (List.length statements))
