(* A line-oriented TCP front end over the serving stack.

   Clients connect over loopback (or anywhere), send one fusion SQL
   statement per line, and receive one response line per statement:
   [ok] with the answer set and the per-query report fields, [shed]
   when admission control rejected it, or [error] when it failed to
   parse or execute. Every query goes through the same admission
   control, scheduling policy and shared answer cache as the simulated
   serving layer — only the clock is the wall.

   The front end runs entirely inside the runtime's fibre scheduler:
   an accept-loop daemon forks one reader and one writer fibre per
   connection, readers submit parsed queries to the mediator server,
   the server's pump dispatches them over the worker domains, and the
   completion/shed hooks hand response lines to the owning
   connection's outbox stream. Readers and the accept loop are daemons
   (an idle client must not block shutdown); writers are joined, so
   every response produced before the stop condition is flushed. A
   client that disconnects mid-stream or stops reading with a full
   outbox is shed (socket shut down) rather than allowed to stall the
   pump or the shutdown join. *)

module Runtime = Fusion_rt.Runtime
module Fiber = Fusion_rt.Fiber
module Pool = Fusion_rt.Pool
module S = Fusion_serve.Server
module Slow_log = Fusion_serve.Slow_log
module Delta = Fusion_delta.Delta
module Change = Fusion_delta.Change
module Item_set = Fusion_data.Item_set
module Value = Fusion_data.Value
module Meter = Fusion_net.Meter
module Metrics = Fusion_obs.Metrics
module Summary = Fusion_obs.Summary
module Window = Fusion_obs.Window
module Json = Fusion_obs.Json

type report = {
  connections : int;  (** connections accepted *)
  received : int;  (** SQL lines taken for processing *)
  rejected : int;  (** lines that failed to parse or optimize *)
  stats : S.stats;  (** serving-layer conservation stats *)
  observations : (int * Meter.totals * float) list;
      (** per-request wall-clock observations, for calibration *)
}

let sockaddr_to_string = function
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p

let sockaddr_of_string s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (expected HOST:PORT)" s)
  | Some i ->
    let host = String.sub s 0 i
    and port = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt port with
    | None -> Error (Printf.sprintf "bad port %S in %S" port s)
    | Some port ->
      (match Unix.inet_addr_of_string host with
      | addr -> Ok (Unix.ADDR_INET (addr, port))
      | exception Failure _ ->
        (match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
        | { Unix.h_addr_list; _ } -> Ok (Unix.ADDR_INET (h_addr_list.(0), port)))))

(* --- non-blocking line IO over fibres ------------------------------------ *)

(* Returns [false] when the peer is gone (EPIPE/ECONNRESET/...); the
   caller must treat that as connection close. SIGPIPE is ignored at
   [serve] entry so the write raises instead of killing the process. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Fiber.await_writable fd;
        go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ESHUTDOWN), _, _)
        -> false
  in
  go 0

(* Reads [fd] to EOF, invoking [handle] on each newline-terminated
   line (CR trimmed). A trailing unterminated line is delivered too. *)
let read_lines fd handle =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let flush () =
    let line = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if line <> "" then handle line
  in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> flush ()
    | n ->
      for i = 0 to n - 1 do
        let ch = Bytes.get chunk i in
        if ch = '\n' then flush () else Buffer.add_char buf ch
      done;
      go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Fiber.await_readable fd;
      go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> flush ()
  in
  go ()

(* --- response lines ------------------------------------------------------ *)

let completion_line (c : S.completion) =
  match c.S.c_failed with
  | Some msg -> Printf.sprintf "error id=%d %s" c.S.c_id msg
  | None ->
    let answer = Option.value ~default:Item_set.empty c.S.c_answer in
    Printf.sprintf "ok id=%d rows=%d cost=%.1f response=%.6f partial=%b items=%s"
      c.S.c_id (Item_set.cardinal answer) c.S.c_cost c.S.c_response c.S.c_partial
      (String.concat "," (List.map Value.to_string (Item_set.to_list answer)))

let shed_line (s : S.shed) =
  Printf.sprintf "shed id=%d reason=%s" s.S.s_id (S.shed_reason_name s.S.s_reason)

let items_text s = String.concat "," (List.map Value.to_string (Item_set.to_list s))

let push_line (p : S.push) =
  Printf.sprintf "push id=%d seq=%d rows=%d added=%s removed=%s" p.S.pu_sub
    p.S.pu_seq
    (Item_set.cardinal p.S.pu_answer)
    (items_text p.S.pu_change.Change.adds)
    (items_text p.S.pu_change.Change.dels)

(* Splits a statement line into its first word and the rest, for the
   non-SQL commands ([sub]/[unsub]/[mut]). *)
let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

(* --- the admin view ------------------------------------------------------ *)

(* [Json.to_string] refuses non-finite numbers; percentiles over an
   empty window are all-zero, but poll-wait arithmetic could in theory
   go non-finite, so every float goes through this guard. *)
let fnum v = if Float.is_finite v then Json.Float v else Json.Null

let percentiles_json (p : Summary.percentiles) =
  Json.Obj
    [ ("p50", fnum p.Summary.p50); ("p90", fnum p.Summary.p90);
      ("p99", fnum p.Summary.p99); ("mean", fnum p.Summary.mean);
      ("max", fnum p.Summary.max); ("n", Json.Int p.Summary.n) ]

(* --- the server ---------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  outbox : string option Fiber.Stream.t;  (* [None] closes the connection *)
  mutable pending : int;  (* submitted queries not yet responded to *)
  mutable eof : bool;  (* reader saw end of stream *)
  mutable open_ends : int;  (* reader + writer still using [fd] *)
  mutable dropped : bool;  (* peer gone or shed; stop queuing responses *)
  mutable subs : int list;  (* subscription ids owned by this connection *)
}

let release c =
  c.open_ends <- c.open_ends - 1;
  if c.open_ends = 0 then try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Sheds a connection without blocking: the shutdown wakes a writer
   stuck in [write_all] (it sees EPIPE and exits) and gives the reader
   EOF, so both fibres wind down on their own. *)
let drop c =
  if not c.dropped then begin
    c.dropped <- true;
    try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  end

let serve ?(config = Mediator.Config.default) ?(policy = S.Fifo) ?max_inflight
    ?cache_ttl ?versioned_cache ?max_queries ?window ?slow_threshold ?admin
    ?admin_on_listen ?on_listen ~listen mediator =
  match config.Mediator.Config.runtime with
  | `Sim ->
    Error
      "the TCP front end serves on the wall clock: pass a real runtime \
       (runtime=domains)"
  | `Domains ndomains ->
    (* A client that disconnects with responses in flight must surface
       as EPIPE from [Unix.write], not kill the whole server. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let slow_log =
      Option.map (fun t -> Slow_log.create ~threshold:t ()) slow_threshold
    in
    let srv =
      Mediator.Server.create ~config ?max_inflight ?cache_ttl ?versioned_cache
        ?window ?slow_log ~policy mediator
    in
    let rt = Mediator.Server.runtime srv in
    let server = Mediator.Server.serve srv in
    let target = Option.value ~default:max_int max_queries in
    let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
    let sub_owner : (int, conn) Hashtbl.t = Hashtbl.create 16 in
    let all_conns = ref [] in
    let connections = ref 0 and received = ref 0 and rejected = ref 0 in
    let answered = ref 0 in
    let started = Unix.gettimeofday () in
    (* Built fresh per /statusz request, on the scheduler domain — so
       [Fiber.stats] is readable and the pump's state is quiescent
       (fibres only interleave at suspension points). *)
    let statusz () =
      let st = S.stats server in
      let queue_full, deadline_unmeetable = S.shed_counts server in
      let cs = S.cache_stats server in
      let pool =
        match Runtime.pool_stats rt with
        | None -> Json.Null
        | Some ps ->
          Json.Obj
            [ ("domains", Json.Int ps.Pool.domains);
              ("lanes", Json.Int ps.Pool.lane_count);
              ("busy_lanes", Json.Int ps.Pool.busy_lanes);
              ("queued_jobs", Json.Int ps.Pool.queued_jobs);
              ("queue_high_water", Json.Int ps.Pool.queue_high_water);
              ("executed", Json.Int ps.Pool.executed) ]
      in
      let scheduler =
        match Fiber.stats () with
        | None -> Json.Null
        | Some fs ->
          Json.Obj
            [ ("fibres_live", Json.Int fs.Fiber.live);
              ("run_queue", Json.Int fs.Fiber.run_queue);
              ("sleepers", Json.Int fs.Fiber.sleepers);
              ("io_waiting", Json.Int fs.Fiber.io_waiting);
              ("ext_pending", Json.Int fs.Fiber.ext_pending);
              ("polls", Json.Int fs.Fiber.polls);
              ("poll_wait_seconds", fnum fs.Fiber.poll_wait) ]
      in
      let snow = S.now server in
      let tenants =
        List.map
          (fun (name, ts) ->
            Json.Obj
              [ ("tenant", Json.Str name);
                ("submitted", Json.Int ts.S.ts_submitted);
                ("completed", Json.Int ts.S.ts_completed);
                ("shed", Json.Int ts.S.ts_shed);
                ("consumed", fnum ts.S.ts_consumed);
                ( "window",
                  percentiles_json (Window.snapshot ts.S.ts_window ~now:snow) );
                ( "cumulative",
                  percentiles_json (Summary.latency_percentiles ts.S.ts_summary)
                ) ])
          (S.tenants server)
      in
      Json.Obj
        [ ("uptime_seconds", fnum (Unix.gettimeofday () -. started));
          ("runtime", Json.Str (Printf.sprintf "domains:%d" ndomains));
          ("policy", Json.Str (S.policy_name policy));
          ("window_span_seconds", fnum (S.window_span server));
          ("connections", Json.Int !connections);
          ("received", Json.Int !received);
          ("rejected", Json.Int !rejected);
          ( "stats",
            Json.Obj
              [ ("submitted", Json.Int st.S.submitted);
                ("queued", Json.Int st.S.queued);
                ("in_flight", Json.Int st.S.in_flight);
                ("completed", Json.Int st.S.completed);
                ("shed", Json.Int st.S.shed) ] );
          ( "shed_by_reason",
            Json.Obj
              [ ("queue_full", Json.Int queue_full);
                ("deadline_unmeetable", Json.Int deadline_unmeetable) ] );
          ("pool", pool);
          ("scheduler", scheduler);
          ( "cache",
            Json.Obj
              [ ("lookups", Json.Int cs.Fusion_plan.Answer_cache.lookups);
                ( "inflight_hits",
                  Json.Int cs.Fusion_plan.Answer_cache.inflight_hits );
                ("cached_hits", Json.Int cs.Fusion_plan.Answer_cache.cached_hits);
                ( "expirations",
                  Json.Int cs.Fusion_plan.Answer_cache.expirations );
                ( "invalidated",
                  Json.Int cs.Fusion_plan.Answer_cache.invalidated );
                ("patched", Json.Int cs.Fusion_plan.Answer_cache.patched);
                ( "staleness_sum",
                  fnum cs.Fusion_plan.Answer_cache.staleness_sum );
                ( "staleness_max",
                  fnum cs.Fusion_plan.Answer_cache.staleness_max ) ] );
          ( "delta",
            let ds = S.delta_stats server in
            Json.Obj
              [ ("batches", Json.Int ds.S.ds_batches);
                ("inserts", Json.Int ds.S.ds_inserts);
                ("deletes", Json.Int ds.S.ds_deletes);
                ("pushes", Json.Int ds.S.ds_pushes);
                ("subscribers", Json.Int ds.S.ds_subscribers) ] );
          ( "subscriptions",
            Json.List
              (List.map
                 (fun (si : S.subscription_info) ->
                   Json.Obj
                     [ ("id", Json.Int si.S.si_id);
                       ("tenant", Json.Str si.S.si_tenant);
                       ("label", Json.Str si.S.si_label);
                       ("pushes", Json.Int si.S.si_pushes);
                       ("answer_size", Json.Int si.S.si_answer_size) ])
                 (S.subscriptions server)) );
          ("tenants", Json.List tenants);
          ( "slow_queries",
            match slow_log with None -> Json.Null | Some l -> Slow_log.to_json l
          ) ]
    in
    (* Runs on the pump fibre (completion/shed hooks), so it must never
       suspend: a stalled client with a full outbox is shed rather than
       head-of-line blocking every other connection. *)
    let respond c line =
      c.pending <- c.pending - 1;
      incr answered;
      if not c.dropped then begin
        if Fiber.Stream.try_add c.outbox (Some line) then begin
          if c.eof && c.pending = 0 then
            ignore (Fiber.Stream.try_add c.outbox None : bool)
        end
        else drop c
      end
    in
    let to_owner id line =
      match Hashtbl.find_opt conns id with
      | None -> ()
      | Some c ->
        Hashtbl.remove conns id;
        respond c line
    in
    S.on_complete server (fun comp -> to_owner comp.S.c_id (completion_line comp));
    S.on_shed server (fun sh -> to_owner sh.S.s_id (shed_line sh));
    (* Push lines are extra traffic on top of the one-response-per-line
       contract: only a subscribed connection receives them, between (or
       after) its regular responses. Like [respond], this runs on a fibre
       that must not suspend, so a stalled subscriber is shed. *)
    S.on_push server (fun p ->
        match Hashtbl.find_opt sub_owner p.S.pu_sub with
        | None -> ()
        | Some c ->
          if not c.dropped then
            if not (Fiber.Stream.try_add c.outbox (Some (push_line p))) then
              drop c);
    let handle_line c line =
      if !received < target then begin
        incr received;
        (* A synchronous response: [sub]/[unsub]/[mut] are answered from
           the reader fibre itself, which may suspend on a full outbox. *)
        let reply line =
          incr answered;
          if not c.dropped then Fiber.Stream.add c.outbox (Some line);
          (* This answer may have met [max_queries]; the pump only
             re-checks its stop condition when woken. *)
          S.nudge server
        in
        let fail msg =
          incr rejected;
          reply ("error " ^ msg)
        in
        let word, rest = split_command line in
        match String.lowercase_ascii word with
        | "sub" -> (
          match Mediator.Server.subscribe_sql srv rest with
          | Ok id ->
            c.subs <- id :: c.subs;
            Hashtbl.replace sub_owner id c;
            let answer =
              Option.value ~default:Item_set.empty
                (S.subscription_answer server id)
            in
            reply
              (Printf.sprintf "sub id=%d rows=%d items=%s" id
                 (Item_set.cardinal answer) (items_text answer))
          | Error msg -> fail msg)
        | "unsub" -> (
          match int_of_string_opt rest with
          | None -> fail (Printf.sprintf "bad subscription id %S" rest)
          | Some id ->
            if Mediator.Server.unsubscribe srv id then begin
              Hashtbl.remove sub_owner id;
              c.subs <- List.filter (fun i -> i <> id) c.subs;
              reply (Printf.sprintf "unsub id=%d" id)
            end
            else fail (Printf.sprintf "unknown subscription %d" id))
        | "mut" -> (
          let source, payload = split_command rest in
          if source = "" || payload = "" then
            fail "usage: mut SOURCE +row;-row;..."
          else
            match Mediator.Server.mutate_line srv ~source payload with
            | Ok a ->
              reply
                (Printf.sprintf
                   "mut source=%s inserted=%d deleted=%d missed=%d version=%d"
                   source a.Delta.inserted a.Delta.deleted a.Delta.missed
                   a.Delta.version)
            | Error msg -> fail msg)
        | _ -> (
          match Mediator.Server.submit_sql srv ~at:(Runtime.now rt) line with
          | Ok id ->
            c.pending <- c.pending + 1;
            Hashtbl.replace conns id c
          | Error msg -> fail msg)
      end
    in
    let handle_conn sw fd =
      incr connections;
      Unix.set_nonblock fd;
      let c =
        { fd; outbox = Fiber.Stream.create ~capacity:256; pending = 0; eof = false;
          open_ends = 2; dropped = false; subs = [] }
      in
      all_conns := c :: !all_conns;
      (* The writer is joined at switch exit so shutdown flushes every
         queued response before the socket closes. *)
      Fiber.Switch.fork sw (fun () ->
          Fun.protect
            ~finally:(fun () -> release c)
            (fun () ->
              let rec loop () =
                match Fiber.Stream.take c.outbox with
                | Some line ->
                  if write_all fd (line ^ "\n") then loop () else c.dropped <- true
                | None -> ()
              in
              loop ()));
      Fiber.Switch.fork_daemon sw (fun () ->
          Fun.protect
            ~finally:(fun () ->
              (* A gone client must not keep receiving pushes. *)
              List.iter
                (fun id ->
                  Hashtbl.remove sub_owner id;
                  ignore (Mediator.Server.unsubscribe srv id : bool))
                c.subs;
              c.subs <- [];
              release c)
            (fun () ->
              read_lines fd (handle_line c);
              c.eof <- true;
              if c.pending = 0 && not c.dropped then Fiber.Stream.add c.outbox None))
    in
    let result =
      Runtime.run rt (fun () ->
          let lsock = Unix.socket (Unix.domain_of_sockaddr listen) Unix.SOCK_STREAM 0 in
          Unix.setsockopt lsock Unix.SO_REUSEADDR true;
          match Unix.bind lsock listen with
          | exception Unix.Unix_error (e, _, _) ->
            (try Unix.close lsock with Unix.Unix_error _ -> ());
            Error
              (Printf.sprintf "cannot listen on %s: %s" (sockaddr_to_string listen)
                 (Unix.error_message e))
          | () ->
            Unix.listen lsock 16;
            Unix.set_nonblock lsock;
            Option.iter (fun f -> f (Unix.getsockname lsock)) on_listen;
            (* Set when this serve installed the process registry itself
               (admin requested, none installed): it is uninstalled on
               the way out so one serve run does not leave global
               recording state behind. *)
            let installed_registry = ref false in
            Fun.protect
              ~finally:(fun () ->
                if !installed_registry then Metrics.uninstall ();
                try Unix.close lsock with Unix.Unix_error _ -> ())
              (fun () ->
                (* Set once the pump stops: the accept daemon stays live
                   while writers are joined, so without this guard a
                   late-accepted connection would fork a writer that
                   never sees [None] and the join would never finish. *)
                let shutting_down = ref false in
                let admin_error = ref None in
                Fiber.Switch.run (fun sw ->
                    let admin_ok =
                      match admin with
                      | None -> true
                      | Some addr ->
                        (* Reuse the process registry if the embedding
                           app installed one (its counters then show up
                           on /metrics too); install a fresh one
                           otherwise so the scrape is never empty. *)
                        let registry =
                          match Metrics.installed () with
                          | Some r -> r
                          | None ->
                            let r = Metrics.create () in
                            Metrics.install r;
                            installed_registry := true;
                            r
                        in
                        let refresh () =
                          Runtime.publish_metrics rt;
                          S.publish_metrics server
                        in
                        (match
                           Admin_front.start ~sw ?on_listen:admin_on_listen
                             ~listen:addr
                             { Admin_front.refresh; registry; statusz }
                         with
                        | Ok () ->
                          (* Keep point-in-time gauges (GC, run queue,
                             lane occupancy) fresh between scrapes. *)
                          Fiber.Switch.fork_daemon sw (fun () ->
                              let rec tick () =
                                refresh ();
                                Fiber.sleep 1.0;
                                tick ()
                              in
                              tick ());
                          true
                        | Error msg ->
                          admin_error := Some msg;
                          false)
                    in
                    if admin_ok then begin
                    Fiber.Switch.fork_daemon sw (fun () ->
                        let rec accept_loop () =
                          Fiber.await_readable lsock;
                          (match Unix.accept lsock with
                          | fd, _ ->
                            if !shutting_down then
                              (try Unix.close fd with Unix.Unix_error _ -> ())
                            else handle_conn sw fd
                          | exception
                              Unix.Unix_error
                                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                            -> ());
                          accept_loop ()
                        in
                        accept_loop ());
                    S.pump server ~stop:(fun () -> !answered >= target);
                    shutting_down := true;
                    (* Flush and close every connection still open. A
                       connection whose outbox is still full here has a
                       stalled client: shed it instead of blocking the
                       shutdown on its backpressure. *)
                    List.iter
                      (fun c ->
                        if
                          (not c.dropped)
                          && not (Fiber.Stream.try_add c.outbox None)
                        then drop c)
                      !all_conns
                    end);
                (match !admin_error with
                | Some msg -> Error msg
                | None -> Ok ())))
    in
    let observations = Runtime.observations rt in
    let stats = Mediator.Server.stats srv in
    Mediator.Server.shutdown srv;
    Result.map
      (fun () ->
        { connections = !connections; received = !received; rejected = !rejected;
          stats; observations })
      result

(* --- minimal blocking clients, for smoke tests --------------------------- *)

(* Connects with retries while the server binds. Plain blocking
   sockets: the clients need no fibres. *)
let dial ~retries connect =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec go attempt =
    let fd = Unix.socket (Unix.domain_of_sockaddr connect) Unix.SOCK_STREAM 0 in
    match Unix.connect fd connect with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then
        Error
          (Printf.sprintf "cannot connect to %s: %s" (sockaddr_to_string connect)
             (Unix.error_message e))
      else begin
        Unix.sleepf 0.1;
        go (attempt + 1)
      end
  in
  go 0

(* Sends each statement on its own line, then reads response lines
   until every statement has been answered. *)
let client ?(retries = 50) ~connect statements =
  match dial ~retries connect with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let out = Unix.out_channel_of_descr fd in
        List.iter
          (fun sql ->
            output_string out sql;
            output_char out '\n')
          statements;
        flush out;
        let ic = Unix.in_channel_of_descr fd in
        let rec read_responses acc k =
          if k = 0 then Ok (List.rev acc)
          else
            match input_line ic with
            | line -> read_responses (line :: acc) (k - 1)
            | exception End_of_file ->
              Error
                (Printf.sprintf "connection closed after %d of %d responses"
                   (List.length acc) (List.length statements))
        in
        read_responses [] (List.length statements))

(* Subscribes and streams: sends [sub <sql>], hands every received line
   (the sub acknowledgement, then asynchronous pushes) to [on_line].
   With [pushes > 0], returns once that many push lines arrived —
   the termination condition CI smoke tests need. *)
let watch ?(retries = 50) ?(pushes = 0) ~connect ~on_line sql =
  match dial ~retries connect with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let out = Unix.out_channel_of_descr fd in
        output_string out ("sub " ^ sql ^ "\n");
        flush out;
        let ic = Unix.in_channel_of_descr fd in
        let rec loop seen =
          match input_line ic with
          | exception End_of_file ->
            if pushes > 0 then
              Error
                (Printf.sprintf "connection closed after %d of %d pushes" seen
                   pushes)
            else Ok ()
          | line ->
            on_line line;
            if String.starts_with ~prefix:"error" line then Error line
            else
              let seen =
                if String.starts_with ~prefix:"push " line then seen + 1
                else seen
              in
              if pushes > 0 && seen >= pushes then Ok () else loop seen
        in
        loop 0)
