(* A minimal HTTP/1.0 admin listener on the fibre scheduler.

   Serves the live-observability endpoints next to the SQL front end
   (same Switch, same scheduler domain, no extra threads):

     GET /metrics   Prometheus 0.0.4 text of the installed registry
                    (the [refresh] hook runs first so runtime/serve
                    gauges are point-in-time at the scrape)
     GET /healthz   "ok"
     GET /statusz   one JSON object from the [statusz] hook

   One request per connection ([Connection: close]); request bodies are
   not read — enough for curl, Prometheus scrapers and [fqcli top],
   with none of an HTTP stack's surface. Handler fibres are daemons:
   an admin client never blocks front-end shutdown. *)

module Fiber = Fusion_rt.Fiber
module Metrics = Fusion_obs.Metrics
module Prom = Fusion_obs.Prom
module Json = Fusion_obs.Json

type handlers = {
  refresh : unit -> unit; (* runs before every /metrics scrape *)
  registry : Metrics.t; (* what /metrics exports *)
  statusz : unit -> Json.t; (* what /statusz serializes *)
}

(* Identical failure semantics to Tcp_front's writer: [false] = peer
   gone, caller treats as close. *)
let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then true
    else
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Fiber.await_writable fd;
        go off
      | exception
          Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.ESHUTDOWN), _, _)
        -> false
  in
  go 0

(* Reads until the end of the request head (blank line) or EOF and
   returns the request line; headers are ignored. Bounded: a peer
   streaming an endless head is cut off at 16 KiB. *)
let read_request_line fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 16384 then None
    else if
      let s = Buffer.contents buf in
      let has sub =
        let n = String.length s and m = String.length sub in
        let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
        at 0
      in
      has "\r\n\r\n" || has "\n\n"
    then Some (Buffer.contents buf)
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Fiber.await_readable fd;
        go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> None
  in
  match go () with
  | None -> None
  | Some head ->
    let line =
      match String.index_opt head '\n' with
      | Some i -> String.sub head 0 i
      | None -> head
    in
    Some (String.trim line)

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let handle_request h = function
  | "/metrics" ->
    h.refresh ();
    response ~status:"200 OK"
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      (Prom.of_registry h.registry)
  | "/healthz" -> response ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | "/statusz" ->
    (match Json.to_string (h.statusz ()) with
    | body ->
      response ~status:"200 OK" ~content_type:"application/json" (body ^ "\n")
    | exception Invalid_argument msg ->
      response ~status:"500 Internal Server Error" ~content_type:"text/plain"
        ("statusz serialization failed: " ^ msg ^ "\n"))
  | path ->
    response ~status:"404 Not Found" ~content_type:"text/plain"
      (Printf.sprintf "no such endpoint %s (try /metrics, /healthz, /statusz)\n"
         path)

let handle_conn h fd =
  Unix.set_nonblock fd;
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request_line fd with
      | None -> ()
      | Some line ->
        let reply =
          match String.split_on_char ' ' line with
          | "GET" :: path :: _ ->
            (* Strip any query string: /statusz?pretty -> /statusz. *)
            let path =
              match String.index_opt path '?' with
              | Some i -> String.sub path 0 i
              | None -> path
            in
            handle_request h path
          | _ ->
            response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
              "only GET is supported\n"
        in
        ignore (write_all fd reply : bool))

let start ~sw ?on_listen ~listen h =
  let lsock = Unix.socket (Unix.domain_of_sockaddr listen) Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  match Unix.bind lsock listen with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close lsock with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot listen on %s (admin): %s"
         (match listen with
         | Unix.ADDR_INET (a, p) ->
           Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
         | Unix.ADDR_UNIX p -> p)
         (Unix.error_message e))
  | () ->
    Unix.listen lsock 16;
    Unix.set_nonblock lsock;
    Option.iter (fun f -> f (Unix.getsockname lsock)) on_listen;
    Fiber.Switch.fork_daemon sw (fun () ->
        Fun.protect
          ~finally:(fun () -> try Unix.close lsock with Unix.Unix_error _ -> ())
          (fun () ->
            let rec accept_loop () =
              Fiber.await_readable lsock;
              (match Unix.accept lsock with
              | fd, _ -> Fiber.Switch.fork_daemon sw (fun () -> handle_conn h fd)
              | exception
                  Unix.Unix_error
                    ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
                -> ());
              accept_loop ()
            in
            accept_loop ()));
    Ok ()

(* --- a minimal blocking client, for fqcli top and smoke tests ------------ *)

let http_get ?(retries = 50) ~connect path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let rec dial attempt =
    let fd = Unix.socket (Unix.domain_of_sockaddr connect) Unix.SOCK_STREAM 0 in
    match Unix.connect fd connect with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if attempt >= retries then
        Error (Printf.sprintf "cannot connect: %s" (Unix.error_message e))
      else begin
        Unix.sleepf 0.1;
        dial (attempt + 1)
      end
  in
  match dial 0 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let request =
          Printf.sprintf "GET %s HTTP/1.0\r\nConnection: close\r\n\r\n" path
        in
        let b = Bytes.of_string request in
        let rec send off =
          if off < Bytes.length b then
            send (off + Unix.write fd b off (Bytes.length b - off))
        in
        match send 0 with
        | exception Unix.Unix_error (e, _, _) ->
          Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
        | () ->
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec recv () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              recv ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> ()
          in
          recv ();
          let raw = Buffer.contents buf in
          let find_sub s sub =
            let n = String.length s and m = String.length sub in
            let rec at i =
              if i + m > n then None
              else if String.sub s i m = sub then Some i
              else at (i + 1)
            in
            at 0
          in
          let status =
            match String.index_opt raw ' ' with
            | Some i -> (
              let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
              match String.index_opt rest ' ' with
              | Some j -> (
                match int_of_string_opt (String.sub rest 0 j) with
                | Some code -> code
                | None -> 0)
              | None -> 0)
            | None -> 0
          in
          let body =
            match find_sub raw "\r\n\r\n" with
            | Some i -> String.sub raw (i + 4) (String.length raw - i - 4)
            | None -> (
              match find_sub raw "\n\n" with
              | Some i -> String.sub raw (i + 2) (String.length raw - i - 2)
              | None -> "")
          in
          if status = 0 then Error "malformed HTTP response"
          else Ok (status, body))
