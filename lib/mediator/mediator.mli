(** The mediator runtime: end-to-end fusion query processing.

    Registers the sources, accepts queries (as ASTs or SQL text),
    optimizes with a chosen algorithm, executes the plan and accounts
    costs per source. Also implements the "two-phase" processing of
    Section 1: phase 1 computes the matching items, phase 2 fetches
    their full records. *)

open Fusion_data
open Fusion_source
open Fusion_core

type t

val create : ?union:string -> Source.t list -> (t, string) result
(** Fails on an empty source list or disagreeing schemas. [union] names
    the union view for SQL parsing (default ["U"]). *)

val create_exn : ?union:string -> Source.t list -> t

val of_catalog : ?union:string -> string -> (t, string) result
(** Load a federation catalog ({!Fusion_source.Catalog}) and build the
    mediator over it. *)

val schema : t -> Schema.t
val sources : t -> Source.t array

(** How a query is processed, in one place. Every entry point takes one
    optional [?config]; build variations with record update:
    [{ Config.default with Config.algo = Optimizer.Filter }]. *)
module Config : sig
  type concurrency =
    [ `Seq  (** one step at a time: elapsed time = total cost *)
    | `Par  (** live concurrent execution on {!Fusion_plan.Exec_async} *) ]

  type t = {
    algo : Optimizer.algo;  (** optimization algorithm (default SJA+) *)
    stats : Opt_env.stats_mode;  (** statistics backing the optimizer *)
    cache : Fusion_plan.Exec.Query_cache.t option;
        (** session query cache, shared across runs *)
    retries : int;  (** extra attempts per timed-out source query *)
    on_exhausted : [ `Fail | `Partial ];  (** when retries run out *)
    trace : Fusion_obs.Trace.collector option;
        (** collector installed for the duration of each run *)
    concurrency : concurrency;
    runtime : Fusion_rt.Runtime.spec;
        (** execution backend for [`Par] runs and serving: [`Sim]
            (default) is the discrete-event simulator, [`Domains n]
            executes on a real domain pool with wall-clock latencies.
            [`Domains _] with [`Seq] is rejected: the sequential
            executor has nothing to run concurrently. *)
    exec : [ `Interp | `Compiled ];
        (** sequential execution engine: [`Interp] (default) is the
            step-by-step {!Fusion_plan.Exec} interpreter, [`Compiled]
            compiles the optimized plan once with
            {!Fusion_plan.Plan_compile} and runs the fused closure
            chain. Same answers, same costs, same fault draws — the
            compiled form only removes per-step interpretation and
            allocation. Ignored under [`Par] (the concurrent executor
            schedules its own steps). *)
  }

  val default : t
  (** SJA+, exact statistics, no cache, no retries ([`Fail]), no
      tracing, sequential execution on the simulator. *)

  val policy : t -> Fusion_plan.Exec.policy
  (** The executor fault policy the config denotes. *)
end

type report = {
  algo : Optimizer.algo;
  optimized : Optimized.t;  (** the plan and its estimated cost *)
  answer : Item_set.t;
  actual_cost : float;  (** total work charged at the sources *)
  response_time : float;
      (** elapsed time on the simulated clock: equals [actual_cost]
          under [`Seq], the concurrent makespan under [`Par] *)
  steps : Fusion_plan.Exec.step list;
  per_source : (string * Fusion_net.Meter.totals) list;
      (** actual traffic per source, this query only *)
  failures : int;  (** timed-out requests (retried or not) *)
  partial : bool;  (** answer may be incomplete (see {!Fusion_plan.Exec.result}) *)
  critical_path : Fusion_obs.Analyze.path option;
      (** the dependency/queue chain that set [response_time]; [Some]
          only under [`Par] — sequential runs have no schedule *)
  cost_drift : float;
      (** [actual_cost /. est_cost]: how honest the optimizer's cost
          model was on this run (NaN when the estimate was 0) *)
  trace : Fusion_obs.Trace.span list;
      (** the spans this run recorded, rooted at its
          [mediator.run] span; [[]] when tracing is off *)
}

(** The planning head of {!run}, reusable on its own: validated,
    normalized query plus the optimizer environment and chosen plan.
    {!Fusion_dist.Coordinator} scatters exactly this plan to its
    shards, which is what makes the single-mediator [run] its
    correctness oracle. *)
type prepared = {
  prep_query : Fusion_query.Query.t;  (** normalized *)
  prep_env : Opt_env.t;
  prep_optimized : Optimized.t;
}

val plan_for :
  ?algo:Optimizer.algo ->
  ?stats:Opt_env.stats_mode ->
  t ->
  Fusion_query.Query.t ->
  (prepared, string) result
(** Validate → normalize → build statistics → optimize, without
    executing anything. Defaults match {!Config.default}. *)

val run : ?config:Config.t -> t -> Fusion_query.Query.t -> (report, string) result
(** Optimize and execute under [config] ({!Config.default} if omitted).
    The query is {!Fusion_query.Query.normalize}d first, so duplicate or
    trivial conditions never cost a round. Source meters are reset
    before execution, so [per_source] reflects just this run. Pass the
    same [Config.cache] across the queries of a session to reuse
    selection answers for repeated conditions (Section 5's common
    subexpressions). [Config.trace] installs a span collector for the
    duration of the run; with or without it, whatever collector is
    active fills [report.trace]. *)

val run_sql : ?config:Config.t -> t -> string -> (report, string) result
(** Parses the SQL text against the mediator's schema and union-view
    name, requires it to be a fusion query, then behaves like {!run}. *)

type records = { tuples : Tuple.t list; fetch_cost : float }

type rows = {
  report : report;  (** the phase-1 run *)
  columns : string list;  (** merge attribute first, then the projection *)
  rows : Value.t list list;  (** deduplicated, in merge-value order *)
  fetch_cost : float;  (** phase 2 *)
}

val select_sql : ?config:Config.t -> t -> string -> (rows, string) result
(** The full two-phase pipeline for projected fusion queries
    ([SELECT u1.M, u1.A, ... FROM ...]): phase 1 computes the matching
    items with the chosen algorithm, phase 2 fetches their records and
    projects the requested attributes — one row per distinct projected
    record of an answer item. A merge-only select list skips phase 2. *)

val fetch_phase2 : t -> Item_set.t -> records
(** Phase 2: pull the full records of the answer items from every
    source. *)

val two_phase :
  ?config:Config.t -> t -> Fusion_query.Query.t -> (report * records, string) result
(** Phase 1 ({!run}) followed by {!fetch_phase2} on its answer. *)

val single_phase_cost : t -> Fusion_query.Query.t -> float
(** Cost of the naive one-phase strategy the paper's two-phase approach
    avoids: every condition pushed to every source with answers shipped
    as {e full tuples} rather than items. *)

val pp_report : Format.formatter -> report -> unit

(** Serving mode: many queries multiplexed onto one shared network
    through {!Fusion_serve.Server}. Each submission is validated,
    normalized and optimized exactly as {!run} would ([Config.algo],
    [Config.stats], retry policy all honored); the optimizer's cost
    estimate becomes the job's scheduling weight ([Sjf]) and
    admission-control signal. A single submitted query served under
    the [Fifo] policy executes byte-identically to
    [run ~config:{config with concurrency = `Par}]. *)
module Server : sig
  type mediator := t

  type t

  type outcome = {
    o_id : int;
    o_query : Fusion_query.Query.t;
    o_optimized : Optimized.t;  (** plan and estimate chosen at submit time *)
    o_completion : Fusion_serve.Server.completion;
  }

  val create :
    ?config:Config.t ->
    ?policy:Fusion_serve.Server.policy ->
    ?max_inflight:int ->
    ?cache_ttl:float ->
    ?versioned_cache:bool ->
    ?window:float ->
    ?slow_log:Fusion_serve.Slow_log.t ->
    mediator ->
    t
  (** [config] drives per-submission optimization and the retry policy
      ({!Config.default} if omitted; its [concurrency] and [trace]
      fields are ignored — serving is always concurrent). Remaining
      options as in {!Fusion_serve.Server.create}. *)

  val submit :
    t ->
    at:float ->
    ?tenant:string ->
    ?priority:int ->
    ?deadline:float ->
    ?label:string ->
    Fusion_query.Query.t ->
    (int, string) result
  (** Optimizes the query and enqueues it at simulated instant [at];
      returns the submission id. [tenant] defaults to ["default"],
      [priority] to 0. [label] is carried into the slow-query log
      ({!submit_sql} passes the SQL text). *)

  val submit_sql :
    t ->
    at:float ->
    ?tenant:string ->
    ?priority:int ->
    ?deadline:float ->
    string ->
    (int, string) result

  val subscribe :
    t ->
    ?tenant:string ->
    ?label:string ->
    Fusion_query.Query.t ->
    (int, string) result
  (** Registers a standing query: the same validate → normalize →
      optimize head as {!submit}, but the chosen plan is maintained
      incrementally (see {!Fusion_serve.Server.subscribe}) and answer
      diffs are pushed through the server's [on_push] hooks whenever
      {!mutate} changes the answer. Returns the subscription id. *)

  val subscribe_sql : t -> ?tenant:string -> string -> (int, string) result
  (** Parses the SQL text (carried as the subscription label), then
      behaves like {!subscribe}. *)

  val unsubscribe : t -> int -> bool

  val mutate :
    t -> source:string -> Fusion_delta.Delta.t -> (Fusion_delta.Delta.applied, string) result
  (** Applies a source delta by source name
      ({!Fusion_serve.Server.mutate}): mutates the wrapped relation,
      patches/invalidates the shared answer cache, and pushes diffs to
      subscribers. *)

  val mutate_line :
    t -> source:string -> string -> (Fusion_delta.Delta.applied, string) result
  (** Parses the delta payload against the source's schema
      ({!Fusion_delta.Delta.parse} syntax: [+row;-row;...]), then
      {!mutate} — the TCP front end's [mut] command. *)

  val step : t -> bool
  val drain : t -> unit
  val stats : t -> Fusion_serve.Server.stats

  val runtime : t -> Fusion_rt.Runtime.t
  (** The execution runtime serving this server's queries. *)

  val shutdown : t -> unit
  (** Joins the runtime's worker domains (no-op on the simulator).
      Call after the final {!drain}. *)

  val outcomes : t -> outcome list
  (** Completed submissions joined with what the optimizer chose for
      them, in completion order. *)

  val serve : t -> Fusion_serve.Server.t
  (** The underlying server, for timelines, tenant stats, sheds, and
      cache stats. *)

  val mediator : t -> mediator
end
