open Fusion_data
open Fusion_cond
open Fusion_source
open Fusion_core
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics

let log_src = Logs.Src.create "fusion.mediator" ~doc:"Fusion-query mediator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { union : string; sources : Source.t array }

let create ?(union = "U") sources =
  match sources with
  | [] -> Error "a mediator needs at least one source"
  | first :: rest ->
    let schema = Source.schema first in
    let mismatch =
      List.find_opt (fun s -> not (Schema.equal schema (Source.schema s))) rest
    in
    (match mismatch with
    | Some s ->
      Error
        (Printf.sprintf "source %s exports a different schema than %s" (Source.name s)
           (Source.name first))
    | None -> Ok { union; sources = Array.of_list sources })

let create_exn ?union sources =
  match create ?union sources with
  | Ok t -> t
  | Error msg -> invalid_arg ("Mediator.create_exn: " ^ msg)

let of_catalog ?union path =
  match Fusion_source.Catalog.load path with
  | Error _ as e -> e
  | Ok sources -> create ?union sources

let schema t = Source.schema t.sources.(0)
let sources t = t.sources

type report = {
  algo : Optimizer.algo;
  optimized : Optimized.t;
  answer : Item_set.t;
  actual_cost : float;
  steps : Fusion_plan.Exec.step list;
  per_source : (string * Fusion_net.Meter.totals) list;
  failures : int;
  partial : bool;
  trace : Trace.span list;
      (* The spans recorded during this run ([]) when tracing is off);
         the root is the run's [Trace.Run] span. *)
}

let run_body ?cache ?retries ?on_exhausted ?stats ~algo ~ctx t query =
  match Fusion_query.Query.validate (schema t) query with
  | Error msg -> Error ("invalid query: " ^ msg)
  | Ok () -> (
    (* Redundant conditions (duplicates, TRUE) would cost whole rounds. *)
    let query = Fusion_query.Query.normalize query in
    let env = Opt_env.create ?stats t.sources query in
    Log.debug (fun m ->
        m "optimizing %a with %s over %d sources" Fusion_query.Query.pp query
          (Optimizer.name algo) (Array.length t.sources));
    let optimized = Optimizer.optimize algo env in
    Log.info (fun m ->
        m "%s chose a %d-step plan, estimated cost %.1f" (Optimizer.name algo)
          (List.length (Fusion_plan.Plan.ops optimized.Optimized.plan))
          optimized.Optimized.est_cost);
    Array.iter Source.reset_meter t.sources;
    match
      Fusion_plan.Exec.run ?cache ?retries ?on_exhausted ~sources:t.sources
        ~conds:env.Opt_env.conds optimized.Optimized.plan
    with
    | result ->
      Log.info (fun m ->
          m "executed: actual cost %.1f, %d answers"
            result.Fusion_plan.Exec.total_cost
            (Item_set.cardinal result.Fusion_plan.Exec.answer));
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("est_cost", Trace.Float optimized.Optimized.est_cost);
            ("actual_cost", Trace.Float result.Fusion_plan.Exec.total_cost);
            ("answers", Trace.Int (Item_set.cardinal result.Fusion_plan.Exec.answer));
          ];
      Metrics.record (fun r ->
          let labels = [ ("algo", Optimizer.name algo) ] in
          Metrics.incr r ~labels "fusion_runs_total";
          Metrics.incr r ~labels "fusion_run_cost_total"
            ~by:result.Fusion_plan.Exec.total_cost;
          Metrics.observe r ~labels "fusion_answer_size"
            (Item_set.cardinal result.Fusion_plan.Exec.answer));
      Ok
        {
          algo;
          optimized;
          answer = result.Fusion_plan.Exec.answer;
          actual_cost = result.Fusion_plan.Exec.total_cost;
          steps = result.Fusion_plan.Exec.steps;
          per_source =
            Array.to_list
              (Array.map (fun s -> (Source.name s, Source.totals s)) t.sources);
          failures = result.Fusion_plan.Exec.failures;
          partial = result.Fusion_plan.Exec.partial;
          trace = [];
        }
    | exception Source.Unsupported msg -> Error ("execution failed: " ^ msg)
    | exception Source.Timeout msg ->
      Error ("execution failed (source unreachable): " ^ msg))

(* [?trace] installs a collector for the duration of the run (on top of
   any process-wide one); either way, the spans the run produced come
   back in [report.trace], with the [Run] span as the root. *)
let run ?trace ?cache ?retries ?on_exhausted ?stats ?(algo = Optimizer.Sja_plus) t query
    =
  let go () =
    let marked = Option.map (fun c -> (c, Trace.mark c)) (Trace.installed ()) in
    let result =
      Trace.span Trace.Run "mediator.run" (fun ctx ->
          if Trace.active ctx then
            Trace.attrs ctx
              [
                ("algo", Trace.Str (Optimizer.name algo));
                ("sources", Trace.Int (Array.length t.sources));
                ("query", Trace.Str (Format.asprintf "%a" Fusion_query.Query.pp query));
              ];
          run_body ?cache ?retries ?on_exhausted ?stats ~algo ~ctx t query)
    in
    match result, marked with
    | Ok report, Some (c, m) -> Ok { report with trace = Trace.spans_since c m }
    | _ -> result
  in
  match trace with Some c -> Trace.with_collector c go | None -> go ()

let run_sql ?trace ?cache ?retries ?on_exhausted ?stats ?algo t text =
  match Fusion_query.Sql.parse_fusion ~schema:(schema t) ~union:t.union text with
  | Error msg -> Error msg
  | Ok query -> run ?trace ?cache ?retries ?on_exhausted ?stats ?algo t query

type records = { tuples : Tuple.t list; fetch_cost : float }

type rows = {
  report : report;
  columns : string list;
  rows : Value.t list list;
  fetch_cost : float;
}

let fetch_phase2 t items =
  let tuples, fetch_cost =
    Array.fold_left
      (fun (acc, cost) source ->
        let fetched, c = Source.fetch_records source items in
        (acc @ fetched, cost +. c))
      ([], 0.0) t.sources
  in
  { tuples; fetch_cost }

let two_phase ?trace ?cache ?stats ?algo t query =
  match run ?trace ?cache ?stats ?algo t query with
  | Error msg -> Error msg
  | Ok report -> Ok (report, fetch_phase2 t report.answer)

let select_sql ?trace ?cache ?retries ?on_exhausted ?stats ?algo t text =
  match Fusion_query.Sql.parse ~schema:(schema t) ~union:t.union text with
  | Error msg -> Error msg
  | Ok (Fusion_query.Sql.Not_fusion reason) -> Error ("not a fusion query: " ^ reason)
  | Ok (Fusion_query.Sql.Fusion (query, projection)) -> (
    match run ?trace ?cache ?retries ?on_exhausted ?stats ?algo t query with
    | Error msg -> Error msg
    | Ok report ->
      let schema = schema t in
      let merge = Schema.merge schema in
      let columns = merge :: projection in
      if projection = [] then
        Ok
          {
            report;
            columns;
            rows = List.map (fun item -> [ item ]) (Item_set.to_list report.answer);
            fetch_cost = 0.0;
          }
      else begin
        let records = fetch_phase2 t report.answer in
        let project tuple = List.map (Tuple.get_attr schema tuple) columns in
        let rows = List.sort_uniq compare (List.map project records.tuples) in
        Ok { report; columns; rows; fetch_cost = records.fetch_cost }
      end)

(* One-phase baseline: push every condition to every source, shipping
   full matching tuples instead of items (no second phase needed, but
   every intermediate result pays tuple width). *)
let single_phase_cost t query =
  let conds = Fusion_query.Query.conditions query in
  Array.fold_left
    (fun acc source ->
      let relation = Source.relation source in
      let profile = Source.profile source in
      Array.fold_left
        (fun acc cond ->
          let pred tuple = Cond.eval (Relation.schema relation) cond tuple in
          let matching = List.length (Relation.select_tuples relation pred) in
          acc
          +. profile.Fusion_net.Profile.request_overhead
          +. (profile.Fusion_net.Profile.recv_per_tuple *. float_of_int matching))
        acc conds)
    0.0 t.sources

let pp_report ppf r =
  Format.fprintf ppf "@[<v>algorithm: %s@,%a@,actual cost: %.1f%s@,answer (%d items): %a"
    (Optimizer.name r.algo)
    (Optimized.pp ?source_name:None)
    r.optimized r.actual_cost
    (if r.partial then " (PARTIAL: a source was unreachable)"
     else if r.failures > 0 then Printf.sprintf " (%d retried timeouts)" r.failures
     else "")
    (Item_set.cardinal r.answer) Item_set.pp r.answer;
  List.iter
    (fun (name, totals) ->
      Format.fprintf ppf "@,%s: %a" name Fusion_net.Meter.pp_totals totals)
    r.per_source;
  Format.fprintf ppf "@]"
