open Fusion_data
open Fusion_cond
open Fusion_source
open Fusion_core
module Trace = Fusion_obs.Trace
module Metrics = Fusion_obs.Metrics
module Analyze = Fusion_obs.Analyze
module Runtime = Fusion_rt.Runtime

let log_src = Logs.Src.create "fusion.mediator" ~doc:"Fusion-query mediator"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = { union : string; sources : Source.t array }

let create ?(union = "U") sources =
  match sources with
  | [] -> Error "a mediator needs at least one source"
  | first :: rest ->
    let schema = Source.schema first in
    let mismatch =
      List.find_opt (fun s -> not (Schema.equal schema (Source.schema s))) rest
    in
    (match mismatch with
    | Some s ->
      Error
        (Printf.sprintf "source %s exports a different schema than %s" (Source.name s)
           (Source.name first))
    | None -> Ok { union; sources = Array.of_list sources })

let create_exn ?union sources =
  match create ?union sources with
  | Ok t -> t
  | Error msg -> invalid_arg ("Mediator.create_exn: " ^ msg)

let of_catalog ?union path =
  match Fusion_source.Catalog.load path with
  | Error _ as e -> e
  | Ok sources -> create ?union sources

let schema t = Source.schema t.sources.(0)
let sources t = t.sources

module Config = struct
  type concurrency = [ `Seq | `Par ]

  type t = {
    algo : Optimizer.algo;
    stats : Opt_env.stats_mode;
    cache : Fusion_plan.Exec.Query_cache.t option;
    retries : int;
    on_exhausted : [ `Fail | `Partial ];
    trace : Trace.collector option;
    concurrency : concurrency;
    runtime : Runtime.spec;
    exec : [ `Interp | `Compiled ];
  }

  let default =
    {
      algo = Optimizer.Sja_plus;
      stats = Opt_env.Exact;
      cache = None;
      retries = 0;
      on_exhausted = `Fail;
      trace = None;
      concurrency = `Seq;
      runtime = `Sim;
      exec = `Interp;
    }

  let policy c = { Fusion_plan.Exec.retries = c.retries; on_exhausted = c.on_exhausted }
end

type report = {
  algo : Optimizer.algo;
  optimized : Optimized.t;
  answer : Item_set.t;
  actual_cost : float;
  response_time : float;
  steps : Fusion_plan.Exec.step list;
  per_source : (string * Fusion_net.Meter.totals) list;
  failures : int;
  partial : bool;
  critical_path : Analyze.path option;
      (* The dependency/queue chain that set the response time; [Some]
         only under [`Par] (sequential runs have no schedule). *)
  cost_drift : float;
      (* actual cost / estimated cost — how honest the optimizer's cost
         model was on this run (NaN when the estimate was 0). *)
  trace : Trace.span list;
      (* The spans recorded during this run ([] when tracing is off);
         the root is the run's [Trace.Run] span. *)
}

(* The execution-shaped slice of a report, same whichever executor
   produced it. *)
type execution = {
  x_answer : Item_set.t;
  x_steps : Fusion_plan.Exec.step list;
  x_cost : float;
  x_response_time : float;
  x_failures : int;
  x_partial : bool;
  x_critical_path : Analyze.path option;
}

(* Task labels/conditions for the critical path come from the plan's
   dataflow nodes: timeline task ids index into [Parallel_exec.dataflow]
   by construction (see Exec_async). *)
let schedule_analysis plan (r : Fusion_plan.Exec_async.result) =
  let nodes = Array.of_list (Fusion_plan.Parallel_exec.dataflow plan) in
  let node id = if id >= 0 && id < Array.length nodes then Some nodes.(id) else None in
  let label id =
    match node id with
    | Some (op, _, _) ->
      Printf.sprintf "%s := %s" (Fusion_plan.Op.dst op) (Fusion_plan.Op.name op)
    | None -> Printf.sprintf "task %d" id
  in
  let cond id =
    match node id with
    | Some (Fusion_plan.Op.Select { cond; _ }, _, _)
    | Some (Fusion_plan.Op.Semijoin { cond; _ }, _, _) ->
      Some cond
    | _ -> None
  in
  Analyze.critical_path
    (Analyze.of_timeline ~label ~cond r.Fusion_plan.Exec_async.timeline)

(* The planning head shared by [run] and distributed coordinators
   ([Fusion_dist.Coordinator] scatters the very plan the single-server
   mediator would execute — its oracle-equivalence anchor). *)
type prepared = { prep_query : Fusion_query.Query.t; prep_env : Opt_env.t; prep_optimized : Optimized.t }

let plan_for ?(algo = Config.default.Config.algo) ?(stats = Config.default.Config.stats)
    t query =
  match Fusion_query.Query.validate (schema t) query with
  | Error msg -> Error ("invalid query: " ^ msg)
  | Ok () ->
    (* Redundant conditions (duplicates, TRUE) would cost whole rounds. *)
    let query = Fusion_query.Query.normalize query in
    let env = Opt_env.create ~stats t.sources query in
    Log.debug (fun m ->
        m "optimizing %a with %s over %d sources" Fusion_query.Query.pp query
          (Optimizer.name algo) (Array.length t.sources));
    Ok { prep_query = query; prep_env = env; prep_optimized = Optimizer.optimize algo env }

let run_body ~(config : Config.t) ~ctx t query =
  match plan_for ~algo:config.Config.algo ~stats:config.Config.stats t query with
  | Error msg -> Error msg
  | Ok { prep_query = _; prep_env = env; prep_optimized = optimized } -> (
    Log.info (fun m ->
        m "%s chose a %d-step plan, estimated cost %.1f"
          (Optimizer.name config.Config.algo)
          (List.length (Fusion_plan.Plan.ops optimized.Optimized.plan))
          optimized.Optimized.est_cost);
    Array.iter Source.reset_meter t.sources;
    let cache = config.Config.cache and policy = Config.policy config in
    let execute () =
      match (config.Config.concurrency, config.Config.runtime) with
      | `Seq, `Domains _ ->
        raise
          (Invalid_argument
             "the domains runtime executes concurrently; combine runtime=domains \
              with concurrency `Par (--concurrency par)")
      | `Seq, `Sim ->
        let r =
          match config.Config.exec with
          | `Interp ->
            Fusion_plan.Exec.run ?cache ~policy ~sources:t.sources
              ~conds:env.Opt_env.conds optimized.Optimized.plan
          | `Compiled -> (
            match
              Fusion_plan.Plan_compile.compile ~sources:t.sources
                ~conds:env.Opt_env.conds optimized.Optimized.plan
            with
            | Ok cp -> Fusion_plan.Plan_compile.run ?cache ~policy cp
            | Error msg -> failwith ("plan compilation failed: " ^ msg))
        in
        {
          x_answer = r.Fusion_plan.Exec.answer;
          x_steps = r.Fusion_plan.Exec.steps;
          x_cost = r.Fusion_plan.Exec.total_cost;
          (* Sequential: the query takes as long as its total work. *)
          x_response_time = r.Fusion_plan.Exec.total_cost;
          x_failures = r.Fusion_plan.Exec.failures;
          x_partial = r.Fusion_plan.Exec.partial;
          x_critical_path = None;
        }
      | `Par, spec ->
        let rt = Runtime.of_spec spec ~servers:(Array.length t.sources) in
        let r =
          Fun.protect
            ~finally:(fun () -> Runtime.shutdown rt)
            (fun () ->
              Fusion_plan.Exec_async.run_on ?cache ~policy ~rt ~sources:t.sources
                ~conds:env.Opt_env.conds optimized.Optimized.plan)
        in
        {
          x_answer = r.Fusion_plan.Exec_async.answer;
          x_steps = Fusion_plan.Exec_async.to_exec_steps r.Fusion_plan.Exec_async.steps;
          x_cost = r.Fusion_plan.Exec_async.total_cost;
          x_response_time = r.Fusion_plan.Exec_async.makespan;
          x_failures = r.Fusion_plan.Exec_async.failures;
          x_partial = r.Fusion_plan.Exec_async.partial;
          x_critical_path = Some (schedule_analysis optimized.Optimized.plan r);
        }
    in
    match execute () with
    | x ->
      Log.info (fun m ->
          m "executed: actual cost %.1f, response time %.1f, %d answers" x.x_cost
            x.x_response_time
            (Item_set.cardinal x.x_answer));
      if Trace.active ctx then
        Trace.attrs ctx
          [
            ("est_cost", Trace.Float optimized.Optimized.est_cost);
            ("actual_cost", Trace.Float x.x_cost);
            ("response_time", Trace.Float x.x_response_time);
            ("answers", Trace.Int (Item_set.cardinal x.x_answer));
          ];
      Metrics.record (fun r ->
          let labels = [ ("algo", Optimizer.name config.Config.algo) ] in
          Metrics.incr r ~labels "fusion_runs_total";
          Metrics.incr r ~labels "fusion_run_cost_total" ~by:x.x_cost;
          Metrics.observe r ~labels "fusion_answer_size" (Item_set.cardinal x.x_answer));
      Ok
        {
          algo = config.Config.algo;
          optimized;
          answer = x.x_answer;
          actual_cost = x.x_cost;
          response_time = x.x_response_time;
          steps = x.x_steps;
          per_source =
            Array.to_list
              (Array.map (fun s -> (Source.name s, Source.totals s)) t.sources);
          failures = x.x_failures;
          partial = x.x_partial;
          critical_path = x.x_critical_path;
          cost_drift =
            (if optimized.Optimized.est_cost > 0.0 then
               x.x_cost /. optimized.Optimized.est_cost
             else Float.nan);
          trace = [];
        }
    | exception Source.Unsupported msg -> Error ("execution failed: " ^ msg)
    | exception Source.Timeout msg ->
      Error ("execution failed (source unreachable): " ^ msg)
    | exception Invalid_argument msg -> Error msg)

(* [config.trace] installs a collector for the duration of the run (on
   top of any process-wide one); either way, the spans the run produced
   come back in [report.trace], with the [Run] span as the root. *)
let run ?(config = Config.default) t query =
  let go () =
    let marked = Option.map (fun c -> (c, Trace.mark c)) (Trace.installed ()) in
    let result =
      Trace.span Trace.Run "mediator.run" (fun ctx ->
          if Trace.active ctx then
            Trace.attrs ctx
              [
                ("algo", Trace.Str (Optimizer.name config.Config.algo));
                ("sources", Trace.Int (Array.length t.sources));
                ("query", Trace.Str (Format.asprintf "%a" Fusion_query.Query.pp query));
              ];
          run_body ~config ~ctx t query)
    in
    match result, marked with
    | Ok report, Some (c, m) -> Ok { report with trace = Trace.spans_since c m }
    | _ -> result
  in
  match config.Config.trace with
  | Some c -> Trace.with_collector c go
  | None -> go ()

let run_sql ?config t text =
  match Fusion_query.Sql.parse_fusion ~schema:(schema t) ~union:t.union text with
  | Error msg -> Error msg
  | Ok query -> run ?config t query

type records = { tuples : Tuple.t list; fetch_cost : float }

type rows = {
  report : report;
  columns : string list;
  rows : Value.t list list;
  fetch_cost : float;
}

let fetch_phase2 t items =
  let tuples, fetch_cost =
    Array.fold_left
      (fun (acc, cost) source ->
        let fetched, c = Source.fetch_records source items in
        (acc @ fetched, cost +. c))
      ([], 0.0) t.sources
  in
  { tuples; fetch_cost }

let two_phase ?config t query =
  match run ?config t query with
  | Error msg -> Error msg
  | Ok report -> Ok (report, fetch_phase2 t report.answer)

let select_sql ?config t text =
  match Fusion_query.Sql.parse ~schema:(schema t) ~union:t.union text with
  | Error msg -> Error msg
  | Ok (Fusion_query.Sql.Not_fusion reason) -> Error ("not a fusion query: " ^ reason)
  | Ok (Fusion_query.Sql.Fusion (query, projection)) -> (
    match run ?config t query with
    | Error msg -> Error msg
    | Ok report ->
      let schema = schema t in
      let merge = Schema.merge schema in
      let columns = merge :: projection in
      if projection = [] then
        Ok
          {
            report;
            columns;
            rows = List.map (fun item -> [ item ]) (Item_set.to_list report.answer);
            fetch_cost = 0.0;
          }
      else begin
        let records = fetch_phase2 t report.answer in
        let project tuple = List.map (Tuple.get_attr schema tuple) columns in
        let rows = List.sort_uniq compare (List.map project records.tuples) in
        Ok { report; columns; rows; fetch_cost = records.fetch_cost }
      end)

(* One-phase baseline: push every condition to every source, shipping
   full matching tuples instead of items (no second phase needed, but
   every intermediate result pays tuple width). *)
let single_phase_cost t query =
  let conds = Fusion_query.Query.conditions query in
  Array.fold_left
    (fun acc source ->
      let relation = Source.relation source in
      let profile = Source.profile source in
      Array.fold_left
        (fun acc cond ->
          let matching = Cond_vec.count_rows (Cond_vec.compile relation cond) in
          acc
          +. profile.Fusion_net.Profile.request_overhead
          +. (profile.Fusion_net.Profile.recv_per_tuple *. float_of_int matching))
        acc conds)
    0.0 t.sources

let pp_report ppf r =
  Format.fprintf ppf "@[<v>algorithm: %s@,%a@,actual cost: %.1f%s%s@,answer (%d items): %a"
    (Optimizer.name r.algo)
    (Optimized.pp ?source_name:None)
    r.optimized r.actual_cost
    (if r.response_time < r.actual_cost then
       Printf.sprintf " (response time %.1f)" r.response_time
     else "")
    (if r.partial then " (PARTIAL: a source was unreachable)"
     else if r.failures > 0 then Printf.sprintf " (%d retried timeouts)" r.failures
     else "")
    (Item_set.cardinal r.answer) Item_set.pp r.answer;
  List.iter
    (fun (name, totals) ->
      Format.fprintf ppf "@,%s: %a" name Fusion_net.Meter.pp_totals totals)
    r.per_source;
  (match r.critical_path with
  | Some path when path.Analyze.hops <> [] ->
    let source_name j =
      match List.nth_opt r.per_source j with
      | Some (name, _) -> name
      | None -> Printf.sprintf "R%d" (j + 1)
    in
    Format.fprintf ppf "@,%a" (Analyze.pp_path ~source_name) path
  | _ -> ());
  Format.fprintf ppf "@]"

(* Serving mode: many queries multiplexed onto one shared network.
   The mediator's contribution per submission is what [run] does up
   front — validate, normalize, optimize — after which the job (plan,
   conditions, cost estimate) is handed to [Fusion_serve.Server] and
   the optimizer's estimate doubles as the scheduling/admission
   weight. *)
module Server = struct
  module S = Fusion_serve.Server

  type submission = { query : Fusion_query.Query.t; optimized : Optimized.t }

  type nonrec t = {
    med : t;
    config : Config.t;
    srv : S.t;
    index : (int, submission) Hashtbl.t;
  }

  type outcome = {
    o_id : int;
    o_query : Fusion_query.Query.t;
    o_optimized : Optimized.t;
    o_completion : S.completion;
  }

  let create ?(config = Config.default) ?(policy = S.Fifo) ?(max_inflight = 64)
      ?cache_ttl ?versioned_cache ?window ?slow_log med =
    let rt =
      Runtime.of_spec config.Config.runtime ~servers:(Array.length med.sources)
    in
    {
      med;
      config;
      srv =
        S.create ~policy ~max_inflight ?cache_ttl ?versioned_cache
          ~exec_policy:(Config.policy config) ?window ?slow_log ~rt med.sources;
      index = Hashtbl.create 32;
    }

  let serve t = t.srv
  let mediator t = t.med

  let submit t ~at ?(tenant = "default") ?(priority = 0) ?deadline ?(label = "")
      query =
    match Fusion_query.Query.validate (schema t.med) query with
    | Error msg -> Error ("invalid query: " ^ msg)
    | Ok () ->
      let query = Fusion_query.Query.normalize query in
      let env = Opt_env.create ~stats:t.config.Config.stats t.med.sources query in
      let optimized = Optimizer.optimize t.config.Config.algo env in
      let job =
        {
          S.plan = optimized.Optimized.plan;
          conds = env.Opt_env.conds;
          tenant;
          priority;
          est_cost = optimized.Optimized.est_cost;
          deadline;
          label;
        }
      in
      let id = S.submit t.srv ~at job in
      Hashtbl.replace t.index id { query; optimized };
      Ok id

  let submit_sql t ~at ?tenant ?priority ?deadline text =
    match Fusion_query.Sql.parse_fusion ~schema:(schema t.med) ~union:t.med.union text with
    | Error msg -> Error msg
    | Ok query -> submit t ~at ?tenant ?priority ?deadline ~label:text query

  (* Standing queries: same validate → normalize → optimize head as
     [submit], but the chosen plan is registered for incremental
     maintenance instead of being enqueued for execution. *)
  let subscribe t ?(tenant = "default") ?(label = "") query =
    match Fusion_query.Query.validate (schema t.med) query with
    | Error msg -> Error ("invalid query: " ^ msg)
    | Ok () ->
      let query = Fusion_query.Query.normalize query in
      let env = Opt_env.create ~stats:t.config.Config.stats t.med.sources query in
      let optimized = Optimizer.optimize t.config.Config.algo env in
      S.subscribe t.srv ~tenant ~label ~conds:env.Opt_env.conds
        optimized.Optimized.plan

  let subscribe_sql t ?tenant text =
    match
      Fusion_query.Sql.parse_fusion ~schema:(schema t.med) ~union:t.med.union text
    with
    | Error msg -> Error msg
    | Ok query -> subscribe t ?tenant ~label:text query

  let unsubscribe t id = S.unsubscribe t.srv id

  let mutate t ~source delta = S.mutate t.srv ~source delta

  let mutate_line t ~source line =
    match
      Array.find_opt (fun s -> String.equal (Source.name s) source) t.med.sources
    with
    | None -> Error (Printf.sprintf "unknown source %s" source)
    | Some s -> (
      match
        Fusion_delta.Delta.parse (Relation.schema (Source.relation s)) line
      with
      | Error e -> Error e
      | Ok delta -> mutate t ~source delta)

  let step t = S.step t.srv
  let drain t = S.drain t.srv
  let stats t = S.stats t.srv
  let runtime t = S.runtime t.srv
  let shutdown t = Runtime.shutdown (S.runtime t.srv)

  let outcomes t =
    List.filter_map
      (fun (c : S.completion) ->
        match Hashtbl.find_opt t.index c.S.c_id with
        | Some sub ->
          Some
            {
              o_id = c.S.c_id;
              o_query = sub.query;
              o_optimized = sub.optimized;
              o_completion = c;
            }
        | None -> None)
      (S.completions t.srv)
end
