(** Admin HTTP listener: live observability for a serving process.

    A deliberately minimal HTTP/1.0 server running on the same
    {!Fusion_rt.Fiber} scheduler as the SQL front end — no extra
    threads, no HTTP dependency. Three endpoints:

    - [GET /metrics] — the installed {!Fusion_obs.Metrics} registry in
      Prometheus 0.0.4 text format (byte-exact {!Fusion_obs.Prom}
      output). The [refresh] hook runs first, so point-in-time gauges
      (run-queue depth, window percentiles, GC stats) are current at
      the scrape.
    - [GET /healthz] — ["ok\n"], status 200: liveness only.
    - [GET /statusz] — one JSON object built by the [statusz] hook:
      uptime, scheduler and pool introspection, per-tenant sliding
      window percentiles, admission-control sheds, slow queries.

    Every connection serves one request and closes
    ([Connection: close]). Unknown paths get 404, non-GET methods 405.
    Handler fibres are daemons, so a slow scraper never delays
    front-end shutdown. *)

type handlers = {
  refresh : unit -> unit;
      (** Runs before each [/metrics] scrape — publish point-in-time
          gauges into [registry] here. *)
  registry : Fusion_obs.Metrics.t;  (** What [/metrics] exports. *)
  statusz : unit -> Fusion_obs.Json.t;
      (** Built fresh per [/statusz] request. *)
}

val start :
  sw:Fusion_rt.Fiber.Switch.t ->
  ?on_listen:(Unix.sockaddr -> unit) ->
  listen:Unix.sockaddr ->
  handlers ->
  (unit, string) result
(** Binds [listen], reports the bound address through [on_listen]
    (useful with port 0), and forks a daemon accept loop on [sw].
    Returns immediately; the listener dies with the switch. [Error]
    when the address cannot be bound. Must be called on the fibre
    scheduler. *)

val http_get :
  ?retries:int ->
  connect:Unix.sockaddr ->
  string ->
  (int * string, string) result
(** Blocking one-shot client: [http_get ~connect "/statusz"] dials
    (retrying [retries] times, 100ms apart, while the listener comes
    up), sends a GET, and returns [(status code, body)]. For [fqcli
    top], smoke tests, and scripts; runs on plain blocking sockets —
    {b not} inside the fibre scheduler. *)
