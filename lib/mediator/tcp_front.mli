(** A line-oriented TCP front end over the serving stack.

    Clients send one fusion SQL statement per line and receive one
    response line per statement:

    {v ok id=<n> rows=<k> cost=<c> response=<secs> partial=<b> items=<v,...>
shed id=<n> reason=<queue-full|deadline-unmeetable>
error [id=<n>] <message> v}

    Every statement passes through the mediator's optimizer and the
    serving layer's admission control, scheduling policy and shared
    answer cache ({!Fusion_serve.Server}); execution runs on the
    runtime's worker domains and all reported times are wall-clock
    seconds.

    {b Continuous queries.} Three non-SQL statements drive the standing
    query machinery (each still answered with exactly one response
    line):

    {v sub <fusion SQL>      -> sub id=<n> rows=<k> items=<v,...>
unsub <id>            -> unsub id=<n>
mut <source> <+row;-row;...>
                      -> mut source=<s> inserted=<i> deleted=<d> missed=<m> version=<v> v}

    A [sub] registers the statement for incremental maintenance
    ({!Mediator.Server.subscribe_sql}) and replies with the initial
    answer; afterwards, every [mut] (from {e any} connection) that
    changes the subscription's answer pushes an extra, asynchronous
    line to the subscribing connection:

    {v push id=<n> seq=<k> rows=<r> added=<v,...> removed=<v,...> v}

    Subscriptions are owned by their connection and are removed when it
    disconnects. A [mut] parses its payload against the named source's
    schema ({!Fusion_delta.Delta.parse}), applies it to the wrapped
    relation, patches or invalidates the shared answer cache, and
    propagates through every subscription. *)

type report = {
  connections : int;  (** connections accepted *)
  received : int;  (** SQL lines taken for processing *)
  rejected : int;  (** lines that failed to parse or optimize *)
  stats : Fusion_serve.Server.stats;  (** serving-layer conservation stats *)
  observations : (int * Fusion_net.Meter.totals * float) list;
      (** per-request [(server, meter delta, wall seconds)], the raw
          material for [Fusion_cost.Calibration.fit] *)
}

val sockaddr_to_string : Unix.sockaddr -> string

val sockaddr_of_string : string -> (Unix.sockaddr, string) result
(** Parses ["HOST:PORT"]; the host may be a dotted quad or a name. *)

val serve :
  ?config:Mediator.Config.t ->
  ?policy:Fusion_serve.Server.policy ->
  ?max_inflight:int ->
  ?cache_ttl:float ->
  ?versioned_cache:bool ->
  ?max_queries:int ->
  ?window:float ->
  ?slow_threshold:float ->
  ?admin:Unix.sockaddr ->
  ?admin_on_listen:(Unix.sockaddr -> unit) ->
  ?on_listen:(Unix.sockaddr -> unit) ->
  listen:Unix.sockaddr ->
  Mediator.t ->
  (report, string) result
(** Binds [listen] and serves until [max_queries] statements have been
    responded to (forever when omitted), then flushes every
    connection, closes them, and joins the runtime's worker domains.
    [on_listen] fires with the bound address right after [listen]
    succeeds — with port 0 that is where the kernel-chosen port
    appears (and a test can release a waiting client thread).
    [config.runtime] must be a real-clock backend ([`Domains _]);
    [`Sim] is an error — a socket cannot wait on a simulated clock.
    [policy], [max_inflight], [cache_ttl], [versioned_cache] as in
    {!Fusion_serve.Server.create}.

    {b Observability.} [admin] additionally binds an {!Admin_front}
    listener on the same fibre scheduler ([/metrics], [/healthz],
    [/statusz]; [admin_on_listen] reports its bound address). When no
    {!Fusion_obs.Metrics} registry is installed, one is installed so
    the scrape is never empty; a daemon republishes point-in-time
    runtime/serving gauges every second and before every scrape.
    [window] is the per-tenant sliding-window span in seconds (default
    60) behind the live percentiles; [slow_threshold] enables the
    structured slow-query log ({!Fusion_serve.Slow_log}) surfaced on
    [/statusz], recording every query slower than that many seconds
    with its SQL text, plan shape, per-source breakdown and critical
    path. *)

val client :
  ?retries:int ->
  connect:Unix.sockaddr ->
  string list ->
  (string list, string) result
(** Sends each statement on its own line and collects one response
    line per statement, in arrival order. Connection attempts retry
    [retries] times (default 50) at 100 ms intervals, so a client
    raced against a server that is still binding converges. Blocking
    sockets; needs no runtime. *)

val watch :
  ?retries:int ->
  ?pushes:int ->
  connect:Unix.sockaddr ->
  on_line:(string -> unit) ->
  string ->
  (unit, string) result
(** Subscribes to a standing query: sends [sub <sql>] and hands every
    line the server emits — the [sub] acknowledgement with the initial
    answer, then each asynchronous [push] diff — to [on_line] as it
    arrives. Returns [Ok ()] after [pushes] push lines when
    [pushes > 0] (a deterministic stop for smoke tests), at connection
    close otherwise; an [error] response line is returned as [Error].
    Blocking sockets, like {!client}. *)
