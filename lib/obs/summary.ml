(* Workload-level aggregation: many runs in, percentile latency/cost
   and predicted-vs-observed cost drift out.

   Percentiles go through [Fusion_stats.Histogram] — runs are bucketed
   into an equi-width histogram over [0, max] and the percentile is the
   histogram's interpolated inverse CDF — so the numbers a dashboard
   would read off a bucketed exposition agree with what this module
   reports. Drift is grouped per plan key (usually the algorithm name):
   a plan whose mean executed cost strays from the optimizer's estimate
   beyond the tolerance is flagged, which is the signal that the cost
   model needs recalibration (see lib/cost/calibration). *)

module Histogram = Fusion_stats.Histogram

type run = {
  plan : string;
  cost : float;
  response_time : float;
  est_cost : float option;
}

type t = {
  mutable runs : run list; (* newest first *)
  buckets : int;
  label : string option;
}

let create ?(buckets = 128) ?label () =
  if buckets <= 0 then invalid_arg "Summary.create: buckets must be positive";
  { runs = []; buckets; label }

let label t = t.label

let add t ?(plan = "") ?est_cost ~cost ~response_time () =
  t.runs <- { plan; cost; response_time; est_cost } :: t.runs

let count t = List.length t.runs
let runs t = List.rev t.runs

type percentiles = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
  n : int;
}

let empty_percentiles = { p50 = 0.0; p90 = 0.0; p99 = 0.0; mean = 0.0; max = 0.0; n = 0 }

let percentiles_of ~buckets values =
  (* Non-finite observations would poison the histogram bounds and
     every derived number; drop them rather than report NaN. Negative
     finite ones (a real clock stepping backwards mid-measurement) are
     clamped to zero so the [0, max] histogram never sees an
     out-of-range bucket. *)
  let values =
    List.filter_map
      (fun v -> if Float.is_finite v then Some (Float.max 0.0 v) else None)
      values
  in
  match values with
  | [] -> empty_percentiles
  | _ ->
    let n = List.length values in
    let top = List.fold_left Float.max 0.0 values in
    let mean = List.fold_left ( +. ) 0.0 values /. float_of_int n in
    let hi = max 1 (int_of_float (Float.ceil top)) in
    let h =
      Histogram.build ~buckets ~lo:0 ~hi
        ~values:(List.map (fun v -> (int_of_float (Float.round v), 1)) values)
    in
    let p q =
      match Histogram.percentile_opt h q with
      | Some v -> Float.min v top
      | None -> 0.0 (* unreachable: [values] is non-empty *)
    in
    { p50 = p 0.5; p90 = p 0.9; p99 = p 0.99; mean; max = top; n }

let cost_percentiles t = percentiles_of ~buckets:t.buckets (List.map (fun r -> r.cost) t.runs)

let latency_percentiles t =
  percentiles_of ~buckets:t.buckets (List.map (fun r -> r.response_time) t.runs)

type drift = {
  plan : string;
  runs : int;
  mean_est : float;
  mean_actual : float;
  ratio : float;  (** mean actual / mean estimated; 1 = the model is honest *)
  flagged : bool;
}

let default_tolerance = 0.2

let drift ?(tolerance = default_tolerance) (t : t) =
  let keys =
    List.sort_uniq compare
      (List.filter_map
         (fun r -> if r.est_cost = None then None else Some r.plan)
         t.runs)
  in
  List.map
    (fun key ->
      let mine =
        List.filter_map
          (fun r ->
            match r.est_cost with
            | Some est when r.plan = key -> Some (est, r.cost)
            | _ -> None)
          t.runs
      in
      let n = float_of_int (List.length mine) in
      let mean_est = List.fold_left (fun acc (e, _) -> acc +. e) 0.0 mine /. n in
      let mean_actual = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 mine /. n in
      let ratio = if mean_est > 0.0 then mean_actual /. mean_est else Float.nan in
      let flagged =
        (not (Float.is_nan ratio)) && Float.abs (ratio -. 1.0) > tolerance
      in
      { plan = key; runs = List.length mine; mean_est; mean_actual; ratio; flagged })
    keys

let pp_percentiles ppf p =
  Format.fprintf ppf "p50 %.1f  p90 %.1f  p99 %.1f  mean %.1f  max %.1f  (%d runs)"
    p.p50 p.p90 p.p99 p.mean p.max p.n

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Option.iter (fun l -> Format.fprintf ppf "[%s]@," l) t.label;
  Format.fprintf ppf "latency:  %a@,cost:     %a" pp_percentiles
    (latency_percentiles t) pp_percentiles (cost_percentiles t);
  List.iter
    (fun d ->
      Format.fprintf ppf "@,drift %-10s est %.1f -> actual %.1f  (x%.2f)%s"
        (if d.plan = "" then "(all)" else d.plan)
        d.mean_est d.mean_actual d.ratio
        (if d.flagged then "  DRIFTED" else ""))
    (drift t);
  Format.fprintf ppf "@]"
