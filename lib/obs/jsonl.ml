(* JSON-lines export of traces and metrics, and the inverse parser.
   One JSON object per line, discriminated by a "type" field:

     {"type":"span","id":0,"parent":null,"kind":"run","name":"mediator.run",...}
     {"type":"metric","name":"fusion_requests_total","labels":{...},"metric":"counter","value":12.0}

   Export followed by parse reproduces the spans and samples exactly
   (structural equality), which the test suite relies on. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* --- spans --------------------------------------------------------------- *)

let attr_to_json : Trace.attr -> Json.t = function
  | Trace.Str s -> Json.Str s
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Bool b -> Json.Bool b

let attr_of_json : Json.t -> (Trace.attr, string) result = function
  | Json.Str s -> Ok (Trace.Str s)
  | Json.Int i -> Ok (Trace.Int i)
  | Json.Float f -> Ok (Trace.Float f)
  | Json.Bool b -> Ok (Trace.Bool b)
  | _ -> Error "attribute must be a string, number or bool"

let span_to_json (s : Trace.span) =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("id", Json.Int s.Trace.id);
      ("parent", match s.Trace.parent with None -> Json.Null | Some p -> Json.Int p);
      ("kind", Json.Str (Trace.kind_to_string s.Trace.kind));
      ("name", Json.Str s.Trace.name);
      ("start_cost", Json.Float s.Trace.start_cost);
      ("finish_cost", Json.Float s.Trace.finish_cost);
      ("start_wall", Json.Float s.Trace.start_wall);
      ("finish_wall", Json.Float s.Trace.finish_wall);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, attr_to_json v)) s.Trace.attrs));
    ]

let field json name =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field json name =
  let* v = field json name in
  match Json.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S is not an int" name)

let float_field json name =
  let* v = field json name in
  match v with
  | Json.Float f -> Ok f
  | _ -> Error (Printf.sprintf "field %S is not a float" name)

let str_field json name =
  let* v = field json name in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S is not a string" name)

let span_of_json json =
  let* id = int_field json "id" in
  let* parent =
    match Json.member "parent" json with
    | Some Json.Null | None -> Ok None
    | Some (Json.Int p) -> Ok (Some p)
    | Some _ -> Error "field \"parent\" is not an int or null"
  in
  let* kind = Result.map Trace.kind_of_string (str_field json "kind") in
  let* name = str_field json "name" in
  let* start_cost = float_field json "start_cost" in
  let* finish_cost = float_field json "finish_cost" in
  let* start_wall = float_field json "start_wall" in
  let* finish_wall = float_field json "finish_wall" in
  let* attrs =
    match Json.member "attrs" json with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* a = attr_of_json v in
          Ok ((k, a) :: acc))
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "field \"attrs\" is not an object"
    | None -> Ok []
  in
  Ok
    {
      Trace.id;
      parent;
      kind;
      name;
      start_cost;
      finish_cost;
      start_wall;
      finish_wall;
      attrs;
    }

(* --- metric samples ------------------------------------------------------ *)

let sample_to_json (s : Metrics.sample) =
  let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) s.Metrics.labels) in
  let common = [ ("type", Json.Str "metric"); ("name", Json.Str s.Metrics.name); ("labels", labels) ] in
  match s.Metrics.value with
  | Metrics.Vcounter v ->
    Json.Obj (common @ [ ("metric", Json.Str "counter"); ("value", Json.Float v) ])
  | Metrics.Vgauge v ->
    Json.Obj (common @ [ ("metric", Json.Str "gauge"); ("value", Json.Float v) ])
  | Metrics.Vhist h ->
    let lo, hi = Fusion_stats.Histogram.bounds h in
    Json.Obj
      (common
      @ [
          ("metric", Json.Str "histogram");
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
          ( "counts",
            Json.List
              (Array.to_list
                 (Array.map (fun c -> Json.Float c) (Fusion_stats.Histogram.counts h))) );
        ])

let sample_of_json json =
  let* name = str_field json "name" in
  let* labels =
    match Json.member "labels" json with
    | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_str v with
          | Some s -> Ok ((k, s) :: acc)
          | None -> Error "label values must be strings")
        (Ok []) fields
      |> Result.map List.rev
    | Some _ -> Error "field \"labels\" is not an object"
    | None -> Ok []
  in
  let* metric = str_field json "metric" in
  let* value =
    match metric with
    | "counter" ->
      let* v = float_field json "value" in
      Ok (Metrics.Vcounter v)
    | "gauge" ->
      let* v = float_field json "value" in
      Ok (Metrics.Vgauge v)
    | "histogram" ->
      let* lo = int_field json "lo" in
      let* hi = int_field json "hi" in
      let* counts =
        match Json.member "counts" json with
        | Some (Json.List items) ->
          List.fold_left
            (fun acc item ->
              let* acc = acc in
              match Json.to_float item with
              | Some f -> Ok (f :: acc)
              | None -> Error "histogram counts must be numbers")
            (Ok []) items
          |> Result.map (fun l -> Array.of_list (List.rev l))
        | _ -> Error "field \"counts\" is not a list"
      in
      if Array.length counts = 0 then Error "histogram has no buckets"
      else if hi <= lo then Error "histogram has an empty domain"
      else Ok (Metrics.Vhist (Fusion_stats.Histogram.of_counts ~lo ~hi ~counts))
    | other -> Error (Printf.sprintf "unknown metric kind %S" other)
  in
  Ok { Metrics.name; labels; value }

(* --- lines --------------------------------------------------------------- *)

type line = Span of Trace.span | Sample of Metrics.sample

let line_to_string = function
  | Span s -> Json.to_string (span_to_json s)
  | Sample s -> Json.to_string (sample_to_json s)

let line_of_string text =
  let* json = Json.of_string text in
  let* ty = str_field json "type" in
  match ty with
  | "span" -> Result.map (fun s -> Span s) (span_of_json json)
  | "metric" -> Result.map (fun s -> Sample s) (sample_of_json json)
  | other -> Error (Printf.sprintf "unknown line type %S" other)

let export ?(metrics = []) spans =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buffer (line_to_string (Span s));
      Buffer.add_char buffer '\n')
    spans;
  List.iter
    (fun s ->
      Buffer.add_string buffer (line_to_string (Sample s));
      Buffer.add_char buffer '\n')
    metrics;
  Buffer.contents buffer

let parse text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go spans samples = function
    | [] -> Ok (List.rev spans, List.rev samples)
    | line :: rest -> (
      match line_of_string line with
      | Ok (Span s) -> go (s :: spans) samples rest
      | Ok (Sample s) -> go spans (s :: samples) rest
      | Error msg -> Error (Printf.sprintf "%s in line %S" msg line))
  in
  go [] [] lines

let write_file path ?metrics spans =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (export ?metrics spans))

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg
