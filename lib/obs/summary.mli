(** Workload-level aggregation: many runs in, percentile latency/cost
    and predicted-vs-observed cost drift out.

    Percentiles are computed through {!Fusion_stats.Histogram} (runs
    bucketed into an equi-width histogram, percentile = interpolated
    inverse CDF), so they agree with what a dashboard would read off a
    bucketed exposition; they are approximate to within one bucket
    width. *)

type run = {
  plan : string;  (** grouping key for drift, usually the algorithm name *)
  cost : float;
  response_time : float;
  est_cost : float option;  (** the optimizer's prediction, when known *)
}

type t

val create : ?buckets:int -> ?label:string -> unit -> t
(** [buckets] (default 128) sets percentile resolution. [label] names
    the summary in {!pp} output (e.g. the shard a serving summary
    belongs to); it does not affect any number. *)

val label : t -> string option

val add :
  t -> ?plan:string -> ?est_cost:float -> cost:float -> response_time:float ->
  unit -> unit

val count : t -> int
val runs : t -> run list
(** In insertion order. *)

type percentiles = {
  p50 : float;
  p90 : float;
  p99 : float;
  mean : float;
  max : float;
  n : int;
}

val empty_percentiles : percentiles

val percentiles_of : buckets:int -> float list -> percentiles
(** The percentile computation underlying {!cost_percentiles} and
    {!latency_percentiles}, over a bare value list: non-finite values
    are dropped, negative finite ones clamped to zero, then the values
    are bucketed into an equi-width histogram over [0, ceil max] and
    read back through the interpolated inverse CDF. Exposed so other
    aggregators ({!Window}) provably agree with summary numbers. *)

val cost_percentiles : t -> percentiles
val latency_percentiles : t -> percentiles
(** Over [response_time]. All-zero on an empty summary. *)

type drift = {
  plan : string;
  runs : int;
  mean_est : float;
  mean_actual : float;
  ratio : float;  (** mean actual / mean estimated; 1 = the model is honest *)
  flagged : bool;  (** |ratio - 1| exceeded the tolerance *)
}

val default_tolerance : float
(** 0.2: flag plans whose executed cost strays more than 20% from the
    estimate. *)

val drift : ?tolerance:float -> t -> drift list
(** One entry per plan key that has runs with estimates, in key
    order. *)

val pp_percentiles : Format.formatter -> percentiles -> unit
val pp : Format.formatter -> t -> unit
