(** A minimal JSON codec for the observability exporters — the
    toolchain has no JSON library baked in, and the exporters only need
    exact round-trips of their own output.

    Numbers keep the int/float distinction: floats always print with a
    ['.'], ['e'] or exponent so the parser can tell them apart, and use
    [%.17g] so every finite double survives a round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** @raise Invalid_argument on nan or infinite floats (not
    representable in JSON). *)

val of_string : string -> (t, string) result
(** Strict: the whole input must be one JSON value. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too (widened). *)

val to_str : t -> string option
