(** Prometheus text-exposition (format version 0.0.4) of a
    {!Metrics} snapshot.

    Counters and gauges map directly; histogram series expose the
    cumulative [le]-buckets Prometheus expects, built from the
    equi-width {!Fusion_stats.Histogram} counts. The [_sum] line is
    approximated from bucket midpoints (the registry keeps bucketed
    counts, not raw values). Metric names are sanitized to the
    Prometheus charset; family lines are grouped per name as the format
    requires. *)

val of_samples : Metrics.sample list -> string

val of_registry : Metrics.t -> string
(** [of_samples] over {!Metrics.snapshot}. *)

val write_file : string -> Metrics.sample list -> unit
