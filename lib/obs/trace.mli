(** Structured tracing: spans with parent links, cost-unit and
    wall-clock bounds, and key/value attributes.

    A process-wide collector can be installed (for the CLI's [--trace])
    or swapped locally (for tests); when none is installed every entry
    point is a no-op, so instrumented code pays nothing beyond one
    closure call.

    Cost units mirror the simulated network meter: instrumentation
    calls {!charge} with the meter's cost delta, and every span
    snapshots the collector's running total at open and close. Summing
    {!cost} over the source-request spans of a run therefore reproduces
    the run's actual cost exactly. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

val pp_attr : Format.formatter -> attr -> unit

(** Span taxonomy (see docs/TOUR.md "Observability"): [Run] the
    mediator's root span; [Optimize] one optimizer invocation;
    [Postopt] a post-optimization phase; [Step] one executed plan
    operation; [Request] one logical source query (sq/sjq/lq/fetch);
    [Phase] anything else, named. *)
type kind = Run | Optimize | Postopt | Step | Request | Phase of string

val kind_to_string : kind -> string
val kind_of_string : string -> kind

type span = {
  id : int;  (** unique within a collector, in span-opening order *)
  parent : int option;
  kind : kind;
  name : string;
  start_cost : float;
  finish_cost : float;
  start_wall : float;
  finish_wall : float;
  attrs : (string * attr) list;  (** in the order they were set *)
}

val cost : span -> float
(** The cost charged while the span was open, nested spans included. *)

type collector
(** Accumulates finished spans; create one per trace. All collector
    state is guarded by an internal mutex, so spans may be recorded
    from pool worker domains while another domain reads {!spans};
    parent attribution via the open-span stack is only meaningful
    within one domain's call tree. *)

val create : ?clock:(unit -> float) -> unit -> collector
(** [clock] supplies wall-clock readings (default [Sys.time]); inject a
    fake for deterministic tests. *)

val reset : collector -> unit

val spans : collector -> span list
(** Finished spans, in finish order (children before their parents). *)

val mark : collector -> int
(** With {!spans_since}, brackets a region: ids are monotone, so the
    spans of everything opened after [mark] are exactly those with
    id >= it. *)

val spans_since : collector -> int -> span list

(** {2 The process-wide default collector} *)

val install : collector -> unit
val uninstall : unit -> unit
val installed : unit -> collector option
val enabled : unit -> bool

val with_collector : collector -> (unit -> 'a) -> 'a
(** Installs the collector for the duration of the callback, restoring
    whatever was installed before (exception-safe). *)

(** {2 Recording} *)

type ctx
(** The live handle instrumented code writes through; inactive when
    tracing is off, so every write below is a cheap pattern match. *)

val active : ctx -> bool

val attr : ctx -> string -> attr -> unit
val attrs : ctx -> (string * attr) list -> unit

val charge : ctx -> float -> unit
(** Adds to the collector's running cost total (attributed to every
    currently open span). *)

val span : ?attrs:(string * attr) list -> kind -> string -> (ctx -> 'a) -> 'a
(** Runs the callback inside a new span of the installed collector (or
    with an inactive ctx when tracing is off). The span finishes when
    the callback returns or raises. *)

(** {2 Inspection helpers} *)

val find_attr : span -> string -> attr option
val children : span list -> int -> span list
val roots : span list -> span list
val pp_span : Format.formatter -> span -> unit
