(** A small labeled-series metrics registry: counters, gauges, and
    histograms. Histogram snapshots reuse {!Fusion_stats.Histogram} so
    downstream consumers (estimators, reports, exporters) read one
    format.

    Like tracing, a process-wide registry can be installed;
    instrumented code records through {!record} and pays a single
    option match when metrics are off.

    The registry is domain-safe: every operation ({!incr}, {!gauge},
    {!observe}, {!snapshot}, {!clear}) takes the registry's internal
    mutex, and the installed-registry slot is an [Atomic], so workers
    on pool domains may record while another domain snapshots for
    export. *)

type labels = (string * string) list
(** A label set; key order does not matter (series are keyed on the
    sorted form). *)

type hist_spec = { lo : int; hi : int; buckets : int }

val default_hist_spec : hist_spec
(** 16 buckets over [0, 4095]. *)

type t
(** A registry; series are created on first use and keep registration
    order. *)

val create : unit -> t
val clear : t -> unit

val incr : t -> ?labels:labels -> ?by:float -> string -> unit
(** @raise Invalid_argument if the series exists with another kind. *)

val gauge : t -> ?labels:labels -> string -> float -> unit
val observe : t -> ?labels:labels -> ?spec:hist_spec -> string -> int -> unit

type value =
  | Vcounter of float
  | Vgauge of float
  | Vhist of Fusion_stats.Histogram.t

type sample = { name : string; labels : labels; value : value }

val snapshot : t -> sample list
(** Every series' current value, in registration order. *)

(** {2 The process-wide default registry} *)

val install : t -> unit
val uninstall : unit -> unit
val installed : unit -> t option

val with_registry : t -> (unit -> 'a) -> 'a
(** Installs the registry for the duration of the callback, restoring
    whatever was installed before (exception-safe). *)

val record : (t -> unit) -> unit
(** Record into the installed registry, if any. *)

val pp_sample : Format.formatter -> sample -> unit
