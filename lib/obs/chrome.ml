(* Chrome trace-event export: spans out, a JSON object loadable in
   Perfetto / chrome://tracing in.

   Two views of the same run land in one file, as two "processes":

   - pid 0, "cost clock": every span as a complete ("X") event on the
     collector's cumulative-cost clock. Spans nest by construction
     (a child's [start_cost, finish_cost] lies within its parent's), so
     this renders as the familiar flame graph of where the work went.

   - pid 1, "simulated schedule": only the dispatched steps of a
     concurrent run (spans carrying t_start/t_finish from Exec_async),
     one thread per source, on the discrete-event clock. This is the Gantt chart —
     queueing, overlap and the critical path are visible here.

   Cost units are exported as microseconds (the trace-event format's
   native unit); they are simulated units either way, so only relative
   magnitudes matter. *)

let cost_pid = 0
let schedule_pid = 1

let attr_to_json : Trace.attr -> Json.t = function
  | Trace.Str s -> Json.Str s
  | Trace.Int i -> Json.Int i
  | Trace.Float f -> Json.Float f
  | Trace.Bool b -> Json.Bool b

let args_of (s : Trace.span) =
  Json.Obj
    (("span", Json.Int s.Trace.id)
    :: (match s.Trace.parent with
       | None -> []
       | Some p -> [ ("parent", Json.Int p) ])
    @ List.map (fun (k, v) -> (k, attr_to_json v)) s.Trace.attrs)

let complete ~pid ~tid ~name ~cat ~ts ~dur args =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "X");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Float ts);
      ("dur", Json.Float dur);
      ("args", args);
    ]

let metadata ~pid ~tid ~name value =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("ph", Json.Str "M");
       ("pid", Json.Int pid);
     ]
    @ (match tid with None -> [] | Some t -> [ ("tid", Json.Int t) ])
    @ [ ("args", Json.Obj [ ("name", Json.Str value) ]) ])

let float_attr s key =
  match Trace.find_attr s key with Some (Trace.Float f) -> Some f | _ -> None

(* Only dispatched steps occupy a source lane; coalesced or cached
   answers never held the source and would draw a phantom bar. *)
let schedule_event (s : Trace.span) =
  match s.Trace.kind, float_attr s "t_start", float_attr s "t_finish" with
  | Trace.Step, Some t0, Some t1
    when Trace.find_attr s "dispatched" = Some (Trace.Bool true) ->
    let tid =
      match Trace.find_attr s "server" with Some (Trace.Int j) -> j | _ -> 0
    in
    let name =
      match Trace.find_attr s "dst" with
      | Some (Trace.Str dst) -> Printf.sprintf "%s := %s" dst s.Trace.name
      | _ -> s.Trace.name
    in
    Some
      (tid,
       complete ~pid:schedule_pid ~tid ~name ~cat:"schedule" ~ts:t0 ~dur:(t1 -. t0)
         (args_of s))
  | _ -> None

let events ?(source_name = fun j -> Printf.sprintf "R%d" (j + 1)) spans =
  let spans = List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans in
  let cost_events =
    List.map
      (fun s ->
        complete ~pid:cost_pid ~tid:0 ~name:s.Trace.name
          ~cat:(Trace.kind_to_string s.Trace.kind) ~ts:s.Trace.start_cost
          ~dur:(Trace.cost s) (args_of s))
      spans
  in
  let scheduled = List.filter_map schedule_event spans in
  let tids = List.sort_uniq compare (List.map fst scheduled) in
  metadata ~pid:cost_pid ~tid:None ~name:"process_name" "cost clock"
  :: metadata ~pid:cost_pid ~tid:(Some 0) ~name:"thread_name" "spans"
  :: (if scheduled = [] then []
      else
        metadata ~pid:schedule_pid ~tid:None ~name:"process_name" "simulated schedule"
        :: List.map
             (fun tid ->
               metadata ~pid:schedule_pid ~tid:(Some tid) ~name:"thread_name"
                 (source_name tid))
             tids)
  @ cost_events
  @ List.map snd scheduled

let of_spans ?source_name spans =
  Json.Obj
    [
      ("traceEvents", Json.List (events ?source_name spans));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_string ?source_name spans = Json.to_string (of_spans ?source_name spans)

let write_file path ?source_name spans =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?source_name spans);
      Out_channel.output_char oc '\n')
