(* Trace analytics: span-tree reconstruction and critical-path
   profiling of a concurrent schedule.

   A schedule is a set of [task]s — the dispatched source queries of a
   run, with their start/finish instants, dataflow dependencies, and
   serving source. It can come straight from the live executor's
   timeline ([of_timeline]) or be rebuilt from the Step spans of a
   recorded trace ([tasks_of_spans]); either way the same analyses
   apply, so "profile the run I just did" and "profile this trace file
   from last week" are the same code path.

   The critical path is found backwards from the task that finishes
   last: a task's blocker is whatever kept it from starting earlier —
   the dependency that finished exactly at its start ([Dep]), or the
   previous request occupying its source ([Queue]). In the FIFO
   discrete-event model every task starts either at 0 or at some
   blocker's finish, so the path's durations sum to the makespan
   exactly; the property tests pin that invariant down. *)

module Sim = Fusion_net.Sim

(* --- span tree ----------------------------------------------------------- *)

type node = { span : Trace.span; children : node list }

let tree spans =
  let sorted = List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans in
  let rec build parent rest =
    (* Children of [parent] among [rest] (id-ascending): a span belongs
       to the first enclosing parent; recursion consumes its subtree. *)
    match rest with
    | [] -> ([], [])
    | s :: tl ->
      if s.Trace.parent = parent then
        let children, tl = build (Some s.Trace.id) tl in
        let siblings, tl = build parent tl in
        ({ span = s; children } :: siblings, tl)
      else ([], rest)
  in
  (* Roots are spans whose parent is absent from the set (usually
     [None], but a bracketed sub-trace keeps its dangling parent ids). *)
  let ids = List.fold_left (fun acc s -> s.Trace.id :: acc) [] sorted in
  let present p = match p with None -> false | Some id -> List.mem id ids in
  let rec roots rest =
    match rest with
    | [] -> []
    | s :: tl when not (present s.Trace.parent) ->
      let children, tl = build (Some s.Trace.id) tl in
      { span = s; children } :: roots tl
    | _ :: tl -> roots tl
  in
  roots sorted

let rec flatten nodes =
  List.concat_map (fun n -> n.span :: flatten n.children) nodes

let rec find_kind kind nodes =
  match nodes with
  | [] -> None
  | n :: rest ->
    if n.span.Trace.kind = kind then Some n
    else (
      match find_kind kind n.children with
      | Some _ as found -> found
      | None -> find_kind kind rest)

let pp_tree ppf nodes =
  let rec go indent n =
    Format.fprintf ppf "%s%a@," (String.make indent ' ') Trace.pp_span n.span;
    List.iter (go (indent + 2)) n.children
  in
  Format.fprintf ppf "@[<v>";
  List.iter (go 0) nodes;
  Format.fprintf ppf "@]"

(* --- schedules ----------------------------------------------------------- *)

type task = {
  id : int;
  server : int;
  start : float;
  finish : float;
  deps : int list;
  label : string;
  cond : int option;
}

let duration t = t.finish -. t.start

let default_label id = Printf.sprintf "task %d" id

let of_timeline ?(label = default_label) ?(cond = fun _ -> None)
    (timeline : Sim.timeline) =
  List.map
    (fun (ev : Sim.scheduled) ->
      {
        id = ev.Sim.task.Sim.id;
        server = ev.Sim.task.Sim.server;
        start = ev.Sim.start;
        finish = ev.Sim.finish;
        deps = ev.Sim.task.Sim.deps;
        label = label ev.Sim.task.Sim.id;
        cond = cond ev.Sim.task.Sim.id;
      })
    timeline.Sim.events

(* Rebuild the schedule from a recorded trace: the Step spans of a
   concurrent run carry task/server/deps/t_start/t_finish attributes
   (see Exec_async); only dispatched steps (the ones that actually
   occupied a source) become tasks. *)
let tasks_of_spans spans =
  let int_attr s key =
    match Trace.find_attr s key with Some (Trace.Int i) -> Some i | _ -> None
  in
  let float_attr s key =
    match Trace.find_attr s key with Some (Trace.Float f) -> Some f | _ -> None
  in
  let str_attr s key =
    match Trace.find_attr s key with Some (Trace.Str v) -> Some v | _ -> None
  in
  let deps_of s =
    match str_attr s "deps" with
    | None | Some "" -> Ok []
    | Some text ->
      let parts = String.split_on_char ',' text in
      List.fold_left
        (fun acc part ->
          match acc, int_of_string_opt part with
          | Ok deps, Some d -> Ok (d :: deps)
          | Ok _, None -> Error (Printf.sprintf "span %d: bad deps %S" s.Trace.id text)
          | (Error _ as e), _ -> e)
        (Ok []) parts
      |> Result.map List.rev
  in
  let rec go acc = function
    | [] -> Ok (List.sort (fun a b -> compare a.id b.id) acc)
    | s :: rest -> (
      match s.Trace.kind, int_attr s "task" with
      | Trace.Step, Some id
        when (match Trace.find_attr s "dispatched" with
             | Some (Trace.Bool b) -> b
             | _ -> false) -> (
        match
          (int_attr s "server", float_attr s "t_start", float_attr s "t_finish",
           deps_of s)
        with
        | Some server, Some start, Some finish, Ok deps ->
          let label =
            match str_attr s "dst" with
            | Some dst -> Printf.sprintf "%s := %s" dst s.Trace.name
            | None -> s.Trace.name
          in
          go
            ({ id; server; start; finish; deps; label; cond = int_attr s "cond" }
            :: acc)
            rest
        | None, _, _, _ ->
          Error (Printf.sprintf "span %d: task without a server attr" s.Trace.id)
        | _, None, _, _ | _, _, None, _ ->
          Error (Printf.sprintf "span %d: task without t_start/t_finish" s.Trace.id)
        | _, _, _, (Error _ as e) -> e)
      | _ -> go acc rest)
  in
  go [] spans

let makespan tasks = List.fold_left (fun acc t -> Float.max acc t.finish) 0.0 tasks

(* Inverse of [of_timeline] (modulo labels), so a schedule rebuilt from
   a trace file can reuse the timeline printers ([Sim.pp_gantt]). *)
let to_timeline tasks =
  let events =
    List.map
      (fun t ->
        {
          Sim.task =
            { Sim.id = t.id; server = t.server; duration = duration t; deps = t.deps };
          start = t.start;
          finish = t.finish;
        })
      (List.sort (fun a b -> compare (a.start, a.id) (b.start, b.id)) tasks)
  in
  { Sim.events; makespan = makespan tasks }

(* --- critical path ------------------------------------------------------- *)

type edge = Start | Dep of int | Queue of int

type hop = { task : task; edge : edge }

type path = { hops : hop list; total : float; makespan : float }

let critical_path tasks =
  let by_id = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_id t.id t) tasks;
  let find id = Hashtbl.find_opt by_id id in
  let eps = 1e-9 in
  let at_finish f t = Float.abs (t.finish -. f) <= eps *. Float.max 1.0 (Float.abs f) in
  (* What kept [t] from starting earlier? A dependency finishing at its
     start beats a queue predecessor: dataflow is the structural reason,
     queueing the incidental one. *)
  let blocker t =
    let dep =
      List.find_opt
        (fun d -> match find d with Some u -> at_finish t.start u | None -> false)
        t.deps
    in
    match dep with
    | Some d -> Some (Dep d, Option.get (find d))
    | None ->
      List.fold_left
        (fun acc u ->
          if u.id <> t.id && u.server = t.server && at_finish t.start u then
            match acc with
            | Some (_, prev) when prev.id >= u.id -> acc
            | _ -> Some (Queue u.id, u)
          else acc)
        None tasks
  in
  let last =
    List.fold_left
      (fun acc t ->
        match acc with
        | Some best when best.finish > t.finish
                         || (best.finish = t.finish && best.id < t.id) -> acc
        | _ -> Some t)
      None tasks
  in
  match last with
  | None -> { hops = []; total = 0.0; makespan = 0.0 }
  | Some last ->
    let rec walk t acc =
      if t.start <= eps then { task = t; edge = Start } :: acc
      else
        match blocker t with
        | Some (edge, u) -> walk u ({ task = t; edge } :: acc)
        | None ->
          (* No blocker at exactly [start]: a gap (shouldn't happen in
             the FIFO model, but a hand-edited trace can produce one).
             End the chain here rather than inventing an edge. *)
          { task = t; edge = Start } :: acc
    in
    let hops = walk last [] in
    {
      hops;
      total = List.fold_left (fun acc h -> acc +. duration h.task) 0.0 hops;
      makespan = last.finish;
    }

(* --- per-source breakdown ------------------------------------------------ *)

type source_load = {
  server : int;
  requests : int;
  busy : float;
  utilization : float;
  queue_wait : float;
  on_path : float;
}

let source_loads tasks =
  let horizon = makespan tasks in
  let by_id = Hashtbl.create 16 in
  List.iter (fun t -> Hashtbl.replace by_id t.id t) tasks;
  let ready t =
    List.fold_left
      (fun acc d ->
        match Hashtbl.find_opt by_id d with
        | Some u -> Float.max acc u.finish
        | None -> acc)
      0.0 t.deps
  in
  let path = critical_path tasks in
  let on_path server =
    List.fold_left
      (fun acc h -> if h.task.server = server then acc +. duration h.task else acc)
      0.0 path.hops
  in
  let servers =
    List.sort_uniq compare (List.map (fun (t : task) -> t.server) tasks)
  in
  List.map
    (fun server ->
      let mine = List.filter (fun (t : task) -> t.server = server) tasks in
      let busy = List.fold_left (fun acc t -> acc +. duration t) 0.0 mine in
      let queue_wait =
        List.fold_left (fun acc t -> acc +. Float.max 0.0 (t.start -. ready t)) 0.0 mine
      in
      {
        server;
        requests = List.length mine;
        busy;
        utilization = (if horizon > 0.0 then busy /. horizon else 0.0);
        queue_wait;
        on_path = on_path server;
      })
    servers

(* --- blame attribution --------------------------------------------------- *)

type blame = { key : string; busy : float; share : float; hops : int }

let blame_by key path =
  let total = path.total in
  let rec add acc k d =
    match acc with
    | [] -> [ (k, (d, 1)) ]
    | (k', (d', n)) :: rest when k' = k -> (k', (d' +. d, n + 1)) :: rest
    | entry :: rest -> entry :: add rest k d
  in
  let grouped =
    List.fold_left
      (fun acc h ->
        match key h.task with
        | Some k -> add acc k (duration h.task)
        | None -> acc)
      [] path.hops
  in
  List.sort
    (fun a b -> compare b.busy a.busy)
    (List.map
       (fun (key, (busy, hops)) ->
         { key; busy; share = (if total > 0.0 then busy /. total else 0.0); hops })
       grouped)

let blame_sources ?(name = fun j -> Printf.sprintf "R%d" (j + 1)) path =
  blame_by (fun t -> Some (name t.server)) path

let blame_conds path =
  blame_by (fun t -> Option.map (fun c -> Printf.sprintf "c%d" (c + 1)) t.cond) path

(* --- printing ------------------------------------------------------------ *)

let pp_edge ppf = function
  | Start -> Format.pp_print_string ppf "start"
  | Dep id -> Format.fprintf ppf "after #%d" id
  | Queue id -> Format.fprintf ppf "queued behind #%d" id

let pp_path ?(source_name = fun j -> Printf.sprintf "R%d" (j + 1)) ppf path =
  Format.fprintf ppf "@[<v>critical path (%g of makespan %g):@," path.total path.makespan;
  List.iter
    (fun h ->
      Format.fprintf ppf "  #%-3d %-32s %-4s %8.1f ..%8.1f  (%s)@," h.task.id
        h.task.label
        (source_name h.task.server)
        h.task.start h.task.finish
        (Format.asprintf "%a" pp_edge h.edge))
    path.hops;
  Format.fprintf ppf "@]"
