(* Structured tracing: spans with parent links, cost-unit and wall-clock
   bounds, and key/value attributes. A process-wide collector can be
   installed (for the CLI's --trace) or swapped locally (for tests); when
   none is installed every entry point is a no-op, so instrumented code
   pays nothing beyond one closure call.

   Cost units mirror the simulated network meter: instrumentation calls
   [charge] with the meter's cost delta, and every span snapshots the
   collector's running total at open and close. Summing [cost] over the
   source-request spans of a run therefore reproduces the run's actual
   cost exactly. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

let pp_attr ppf = function
  | Str s -> Format.fprintf ppf "%S" s
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Bool b -> Format.pp_print_bool ppf b

(* Span taxonomy (see docs/TOUR.md "Observability"):
   [Run] the mediator's root span; [Optimize] one optimizer invocation;
   [Postopt] a post-optimization phase; [Step] one executed plan
   operation; [Request] one logical source query (sq/sjq/lq/fetch);
   [Phase] anything else, named. *)
type kind = Run | Optimize | Postopt | Step | Request | Phase of string

let kind_to_string = function
  | Run -> "run"
  | Optimize -> "optimize"
  | Postopt -> "postopt"
  | Step -> "step"
  | Request -> "request"
  | Phase s -> s

let kind_of_string = function
  | "run" -> Run
  | "optimize" -> Optimize
  | "postopt" -> Postopt
  | "step" -> Step
  | "request" -> Request
  | s -> Phase s

type span = {
  id : int;
  parent : int option;
  kind : kind;
  name : string;
  start_cost : float;
  finish_cost : float;
  start_wall : float;
  finish_wall : float;
  attrs : (string * attr) list;
}

let cost s = s.finish_cost -. s.start_cost

type open_span = {
  o_id : int;
  o_parent : int option;
  o_kind : kind;
  o_name : string;
  o_start_cost : float;
  o_start_wall : float;
  mutable o_attrs : (string * attr) list; (* newest first *)
}

(* The collector's mutable state (id counter, span stack, finished
   list, cost total) is guarded by [lock]: under the domains runtime
   instrumented code may record from pool worker domains while the
   scheduler domain reads [spans] for a report. Parent attribution via
   the open-span stack is only meaningful within one domain's call
   tree, but concurrent recording must never corrupt the collector or
   lose a finished span. *)
type collector = {
  lock : Mutex.t;
  clock : unit -> float;
  mutable next_id : int;
  mutable cost_now : float;
  mutable stack : open_span list;
  mutable finished : span list; (* newest first *)
}

let locked c f =
  Mutex.lock c.lock;
  match f () with
  | v ->
    Mutex.unlock c.lock;
    v
  | exception e ->
    Mutex.unlock c.lock;
    raise e

let create ?(clock = Sys.time) () =
  {
    lock = Mutex.create ();
    clock;
    next_id = 0;
    cost_now = 0.0;
    stack = [];
    finished = [];
  }

let reset c =
  locked c (fun () ->
      c.next_id <- 0;
      c.cost_now <- 0.0;
      c.stack <- [];
      c.finished <- [])

let spans c = locked c (fun () -> List.rev c.finished)

(* [mark]/[spans_since] bracket a region: ids are monotone, so the spans
   of everything opened after [mark] are exactly those with id >= it. *)
let mark c = locked c (fun () -> c.next_id)
let spans_since c m = List.filter (fun s -> s.id >= m) (spans c)

(* --- the process-wide default collector --------------------------------- *)

let installed_ref : collector option Atomic.t = Atomic.make None

let install c = Atomic.set installed_ref (Some c)
let uninstall () = Atomic.set installed_ref None
let installed () = Atomic.get installed_ref
let enabled () = Atomic.get installed_ref <> None

let with_collector c f =
  let saved = Atomic.get installed_ref in
  Atomic.set installed_ref (Some c);
  Fun.protect ~finally:(fun () -> Atomic.set installed_ref saved) f

(* --- recording ----------------------------------------------------------- *)

(* A [ctx] is the live handle instrumented code writes through; [None]
   when tracing is off, so every write below is a cheap pattern match. *)
type ctx = (collector * open_span) option

let active : ctx -> bool = Option.is_some

let attr (ctx : ctx) key value =
  match ctx with
  | None -> ()
  | Some (c, o) -> locked c (fun () -> o.o_attrs <- (key, value) :: o.o_attrs)

let attrs ctx kvs = List.iter (fun (k, v) -> attr ctx k v) kvs

let charge (ctx : ctx) delta =
  match ctx with
  | None -> ()
  | Some (c, _) -> locked c (fun () -> c.cost_now <- c.cost_now +. delta)

(* Callers hold [c.lock]; [now] is read outside it so the user-supplied
   clock never runs under the collector mutex. *)
let finish c ~now o =
  let span =
    {
      id = o.o_id;
      parent = o.o_parent;
      kind = o.o_kind;
      name = o.o_name;
      start_cost = o.o_start_cost;
      finish_cost = c.cost_now;
      start_wall = o.o_start_wall;
      (* A real clock can step backwards (NTP) between open and close;
         never emit a span that finishes before it starts. *)
      finish_wall = Float.max o.o_start_wall now;
      attrs = List.rev o.o_attrs;
    }
  in
  (match c.stack with
  | top :: rest when top == o -> c.stack <- rest
  | _ ->
    (* An exception unwound past nested spans: drop anything opened
       above [o] as well (their Fun.protect already finished them). *)
    c.stack <- List.filter (fun x -> not (x == o)) c.stack);
  c.finished <- span :: c.finished

let span ?(attrs = []) kind name f =
  match Atomic.get installed_ref with
  | None -> f None
  | Some c ->
    let start_wall = c.clock () in
    let o =
      locked c (fun () ->
          let parent =
            match c.stack with [] -> None | top :: _ -> Some top.o_id
          in
          let o =
            {
              o_id = c.next_id;
              o_parent = parent;
              o_kind = kind;
              o_name = name;
              o_start_cost = c.cost_now;
              o_start_wall = start_wall;
              o_attrs = List.rev attrs;
            }
          in
          c.next_id <- c.next_id + 1;
          c.stack <- o :: c.stack;
          o)
    in
    Fun.protect
      ~finally:(fun () ->
        let now = c.clock () in
        locked c (fun () -> finish c ~now o))
      (fun () -> f (Some (c, o)))

(* --- inspection helpers -------------------------------------------------- *)

let find_attr s key = List.assoc_opt key s.attrs

let children trace id = List.filter (fun s -> s.parent = Some id) trace

let roots trace = List.filter (fun s -> s.parent = None) trace

let pp_span ppf s =
  Format.fprintf ppf "@[<h>#%d%s %s/%s cost %g wall %g%a@]" s.id
    (match s.parent with None -> "" | Some p -> Printf.sprintf "<-#%d" p)
    (kind_to_string s.kind) s.name (cost s)
    (s.finish_wall -. s.start_wall)
    (fun ppf attrs ->
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%a" k pp_attr v) attrs)
    s.attrs
