(* A small labeled-series metrics registry: counters, gauges, and
   histograms. Histogram snapshots reuse [Fusion_stats.Histogram] so
   downstream consumers (estimators, reports) read one format.

   Like tracing, a process-wide registry can be installed; instrumented
   code records through [installed ()] and pays a single option match
   when metrics are off.

   The registry is domain-safe: under the domains runtime (lib/rt)
   source-request instrumentation runs on pool worker domains while the
   scheduler domain snapshots for export, so every access to the series
   table — creation, mutation, snapshot — happens under [t.lock]. The
   critical sections are a hashtable probe plus a ref bump; no user
   code runs under the lock. *)

type labels = (string * string) list

(* Labels are a set; sort once so {a=1,b=2} and {b=2,a=1} are the same
   series. *)
let normalize labels = List.sort compare labels

type hist_spec = { lo : int; hi : int; buckets : int }

let default_hist_spec = { lo = 0; hi = 4095; buckets = 16 }

type series =
  | Counter of float ref
  | Gauge of float ref
  | Hist of { spec : hist_spec; mutable values : (int * int) list }

type t = {
  lock : Mutex.t;
  table : (string * labels, series) Hashtbl.t;
  mutable order : (string * labels) list; (* registration order, newest first *)
}

let create () = { lock = Mutex.create (); table = Hashtbl.create 32; order = [] }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.order <- [])

(* Callers hold [t.lock]. *)
let series t name labels make =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
    let s = make () in
    Hashtbl.replace t.table key s;
    t.order <- key :: t.order;
    s

let incr t ?(labels = []) ?(by = 1.0) name =
  locked t (fun () ->
      match series t name labels (fun () -> Counter (ref 0.0)) with
      | Counter r -> r := !r +. by
      | _ -> invalid_arg (Printf.sprintf "Metrics.incr: %s is not a counter" name))

let gauge t ?(labels = []) name value =
  locked t (fun () ->
      match series t name labels (fun () -> Gauge (ref 0.0)) with
      | Gauge r -> r := value
      | _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is not a gauge" name))

let observe t ?(labels = []) ?(spec = default_hist_spec) name value =
  locked t (fun () ->
      match series t name labels (fun () -> Hist { spec; values = [] }) with
      | Hist h -> h.values <- (value, 1) :: h.values
      | _ ->
        invalid_arg (Printf.sprintf "Metrics.observe: %s is not a histogram" name))

type value =
  | Vcounter of float
  | Vgauge of float
  | Vhist of Fusion_stats.Histogram.t

type sample = { name : string; labels : labels; value : value }

let snapshot t =
  locked t (fun () ->
      List.rev_map
        (fun ((name, labels) as key) ->
          let value =
            match Hashtbl.find t.table key with
            | Counter r -> Vcounter !r
            | Gauge r -> Vgauge !r
            | Hist { spec; values } ->
              Vhist
                (Fusion_stats.Histogram.build ~buckets:spec.buckets ~lo:spec.lo
                   ~hi:spec.hi ~values)
          in
          { name; labels; value })
        t.order)

(* --- the process-wide default registry ----------------------------------- *)

let installed_ref : t option Atomic.t = Atomic.make None

let install r = Atomic.set installed_ref (Some r)
let uninstall () = Atomic.set installed_ref None
let installed () = Atomic.get installed_ref

let with_registry r f =
  let saved = Atomic.get installed_ref in
  Atomic.set installed_ref (Some r);
  Fun.protect ~finally:(fun () -> Atomic.set installed_ref saved) f

(* Record into the installed registry, if any. *)
let record f = match Atomic.get installed_ref with None -> () | Some r -> f r

let pp_sample ppf s =
  let labels ppf = function
    | [] -> ()
    | kvs ->
      Format.fprintf ppf "{%s}"
        (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs))
  in
  match s.value with
  | Vcounter v -> Format.fprintf ppf "%s%a %g" s.name labels s.labels v
  | Vgauge v -> Format.fprintf ppf "%s%a %g" s.name labels s.labels v
  | Vhist h -> Format.fprintf ppf "%s%a %a" s.name labels s.labels Fusion_stats.Histogram.pp h
