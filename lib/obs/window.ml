(* Sliding-window percentiles: live p50/p90/p99 over the observations
   of the last [span] seconds, where [Summary] reports end-of-run
   aggregates over everything.

   Samples are kept in a queue as (timestamp, value) pairs; both [add]
   and [snapshot] first evict everything older than [now -. span], so
   the window holds exactly the samples with timestamp in
   (now - span, now] — a sample lands outside the window at the first
   instant [now -. span] reaches its timestamp. Percentiles reuse
   [Summary.percentiles_of], so a snapshot over a window that still
   holds all samples is equal, by construction, to the summary
   percentiles over the same values (the property pinned in
   test/test_window.ml).

   Domain-safe: all state is guarded by a mutex, like [Metrics] — under
   the domains runtime completions are observed on scheduler fibres
   while the admin listener snapshots for /statusz. Timestamps are
   assumed non-decreasing (one logical clock feeds each window). *)

type t = {
  lock : Mutex.t;
  span : float;
  buckets : int;
  q : (float * float) Queue.t; (* (timestamp, value), oldest first *)
  mutable hwm : int; (* most samples ever held at once *)
}

let create ?(buckets = 128) ~span () =
  if not (Float.is_finite span && span > 0.0) then
    invalid_arg "Window.create: span must be positive";
  if buckets <= 0 then invalid_arg "Window.create: buckets must be positive";
  { lock = Mutex.create (); span; buckets; q = Queue.create (); hwm = 0 }

let span t = t.span

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* Callers hold [t.lock]. *)
let evict t ~now =
  let cutoff = now -. t.span in
  let rec go () =
    match Queue.peek_opt t.q with
    | Some (ts, _) when ts <= cutoff ->
      ignore (Queue.pop t.q);
      go ()
    | _ -> ()
  in
  go ()

let add t ~now v =
  locked t (fun () ->
      evict t ~now;
      Queue.push (now, v) t.q;
      let n = Queue.length t.q in
      if n > t.hwm then t.hwm <- n)

let length t ~now =
  locked t (fun () ->
      evict t ~now;
      Queue.length t.q)

let values t ~now =
  locked t (fun () ->
      evict t ~now;
      List.rev (Queue.fold (fun acc (_, v) -> v :: acc) [] t.q))

let snapshot t ~now = Summary.percentiles_of ~buckets:t.buckets (values t ~now)

let high_water t = locked t (fun () -> t.hwm)

let clear t =
  locked t (fun () ->
      Queue.clear t.q;
      t.hwm <- 0)
