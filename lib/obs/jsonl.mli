(** JSON-lines export of traces and metrics, and the inverse parser.
    One JSON object per line, discriminated by a ["type"] field:

    {v {"type":"span","id":0,"parent":null,"kind":"run",...}
       {"type":"metric","name":"fusion_requests_total",...} v}

    Export followed by parse reproduces the spans and samples exactly
    (structural equality), which the test suite relies on. *)

type line = Span of Trace.span | Sample of Metrics.sample

val line_to_string : line -> string
val line_of_string : string -> (line, string) result

val span_to_json : Trace.span -> Json.t
val span_of_json : Json.t -> (Trace.span, string) result

val sample_to_json : Metrics.sample -> Json.t
val sample_of_json : Json.t -> (Metrics.sample, string) result

val export : ?metrics:Metrics.sample list -> Trace.span list -> string
(** Spans first (in the given order), then metric samples, one JSON
    object per line. *)

val parse : string -> (Trace.span list * Metrics.sample list, string) result
(** Blank lines are skipped; any malformed line fails the whole
    parse. *)

val write_file : string -> ?metrics:Metrics.sample list -> Trace.span list -> unit
val read_file : string -> (Trace.span list * Metrics.sample list, string) result
