(** Chrome trace-event export of a span trace, loadable in Perfetto or
    chrome://tracing.

    One file carries two views as two "processes": pid 0 ("cost
    clock") has every span as a complete event on the collector's
    cumulative-cost clock — the flame graph of where the work went;
    pid 1 ("simulated schedule") has the dispatched steps of a
    concurrent run, one thread per source, on the discrete-event clock
    — the Gantt chart where queueing and the critical path are
    visible. Cost units are exported as microseconds (the format's
    native unit). *)

val of_spans : ?source_name:(int -> string) -> Trace.span list -> Json.t
(** The [{"traceEvents": [...]}] object. [source_name] names the
    schedule view's threads (default [R1], [R2], ...). Spans are
    processed in id order regardless of input order. *)

val to_string : ?source_name:(int -> string) -> Trace.span list -> string

val write_file : string -> ?source_name:(int -> string) -> Trace.span list -> unit
