(** Trace analytics: span-tree reconstruction and critical-path
    profiling of a concurrent schedule.

    A schedule is a set of {!task}s — the dispatched source queries of
    a run with start/finish instants, dataflow dependencies and serving
    source — obtained either live from the executor's timeline
    ({!of_timeline}) or from the Step spans of a recorded trace
    ({!tasks_of_spans}). The {!critical_path} is the chain of tasks
    whose durations sum to the makespan: each hop starts exactly when
    its blocker — a dataflow dependency or the previous request
    occupying the same source — finishes. *)

(** {2 Span tree} *)

type node = { span : Trace.span; children : node list }

val tree : Trace.span list -> node list
(** Roots (spans whose parent is absent from the set) with their
    subtrees; children in id (= opening) order. *)

val flatten : node list -> Trace.span list
(** Pre-order traversal. Because ids are assigned in opening order,
    this is exactly the spans sorted by id; [flatten (tree spans)]
    re-exports byte-identically for id-sorted input. *)

val find_kind : Trace.kind -> node list -> node option
(** First node (pre-order) of the given kind. *)

val pp_tree : Format.formatter -> node list -> unit

(** {2 Schedules} *)

type task = {
  id : int;  (** dataflow node id (position among the plan's source queries) *)
  server : int;  (** source index *)
  start : float;
  finish : float;
  deps : int list;  (** dataflow dependencies (task ids) *)
  label : string;
  cond : int option;  (** condition index, for selections/semijoins *)
}

val duration : task -> float

val of_timeline :
  ?label:(int -> string) -> ?cond:(int -> int option) ->
  Fusion_net.Sim.timeline -> task list
(** One task per dispatched event; [label]/[cond] decorate task ids
    with plan information (see {!Fusion_plan.Parallel_exec.dataflow}). *)

val tasks_of_spans : Trace.span list -> (task list, string) result
(** Rebuilds the schedule from a recorded trace: Step spans marked
    [dispatched] carrying [task]/[server]/[deps]/[t_start]/[t_finish]
    attributes (written by {!Fusion_plan.Exec_async}), in id order.
    Errors on structurally broken attributes. *)

val makespan : task list -> float

val to_timeline : task list -> Fusion_net.Sim.timeline
(** Inverse of {!of_timeline} (modulo labels): events in start order,
    so a schedule rebuilt from a trace file can reuse the timeline
    printers ({!Fusion_net.Sim.pp_gantt}). *)

(** {2 Critical path} *)

(** Why a hop could not start earlier: first task of the schedule, a
    dataflow dependency, or FIFO queueing behind another request at the
    same source. *)
type edge = Start | Dep of int | Queue of int

type hop = { task : task; edge : edge }

type path = {
  hops : hop list;  (** in schedule order; each starts when its blocker finishes *)
  total : float;  (** sum of hop durations = the makespan *)
  makespan : float;
}

val critical_path : task list -> path
(** Walks back from the last-finishing task. On an empty schedule the
    path is empty with total 0. *)

(** {2 Per-source breakdown} *)

type source_load = {
  server : int;
  requests : int;  (** dispatched requests served *)
  busy : float;  (** total service time *)
  utilization : float;  (** busy / makespan *)
  queue_wait : float;
      (** total time requests sat ready but waiting for the source *)
  on_path : float;  (** service time on the critical path *)
}

val source_loads : task list -> source_load list
(** One entry per source that served work, in source order. *)

(** {2 Blame attribution} *)

type blame = {
  key : string;
  busy : float;  (** critical-path time attributed to the key *)
  share : float;  (** fraction of the path total *)
  hops : int;
}

val blame_by : (task -> string option) -> path -> blame list
(** Groups the path's hops by an arbitrary key (tasks mapping to [None]
    are unattributed), largest share first. *)

val blame_sources : ?name:(int -> string) -> path -> blame list
(** Blame per source (default names [R1], [R2], ...). *)

val blame_conds : path -> blame list
(** Blame per condition ([c1], [c2], ...); loads carry no condition and
    are unattributed. *)

val pp_path : ?source_name:(int -> string) -> Format.formatter -> path -> unit
