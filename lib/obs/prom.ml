(* Prometheus text-exposition (version 0.0.4) of a Metrics snapshot.

   Counters and gauges map directly; histogram series expose the
   cumulative le-buckets Prometheus expects, built from the equi-width
   [Fusion_stats.Histogram] counts. The _sum line is approximated from
   bucket midpoints (the registry keeps bucketed counts, not raw
   values) — fine for the rate/percentile arithmetic the format is
   consumed with, and noted in the HELP line. *)

let is_name_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false

let sanitize_name name =
  let cleaned = String.map (fun c -> if is_name_char c then c else '_') name in
  if cleaned = "" then "_"
  else
    match cleaned.[0] with
    | '0' .. '9' -> "_" ^ cleaned
    | _ -> cleaned

let escape_label_value v =
  let buffer = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '"' -> Buffer.add_string buffer "\\\""
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    v;
  Buffer.contents buffer

(* Prometheus floats: integral values without a fraction, everything
   else via %g — deterministic, and what client libraries emit. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let labels_text = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           labels)
    ^ "}"

let add_series buffer name labels value =
  Buffer.add_string buffer name;
  Buffer.add_string buffer (labels_text labels);
  Buffer.add_char buffer ' ';
  Buffer.add_string buffer (number value);
  Buffer.add_char buffer '\n'

let add_hist buffer name labels h =
  let lo, _hi = Fusion_stats.Histogram.bounds h in
  let counts = Fusion_stats.Histogram.counts h in
  let buckets = Array.length counts in
  let width =
    let lo', hi' = Fusion_stats.Histogram.bounds h in
    float_of_int (hi' - lo' + 1) /. float_of_int buckets
  in
  let cumulative = ref 0.0 and sum = ref 0.0 in
  Array.iteri
    (fun b c ->
      cumulative := !cumulative +. c;
      sum := !sum +. (c *. (float_of_int lo +. ((float_of_int b +. 0.5) *. width)));
      let le = float_of_int lo +. (float_of_int (b + 1) *. width) in
      add_series buffer (name ^ "_bucket") (labels @ [ ("le", number le) ]) !cumulative)
    counts;
  add_series buffer (name ^ "_bucket") (labels @ [ ("le", "+Inf") ]) !cumulative;
  add_series buffer (name ^ "_sum") labels !sum;
  add_series buffer (name ^ "_count") labels !cumulative

(* All lines of one metric family must be contiguous in the exposition;
   re-group in first-appearance order. Grouping keys on the sanitized
   name — the family the consumer sees — so two raw names that sanitize
   alike form one contiguous family with one TYPE line, not two
   fragments. *)
let group_by_name samples =
  let key (s : Metrics.sample) = sanitize_name s.Metrics.name in
  let names =
    List.fold_left
      (fun acc s -> if List.mem (key s) acc then acc else key s :: acc)
      [] samples
    |> List.rev
  in
  List.concat_map
    (fun name -> List.filter (fun s -> key s = name) samples)
    names

let of_samples samples =
  let samples = group_by_name samples in
  let buffer = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Metrics.sample) ->
      let name = sanitize_name s.Metrics.name in
      (if not (Hashtbl.mem typed name) then begin
         Hashtbl.replace typed name ();
         let kind =
           match s.Metrics.value with
           | Metrics.Vcounter _ -> "counter"
           | Metrics.Vgauge _ -> "gauge"
           | Metrics.Vhist _ -> "histogram"
         in
         (match s.Metrics.value with
         | Metrics.Vhist _ ->
           Buffer.add_string buffer
             (Printf.sprintf "# HELP %s bucketed values (sum approximated from bucket midpoints)\n"
                name)
         | _ -> ());
         Buffer.add_string buffer (Printf.sprintf "# TYPE %s %s\n" name kind)
       end);
      match s.Metrics.value with
      | Metrics.Vcounter v -> add_series buffer name s.Metrics.labels v
      | Metrics.Vgauge v -> add_series buffer name s.Metrics.labels v
      | Metrics.Vhist h -> add_hist buffer name s.Metrics.labels h)
    samples;
  Buffer.contents buffer

let of_registry t = of_samples (Metrics.snapshot t)

let write_file path samples =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (of_samples samples))
