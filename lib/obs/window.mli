(** Sliding-window percentiles: live p50/p90/p99 over the observations
    of the last [span] seconds, where {!Summary} reports end-of-run
    aggregates over everything.

    The window holds exactly the samples with timestamp in
    (now - span, now]: a sample falls out at the first instant
    [now -. span] reaches its timestamp. Percentiles are computed with
    {!Summary.percentiles_of}, so a snapshot of a window that still
    holds all its samples equals the summary percentiles over the same
    values by construction.

    Domain-safe (internal mutex), like {!Metrics}. Timestamps passed as
    [~now] are assumed non-decreasing — feed each window from one
    logical clock. *)

type t

val create : ?buckets:int -> span:float -> unit -> t
(** [span] is the window length in seconds (must be positive);
    [buckets] (default 128) sets percentile resolution.
    @raise Invalid_argument on a non-positive span or bucket count. *)

val span : t -> float

val add : t -> now:float -> float -> unit
(** Record one observation at time [now], evicting expired samples. *)

val length : t -> now:float -> int
(** Samples currently inside the window. *)

val values : t -> now:float -> float list
(** Surviving samples in insertion order (mostly for tests). *)

val snapshot : t -> now:float -> Summary.percentiles
(** Percentiles over the surviving samples;
    {!Summary.empty_percentiles} when the window is empty. *)

val high_water : t -> int
(** Most samples the window ever held at once (eviction included). *)

val clear : t -> unit
