(* A minimal JSON codec for the JSONL exporter — the toolchain has no
   JSON library baked in, and the exporter only needs exact round-trips
   of its own output.

   Numbers keep the int/float distinction: floats always print with a
   '.', 'e' or leading '-'+digits+'.' so the parser can tell them apart,
   and use %.17g so every finite double survives a round trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------ *)

let escape_string buffer s =
  Buffer.add_char buffer '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | '\b' -> Buffer.add_string buffer "\\b"
      | '\012' -> Buffer.add_string buffer "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.add_char buffer '"'

let float_to_string f =
  if Float.is_nan f then invalid_arg "Json: nan is not representable"
  else if f = Float.infinity || f = Float.neg_infinity then
    invalid_arg "Json: infinity is not representable"
  else
    let s = Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buffer = function
  | Null -> Buffer.add_string buffer "null"
  | Bool b -> Buffer.add_string buffer (string_of_bool b)
  | Int i -> Buffer.add_string buffer (string_of_int i)
  | Float f -> Buffer.add_string buffer (float_to_string f)
  | Str s -> escape_string buffer s
  | List items ->
    Buffer.add_char buffer '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buffer ',';
        write buffer item)
      items;
    Buffer.add_char buffer ']'
  | Obj fields ->
    Buffer.add_char buffer '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buffer ',';
        escape_string buffer key;
        Buffer.add_char buffer ':';
        write buffer value)
      fields;
    Buffer.add_char buffer '}'

let to_string json =
  let buffer = Buffer.create 256 in
  write buffer json;
  Buffer.contents buffer

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let of_string text =
  let pos = ref 0 in
  let len = String.length text in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let n = String.length word in
    if !pos + n <= len && String.sub text !pos n = word then begin
      pos := !pos + n;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string"
      else
        match text.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= len then fail "unterminated escape"
           else
             match text.[!pos] with
             | '"' -> Buffer.add_char buffer '"'; advance ()
             | '\\' -> Buffer.add_char buffer '\\'; advance ()
             | '/' -> Buffer.add_char buffer '/'; advance ()
             | 'n' -> Buffer.add_char buffer '\n'; advance ()
             | 'r' -> Buffer.add_char buffer '\r'; advance ()
             | 't' -> Buffer.add_char buffer '\t'; advance ()
             | 'b' -> Buffer.add_char buffer '\b'; advance ()
             | 'f' -> Buffer.add_char buffer '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > len then fail "truncated \\u escape";
               let hex = String.sub text !pos 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "bad \\u escape"
               | Some code ->
                 pos := !pos + 4;
                 (* Only the codepoints our printer emits (< 0x20) plus
                    the Latin-1 range; enough for round-tripping. *)
                 if code < 0x80 then Buffer.add_char buffer (Char.chr code)
                 else if code < 0x800 then begin
                   Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
                   Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                 end
                 else begin
                   Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
                   Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                   Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
                 end)
             | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buffer c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buffer
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < len && is_num_char text.[!pos] do
      advance ()
    done;
    let s = String.sub text start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" s)
    else
      match int_of_string_opt s with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value () with
  | value ->
    skip_ws ();
    if !pos <> len then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok value
  | exception Parse_error msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_str = function Str s -> Some s | _ -> None
