type t = {
  lo : int;
  hi : int; (* inclusive domain bounds *)
  counts : float array;
  width : float;
}

let build ~buckets ~lo ~hi ~values =
  if buckets <= 0 then invalid_arg "Histogram.build: buckets must be positive";
  if hi <= lo then invalid_arg "Histogram.build: empty domain";
  let counts = Array.make buckets 0.0 in
  let width = float_of_int (hi - lo + 1) /. float_of_int buckets in
  List.iter
    (fun (v, w) ->
      if w < 0 then invalid_arg "Histogram.build: negative weight";
      let v = max lo (min hi v) in
      let b = int_of_float (float_of_int (v - lo) /. width) in
      let b = min (buckets - 1) b in
      counts.(b) <- counts.(b) +. float_of_int w)
    values;
  { lo; hi; counts; width }

let total t = Array.fold_left ( +. ) 0.0 t.counts

let bounds t = (t.lo, t.hi)
let counts t = Array.copy t.counts

let of_counts ~lo ~hi ~counts =
  if Array.length counts = 0 then invalid_arg "Histogram.of_counts: no buckets";
  if hi <= lo then invalid_arg "Histogram.of_counts: empty domain";
  {
    lo;
    hi;
    counts = Array.copy counts;
    width = float_of_int (hi - lo + 1) /. float_of_int (Array.length counts);
  }

(* Weight with value strictly below [bound]: whole buckets below the
   boundary bucket plus a linear share of the boundary bucket. *)
let estimate_le t bound =
  if bound <= t.lo then 0.0
  else if bound > t.hi then total t
  else begin
    let position = float_of_int (bound - t.lo) /. t.width in
    let full = int_of_float position in
    let fraction = position -. float_of_int full in
    let acc = ref 0.0 in
    for b = 0 to min (full - 1) (Array.length t.counts - 1) do
      acc := !acc +. t.counts.(b)
    done;
    if full < Array.length t.counts then acc := !acc +. (fraction *. t.counts.(full));
    !acc
  end

let estimate_range t ~lo ~hi =
  if hi < lo then 0.0 else Float.max 0.0 (estimate_le t (hi + 1) -. estimate_le t lo)

let estimate_eq t v = estimate_range t ~lo:v ~hi:v

(* Inverse of [estimate_le]: the value below which a [q] fraction of the
   weight lies, interpolating linearly inside the boundary bucket.
   [None] when the question has no answer: an empty histogram (nothing
   recorded), a degenerate one (non-finite total), or a NaN fraction —
   every arithmetic fallback here used to leak out as [lo] or NaN. *)
let percentile_opt t q =
  let total = total t in
  if Float.is_nan q || (not (Float.is_finite total)) || total <= 0.0 then None
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. total in
    let acc = ref 0.0 and result = ref None and b = ref 0 in
    while !result = None && !b < Array.length t.counts do
      let c = t.counts.(!b) in
      if !acc +. c >= target then begin
        let fraction = if c > 0.0 then (target -. !acc) /. c else 0.0 in
        result := Some (float_of_int t.lo +. ((float_of_int !b +. fraction) *. t.width))
      end
      else begin
        acc := !acc +. c;
        incr b
      end
    done;
    match !result with
    | Some v -> Some v
    | None -> Some (float_of_int t.lo +. (float_of_int (Array.length t.counts) *. t.width))
  end

let percentile t q =
  match percentile_opt t q with Some v -> v | None -> float_of_int t.lo

let pp ppf t =
  Format.fprintf ppf "@[<h>[%d..%d]:" t.lo t.hi;
  Array.iter (fun c -> Format.fprintf ppf " %.0f" c) t.counts;
  Format.fprintf ppf "@]"
