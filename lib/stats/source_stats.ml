open Fusion_data
open Fusion_cond

type provider =
  | Exact
  | Sampled of Tuple.t array (* uniform tuple sample *)
  | Histograms of (string, Histogram.t) Hashtbl.t (* per int attribute *)

type t = {
  relation : Relation.t;
  mutable provider : provider;
  memo : (string, float) Hashtbl.t;
  mutable version : int;  (* relation version the memo/provider reflect *)
  rebuild : Relation.t -> provider;  (* how to refresh the provider *)
}

let make relation rebuild =
  {
    relation;
    provider = rebuild relation;
    memo = Hashtbl.create 8;
    version = Relation.version relation;
    rebuild;
  }

(* Estimates must track a mutable relation: on version change, drop the
   memo and rebuild sampled/histogram providers. Sampling again after
   growth is what a periodically refreshing mediator would do. *)
let ensure_fresh t =
  if Relation.version t.relation <> t.version then begin
    Hashtbl.reset t.memo;
    t.provider <- t.rebuild t.relation;
    t.version <- Relation.version t.relation
  end

let exact relation = make relation (fun _ -> Exact)

let reservoir_sample prng k relation =
  let sample = Array.make (min k (Relation.cardinality relation)) [||] in
  let seen = ref 0 in
  Relation.iter
    (fun tuple ->
      if !seen < Array.length sample then sample.(!seen) <- tuple
      else begin
        let j = Prng.int prng (!seen + 1) in
        if j < Array.length sample then sample.(j) <- tuple
      end;
      incr seen)
    relation;
  sample

let sampled ~sample_size prng relation =
  make relation (fun r -> Sampled (reservoir_sample prng sample_size r))

let build_histograms ~buckets relation =
  let schema = Relation.schema relation in
  let tables = Hashtbl.create 8 in
  List.iteri
    (fun pos (name, ty) ->
      if ty = Value.Tint then begin
        let values = ref [] and lo = ref max_int and hi = ref min_int in
        Relation.iter
          (fun tuple ->
            match Tuple.get tuple pos with
            | Value.Int v ->
              values := (v, 1) :: !values;
              if v < !lo then lo := v;
              if v > !hi then hi := v
            | _ -> ())
          relation;
        if !values <> [] then
          Hashtbl.replace tables name
            (Histogram.build ~buckets ~lo:!lo ~hi:(max !hi (!lo + 1)) ~values:!values)
      end)
    (Schema.attrs schema);
  tables

let histogram ?(buckets = 20) relation =
  make relation (fun r -> Histograms (build_histograms ~buckets r))

let cardinality t = Relation.cardinality t.relation
let distinct_items t = Relation.distinct_item_count t.relation
let is_exact t = t.provider = Exact

(* Histogram-based selectivity: estimates per predicate, combined with
   textbook independence for boolean operators; all in tuple-weight
   space, capped at the distinct-item count by the caller. *)
let histogram_matching tables ~distinct ~fallback cond =
  let rec weight = function
    | Cond.True -> fallback
    | Cond.Cmp (a, op, Value.Int v) -> (
      match Hashtbl.find_opt tables a with
      | None -> 0.1 *. fallback
      | Some h -> (
        let tot = Histogram.total h in
        match op with
        | Cond.Lt -> Histogram.estimate_le h v
        | Cond.Le -> Histogram.estimate_le h (v + 1)
        | Cond.Gt -> tot -. Histogram.estimate_le h (v + 1)
        | Cond.Ge -> tot -. Histogram.estimate_le h v
        | Cond.Eq -> Histogram.estimate_eq h v
        | Cond.Ne -> tot -. Histogram.estimate_eq h v))
    | Cond.Between (a, Value.Int lo, Value.Int hi) -> (
      match Hashtbl.find_opt tables a with
      | None -> 0.25 *. fallback
      | Some h -> Histogram.estimate_range h ~lo ~hi)
    | Cond.In_list (a, vs) -> (
      match Hashtbl.find_opt tables a with
      | None -> 0.1 *. fallback *. float_of_int (List.length vs)
      | Some h ->
        List.fold_left
          (fun acc v ->
            match v with Value.Int i -> acc +. Histogram.estimate_eq h i | _ -> acc)
          0.0 vs)
    | Cond.Cmp (_, Cond.Eq, _) -> 0.1 *. fallback
    | Cond.Cmp (_, Cond.Ne, _) -> 0.9 *. fallback
    | Cond.Cmp (_, _, _) -> (1.0 /. 3.0) *. fallback
    | Cond.Between (_, _, _) -> 0.25 *. fallback
    | Cond.Prefix (_, _) -> 0.25 *. fallback
    | Cond.Is_null _ -> 0.05 *. fallback
    | Cond.And (x, y) -> weight x *. weight y /. Float.max 1.0 fallback
    | Cond.Or (x, y) ->
      let wx = weight x and wy = weight y in
      wx +. wy -. (wx *. wy /. Float.max 1.0 fallback)
    | Cond.Not x -> Float.max 0.0 (fallback -. weight x)
  in
  Float.min distinct (Float.max 0.0 (weight cond))

let compute_matching t cond =
  match t.provider with
  | Exact -> float_of_int (Cond_vec.count_items (Cond_vec.compile t.relation cond))
  | Histograms tables ->
    let distinct = float_of_int (Relation.distinct_item_count t.relation) in
    let fallback = float_of_int (Relation.cardinality t.relation) in
    histogram_matching tables ~distinct ~fallback cond
  | Sampled sample ->
    let n = Array.length sample in
    if n = 0 then 0.0
    else begin
      (* Fraction of sampled tuples matching, scaled to the published
         distinct-item count. Biased when items have many tuples, but
         that is the realistic price of sampling; the exact provider is
         available as the oracle baseline. *)
      let pred = Cond.compile (Relation.schema t.relation) cond in
      let hits = Array.fold_left (fun acc tu -> if pred tu then acc + 1 else acc) 0 sample in
      float_of_int (distinct_items t) *. (float_of_int hits /. float_of_int n)
    end

let matching_items t cond =
  ensure_fresh t;
  let key = Cond.to_string cond in
  match Hashtbl.find_opt t.memo key with
  | Some v -> v
  | None ->
    let v = compute_matching t cond in
    Hashtbl.add t.memo key v;
    v

let item_selectivity t cond =
  let d = distinct_items t in
  if d = 0 then 0.0 else matching_items t cond /. float_of_int d
