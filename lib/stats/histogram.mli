(** Equi-width histograms over integer attributes.

    A middle ground between full scans and tuple samples: sources
    publish one small histogram per attribute (bucket counts of
    {e distinct items} having a tuple with the attribute in the
    bucket), and the mediator estimates condition matching counts from
    them. This is the kind of coarse statistics an autonomous Internet
    source might realistically export. *)

type t

val build :
  buckets:int -> lo:int -> hi:int -> values:(int * int) list -> t
(** [build ~buckets ~lo ~hi ~values] — [values] are [(attribute value,
    weight)] pairs; values outside [lo, hi] clamp to the edge buckets.
    [hi] must exceed [lo]; weights must be non-negative. *)

val total : t -> float

val estimate_le : t -> int -> float
(** Estimated weight with value < the bound (continuous interpolation
    inside the boundary bucket). *)

val estimate_range : t -> lo:int -> hi:int -> float
(** Estimated weight with value in [lo, hi] inclusive. *)

val estimate_eq : t -> int -> float
(** Estimated weight equal to a point value (bucket weight spread
    uniformly over the bucket's width). *)

val percentile_opt : t -> float -> float option
(** [percentile_opt t q] — the value below which a [q] fraction
    (clamped to [0, 1]) of the total weight lies, interpolating
    linearly inside the boundary bucket; the inverse of
    {!estimate_le}. [None] when the question has no answer: an empty
    histogram (zero total weight), a degenerate one (non-finite
    total), or a NaN [q]. Never NaN. *)

val percentile : t -> float -> float
(** {!percentile_opt} with the documented fallback [float_of_int lo]
    for the [None] cases — convenient when a numeric placeholder for
    "no data" is acceptable. Never NaN. *)

val bounds : t -> int * int
(** The inclusive [lo, hi] domain the histogram covers. *)

val counts : t -> float array
(** Per-bucket weights, in domain order (a copy; safe to mutate). *)

val of_counts : lo:int -> hi:int -> counts:float array -> t
(** Rebuild a histogram from [bounds] and [counts], e.g. when parsing a
    serialized form. [hi] must exceed [lo]; [counts] must be non-empty. *)

val pp : Format.formatter -> t -> unit
