(** Deterministic pseudo-random number generator (splitmix64).

    Every randomized component of the reproduction (workload generation,
    sampling, property-test corpora) draws from this generator so that
    all experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] — distinct seeds give independent-looking streams. *)

val split : t -> t
(** Derives an independent generator; the parent advances. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate) — e.g. an interarrival
    gap of a Poisson process with [rate] arrivals per time unit.
    @raise Invalid_argument if [rate <= 0]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
