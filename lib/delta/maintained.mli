(** Incrementally maintained fusion answers.

    A maintained plan keeps the current answer item-set of every plan
    variable, plus per-node state (the full selection set of each
    [Sq]/[Sjq]/[Lsq] node), and updates all of it in time proportional
    to a source delta: when items [touched] change at source [j], each
    selection-like node re-probes {e only the touched items} against
    the relation's merge index, and each set operation applies the
    candidate-set rules of {!Change}. The result after every delta is
    byte-equal to a full re-execution of the plan on the mutated
    catalog (pinned by the randomized mutation-batch property suite).

    Maintenance is mediator-local bookkeeping: it reads the wrapped
    relations directly and charges no source meters — the model is a
    source that announces its own deltas, so the mediator never
    re-ships base data it already holds. *)

open Fusion_data
open Fusion_query
open Fusion_source
open Fusion_plan

type t

val create : query:Query.t -> sources:Source.t list -> Plan.t -> (t, string) result
(** Validates the plan against the query and sources, then runs one
    full local evaluation to seed the per-node state. *)

val answer : t -> Item_set.t
(** The current answer (the plan output variable's value). *)

val value : t -> string -> Item_set.t
(** Current value of any plan variable (empty if never bound). *)

val versions : t -> int array
(** The source-version vector the current answer reflects (a copy). *)

val plan : t -> Plan.t

val source_changed : t -> source:int -> touched:Item_set.t -> Change.t
(** Propagates a change at source [source] (by index into the source
    list) whose touched-item set is [touched]; the relation must
    already hold the post-delta state. Returns the change of the
    answer. O(|touched| · plan size), independent of base
    cardinalities. *)

val mutate : t -> source:int -> Delta.t -> Delta.applied * Change.t
(** Applies the delta to the source's relation, then propagates:
    [Delta.apply] followed by {!source_changed}. *)
