(** Source deltas: insert/delete batches on wrapped relations.

    A delta is the unit of change a source reports (or an administrator
    injects): a batch of tuple inserts and deletes against one
    relation. Applying it bumps the relation's monotone version counter
    and reports the set of {e touched items} — the interned merge ids
    whose evidence changed — which is exactly what the delta rules in
    {!Change}/{!Maintained} and the version-vector invalidation in
    [Answer_cache] consume. *)

open Fusion_data

type t = { inserts : Tuple.t list; deletes : Tuple.t list }

val make : inserts:Tuple.t list -> deletes:Tuple.t list -> t
val empty : t
val is_empty : t -> bool

val size : t -> int
(** Total number of inserts plus deletes. *)

val of_rows :
  Schema.t -> inserts:Value.t list list -> deletes:Value.t list list -> (t, string) result
(** Builds from raw rows, type-checking each against the schema. *)

val parse : Schema.t -> string -> (t, string) result
(** Parses the TCP front end's [mut] payload syntax: [;]-separated ops,
    each [+cell,cell,...] (insert) or [-cell,cell,...] (delete), cells
    parsed against the schema's attribute types in order. *)

val to_line : Schema.t -> t -> string
(** Renders in the {!parse} syntax (inserts first). Round-trips for
    values whose [Value.to_string] form contains no [,] or [;]. *)

type applied = {
  inserted : int;  (** rows inserted *)
  deleted : int;  (** deletes that removed a row *)
  missed : int;  (** deletes that matched no row *)
  touched : Item_set.t;
      (** merge items whose tuple evidence changed, in the relation's
          intern scope *)
  version : int;  (** the relation's version after the batch *)
}

val apply : Relation.t -> t -> applied
(** Applies deletes (each removing one matching tuple, if any) then
    inserts. Tuples are assumed typed against the relation's schema
    (build them with {!of_rows} or [Tuple.create]). *)

val pp : Format.formatter -> t -> unit
