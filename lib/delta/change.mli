(** Normalized item-set changes and the delta rules of the plan algebra.

    A change is the difference between two snapshots of one item set,
    kept disjoint and minimal: [adds ∩ before = ∅], [dels ⊆ before],
    [adds ∩ dels = ∅], and [after = (before − dels) ∪ adds]. Standing
    queries push these, and {!Maintained} propagates them through
    [Sq]/[Sjq]/[∪]/[∩]/[−] DAGs with the rules below — each rule runs
    flat {!Item_set} kernels on sets bounded by the {e candidate set}
    [C = touched Δa ∪ touched Δb], so updating a maintained answer
    costs time proportional to the delta, not the base data. *)

open Fusion_data

type t = { adds : Item_set.t; dels : Item_set.t }

val empty : t
val is_empty : t -> bool

val inverse : t -> t
(** Swaps adds and dels: applying [inverse c] undoes [c]. *)

val touched : t -> Item_set.t
(** [adds ∪ dels] — the items whose membership changed. *)

val cardinal : t -> int

val apply : Item_set.t -> t -> Item_set.t
(** [apply before c] is the post-change set [(before − dels) ∪ adds]. *)

val of_parts : old_on:Item_set.t -> new_on:Item_set.t -> t
(** Builds a normalized change from the old and new values restricted
    to a common candidate set: [adds = new − old], [dels = old − new].
    Items outside the restriction must be unchanged. *)

val of_snapshots : before:Item_set.t -> after:Item_set.t -> t
(** [of_parts] over full snapshots. O(base); prefer the rules below on
    maintained paths. *)

val old_on : now:Item_set.t -> Item_set.t -> t -> Item_set.t
(** [old_on ~now c d] recovers the pre-change value restricted to [c]
    from the current value and the change that produced it — valid for
    any [c ⊇ touched d]. Delta-sized. *)

(** {1 Delta rules}

    Each takes the operands' post-change values and the changes that
    produced them, and returns the change of the combined set. E.g. the
    classic [Δ(A∩B) = (ΔA ∩ B') ∪ (A' ∩ ΔB)] (primes denoting new
    values, with deletions handled by the old/new-restriction
    formulation). *)

val union_rule : a:Item_set.t -> b:Item_set.t -> t -> t -> t
val inter_rule : a:Item_set.t -> b:Item_set.t -> t -> t -> t
val diff_rule : l:Item_set.t -> r:Item_set.t -> t -> t -> t

val pp : Format.formatter -> t -> unit
