open Fusion_data

type t = { adds : Item_set.t; dels : Item_set.t }

let empty = { adds = Item_set.empty; dels = Item_set.empty }
let is_empty c = Item_set.is_empty c.adds && Item_set.is_empty c.dels
let inverse c = { adds = c.dels; dels = c.adds }
let touched c = Item_set.union c.adds c.dels
let cardinal c = Item_set.cardinal c.adds + Item_set.cardinal c.dels
let apply v c = Item_set.union (Item_set.diff v c.dels) c.adds

let of_parts ~old_on ~new_on =
  { adds = Item_set.diff new_on old_on; dels = Item_set.diff old_on new_on }

let of_snapshots ~before ~after = of_parts ~old_on:before ~new_on:after

(* [old_on ~now c d]: the pre-change value restricted to any candidate
   set [c ⊇ touched d], recovered from the current value [now] and the
   change [d] that produced it — [(c ∩ now) − adds ∪ dels], all
   delta-sized kernels. *)
let old_on ~now c d =
  Item_set.union (Item_set.diff (Item_set.inter c now) d.adds) d.dels

(* The binary delta rules over the flat item-set algebra. Arguments
   [a]/[b] are the operands' {e post-change} values and [da]/[db] the
   changes that produced them; every kernel below runs on sets no larger
   than the candidate set C = touched da ∪ touched db, so maintenance
   cost is proportional to the delta, never the base. *)

let union_rule ~a ~b da db =
  let c = Item_set.union (touched da) (touched db) in
  of_parts
    ~old_on:(Item_set.union (old_on ~now:a c da) (old_on ~now:b c db))
    ~new_on:(Item_set.union (Item_set.inter c a) (Item_set.inter c b))

let inter_rule ~a ~b da db =
  let c = Item_set.union (touched da) (touched db) in
  of_parts
    ~old_on:(Item_set.inter (old_on ~now:a c da) (old_on ~now:b c db))
    ~new_on:(Item_set.inter (Item_set.inter c a) b)

let diff_rule ~l ~r dl dr =
  let c = Item_set.union (touched dl) (touched dr) in
  of_parts
    ~old_on:(Item_set.diff (old_on ~now:l c dl) (old_on ~now:r c dr))
    ~new_on:(Item_set.diff (Item_set.inter c l) r)

let pp ppf c =
  Format.fprintf ppf "@[<h>+%a@ -%a@]" Item_set.pp c.adds Item_set.pp c.dels
