open Fusion_data
open Fusion_cond
open Fusion_query
open Fusion_source
open Fusion_plan

(* Each node keeps its own previous output ([out]) so the candidate-set
   rules can recover old-restricted values even when a plan rebinds a
   variable: [values] always reflects the latest binding processed,
   while [out] is private to the node. Semijoin nodes additionally keep
   their full selection set [sel] (all items of the source matching the
   condition), so [out = sel ∩ input] is maintainable without
   re-querying the base. *)
type kind =
  | Kselect of { source : int; vec : Cond_vec.t }
  | Ksemijoin of {
      source : int;
      vec : Cond_vec.t;
      input : string;
      mutable sel : Item_set.t;
    }
  | Klocal of { source : int; vec : Cond_vec.t }
  | Kunion of string list
  | Kinter of string list
  | Kdiff of string * string

type node = { dst : string; mutable out : Item_set.t; kind : kind }

type t = {
  relations : Relation.t array;
  nodes : node array;
  values : (string, Item_set.t) Hashtbl.t;
  versions : int array;
  output : string;
  plan : Plan.t;
}

let value t var =
  Option.value ~default:Item_set.empty (Hashtbl.find_opt t.values var)

let answer t = value t t.output
let versions t = Array.copy t.versions
let plan t = t.plan

let create ~query ~sources p =
  let sources = Array.of_list sources in
  let n = Array.length sources in
  match Plan.validate ~m:(Query.m query) ~n p with
  | Error e -> Error e
  | Ok () -> (
    let relations = Array.map Source.relation sources in
    (* Compiled column scans stay valid across deltas (ids are stable,
       column arrays are re-fetched per scan), so each node compiles its
       condition once for the lifetime of the maintained answer. *)
    let vec cond source =
      Cond_vec.compile relations.(source) (Query.condition query cond)
    in
    (* Loaded-relation variables resolve statically: track the latest
       [Load] binding while walking the straight-line ops. *)
    let loads = Hashtbl.create 4 in
    let nodes = ref [] in
    let node dst kind = nodes := { dst; out = Item_set.empty; kind } :: !nodes in
    try
      List.iter
        (fun op ->
          match (op : Op.t) with
          | Select { dst; cond; source } -> node dst (Kselect { source; vec = vec cond source })
          | Semijoin { dst; cond; source; input } ->
            node dst
              (Ksemijoin { source; vec = vec cond source; input; sel = Item_set.empty })
          | Load { dst; source } -> Hashtbl.replace loads dst source
          | Local_select { dst; cond; input } ->
            let source =
              match Hashtbl.find_opt loads input with
              | Some s -> s
              | None -> raise Exit (* validate guarantees this *)
            in
            node dst (Klocal { source; vec = vec cond source })
          | Union { dst; args } -> node dst (Kunion args)
          | Inter { dst; args } -> node dst (Kinter args)
          | Diff { dst; left; right } -> node dst (Kdiff (left, right)))
        (Plan.ops p);
      let t =
        {
          relations;
          nodes = Array.of_list (List.rev !nodes);
          values = Hashtbl.create 16;
          versions = Array.map Relation.version relations;
          output = Plan.output p;
          plan = p;
        }
      in
      (* Initial full evaluation, in plan order. *)
      Array.iter
        (fun nd ->
          (match nd.kind with
          | Kselect { vec; _ } | Klocal { vec; _ } -> nd.out <- Cond_vec.select_items vec
          | Ksemijoin sj ->
            sj.sel <- Cond_vec.select_items sj.vec;
            nd.out <- Item_set.inter sj.sel (value t sj.input)
          | Kunion args -> nd.out <- Item_set.union_list (List.map (value t) args)
          | Kinter args -> nd.out <- Item_set.inter_list (List.map (value t) args)
          | Kdiff (l, r) -> nd.out <- Item_set.diff (value t l) (value t r));
          Hashtbl.replace t.values nd.dst nd.out)
        t.nodes;
      Ok t
    with Exit -> Error "local selection over an unloaded variable")

(* Propagate one source's touched-item set through the DAG. [changes]
   maps each variable to the change of its latest binding processed so
   far; absent means unchanged. Nodes are visited in plan order, so
   operand values (and changes) are already up to date when read. *)
let source_changed t ~source ~touched =
  if source < 0 || source >= Array.length t.relations then
    invalid_arg "Maintained.source_changed: source index out of range";
  t.versions.(source) <- Relation.version t.relations.(source);
  let changes = Hashtbl.create 8 in
  let change_of var =
    Option.value ~default:Change.empty (Hashtbl.find_opt changes var)
  in
  let select_change vec ~old ~candidates =
    if Item_set.is_empty candidates then Change.empty
    else
      Change.of_parts
        ~old_on:(Item_set.inter candidates old)
        ~new_on:(Cond_vec.semijoin_items vec candidates)
  in
  Array.iter
    (fun nd ->
      let ch =
        match nd.kind with
        | Kselect { source = s; vec } | Klocal { source = s; vec } ->
          if s <> source then Change.empty
          else select_change vec ~old:nd.out ~candidates:touched
        | Ksemijoin sj ->
          let da =
            if sj.source <> source then Change.empty
            else select_change sj.vec ~old:sj.sel ~candidates:touched
          in
          sj.sel <- Change.apply sj.sel da;
          let dx = change_of sj.input in
          let c = Item_set.union (Change.touched da) (Change.touched dx) in
          if Item_set.is_empty c then Change.empty
          else
            Change.of_parts
              ~old_on:(Item_set.inter c nd.out)
              ~new_on:(Item_set.inter (Item_set.inter c sj.sel) (value t sj.input))
        | Kunion args ->
          let c = Item_set.union_list (List.map (fun a -> Change.touched (change_of a)) args) in
          if Item_set.is_empty c then Change.empty
          else
            Change.of_parts
              ~old_on:(Item_set.inter c nd.out)
              ~new_on:
                (Item_set.union_list
                   (List.map (fun a -> Item_set.inter c (value t a)) args))
        | Kinter args ->
          let c = Item_set.union_list (List.map (fun a -> Change.touched (change_of a)) args) in
          if Item_set.is_empty c then Change.empty
          else
            Change.of_parts
              ~old_on:(Item_set.inter c nd.out)
              ~new_on:
                (List.fold_left
                   (fun acc a -> Item_set.inter acc (value t a))
                   c args)
        | Kdiff (l, r) ->
          let c =
            Item_set.union (Change.touched (change_of l)) (Change.touched (change_of r))
          in
          if Item_set.is_empty c then Change.empty
          else
            Change.of_parts
              ~old_on:(Item_set.inter c nd.out)
              ~new_on:(Item_set.diff (Item_set.inter c (value t l)) (value t r))
      in
      nd.out <- Change.apply nd.out ch;
      Hashtbl.replace t.values nd.dst nd.out;
      Hashtbl.replace changes nd.dst ch)
    t.nodes;
  change_of t.output

let mutate t ~source delta =
  if source < 0 || source >= Array.length t.relations then
    invalid_arg "Maintained.mutate: source index out of range";
  let applied = Delta.apply t.relations.(source) delta in
  let change = source_changed t ~source ~touched:applied.Delta.touched in
  (applied, change)
