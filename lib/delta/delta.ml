open Fusion_data

type t = { inserts : Tuple.t list; deletes : Tuple.t list }

let make ~inserts ~deletes = { inserts; deletes }
let empty = { inserts = []; deletes = [] }
let size d = List.length d.inserts + List.length d.deletes
let is_empty d = d.inserts = [] && d.deletes = []

let of_rows schema ~inserts ~deletes =
  let rec conv acc = function
    | [] -> Ok (List.rev acc)
    | row :: rest -> (
      match Tuple.create schema row with
      | Ok tu -> conv (tu :: acc) rest
      | Error e -> Error e)
  in
  match conv [] deletes with
  | Error e -> Error e
  | Ok deletes -> (
    match conv [] inserts with
    | Error e -> Error e
    | Ok inserts -> Ok { inserts; deletes })

(* Line syntax used by the TCP front end's [mut] command:
   ;-separated ops, each [+cell,cell,...] (insert) or [-cell,...]
   (delete), cells parsed against the schema's attribute types. *)
let parse schema text =
  let tys = List.map snd (Schema.attrs schema) in
  let arity = List.length tys in
  let parse_row body =
    let cells = String.split_on_char ',' body in
    if List.length cells <> arity then
      Error
        (Printf.sprintf "delta row %S: expected %d cells, got %d" body arity
           (List.length cells))
    else
      let rec go acc tys cells =
        match (tys, cells) with
        | [], [] -> Ok (List.rev acc)
        | ty :: tys, c :: cells -> (
          match Value.parse ty (String.trim c) with
          | Ok v -> go (v :: acc) tys cells
          | Error e -> Error (Printf.sprintf "delta row %S: %s" body e))
        | _ -> assert false
      in
      go [] tys cells
  in
  let ops =
    String.split_on_char ';' text |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go inserts deletes = function
    | [] -> of_rows schema ~inserts:(List.rev inserts) ~deletes:(List.rev deletes)
    | op :: rest ->
      if String.length op < 2 || (op.[0] <> '+' && op.[0] <> '-') then
        Error (Printf.sprintf "bad delta op %S: must be +row or -row" op)
      else (
        match (op.[0], parse_row (String.sub op 1 (String.length op - 1))) with
        | _, Error e -> Error e
        | '+', Ok row -> go (row :: inserts) deletes rest
        | _, Ok row -> go inserts (row :: deletes) rest)
  in
  if ops = [] then Error "empty delta"
  else go [] [] ops

let to_line schema d =
  (* [Value.parse] takes strings bare (no quotes), so render them the
     same way — [Value.to_string] would quote and not round-trip. *)
  let cell = function Value.String s -> s | v -> Value.to_string v in
  let row sign tu =
    sign
    ^ String.concat ","
        (List.mapi (fun i _ -> cell (Tuple.get tu i)) (Schema.attrs schema))
  in
  String.concat ";"
    (List.map (row "+") d.inserts @ List.map (row "-") d.deletes)

type applied = {
  inserted : int;
  deleted : int;
  missed : int;
  touched : Item_set.t;
  version : int;
}

(* Deletes first, then inserts: a tuple appearing on both sides of one
   batch ends up present. Items are touched only when a row actually
   changed (a delete that matched nothing touches nothing). *)
let apply rel d =
  let intern = Relation.intern rel and schema = Relation.schema rel in
  let touched = ref [] in
  let touch tu = touched := Intern.intern intern (Tuple.item schema tu) :: !touched in
  let deleted = ref 0 and missed = ref 0 in
  List.iter
    (fun tu ->
      if Relation.remove rel tu then begin
        incr deleted;
        touch tu
      end
      else incr missed)
    d.deletes;
  List.iter
    (fun tu ->
      Relation.insert rel tu;
      touch tu)
    d.inserts;
  {
    inserted = List.length d.inserts;
    deleted = !deleted;
    missed = !missed;
    touched = Item_set.of_ids intern (Array.of_list !touched);
    version = Relation.version rel;
  }

let pp ppf d =
  Format.fprintf ppf "@[<h>delta(+%d/-%d)@]" (List.length d.inserts)
    (List.length d.deletes)
