(** Network/processing profile of a source.

    The paper's cost model charges each source query a non-negative cost
    that "could take into account the cost of communicating with sources,
    and the cost of actually processing the queries at the sources". A
    profile encodes that as a fixed per-request overhead plus per-item
    transfer charges, in abstract cost units. Heterogeneous Internet
    sources are modeled by giving sources different profiles. *)

type t = {
  request_overhead : float;
      (** charged once per query sent to the source (connection setup,
          round-trip latency, query parsing at the source) *)
  send_per_item : float;
      (** charged per item shipped {e to} the source in a semijoin set *)
  recv_per_item : float;
      (** charged per item received in an answer (phase-1 answers carry
          merge-attribute values only) *)
  recv_per_tuple : float;
      (** charged per full tuple received (source loading [lq] and
          phase-2 record fetching move whole tuples, which are wider
          than bare items) *)
}

val default : t
(** A mid-range Internet source: overhead 50, send 0.5, recv 1,
    tuple 8. *)

val make :
  ?request_overhead:float ->
  ?send_per_item:float ->
  ?recv_per_item:float ->
  ?recv_per_tuple:float ->
  unit ->
  t
(** {!default} with fields overridden. *)

val scale : float -> t -> t
(** Multiplies every charge; models uniformly slower/faster sources. *)

val default_straggler_factor : float
(** 10: a straggling replica answers an order of magnitude slower. *)

val straggler : ?factor:float -> t -> t
(** [scale factor] (default {!default_straggler_factor}) with the
    factor checked to be ≥ 1 — the injected-straggler profile used by
    replica fault drills and the hedging studies.
    @raise Invalid_argument on [factor < 1]. *)

val pp : Format.formatter -> t -> unit
