(** A small discrete-event simulator for parallel query execution.

    The mediator issues queries over the network; each source is an
    autonomous server that answers one query at a time (FIFO). A task's
    wall-clock footprint is its service duration (we reuse the cost
    model's units as time units); tasks at different sources overlap
    freely, tasks at one source queue behind each other, and a task
    cannot start before its declared dependencies have completed.

    This is the execution substrate for the paper's "response time in a
    parallel execution model" future-work direction (Section 6): the
    analytic critical-path model of [Fusion_plan.Response_time] is the
    special case with infinitely concurrent sources. *)

type task = {
  id : int;  (** unique; used in dependencies and the timeline *)
  server : int;  (** which source serves the task *)
  duration : float;  (** service time at the source *)
  deps : int list;  (** task ids that must complete first *)
}

type scheduled = {
  task : task;
  start : float;
  finish : float;
}

type timeline = {
  events : scheduled list;  (** in start-time order *)
  makespan : float;  (** completion time of the last task *)
}

val run : servers:int -> task list -> timeline
(** Simulates the task set to completion. Tasks become ready the moment
    their last dependency finishes; a ready task waits for its server to
    be free and is served FIFO in ready-time order (ties broken by id —
    deterministic). [servers] bounds the valid [server] indexes.
    @raise Invalid_argument on cyclic or dangling dependencies, or
    out-of-range servers. *)

(** The incremental face of the simulator, for {e live} execution where
    a task's duration is discovered only at dispatch time (the query's
    answer determines its cost). A [Live.t] holds the same per-server
    FIFO queueing state as {!run}; the caller is the ready-queue loop
    and admits tasks one at a time. *)
module Live : sig
  type t

  val create : servers:int -> t
  [@@alert
    sim_construct
      "Direct Sim.Live construction is the simulator backend's internals; build \
       a Fusion_rt.Runtime (Runtime.sim / Runtime.domains) instead."]

  val free_at : t -> int -> float
  (** Next instant the server can start new work. *)

  val server_count : t -> int

  val backlog : t -> at:float -> float array
  (** Remaining queued service time per server as seen at instant [at]:
      [max 0 (free_at - at)]. A serving layer reads this to predict how
      long a request arriving now would wait — the admission-control
      signal for load shedding. *)

  val dispatched : t -> int
  (** Number of tasks dispatched so far. *)

  val dispatch :
    t -> id:int -> server:int -> ready:float -> duration:float -> deps:int list ->
    scheduled
  (** Admits one task: it starts at [max ready (free_at server)], holds
      the server for [duration], and its completion is recorded on the
      timeline. [deps] is informational (the ids of the tasks whose
      completion made this one ready). @raise Invalid_argument on an
      out-of-range server or negative duration. *)

  val busy : t -> float array
  (** Accumulated service time per server. *)

  val timeline : t -> timeline
  (** Everything dispatched so far, in start-time order. *)
end

val pp_timeline : Format.formatter -> timeline -> unit

val pp_gantt : ?width:int -> ?server_name:(int -> string) -> Format.formatter ->
  timeline -> unit
(** ASCII Gantt chart, one lane per server:

    {v R1 |##########----####                    | 3 tasks
       R2 |----########                          | 2 tasks v}

    [#] marks service time, [-] idle gaps between tasks on the lane;
    [width] (default 60) is the number of columns representing the
    makespan. *)
