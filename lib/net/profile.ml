type t = {
  request_overhead : float;
  send_per_item : float;
  recv_per_item : float;
  recv_per_tuple : float;
}

let default =
  { request_overhead = 50.0; send_per_item = 0.5; recv_per_item = 1.0; recv_per_tuple = 8.0 }

let make ?(request_overhead = default.request_overhead)
    ?(send_per_item = default.send_per_item) ?(recv_per_item = default.recv_per_item)
    ?(recv_per_tuple = default.recv_per_tuple) () =
  { request_overhead; send_per_item; recv_per_item; recv_per_tuple }

let scale k t =
  {
    request_overhead = k *. t.request_overhead;
    send_per_item = k *. t.send_per_item;
    recv_per_item = k *. t.recv_per_item;
    recv_per_tuple = k *. t.recv_per_tuple;
  }

let default_straggler_factor = 10.0

let straggler ?(factor = default_straggler_factor) t =
  if factor < 1.0 then invalid_arg "Profile.straggler: factor must be >= 1";
  scale factor t

let pp ppf t =
  Format.fprintf ppf "{overhead=%g; send=%g; recv=%g; tuple=%g}" t.request_overhead
    t.send_per_item t.recv_per_item t.recv_per_tuple
