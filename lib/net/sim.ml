type task = { id : int; server : int; duration : float; deps : int list }

type scheduled = { task : task; start : float; finish : float }

type timeline = { events : scheduled list; makespan : float }

(* The simulation is a ready-queue loop: at every step we pick, among
   ready (all deps done) unscheduled tasks, the one that can start
   earliest — ready time is the max of its deps' finishes, start time
   additionally waits for the server. FIFO per server emerges from
   processing tasks in (ready, id) order. *)
let run ~servers tasks =
  let by_id = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.server < 0 || t.server >= servers then
        invalid_arg (Printf.sprintf "Sim.run: task %d targets unknown server %d" t.id t.server);
      if t.duration < 0.0 then
        invalid_arg (Printf.sprintf "Sim.run: task %d has negative duration" t.id);
      if Hashtbl.mem by_id t.id then
        invalid_arg (Printf.sprintf "Sim.run: duplicate task id %d" t.id);
      Hashtbl.replace by_id t.id t)
    tasks;
  List.iter
    (fun t ->
      List.iter
        (fun d ->
          if not (Hashtbl.mem by_id d) then
            invalid_arg (Printf.sprintf "Sim.run: task %d depends on unknown task %d" t.id d))
        t.deps)
    tasks;
  let finish_times = Hashtbl.create 16 in
  let server_free = Array.make (max servers 1) 0.0 in
  let scheduled = ref [] in
  let pending = ref tasks in
  let total = List.length tasks in
  let done_count = ref 0 in
  while !pending <> [] do
    let ready, blocked =
      List.partition
        (fun t -> List.for_all (fun d -> Hashtbl.mem finish_times d) t.deps)
        !pending
    in
    if ready = [] then invalid_arg "Sim.run: cyclic dependencies";
    (* Schedule every currently ready task; their relative order is by
       (ready time, id), which gives FIFO service per server. *)
    let with_ready_time =
      List.map
        (fun t ->
          let ready_at =
            List.fold_left (fun acc d -> Float.max acc (Hashtbl.find finish_times d)) 0.0 t.deps
          in
          (ready_at, t))
        ready
    in
    let ordered =
      List.sort
        (fun (r1, t1) (r2, t2) ->
          match Float.compare r1 r2 with 0 -> Int.compare t1.id t2.id | c -> c)
        with_ready_time
    in
    List.iter
      (fun (ready_at, t) ->
        let start = Float.max ready_at server_free.(t.server) in
        let finish = start +. t.duration in
        server_free.(t.server) <- finish;
        Hashtbl.replace finish_times t.id finish;
        scheduled := { task = t; start; finish } :: !scheduled;
        incr done_count)
      ordered;
    pending := blocked
  done;
  assert (!done_count = total);
  let events =
    List.sort
      (fun a b ->
        match Float.compare a.start b.start with
        | 0 -> Int.compare a.task.id b.task.id
        | c -> c)
      !scheduled
  in
  let makespan = List.fold_left (fun acc e -> Float.max acc e.finish) 0.0 events in
  { events; makespan }

(* The incremental face of the same queueing discipline: a live executor
   discovers task durations only at dispatch time (the answer determines
   the cost), so instead of a task list we expose the scheduler's state
   and admit one task at a time. [Sim.run] remains the replay oracle. *)
module Live = struct
  type nonrec t = {
    servers : int;
    free : float array; (* next instant each server can start new work *)
    busy : float array; (* accumulated service time per server *)
    mutable events : scheduled list; (* newest first *)
  }

  let create ~servers =
    {
      servers;
      free = Array.make (max servers 1) 0.0;
      busy = Array.make (max servers 1) 0.0;
      events = [];
    }

  let free_at t server = t.free.(server)

  let server_count t = t.servers

  let backlog t ~at = Array.map (fun free -> Float.max 0.0 (free -. at)) t.free

  let dispatched t = List.length t.events

  let dispatch t ~id ~server ~ready ~duration ~deps =
    if server < 0 || server >= t.servers then
      invalid_arg
        (Printf.sprintf "Sim.Live.dispatch: task %d targets unknown server %d" id server);
    if duration < 0.0 then
      invalid_arg (Printf.sprintf "Sim.Live.dispatch: task %d has negative duration" id);
    let start = Float.max ready t.free.(server) in
    let finish = start +. duration in
    t.free.(server) <- finish;
    t.busy.(server) <- t.busy.(server) +. duration;
    let event = { task = { id; server; duration; deps }; start; finish } in
    t.events <- event :: t.events;
    event

  let busy t = Array.copy t.busy

  let timeline t =
    let events =
      List.sort
        (fun a b ->
          match Float.compare a.start b.start with
          | 0 -> Int.compare a.task.id b.task.id
          | c -> c)
        t.events
    in
    let makespan = List.fold_left (fun acc e -> Float.max acc e.finish) 0.0 events in
    { events; makespan }
end

let pp_gantt ?(width = 60) ?(server_name = fun j -> Printf.sprintf "R%d" (j + 1)) ppf t =
  if t.makespan <= 0.0 then Format.fprintf ppf "(empty timeline)"
  else begin
    let servers =
      List.sort_uniq compare (List.map (fun e -> e.task.server) t.events)
    in
    let column time = int_of_float (time /. t.makespan *. float_of_int (width - 1)) in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun server ->
        let lane = Bytes.make width ' ' in
        let mine = List.filter (fun e -> e.task.server = server) t.events in
        (* idle gaps between consecutive tasks *)
        let rec gaps = function
          | a :: (b :: _ as rest) ->
            for c = column a.finish to column b.start do
              if c >= 0 && c < width then Bytes.set lane c '-'
            done;
            gaps rest
          | _ -> ()
        in
        gaps mine;
        List.iter
          (fun e ->
            for c = column e.start to max (column e.start) (column e.finish - 1) do
              if c >= 0 && c < width then Bytes.set lane c '#'
            done)
          mine;
        Format.fprintf ppf "%-12s |%s| %d tasks@," (server_name server)
          (Bytes.to_string lane) (List.length mine))
      servers;
    Format.fprintf ppf "makespan: %.1f@]" t.makespan
  end

let pp_timeline ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      Format.fprintf ppf "task %3d @@ server %2d: %8.1f -> %8.1f@," e.task.id e.task.server
        e.start e.finish)
    t.events;
  Format.fprintf ppf "makespan: %.1f@]" t.makespan
