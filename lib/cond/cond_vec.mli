(** Compiled, vectorized condition scans over columnar relations.

    [compile rel c] turns a {!Cond.t} into a scan program against
    [rel]'s dictionary-encoded columns: attribute offsets are resolved
    once, [=] atoms against non-null literals become single integer
    compares against the literal's dictionary id, [IS NULL] reads the
    null bitmap, and every other atom is evaluated at most once per
    {e dictionary class} (memoized by id) rather than once per row. The
    tight row loop then runs over flat [int] arrays and feeds
    {!Item_set} construction directly.

    Semantics are exactly {!Cond.eval}'s (property-tested): comparisons
    against Null are false, [Prefix] needs a string cell, [Is_null]
    matches only Null.

    A compiled scan stays valid across inserts and removes on its
    relation (column arrays are re-fetched per scan, dictionary ids are
    never reassigned), so delta-maintained answers can keep reusing it.
    The scratch buffers make a value non-reentrant: share one [t] per
    engine/source lane, not across concurrent scanners.

    @raise Not_found if the condition mentions an unknown attribute;
    validate first. *)

open Fusion_data

type t

val compile : Relation.t -> Cond.t -> t
val relation : t -> Relation.t
val cond : t -> Cond.t

val select_items : t -> Item_set.t
(** Distinct items with at least one matching row — [sq(c, R)] as a
    columnar scan. Allocates only the answer (plus scratch growth on
    first use). *)

val semijoin_items : t -> Item_set.t -> Item_set.t
(** Subset of the probe set whose items have a matching row —
    [sjq(c, R, X)] probing the merge index per id, O(|X| ·
    tuples-per-item). Cross-scope probe sets fall back to value-level
    lookups. *)

val count_rows : t -> int
(** Number of matching rows (not items). *)

val count_items : t -> int
(** Number of distinct matching items. *)
