open Fusion_data

let bpw = Sys.int_size

(* Per-atom memo over a column's dictionary: atoms are functions of the
   value's equality class only ([Value.compare] orders classes
   consistently across Int/Float spellings, Prefix/In_list classes are
   single-typed), so each class is evaluated once, on its
   representative, and every later row with that id is a byte load. *)
type memo = {
  tbl : Intern.t;
  mutable bits : Bytes.t; (* '\000' unknown / '\001' true / '\002' false *)
  eval_v : Value.t -> bool;
}

type node =
  | N_true
  | N_eq of { col : int; lit : Value.t; mutable id : int } (* -1: class unseen so far *)
  | N_memo of { col : int; m : memo }
  | N_null of { col : int }
  | N_and of node * node
  | N_or of node * node
  | N_not of node

type t = {
  rel : Relation.t;
  cond : Cond.t;
  node : node;
  mutable seen : int array; (* scratch bitmap over catalog item ids *)
  mutable hits : int array; (* scratch vec of matched item ids *)
}

let relation t = t.rel
let cond t = t.cond

let memo_test m id =
  if id >= Bytes.length m.bits then begin
    let n = max 64 (max (id + 1) (2 * Bytes.length m.bits)) in
    let bits = Bytes.make n '\000' in
    Bytes.blit m.bits 0 bits 0 (Bytes.length m.bits);
    m.bits <- bits
  end;
  match Bytes.unsafe_get m.bits id with
  | '\001' -> true
  | '\002' -> false
  | _ ->
    let r = m.eval_v (Intern.value m.tbl id) in
    Bytes.unsafe_set m.bits id (if r then '\001' else '\002');
    r

let memo_of rel col eval_v =
  N_memo { col; m = { tbl = Relation.column_table rel col; bits = Bytes.empty; eval_v } }

(* Mirrors [Cond.eval] atom semantics exactly: comparisons against a
   Null cell are false, [Prefix] needs a string cell, [Is_null] reads
   the null bitmap. [Eq] against a non-null literal shortcuts to a
   single id comparison (a Null cell has a different class id). *)
let compile rel cond0 =
  let schema = Relation.schema rel in
  let rec go c =
    match (c : Cond.t) with
    | True -> N_true
    | Cmp (attr, Eq, lit) when lit <> Value.Null ->
      N_eq { col = Schema.pos_exn schema attr; lit; id = -1 }
    | Cmp (attr, op, lit) ->
      memo_of rel (Schema.pos_exn schema attr) (fun v ->
          match v with
          | Value.Null -> false
          | v -> Cond.cmp_holds op (Value.compare v lit))
    | Between (attr, lo, hi) ->
      memo_of rel (Schema.pos_exn schema attr) (fun v ->
          match v with
          | Value.Null -> false
          | v -> Value.compare lo v <= 0 && Value.compare v hi <= 0)
    | In_list (attr, lits) ->
      memo_of rel (Schema.pos_exn schema attr) (fun v ->
          match v with
          | Value.Null -> false
          | v -> List.exists (Value.equal v) lits)
    | Prefix (attr, prefix) ->
      memo_of rel (Schema.pos_exn schema attr) (fun v ->
          match v with
          | Value.String s -> Cond.string_has_prefix ~prefix s
          | _ -> false)
    | Is_null attr -> N_null { col = Schema.pos_exn schema attr }
    | And (a, b) -> N_and (go a, go b)
    | Or (a, b) -> N_or (go a, go b)
    | Not a -> N_not (go a)
  in
  { rel; cond = cond0; node = go cond0; seen = [||]; hits = [||] }

(* Bind the node tree to the relation's *current* column arrays (array
   identity changes when the relation grows, so this is per scan).
   The returned predicate indexes rows and must only be applied below
   [Relation.cardinality]. *)
let rec bind rel node =
  match node with
  | N_true -> fun _ -> true
  | N_eq e ->
    let ids = Relation.column_ids rel e.col in
    if e.id < 0 then begin
      match Intern.find (Relation.column_table rel e.col) e.lit with
      | Some i -> e.id <- i (* ids are never reassigned: cache forever *)
      | None -> ()
    end;
    let lid = e.id in
    if lid < 0 then fun _ -> false else fun i -> Array.unsafe_get ids i = lid
  | N_memo { col; m } ->
    let ids = Relation.column_ids rel col in
    fun i -> memo_test m (Array.unsafe_get ids i)
  | N_null { col } ->
    let words = Relation.column_null_words rel col in
    fun i -> Array.unsafe_get words (i / bpw) land (1 lsl (i mod bpw)) <> 0
  | N_and (a, b) ->
    let fa = bind rel a and fb = bind rel b in
    fun i -> fa i && fb i
  | N_or (a, b) ->
    let fa = bind rel a and fb = bind rel b in
    fun i -> fa i || fb i
  | N_not a ->
    let fa = bind rel a in
    fun i -> not (fa i)

let ensure_seen t nwords =
  if Array.length t.seen < nwords then begin
    let seen = Array.make (max 64 nwords) 0 in
    Array.blit t.seen 0 seen 0 (Array.length t.seen);
    t.seen <- seen
  end

let ensure_hits t n =
  if Array.length t.hits < n then begin
    (* Doubling, not exact-fit: push_hit grows one element at a time. *)
    let hits = Array.make (max 64 (max n (2 * Array.length t.hits))) 0 in
    Array.blit t.hits 0 hits 0 (Array.length t.hits);
    t.hits <- hits
  end

let push_hit t k id =
  ensure_hits t (k + 1);
  t.hits.(k) <- id

let count_rows t =
  let hit = bind t.rel t.node in
  let n = Relation.cardinality t.rel in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if hit i then incr k
  done;
  !k

let select_items t =
  let rel = t.rel in
  let hit = bind rel t.node in
  let n = Relation.cardinality rel in
  let items = Relation.column_ids rel (Relation.merge_pos rel) in
  ensure_seen t ((Intern.size (Relation.intern rel) + bpw - 1) / bpw);
  let seen = t.seen in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if hit i then begin
      let id = Array.unsafe_get items i in
      let w = id / bpw and bit = 1 lsl (id mod bpw) in
      if Array.unsafe_get seen w land bit = 0 then begin
        Array.unsafe_set seen w (Array.unsafe_get seen w lor bit);
        push_hit t !k id;
        incr k
      end
    end
  done;
  let out = Array.sub t.hits 0 !k in
  (* Clear only the bits we set, via the hit list. *)
  for j = 0 to !k - 1 do
    let id = Array.unsafe_get out j in
    seen.(id / bpw) <- seen.(id / bpw) land lnot (1 lsl (id mod bpw))
  done;
  Item_set.of_ids (Relation.intern rel) out

let count_items t = Item_set.cardinal (select_items t)

let semijoin_items t xs =
  let rel = t.rel in
  match Item_set.table xs with
  | Some tbl when tbl == Relation.intern rel ->
    (* Probe the int index directly, in id order; the kept ids come out
       already sorted, so [of_ids] takes its no-sort fast path. *)
    let hit = bind rel t.node in
    let k =
      Item_set.fold_ids
        (fun id k ->
          match Relation.positions_of_id rel id with
          | [] -> k
          | positions when List.exists hit positions ->
            push_hit t k id;
            k + 1
          | _ -> k)
        xs 0
    in
    Item_set.of_ids (Relation.intern rel) (Array.sub t.hits 0 k)
  | _ ->
    (* Cross-scope (or empty) probe: value-level fallback on the hoisted
       row predicate. *)
    let p = Cond.compile (Relation.schema rel) t.cond in
    Item_set.filter (fun item -> List.exists p (Relation.tuples_of_item rel item)) xs
