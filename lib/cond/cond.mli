(** The condition language of fusion queries.

    Each fusion-query condition [c_i] constrains the attributes of one
    tuple variable (Section 2.2). Wrappers evaluate conditions against
    their relation; the mediator also evaluates them locally against
    loaded relations in postoptimized plans (Section 4). *)

open Fusion_data

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True  (** satisfied by every tuple *)
  | Cmp of string * cmp * Value.t  (** [attr <op> literal] *)
  | Between of string * Value.t * Value.t  (** inclusive range *)
  | In_list of string * Value.t list
  | Prefix of string * string  (** SQL [LIKE 'p%'] on a string attribute *)
  | Is_null of string  (** SQL [attr IS NULL] *)
  | And of t * t
  | Or of t * t
  | Not of t

val eval : Schema.t -> t -> Tuple.t -> bool
(** Three-valued-logic-free evaluation: comparisons against [Null] are
    false (so [Not] of such a comparison is true, matching the simple
    set semantics fusion plans rely on).
    @raise Not_found if the condition mentions an unknown attribute;
    use {!validate} first. *)

val compile : Schema.t -> t -> Tuple.t -> bool
(** [compile schema c] is a predicate with exactly {!eval}'s semantics,
    but with attribute [->] offset resolution hoisted out of the
    per-tuple path: apply it to a schema and condition once, then run
    the returned closure per tuple.
    @raise Not_found if the condition mentions an unknown attribute;
    use {!validate} first. *)

val attrs : t -> string list
(** Attribute names mentioned, without duplicates, in first-mention
    order. *)

val validate : Schema.t -> t -> (unit, string) result
(** Checks that every mentioned attribute exists and that literals have
    the attribute's type ([Prefix] requires a string attribute). *)

val equal : t -> t -> bool

val simplify : t -> t
(** Constant folding and double-negation elimination; preserves {!eval}
    semantics. *)

val pp : Format.formatter -> t -> unit
(** SQL-ish rendering, re-parseable by {!parse}. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parses the {!pp} syntax: comparisons [a = 1], [a <> 'x'],
    [a BETWEEN 1 AND 5], [a IN (1, 2)], [a LIKE 'p%'], [a IS NULL],
    [a IS NOT NULL], combined with [AND], [OR], [NOT] and parentheses.
    Keywords are case-insensitive. *)

val cmp_to_string : cmp -> string

val cmp_holds : cmp -> int -> bool
(** Whether a comparator accepts a [Value.compare] result. *)

val string_has_prefix : prefix:string -> string -> bool
(** The [Prefix] (SQL [LIKE 'p%']) matcher. *)

val parse_in :
  Parser_state.t -> attr_of:(Parser_state.t -> string -> string) -> t
(** Parses a condition from an already-open token stream; [attr_of]
    resolves attribute references (the SQL front-end uses it to consume
    the [alias.] qualifier). Used by [Fusion_query.Sql].
    @raise Parser_state.Parse_error on malformed input. *)

val parse_predicate_in : Parser_state.t -> attr:string -> t
(** Parses the operator-and-operand part of a predicate ([= 3],
    [BETWEEN 1 AND 5], ...) whose attribute has already been consumed.
    @raise Parser_state.Parse_error on malformed input. *)

val is_reserved : string -> bool
(** Whether an identifier is a condition-language keyword. *)
